"""Tests for the steady-state thermal model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chip.mesh import MeshGeometry
from repro.chip.thermal import T_JUNCTION_MAX_C, ThermalModel


@pytest.fixture
def model():
    return ThermalModel(MeshGeometry(10, 6))


class TestValidation:
    def test_resistances_positive(self):
        with pytest.raises(ValueError):
            ThermalModel(MeshGeometry(2, 2), r_vertical_k_per_w=0.0)
        with pytest.raises(ValueError):
            ThermalModel(MeshGeometry(2, 2), r_lateral_k_per_w=-1.0)

    def test_power_shape_and_sign(self, model):
        with pytest.raises(ValueError):
            model.temperatures_c([1.0] * 59)
        with pytest.raises(ValueError):
            model.temperatures_c([-1.0] + [0.0] * 59)


class TestPhysics:
    def test_idle_chip_at_ambient(self, model):
        temps = model.temperatures_c([0.0] * 60)
        assert temps == pytest.approx([model.ambient_c] * 60)

    def test_uniform_power_uniform_rise(self, model):
        """Uniform power: lateral flow cancels, rise = P * R_vertical."""
        temps = model.temperatures_c([1.0] * 60)
        expected = model.ambient_c + 1.0 * model.r_vertical_k_per_w
        assert temps == pytest.approx([expected] * 60)

    def test_hotspot_peaks_at_the_source_and_spreads(self, model):
        power = [0.0] * 60
        power[25] = 5.0
        temps = model.temperatures_c(power)
        assert int(np.argmax(temps)) == 25
        # Neighbours are warmer than far corners (lateral spreading).
        neighbor = temps[24]
        corner = temps[0]
        assert neighbor > corner > model.ambient_c - 1e-9

    def test_linearity(self, model):
        p = np.zeros(60)
        p[10] = 2.0
        t1 = model.temperatures_c(p) - model.ambient_c
        t2 = model.temperatures_c(2 * p) - model.ambient_c
        assert t2 == pytest.approx(2 * t1)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_superposition(self, seed):
        model = ThermalModel(MeshGeometry(4, 4))
        rng = np.random.default_rng(seed)
        pa = rng.uniform(0, 2, 16)
        pb = rng.uniform(0, 2, 16)
        ta = model.temperatures_c(pa) - model.ambient_c
        tb = model.temperatures_c(pb) - model.ambient_c
        tab = model.temperatures_c(pa + pb) - model.ambient_c
        assert tab == pytest.approx(ta + tb)


class TestDarkSiliconBudget:
    def test_dspb_matches_junction_limit(self, model):
        """The paper's 65 W DsPB is the thermally safe uniform budget of
        this cooling solution, within a few watts."""
        budget = model.safe_uniform_budget_w()
        assert 58.0 < budget < 72.0

    def test_uniform_dspb_is_safe_but_not_much_more(self, model):
        uniform = [65.0 / 60] * 60
        assert model.is_thermally_safe(uniform)
        hot = [90.0 / 60] * 60
        assert not model.is_thermally_safe(hot)

    def test_concentrated_power_is_worse_than_uniform(self, model):
        """The same 65 W concentrated on one quadrant overheats - why
        the runtime budget alone is conservative only for spread maps."""
        concentrated = [0.0] * 60
        for t in range(15):
            concentrated[t] = 65.0 / 15
        assert model.peak_temperature_c(concentrated) > (
            model.peak_temperature_c([65.0 / 60] * 60)
        )
