"""Tests for the Vdd ladder and the alpha-power frequency law."""

import pytest
from hypothesis import given, strategies as st

from repro.chip.dvfs import VddLadder, alpha_power_frequency
from repro.chip.technology import technology


class TestAlphaPowerLaw:
    def test_normalised_at_nominal(self):
        tech = technology("7nm")
        f = alpha_power_frequency(tech.vdd_nominal, tech)
        assert f == pytest.approx(tech.freq_at_nominal_hz)

    def test_monotonic_in_vdd(self):
        tech = technology("7nm")
        freqs = [alpha_power_frequency(v, tech) for v in (0.4, 0.5, 0.6, 0.7, 0.8)]
        assert freqs == sorted(freqs)
        assert all(f > 0 for f in freqs)

    def test_below_threshold_rejected(self):
        tech = technology("7nm")
        with pytest.raises(ValueError, match="threshold"):
            alpha_power_frequency(0.2, tech)
        with pytest.raises(ValueError):
            alpha_power_frequency(tech.vth, tech)

    def test_near_threshold_much_slower_than_nominal(self):
        """NTC operation sacrifices substantial frequency (motivates DoP)."""
        tech = technology("7nm")
        ratio = alpha_power_frequency(0.4, tech) / alpha_power_frequency(0.8, tech)
        assert 0.2 < ratio < 0.6


class TestVddLadder:
    def test_paper_default(self):
        ladder = VddLadder.paper_default()
        assert list(ladder) == pytest.approx([0.4, 0.5, 0.6, 0.7, 0.8])
        assert len(ladder) == 5
        assert ladder.lowest == pytest.approx(0.4)
        assert ladder.highest == pytest.approx(0.8)

    def test_contains(self):
        ladder = VddLadder.paper_default()
        assert 0.5 in ladder
        assert 0.55 not in ladder

    def test_at_least(self):
        ladder = VddLadder.paper_default()
        assert list(ladder.at_least(0.6)) == pytest.approx([0.6, 0.7, 0.8])
        assert list(ladder.at_least(0.85)) == []

    def test_nearest(self):
        ladder = VddLadder.paper_default()
        assert ladder.nearest(0.44) == pytest.approx(0.4)
        assert ladder.nearest(0.56) == pytest.approx(0.6)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            VddLadder((0.5, 0.4))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            VddLadder((0.4, 0.4, 0.5))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VddLadder(())

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            VddLadder((0.0, 0.4))

    def test_from_range_validation(self):
        with pytest.raises(ValueError):
            VddLadder.from_range(0.4, 0.8, 0.0)
        with pytest.raises(ValueError):
            VddLadder.from_range(0.8, 0.4, 0.1)

    @given(
        low=st.floats(0.3, 0.6),
        steps=st.integers(1, 8),
        step=st.sampled_from([0.05, 0.1, 0.25]),
    )
    def test_from_range_covers_endpoints(self, low, steps, step):
        high = low + steps * step
        ladder = VddLadder.from_range(low, high, step)
        assert len(ladder) == steps + 1
        assert ladder.lowest == pytest.approx(low)
        assert ladder.highest == pytest.approx(high, abs=1e-6)
