"""Tests for the technology node library."""

import pytest

from repro.chip.technology import (
    TECHNOLOGY_LIBRARY,
    TECHNOLOGY_ORDER,
    TechnologyNode,
    technology,
)


class TestLibrary:
    def test_contains_all_nodes_in_order(self):
        assert set(TECHNOLOGY_ORDER) == set(TECHNOLOGY_LIBRARY)
        sizes = [TECHNOLOGY_LIBRARY[n].feature_nm for n in TECHNOLOGY_ORDER]
        assert sizes == sorted(sizes, reverse=True)

    def test_lookup_by_name(self):
        node = technology("7nm")
        assert node.name == "7nm"
        assert node.feature_nm == 7.0

    def test_unknown_node_raises_with_known_names(self):
        with pytest.raises(KeyError, match="5nm"):
            technology("5nm")

    def test_paper_7nm_figures(self):
        """The 7 nm row must match values stated in the paper."""
        node = technology("7nm")
        assert node.core_area_mm2 == pytest.approx(4.0)
        assert node.router_area_um2 == pytest.approx(71300.0)
        assert node.vdd_ntc == pytest.approx(0.4)
        assert node.vdd_nominal == pytest.approx(0.8)

    def test_scaling_trends(self):
        """Newer nodes: thinner grid wires, less decap, lower voltages."""
        nodes = [TECHNOLOGY_LIBRARY[n] for n in TECHNOLOGY_ORDER]
        for older, newer in zip(nodes, nodes[1:]):
            assert newer.r_grid_ohm > older.r_grid_ohm
            assert newer.c_decap_f < older.c_decap_f
            assert newer.vdd_nominal <= older.vdd_nominal
            assert newer.vth <= older.vth
            assert newer.core_area_mm2 < older.core_area_mm2


class TestValidation:
    def _kwargs(self, **overrides):
        base = dict(
            name="x",
            feature_nm=7.0,
            vdd_nominal=0.8,
            vdd_ntc=0.4,
            vth=0.25,
            alpha=1.3,
            freq_at_nominal_hz=2e9,
            switched_cap_core_f=2.9e-9,
            switched_cap_router_f=0.6e-9,
            leakage_power_core_w=0.3,
            r_bump_ohm=3.2e-3,
            l_bump_h=20e-12,
            r_grid_ohm=3.6e-3,
            l_grid_h=2.4e-12,
            c_decap_f=8.5e-9,
            core_area_mm2=4.0,
            router_area_um2=71300.0,
        )
        base.update(overrides)
        return base

    def test_valid_node_constructs(self):
        TechnologyNode(**self._kwargs())

    def test_vth_above_ntc_rejected(self):
        with pytest.raises(ValueError, match="vth"):
            TechnologyNode(**self._kwargs(vth=0.5))

    def test_ntc_above_nominal_rejected(self):
        with pytest.raises(ValueError):
            TechnologyNode(**self._kwargs(vdd_ntc=0.9))

    @pytest.mark.parametrize(
        "field", ["r_bump_ohm", "l_bump_h", "c_decap_f", "freq_at_nominal_hz"]
    )
    def test_nonpositive_parameters_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            TechnologyNode(**self._kwargs(**{field: 0.0}))
