"""Tests for the 2D mesh geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.chip.mesh import MeshGeometry


@pytest.fixture
def mesh():
    return MeshGeometry(10, 6)


class TestBasics:
    def test_tile_count(self, mesh):
        assert mesh.tile_count == 60

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MeshGeometry(0, 5)
        with pytest.raises(ValueError):
            MeshGeometry(5, -1)

    def test_row_major_indexing(self, mesh):
        assert mesh.coord_of(0) == (0, 0)
        assert mesh.coord_of(9) == (9, 0)
        assert mesh.coord_of(10) == (0, 1)
        assert mesh.coord_of(59) == (9, 5)

    def test_tile_at_out_of_range(self, mesh):
        with pytest.raises(ValueError):
            mesh.tile_at((10, 0))
        with pytest.raises(ValueError):
            mesh.tile_at((0, 6))
        with pytest.raises(ValueError):
            mesh.tile_at((-1, 0))

    def test_coord_of_out_of_range(self, mesh):
        with pytest.raises(ValueError):
            mesh.coord_of(60)
        with pytest.raises(ValueError):
            mesh.coord_of(-1)

    def test_manhattan(self, mesh):
        assert mesh.manhattan(0, 0) == 0
        assert mesh.manhattan(0, 9) == 9
        assert mesh.manhattan(0, 59) == 14
        assert mesh.manhattan(11, 0) == 2  # (1,1) -> (0,0)

    def test_neighbors_corner_edge_interior(self, mesh):
        assert sorted(mesh.neighbors(0)) == [1, 10]
        assert sorted(mesh.neighbors(5)) == [4, 6, 15]
        assert len(mesh.neighbors(11)) == 4

    def test_tiles_within(self, mesh):
        ring1 = mesh.tiles_within(11, 1)
        assert sorted(ring1) == sorted(mesh.neighbors(11))
        ring2 = mesh.tiles_within(11, 2)
        assert set(ring1) < set(ring2)
        assert 11 not in ring2
        with pytest.raises(ValueError):
            mesh.tiles_within(0, -1)


class TestProperties:
    @given(
        w=st.integers(1, 16),
        h=st.integers(1, 16),
        data=st.data(),
    )
    def test_coord_tile_roundtrip(self, w, h, data):
        mesh = MeshGeometry(w, h)
        tile = data.draw(st.integers(0, mesh.tile_count - 1))
        assert mesh.tile_at(mesh.coord_of(tile)) == tile

    @given(
        w=st.integers(2, 12),
        h=st.integers(2, 12),
        data=st.data(),
    )
    def test_manhattan_is_metric(self, w, h, data):
        mesh = MeshGeometry(w, h)
        ids = st.integers(0, mesh.tile_count - 1)
        a, b, c = data.draw(ids), data.draw(ids), data.draw(ids)
        assert mesh.manhattan(a, b) == mesh.manhattan(b, a)
        assert mesh.manhattan(a, b) >= 0
        assert (mesh.manhattan(a, b) == 0) == (a == b)
        assert mesh.manhattan(a, c) <= mesh.manhattan(a, b) + mesh.manhattan(b, c)

    @given(w=st.integers(1, 12), h=st.integers(1, 12), data=st.data())
    def test_neighbors_are_distance_one(self, w, h, data):
        mesh = MeshGeometry(w, h)
        tile = data.draw(st.integers(0, mesh.tile_count - 1))
        for n in mesh.neighbors(tile):
            assert mesh.manhattan(tile, n) == 1
