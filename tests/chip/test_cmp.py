"""Tests for the top-level chip description."""

import pytest

from repro.chip import ChipDescription, MeshGeometry, VddLadder, default_chip, technology


class TestDefaultChip:
    def test_paper_platform(self):
        chip = default_chip()
        assert chip.tile_count == 60
        assert chip.domain_count == 15
        assert chip.tech.name == "7nm"
        assert chip.dark_silicon_budget_w == pytest.approx(65.0)
        assert list(chip.vdd_ladder) == pytest.approx([0.4, 0.5, 0.6, 0.7, 0.8])

    def test_derived_members_available(self):
        chip = default_chip()
        assert chip.domains.domain_of(0) == 0
        assert chip.power_model.frequency(0.8) > 1e9

    def test_custom_size(self):
        chip = default_chip(width=4, height=4)
        assert chip.tile_count == 16
        assert chip.domain_count == 4


class TestValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget"):
            ChipDescription(
                mesh=MeshGeometry(4, 4),
                tech=technology("7nm"),
                vdd_ladder=VddLadder.paper_default(),
                dark_silicon_budget_w=0.0,
            )

    def test_vdd_ladder_must_clear_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            ChipDescription(
                mesh=MeshGeometry(4, 4),
                tech=technology("7nm"),
                vdd_ladder=VddLadder((0.2, 0.4)),
                dark_silicon_budget_w=65.0,
            )

    def test_odd_mesh_rejected_via_domains(self):
        with pytest.raises(ValueError, match="even"):
            ChipDescription(
                mesh=MeshGeometry(5, 4),
                tech=technology("7nm"),
                vdd_ladder=VddLadder.paper_default(),
                dark_silicon_budget_w=65.0,
            )
