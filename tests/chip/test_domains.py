"""Tests for the power-supply domain map."""

import pytest
from hypothesis import given, strategies as st

from repro.chip.domains import DOMAIN_SIZE, DomainMap
from repro.chip.mesh import MeshGeometry


@pytest.fixture
def dmap():
    return DomainMap(MeshGeometry(10, 6))


class TestConstruction:
    def test_paper_platform_has_15_domains(self, dmap):
        assert dmap.domain_count == 15
        assert dmap.grid_shape == (5, 3)

    def test_odd_mesh_rejected(self):
        with pytest.raises(ValueError, match="even"):
            DomainMap(MeshGeometry(9, 6))
        with pytest.raises(ValueError, match="even"):
            DomainMap(MeshGeometry(10, 5))

    def test_every_domain_has_four_tiles(self, dmap):
        for d in range(dmap.domain_count):
            assert len(dmap.tiles_of(d)) == DOMAIN_SIZE

    def test_domains_partition_the_mesh(self, dmap):
        seen = set()
        for d in range(dmap.domain_count):
            tiles = dmap.tiles_of(d)
            assert not seen & set(tiles)
            seen.update(tiles)
        assert seen == set(range(60))

    def test_domain_tiles_form_2x2_block(self, dmap):
        mesh = dmap.mesh
        for d in range(dmap.domain_count):
            coords = [mesh.coord_of(t) for t in dmap.tiles_of(d)]
            xs = {c[0] for c in coords}
            ys = {c[1] for c in coords}
            assert len(xs) == 2 and max(xs) - min(xs) == 1
            assert len(ys) == 2 and max(ys) - min(ys) == 1

    def test_domain_of_matches_tiles_of(self, dmap):
        for d in range(dmap.domain_count):
            for t in dmap.tiles_of(d):
                assert dmap.domain_of(t) == d

    def test_bad_ids_raise(self, dmap):
        with pytest.raises(ValueError):
            dmap.domain_of(60)
        with pytest.raises(ValueError):
            dmap.tiles_of(15)
        with pytest.raises(ValueError):
            dmap.domain_coord(-1)
        with pytest.raises(ValueError):
            dmap.domain_at((5, 0))


class TestGridGeometry:
    def test_domain_distance(self, dmap):
        assert dmap.domain_distance(0, 0) == 0
        assert dmap.domain_distance(0, 4) == 4
        assert dmap.domain_distance(0, 14) == 6

    def test_neighbor_domains(self, dmap):
        assert sorted(dmap.neighbor_domains(0)) == [1, 5]
        # Interior domain in 5x3 grid: id 6 at (1, 1).
        assert sorted(dmap.neighbor_domains(6)) == [1, 5, 7, 11]

    @given(w=st.sampled_from([2, 4, 6, 8, 10]), h=st.sampled_from([2, 4, 6]), data=st.data())
    def test_neighbor_domains_are_distance_one(self, w, h, data):
        dmap = DomainMap(MeshGeometry(w, h))
        d = data.draw(st.integers(0, dmap.domain_count - 1))
        for n in dmap.neighbor_domains(d):
            assert dmap.domain_distance(d, n) == 1

    @given(w=st.sampled_from([2, 4, 6, 8]), h=st.sampled_from([2, 4, 6, 8]), data=st.data())
    def test_intra_domain_tiles_within_two_hops(self, w, h, data):
        """Any two tiles of a 2x2 domain are at Manhattan distance <= 2."""
        dmap = DomainMap(MeshGeometry(w, h))
        d = data.draw(st.integers(0, dmap.domain_count - 1))
        tiles = dmap.tiles_of(d)
        for a in tiles:
            for b in tiles:
                assert dmap.mesh.manhattan(a, b) <= 2
