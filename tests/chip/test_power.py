"""Tests for the McPAT-style power model."""

import pytest
from hypothesis import given, strategies as st

from repro.chip.power import PowerModel
from repro.chip.technology import technology


@pytest.fixture
def model():
    return PowerModel(technology("7nm"))


class TestCorePower:
    def test_dynamic_power_scales_with_activity(self, model):
        low = model.core_dynamic(0.1, 0.8)
        high = model.core_dynamic(0.9, 0.8)
        assert high == pytest.approx(9 * low)

    def test_dynamic_power_grows_superlinearly_with_vdd(self, model):
        """P = a C V^2 f(V): more than V^2 growth because f also rises."""
        p_low = model.core_dynamic(0.5, 0.4)
        p_high = model.core_dynamic(0.5, 0.8)
        assert p_high / p_low > (0.8 / 0.4) ** 2

    def test_zero_activity_means_zero_dynamic(self, model):
        assert model.core_dynamic(0.0, 0.6) == 0.0

    def test_activity_out_of_range_rejected(self, model):
        with pytest.raises(ValueError):
            model.core_dynamic(-0.1, 0.6)
        with pytest.raises(ValueError):
            model.core_dynamic(1.1, 0.6)

    def test_leakage_increases_with_vdd(self, model):
        leaks = [model.core_leakage(v) for v in (0.4, 0.6, 0.8)]
        assert leaks == sorted(leaks)
        assert leaks[0] > 0

    def test_leakage_at_nominal_matches_tech(self, model):
        tech = model.tech
        assert model.core_leakage(tech.vdd_nominal) == pytest.approx(
            tech.leakage_power_core_w
        )


class TestRouterPower:
    def test_idle_router_draws_some_power(self, model):
        assert model.router_dynamic(0.0, 0.6) > 0.0

    def test_router_power_linear_in_flit_rate(self, model):
        p0 = model.router_dynamic(0.0, 0.6)
        p1 = model.router_dynamic(1.0, 0.6)
        p2 = model.router_dynamic(2.0, 0.6)
        assert p2 - p1 == pytest.approx(p1 - p0)

    def test_negative_flit_rate_rejected(self, model):
        with pytest.raises(ValueError):
            model.router_dynamic(-1.0, 0.6)

    def test_router_leakage_smaller_than_core(self, model):
        assert model.router_leakage(0.6) < model.core_leakage(0.6)


class TestTilePower:
    def test_breakdown_sums(self, model):
        tp = model.tile_power(0.5, 1.5, 0.6)
        assert tp.total == pytest.approx(tp.core + tp.router)
        assert tp.core == pytest.approx(tp.core_dynamic + tp.core_leakage)
        assert tp.router == pytest.approx(tp.router_dynamic + tp.router_leakage)

    def test_idle_tile_power_below_active(self, model):
        idle = model.idle_tile_power(0.6)
        active = model.tile_power(0.6, 1.0, 0.6)
        assert idle.total < active.total

    def test_dark_silicon_pressure_at_high_vdd(self, model):
        """Key premise: 60 active tiles at 0.8 V break a 65 W budget,
        while at 0.4 V (NTC) the whole chip fits comfortably."""
        per_tile_high = model.tile_power(0.5, 1.0, 0.8).total
        per_tile_ntc = model.tile_power(0.5, 1.0, 0.4).total
        assert 60 * per_tile_high > 65.0
        assert 60 * per_tile_ntc < 65.0

    def test_noc_power_share_for_communication_workloads(self, model):
        """The paper cites an 18-20 % NoC share of chip power for
        communication-intensive workloads (Section 5.2); at a realistic
        per-router flit rate the model lands in that neighbourhood."""
        tp = model.tile_power(core_activity=0.35, flits_per_cycle=0.35, vdd=0.6)
        share = tp.router / tp.total
        assert 0.10 < share < 0.30

    @given(
        activity=st.floats(0.0, 1.0),
        flits=st.floats(0.0, 4.0),
        vdd=st.sampled_from([0.4, 0.5, 0.6, 0.7, 0.8]),
    )
    def test_power_always_positive_and_finite(self, activity, flits, vdd):
        tp = PowerModel(technology("7nm")).tile_power(activity, flits, vdd)
        assert tp.total > 0
        assert tp.total < 20.0  # sane bound for one mobile tile
