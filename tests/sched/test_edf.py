"""Tests for the EDF list scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.graph import ApplicationGraph, TaskNode
from repro.pdn.waveforms import ActivityBin
from repro.sched.edf import edf_schedule


def make_graph(edges, n, work=None):
    g = ApplicationGraph()
    for i in range(n):
        g.add_task(TaskNode(i, ActivityBin.HIGH, (work or {}).get(i, 1.0), 0.5))
    for u, v in edges:
        g.add_edge(u, v, 10.0)
    return g


class TestBasics:
    def test_empty_graph(self):
        sched = edf_schedule(ApplicationGraph(), 4, lambda t: 1.0)
        assert sched.makespan == 0.0
        assert sched.deadline_met

    def test_single_task(self):
        g = make_graph([], 1)
        sched = edf_schedule(g, 1, lambda t: 2.5)
        assert sched.makespan == pytest.approx(2.5)
        assert sched.tasks[0].start == 0.0

    def test_core_count_validated(self):
        with pytest.raises(ValueError):
            edf_schedule(make_graph([], 1), 0, lambda t: 1.0)

    def test_chain_is_sequential(self):
        g = make_graph([(0, 1), (1, 2)], 3)
        sched = edf_schedule(g, 3, lambda t: 1.0)
        assert sched.makespan == pytest.approx(3.0)
        by = sched.by_task()
        assert by[1].start >= by[0].finish
        assert by[2].start >= by[1].finish

    def test_independent_tasks_run_in_parallel(self):
        g = make_graph([], 4)
        sched = edf_schedule(g, 4, lambda t: 1.0)
        assert sched.makespan == pytest.approx(1.0)

    def test_fewer_cores_serialise(self):
        g = make_graph([], 4)
        sched = edf_schedule(g, 2, lambda t: 1.0)
        assert sched.makespan == pytest.approx(2.0)

    def test_comm_delay_on_cross_core_edges(self):
        g = make_graph([(0, 1)], 2)
        no_comm = edf_schedule(g, 2, lambda t: 1.0)
        with_comm = edf_schedule(g, 2, lambda t: 1.0, comm_delay=lambda s, d: 0.5)
        assert with_comm.makespan == pytest.approx(no_comm.makespan + 0.5)


class TestEdfOrder:
    def test_earliest_deadline_runs_first_on_contention(self):
        """Two ready tasks, one core: the longer-downstream task (earlier
        derived deadline) must go first."""
        # 0 and 1 are sources; 1 feeds a long chain so it gets the earlier
        # deadline.
        g = make_graph([(1, 2), (2, 3)], 4, work={0: 1.0, 1: 1.0, 2: 5.0, 3: 5.0})
        sched = edf_schedule(g, 1, lambda t: g.task(t).work_cycles)
        by = sched.by_task()
        assert by[1].start < by[0].start

    def test_deadline_met_flag(self):
        g = make_graph([(0, 1)], 2)
        ok = edf_schedule(g, 2, lambda t: 1.0, app_deadline=10.0)
        assert ok.deadline_met
        tight = edf_schedule(g, 2, lambda t: 1.0, app_deadline=1.5)
        assert not tight.deadline_met

    def test_deterministic(self):
        g = make_graph([(0, 2), (1, 2), (0, 3)], 4)
        a = edf_schedule(g, 2, lambda t: 1.0)
        b = edf_schedule(g, 2, lambda t: 1.0)
        assert a == b


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        widths=st.lists(st.integers(1, 4), min_size=2, max_size=4),
        cores=st.integers(1, 8),
        seed=st.integers(0, 50),
    )
    def test_schedule_respects_precedence_and_capacity(self, widths, cores, seed):
        rng = np.random.default_rng(seed)
        g = ApplicationGraph.layered(
            layer_sizes=widths,
            rng=rng,
            work_cycles_range=(1.0, 5.0),
            high_fraction=0.5,
            volume_range=(1.0, 10.0),
        )
        sched = edf_schedule(
            g,
            cores,
            task_time=lambda t: g.task(t).work_cycles,
            comm_delay=lambda s, d: 0.3,
        )
        by = sched.by_task()
        assert len(by) == g.task_count
        # Precedence: successors start after predecessors finish.
        for u, v, _ in g.edges():
            assert by[v].start >= by[u].finish - 1e-9
        # Capacity: no core runs two tasks at once.
        for core in range(cores):
            intervals = sorted(
                (t.start, t.finish) for t in sched.tasks if t.core == core
            )
            for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
                assert s2 >= f1 - 1e-9
        # Makespan is the max finish.
        assert sched.makespan == pytest.approx(max(t.finish for t in sched.tasks))
