"""Tests for per-task deadline assignment."""

import pytest

from repro.apps.graph import ApplicationGraph, TaskNode
from repro.pdn.waveforms import ActivityBin
from repro.sched.deadlines import assign_task_deadlines


def chain(n, work=1.0):
    g = ApplicationGraph()
    for i in range(n):
        g.add_task(TaskNode(i, ActivityBin.HIGH, work, 0.5))
    for i in range(n - 1):
        g.add_edge(i, i + 1, 1.0)
    return g


class TestChain:
    def test_uniform_chain_subdivides_deadline(self):
        g = chain(4)
        deadlines = assign_task_deadlines(g, 8.0, lambda t: 1.0)
        assert deadlines[0] == pytest.approx(2.0)
        assert deadlines[1] == pytest.approx(4.0)
        assert deadlines[3] == pytest.approx(8.0)

    def test_weighted_chain(self):
        g = chain(2)
        deadlines = assign_task_deadlines(g, 10.0, lambda t: 3.0 if t == 0 else 1.0)
        assert deadlines[0] == pytest.approx(7.5)
        assert deadlines[1] == pytest.approx(10.0)

    def test_sink_deadline_is_app_deadline(self):
        g = chain(5)
        deadlines = assign_task_deadlines(g, 3.0, lambda t: 1.0)
        assert deadlines[4] == pytest.approx(3.0)

    def test_monotone_along_edges(self):
        g = chain(6)
        deadlines = assign_task_deadlines(g, 1.0, lambda t: float(t + 1))
        for i in range(5):
            assert deadlines[i] < deadlines[i + 1]


class TestDag:
    def test_parallel_branches_share_deadline_by_length(self):
        # 0 -> 1 -> 3 and 0 -> 2 -> 3; task 1 is longer than task 2.
        g = ApplicationGraph()
        for i in range(4):
            g.add_task(TaskNode(i, ActivityBin.HIGH, 1.0, 0.5))
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        g.add_edge(1, 3, 1.0)
        g.add_edge(2, 3, 1.0)
        times = {0: 1.0, 1: 5.0, 2: 1.0, 3: 1.0}
        deadlines = assign_task_deadlines(g, 7.0, lambda t: times[t])
        # Critical path 0-1-3 has length 7, so its tasks split 7 exactly.
        assert deadlines[0] == pytest.approx(1.0)
        assert deadlines[1] == pytest.approx(6.0)
        assert deadlines[3] == pytest.approx(7.0)
        # Off-critical task 2 has slack: up=2, down=1 -> 2/3 of deadline.
        assert deadlines[2] == pytest.approx(7.0 * 2.0 / 3.0)

    def test_single_task(self):
        g = chain(1)
        deadlines = assign_task_deadlines(g, 5.0, lambda t: 2.0)
        assert deadlines[0] == pytest.approx(5.0)

    def test_zero_time_tasks(self):
        g = chain(2)
        deadlines = assign_task_deadlines(g, 5.0, lambda t: 0.0)
        assert deadlines[0] == pytest.approx(5.0)
        assert deadlines[1] == pytest.approx(5.0)

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            assign_task_deadlines(chain(2), 0.0, lambda t: 1.0)
