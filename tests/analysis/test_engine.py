"""Engine, pragma, baseline, and reporter behaviour."""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import LintEngine, Rule
from repro.analysis.findings import Finding
from repro.analysis.pragmas import parse_pragmas
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import default_rules


def write_pkg(root: Path, files) -> Path:
    """Lay out a fake package under ``root/pkg`` and return its dir."""
    pkg = root / "pkg"
    for rel, source in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return pkg


class TestPragmas:
    def test_same_line(self):
        idx = parse_pragmas("x = a == 0.0  # parmlint: ok[float-eq]\n")
        assert idx.suppresses("float-eq", 1)
        assert not idx.suppresses("wall-clock", 1)

    def test_comment_line_covers_next(self):
        idx = parse_pragmas(
            "# parmlint: ok[float-eq, wall-clock]\nx = a == 0.0\n"
        )
        assert idx.suppresses("float-eq", 2)
        assert idx.suppresses("wall-clock", 2)
        assert not idx.suppresses("float-eq", 3)

    def test_file_scope(self):
        idx = parse_pragmas("# parmlint: ok-file[wall-clock]\n\nx = 1\n")
        assert idx.suppresses("wall-clock", 999)
        assert not idx.suppresses("float-eq", 999)

    def test_unlisted_rule_not_suppressed(self):
        idx = parse_pragmas("x = 1  # parmlint: ok[other-rule]\n")
        assert not idx.suppresses("float-eq", 1)


class TestEngine:
    def test_findings_sorted_and_counted(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {
                "__init__.py": "",
                "b.py": "import time\nt = time.time()\n",
                "a.py": "x = rate == 0.0\n",
            },
        )
        result = LintEngine(default_rules()).run(pkg)
        assert result.files_checked == 3
        assert [f.path for f in result.findings] == ["pkg/a.py", "pkg/b.py"]

    def test_suppressed_counted_not_reported(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {"a.py": "x = rate == 0.0  # parmlint: ok[float-eq]\n"},
        )
        result = LintEngine(default_rules()).run(pkg)
        assert result.findings == []
        assert result.suppressed == 1

    def test_syntax_error_becomes_finding(self, tmp_path):
        pkg = write_pkg(tmp_path, {"bad.py": "def broken(:\n"})
        result = LintEngine(default_rules()).run(pkg)
        assert len(result.findings) == 1
        assert result.findings[0].rule == "parse-error"

    def test_duplicate_rule_ids_rejected(self):
        class Dup(Rule):
            id = "float-eq"

        with pytest.raises(ValueError, match="duplicate"):
            LintEngine([*default_rules(), Dup()])


class TestBaseline:
    def test_roundtrip_and_filtering(self, tmp_path):
        path = tmp_path / "baseline.json"
        finding = Finding(
            rule="float-eq", path="pkg/a.py", line=3, message="m"
        )
        write_baseline(path, [finding])
        prints = load_baseline(path)
        assert finding.fingerprint in prints
        other = Finding(rule="float-eq", path="pkg/a.py", line=4, message="m")
        assert other.fingerprint not in prints

    def test_sorted_stable_output(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [
            Finding(rule="r", path="z.py", line=9, message="m"),
            Finding(rule="r", path="a.py", line=1, message="m"),
        ]
        write_baseline(path, findings)
        first = path.read_text()
        write_baseline(path, list(reversed(findings)))
        assert path.read_text() == first
        paths = [e["path"] for e in json.loads(first)["findings"]]
        assert paths == sorted(paths)

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == frozenset()

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)


class TestReporters:
    def _result(self, tmp_path):
        pkg = write_pkg(tmp_path, {"a.py": "x = rate == 0.0\n"})
        return LintEngine(default_rules()).run(pkg)

    def test_text_summary(self, tmp_path):
        result = self._result(tmp_path)
        text = render_text(result, result.findings, 0, 0)
        assert "pkg/a.py:1: [float-eq]" in text
        assert "1 new finding(s)" in text

    def test_json_payload(self, tmp_path):
        result = self._result(tmp_path)
        payload = json.loads(render_json(result, result.findings, 2, 1))
        assert payload["new_count"] == 1
        assert payload["baselined"] == 2
        assert payload["stale_baseline"] == 1
        assert payload["findings"][0]["rule"] == "float-eq"
        assert payload["findings"][0]["fingerprint"] == "pkg/a.py:1:float-eq"
