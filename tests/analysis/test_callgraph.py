"""Call-graph unit tests: indexing, resolution, shipments, cache."""

import ast
import json
import textwrap
from pathlib import Path

from repro.analysis.callgraph import (
    CallGraph,
    build_graph,
    graph_to_bytes,
    index_functions,
    project_graph,
    source_key,
)
from repro.analysis.engine import ModuleInfo
from repro.analysis.pragmas import parse_pragmas


def make_module(module, source):
    source = textwrap.dedent(source)
    rel = module.replace(".", "/") + ".py"
    return ModuleInfo(
        path=Path("/nonexistent") / rel,
        rel=rel,
        module=module,
        source=source,
        tree=ast.parse(source),
        pragmas=parse_pragmas(source),
    )


def make_modules(sources):
    return [make_module(m, s) for m, s in sorted(sources.items())]


CHAIN = {
    "pkg.work": """
        from pkg import mid
        from pkg.pool import map_tasks

        def task(item):
            return mid.step(item)

        def sweep(items):
            return map_tasks(task, items, 2)
        """,
    "pkg.mid": """
        from pkg import store

        def step(item):
            return store.put("k", item)
        """,
    "pkg.store": """
        def put(key, value):
            return (key, value)
        """,
    "pkg.pool": """
        def map_tasks(fn, tasks, workers):
            return [fn(t) for t in tasks]
        """,
}


class TestResolution:
    def test_module_alias_and_from_import_edges(self):
        graph = build_graph(make_modules(CHAIN))
        task = graph.node("pkg.work.task")
        assert task is not None
        assert "pkg.mid.step" in task.calls
        assert "pkg.store.put" in graph.node("pkg.mid.step").calls
        sweep = graph.node("pkg.work.sweep")
        assert "pkg.pool.map_tasks" in sweep.calls

    def test_bare_name_and_alias_assignment(self):
        graph = build_graph(
            make_modules(
                {
                    "pkg.a": """
                    def f():
                        return 1

                    g = f

                    def caller():
                        return g() + f()
                    """
                }
            )
        )
        caller = graph.node("pkg.a.caller")
        assert caller.calls == ("pkg.a.f",)

    def test_self_method_and_typed_local(self):
        graph = build_graph(
            make_modules(
                {
                    "pkg.a": """
                    class Engine:
                        def __init__(self):
                            self.n = 0

                        def run(self):
                            return self.helper()

                        def helper(self):
                            return self.n

                    def drive():
                        e = Engine()
                        return e.run()
                    """
                }
            )
        )
        assert "pkg.a.Engine.helper" in graph.node("pkg.a.Engine.run").calls
        drive = graph.node("pkg.a.drive")
        assert "pkg.a.Engine.__init__" in drive.calls
        assert "pkg.a.Engine.run" in drive.calls

    def test_nested_def_and_lambda_get_parent_edges(self):
        graph = build_graph(
            make_modules(
                {
                    "pkg.a": """
                    def outer():
                        def inner():
                            return 1
                        fn = lambda x: x
                        return inner, fn
                    """
                }
            )
        )
        outer = graph.node("pkg.a.outer")
        assert "pkg.a.outer.<locals>.inner" in outer.calls
        assert any("<lambda@" in c for c in outer.calls)
        assert graph.node("pkg.a.outer.<locals>.inner").kind == "nested"

    def test_class_resolves_to_init(self):
        graph = build_graph(
            make_modules(
                {
                    "pkg.a": """
                    class Engine:
                        def __init__(self):
                            self.n = 0
                    """
                }
            )
        )
        assert graph.resolve_callable("pkg.a.Engine") == (
            "pkg.a.Engine.__init__"
        )
        assert graph.resolve_callable("pkg.a.Missing") is None

    def test_external_calls_land_in_unresolved(self):
        graph = build_graph(
            make_modules(
                {
                    "pkg.a": """
                    import numpy as np

                    def f(x):
                        return np.sqrt(x)
                    """
                }
            )
        )
        node = graph.node("pkg.a.f")
        assert node.calls == ()
        assert "numpy.sqrt" in node.unresolved


class TestShipments:
    def test_resolved_shipment(self):
        graph = build_graph(make_modules(CHAIN))
        ships = [s for s in graph.shipments if s.sink == "map_tasks"]
        assert len(ships) == 1
        assert ships[0].target == "pkg.work.task"
        assert not ships[0].unpicklable

    def test_lambda_shipment_is_unpicklable(self):
        graph = build_graph(
            make_modules(
                {
                    "pkg.a": """
                    from pkg.pool import map_tasks

                    def sweep(items):
                        return map_tasks(lambda x: x, items, 2)
                    """,
                    "pkg.pool": CHAIN["pkg.pool"],
                }
            )
        )
        (ship,) = graph.shipments
        assert ship.unpicklable
        assert ship.target is None or "<lambda" in ship.target

    def test_opaque_argument_ships_unresolved(self):
        graph = build_graph(
            make_modules(
                {
                    "pkg.a": """
                    from pkg.pool import map_tasks

                    def sweep(fn, items):
                        return map_tasks(fn, items, 2)
                    """,
                    "pkg.pool": CHAIN["pkg.pool"],
                }
            )
        )
        (ship,) = graph.shipments
        assert ship.target is None
        assert ship.arg == "fn"


class TestReachability:
    def test_three_module_path(self):
        graph = build_graph(make_modules(CHAIN))
        paths = graph.reachable(["pkg.work.task"])
        assert paths["pkg.store.put"] == (
            "pkg.work.task",
            "pkg.mid.step",
            "pkg.store.put",
        )

    def test_unknown_root_is_ignored(self):
        graph = build_graph(make_modules(CHAIN))
        assert graph.reachable(["pkg.ghost.fn"]) == {}


class TestCache:
    def test_source_key_tracks_content(self):
        mods = make_modules(CHAIN)
        assert source_key(mods) == source_key(make_modules(CHAIN))
        edited = dict(CHAIN)
        edited["pkg.store"] += "X = 1\n"
        assert source_key(mods) != source_key(make_modules(edited))

    def test_warm_hit_is_byte_identical(self, tmp_path):
        mods = make_modules(CHAIN)
        key = source_key(mods)
        cold = project_graph(mods, cache_dir=tmp_path)
        artifact = tmp_path / f"callgraph-{key[:16]}.json"
        assert artifact.exists()
        warm = project_graph(mods, cache_dir=tmp_path)
        assert graph_to_bytes(warm, key) == graph_to_bytes(cold, key)
        assert artifact.read_bytes() == graph_to_bytes(cold, key)

    def test_corrupt_cache_cold_rebuild_byte_identical(self, tmp_path):
        mods = make_modules(CHAIN)
        key = source_key(mods)
        project_graph(mods, cache_dir=tmp_path)
        artifact = tmp_path / f"callgraph-{key[:16]}.json"
        pristine = artifact.read_bytes()

        for damage in (b"{ not json", b"", pristine[: len(pristine) // 2]):
            artifact.write_bytes(damage)
            graph = project_graph(mods, cache_dir=tmp_path)
            assert graph_to_bytes(graph, key) == pristine
            assert artifact.read_bytes() == pristine

    def test_stale_schema_or_key_is_a_miss(self, tmp_path):
        mods = make_modules(CHAIN)
        key = source_key(mods)
        project_graph(mods, cache_dir=tmp_path)
        artifact = tmp_path / f"callgraph-{key[:16]}.json"
        payload = json.loads(artifact.read_text())
        payload["key"] = "0" * 64
        artifact.write_text(json.dumps(payload))
        graph = project_graph(mods, cache_dir=tmp_path)
        assert graph_to_bytes(graph, key) == artifact.read_bytes()

    def test_no_cache_dir_builds_in_memory(self):
        mods = make_modules(CHAIN)
        graph = project_graph(mods, cache_dir=None)
        assert graph.node("pkg.work.task") is not None


class TestSerialization:
    def test_json_round_trip(self):
        mods = make_modules(CHAIN)
        graph = build_graph(mods)
        key = source_key(mods)
        clone = CallGraph.from_json(graph.to_json(key))
        assert graph_to_bytes(clone, key) == graph_to_bytes(graph, key)


class TestIndexFunctions:
    def test_every_callable_indexed_with_live_nodes(self):
        mods = make_modules(CHAIN)
        functions = index_functions(mods)
        assert "pkg.work.task" in functions
        info, node = functions["pkg.work.task"]
        assert info.module == "pkg.work"
        assert isinstance(node, ast.FunctionDef)
        assert node.name == "task"
