"""Per-rule fixture tests: each rule fires on a violation snippet and
stays quiet when the snippet is fixed or pragma-suppressed."""

import ast
import textwrap
from pathlib import Path

import pytest

from repro.analysis.engine import ModuleInfo
from repro.analysis.pragmas import parse_pragmas
from repro.analysis.rules import (
    BroadExceptRule,
    FloatEqRule,
    ImportCycleRule,
    MutableDefaultRule,
    ProcessPoolRule,
    SeededRngRule,
    SetIterationRule,
    SilentExceptRule,
    UnitSuffixRule,
    WallClockRule,
)


def make_module(source, module="repro.pdn.snippet", rel=None):
    source = textwrap.dedent(source)
    rel = rel or module.replace(".", "/") + ".py"
    return ModuleInfo(
        path=Path("/nonexistent") / rel,
        rel=rel,
        module=module,
        source=source,
        tree=ast.parse(source),
        pragmas=parse_pragmas(source),
    )


def run_rule(rule, source, **kwargs):
    """Rule findings after pragma suppression, like the engine applies."""
    mod = make_module(source, **kwargs)
    return [
        f
        for f in rule.check_module(mod)
        if not mod.pragmas.suppresses(f.rule, f.line)
    ]


class TestSeededRng:
    def test_stdlib_global_call_fires(self):
        findings = run_rule(
            SeededRngRule(),
            """
            import random
            x = random.random()
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "seeded-rng"
        assert findings[0].line == 3

    def test_numpy_global_call_fires(self):
        findings = run_rule(
            SeededRngRule(),
            """
            import numpy as np
            x = np.random.normal(0.0, 1.0)
            """,
        )
        assert len(findings) == 1

    def test_from_import_fires(self):
        findings = run_rule(SeededRngRule(), "from random import choice\n")
        assert len(findings) == 1

    def test_default_rng_and_random_instance_ok(self):
        findings = run_rule(
            SeededRngRule(),
            """
            import random
            import numpy as np
            rng = np.random.default_rng(7)
            r = random.Random(7)
            gen = np.random.Generator(np.random.PCG64(7))
            """,
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = run_rule(
            SeededRngRule(),
            """
            import random
            x = random.random()  # parmlint: ok[seeded-rng]
            """,
        )
        assert findings == []


class TestWallClock:
    def test_time_time_fires(self):
        findings = run_rule(
            WallClockRule(),
            """
            import time
            t = time.time()
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "wall-clock"

    def test_datetime_now_fires(self):
        findings = run_rule(
            WallClockRule(),
            """
            from datetime import datetime
            stamp = datetime.now()
            """,
        )
        assert len(findings) == 1

    def test_from_time_import_fires(self):
        findings = run_rule(
            WallClockRule(), "from time import perf_counter\n"
        )
        assert len(findings) == 1

    def test_file_pragma_suppresses(self):
        findings = run_rule(
            WallClockRule(),
            """
            # parmlint: ok-file[wall-clock]
            import time
            a = time.perf_counter()
            b = time.monotonic()
            """,
        )
        assert findings == []


class TestFloatEq:
    def test_float_literal_comparison_fires(self):
        findings = run_rule(FloatEqRule(), "flag = rate == 0.0\n")
        assert len(findings) == 1
        assert findings[0].rule == "float-eq"

    def test_unit_suffix_operands_fire(self):
        findings = run_rule(
            FloatEqRule(), "changed = exec_time != app.exec_time_s\n"
        )
        assert len(findings) == 1

    def test_int_comparison_ok(self):
        findings = run_rule(FloatEqRule(), "done = count == 0\n")
        assert findings == []

    def test_ordered_comparison_ok(self):
        findings = run_rule(FloatEqRule(), "idle = power_w <= 0.0\n")
        assert findings == []

    def test_comment_line_pragma_suppresses_next_line(self):
        findings = run_rule(
            FloatEqRule(),
            """
            # parmlint: ok[float-eq]
            fresh = app.exec_time_s == 0.0
            """,
        )
        assert findings == []


class TestSilentExcept:
    def test_bare_except_fires(self):
        findings = run_rule(
            SilentExceptRule(),
            """
            try:
                step()
            except:
                recover()
            """,
        )
        assert len(findings) == 1
        assert "bare" in findings[0].message

    def test_pass_only_handler_fires(self):
        findings = run_rule(
            SilentExceptRule(),
            """
            try:
                step()
            except ValueError:
                pass
            """,
        )
        assert len(findings) == 1

    def test_handled_exception_ok(self):
        findings = run_rule(
            SilentExceptRule(),
            """
            try:
                step()
            except ValueError as exc:
                log(exc)
            """,
        )
        assert findings == []


class TestBroadExcept:
    def test_swallowed_exception_fires(self):
        findings = run_rule(
            BroadExceptRule(),
            """
            try:
                step()
            except Exception as exc:
                log(exc)
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "broad-except"

    def test_base_exception_fires(self):
        findings = run_rule(
            BroadExceptRule(),
            """
            try:
                step()
            except BaseException as exc:
                box["error"] = exc
            """,
        )
        assert len(findings) == 1

    def test_tuple_with_exception_fires(self):
        findings = run_rule(
            BroadExceptRule(),
            """
            try:
                step()
            except (ValueError, Exception) as exc:
                log(exc)
            """,
        )
        assert len(findings) == 1

    def test_bare_reraise_still_fires(self):
        # A bare `raise` re-raises the *unclassified* original; the rule
        # requires conversion into the taxonomy.
        findings = run_rule(
            BroadExceptRule(),
            """
            try:
                step()
            except Exception:
                cleanup()
                raise
            """,
        )
        assert len(findings) == 1

    def test_taxonomy_reraise_ok(self):
        findings = run_rule(
            BroadExceptRule(),
            """
            from repro.harness.errors import ReproError

            try:
                step()
            except Exception as exc:
                raise ReproError("unclassified", error=str(exc)) from exc
            """,
        )
        assert findings == []

    def test_nested_taxonomy_reraise_ok(self):
        findings = run_rule(
            BroadExceptRule(),
            """
            from repro.harness.errors import ConfigError, SolverError

            try:
                step()
            except Exception as exc:
                if isinstance(exc, KeyError):
                    raise ConfigError("bad key") from exc
                raise SolverError("solver blew up") from exc
            """,
        )
        assert findings == []

    def test_narrow_except_ignored(self):
        findings = run_rule(
            BroadExceptRule(),
            """
            try:
                step()
            except ValueError as exc:
                log(exc)
            """,
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = run_rule(
            BroadExceptRule(),
            """
            try:
                step()
            except Exception as exc:  # parmlint: ok[broad-except]
                box["error"] = exc
            """,
        )
        assert findings == []


class TestMutableDefault:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()"])
    def test_mutable_default_fires(self, default):
        findings = run_rule(
            MutableDefaultRule(), f"def f(xs={default}):\n    return xs\n"
        )
        assert len(findings) == 1
        assert findings[0].rule == "mutable-default"

    def test_none_default_ok(self):
        findings = run_rule(
            MutableDefaultRule(),
            """
            def f(xs=None, scale=1.0, name="x"):
                return xs or []
            """,
        )
        assert findings == []

    def test_kwonly_default_fires(self):
        findings = run_rule(
            MutableDefaultRule(), "def f(*, xs=[]):\n    return xs\n"
        )
        assert len(findings) == 1


class TestUnitSuffix:
    SNIPPET = """
    from dataclasses import dataclass

    @dataclass
    class Sample:
        exec_time{suffix}: float
    """

    def test_missing_suffix_fires(self):
        findings = run_rule(
            UnitSuffixRule(),
            self.SNIPPET.format(suffix=""),
            module="repro.pdn.snippet",
        )
        assert len(findings) == 1
        assert findings[0].rule == "unit-suffix"

    def test_unit_suffix_ok(self):
        findings = run_rule(
            UnitSuffixRule(),
            self.SNIPPET.format(suffix="_s"),
            module="repro.pdn.snippet",
        )
        assert findings == []

    def test_registered_exemption_ok(self):
        source = """
        from dataclasses import dataclass

        @dataclass
        class Node:
            vdd: float
            alpha: float
        """
        findings = run_rule(
            UnitSuffixRule(), source, module="repro.chip.snippet"
        )
        assert findings == []

    def test_out_of_scope_package_ignored(self):
        findings = run_rule(
            UnitSuffixRule(),
            self.SNIPPET.format(suffix=""),
            module="repro.exp.snippet",
        )
        assert findings == []

    def test_int_fields_treated_as_counts(self):
        source = """
        from dataclasses import dataclass

        @dataclass
        class Stats:
            packets: int
        """
        findings = run_rule(
            UnitSuffixRule(), source, module="repro.noc.snippet"
        )
        assert findings == []


class TestImportCycle:
    def test_cycle_detected(self):
        mod_a = make_module(
            "from repro.pdn import b\n", module="repro.pdn.a"
        )
        mod_b = make_module(
            "import repro.pdn.a\n", module="repro.pdn.b"
        )
        findings = list(ImportCycleRule().check_project([mod_a, mod_b]))
        assert len(findings) == 1
        assert "repro.pdn.a" in findings[0].message
        assert "repro.pdn.b" in findings[0].message

    def test_acyclic_ok(self):
        mod_a = make_module(
            "from repro.pdn import b\n", module="repro.pdn.a"
        )
        mod_b = make_module("import math\n", module="repro.pdn.b")
        findings = list(ImportCycleRule().check_project([mod_a, mod_b]))
        assert findings == []

    def test_relative_import_cycle_detected(self):
        mod_a = make_module(
            "from . import b\n", module="repro.pdn.a"
        )
        mod_b = make_module(
            "from .a import thing\n", module="repro.pdn.b"
        )
        findings = list(ImportCycleRule().check_project([mod_a, mod_b]))
        assert len(findings) == 1


class TestSetIteration:
    def test_set_literal_loop_fires(self):
        findings = run_rule(
            SetIterationRule(),
            """
            for d in {f(t) for t in tiles}:
                free(d)
            """,
        )
        assert len(findings) == 1
        assert findings[0].rule == "nondet-set-iter"

    def test_annotated_param_loop_fires(self):
        findings = run_rule(
            SetIterationRule(),
            """
            from typing import Set

            def drain(dead: Set[int]) -> None:
                for d in dead:
                    free(d)
            """,
        )
        assert len(findings) == 1

    def test_sorted_wrap_ok(self):
        findings = run_rule(
            SetIterationRule(),
            """
            for d in sorted({f(t) for t in tiles}):
                free(d)
            """,
        )
        assert findings == []

    def test_list_materialisation_fires(self):
        findings = run_rule(
            SetIterationRule(), "order = list(set(tiles))\n"
        )
        assert len(findings) == 1

    def test_membership_test_ok(self):
        findings = run_rule(
            SetIterationRule(),
            """
            dead = {1, 2}
            if tile in dead:
                skip()
            """,
        )
        assert findings == []


class TestProcessPool:
    def test_from_import_executor_fires(self):
        findings = run_rule(
            ProcessPoolRule(),
            "from concurrent.futures import ProcessPoolExecutor\n",
        )
        assert len(findings) == 1
        assert findings[0].rule == "process-pool"
        assert "repro.perf.parallel" in findings[0].message

    def test_futures_attribute_call_fires(self):
        findings = run_rule(
            ProcessPoolRule(),
            """
            import concurrent.futures
            pool = concurrent.futures.ProcessPoolExecutor(max_workers=4)
            """,
        )
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_multiprocessing_pool_fires(self):
        findings = run_rule(
            ProcessPoolRule(),
            """
            import multiprocessing
            with multiprocessing.Pool(4) as pool:
                pool.map(f, xs)
            """,
        )
        assert len(findings) == 1

    def test_get_context_fires(self):
        findings = run_rule(
            ProcessPoolRule(),
            """
            import multiprocessing
            ctx = multiprocessing.get_context("fork")
            """,
        )
        assert len(findings) == 1

    def test_os_fork_fires(self):
        findings = run_rule(
            ProcessPoolRule(),
            """
            import os
            pid = os.fork()
            """,
        )
        assert len(findings) == 1

    def test_thread_pool_ok(self):
        findings = run_rule(
            ProcessPoolRule(),
            """
            from concurrent.futures import ThreadPoolExecutor
            import os
            cwd = os.getcwd()
            """,
        )
        assert findings == []

    def test_repro_perf_exempt(self):
        findings = run_rule(
            ProcessPoolRule(),
            """
            from concurrent.futures import ProcessPoolExecutor
            import multiprocessing
            ctx = multiprocessing.get_context("spawn")
            """,
            module="repro.perf.parallel",
        )
        assert findings == []

    def test_pragma_suppresses(self):
        findings = run_rule(
            ProcessPoolRule(),
            """
            from concurrent.futures import (  # parmlint: ok[process-pool]
                ProcessPoolExecutor,
            )
            """,
        )
        assert findings == []
