"""End-to-end CLI tests: exit codes, formats, baseline workflow, and the
acceptance gate — ``python -m repro lint`` exits 0 on this repo."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATION = (
    "import random\n"
    "x = random.random()\n"
    "flag = rate == 0.0\n"
)


@pytest.fixture
def fixture_pkg(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "bad.py").write_text(VIOLATION)
    return pkg


class TestExitCodes:
    def test_violating_fixture_exits_nonzero(self, fixture_pkg, capsys):
        rc = lint_main(["--root", str(fixture_pkg), "--no-baseline"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "seeded-rng" in out
        assert "float-eq" in out

    def test_clean_fixture_exits_zero(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "good.py").write_text("power_w = 0.0\n")
        assert lint_main(["--root", str(pkg), "--no-baseline"]) == 0

    def test_repo_lints_clean(self, capsys):
        """Acceptance: the shipped tree has no findings at all."""
        rc = lint_main(
            ["--root", str(REPO_ROOT / "src" / "repro"), "--no-baseline"]
        )
        assert rc == 0, capsys.readouterr().out


class TestJsonFormat:
    def test_payload_shape(self, fixture_pkg, capsys):
        rc = lint_main(
            ["--root", str(fixture_pkg), "--no-baseline", "--format", "json"]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["new_count"] == len(payload["findings"]) == 2
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"seeded-rng", "float-eq"}


class TestBaselineWorkflow:
    def test_write_then_pass_then_ratchet(self, fixture_pkg, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = ["--root", str(fixture_pkg), "--baseline", str(baseline)]
        # 1. Grandfather the existing findings.
        assert lint_main([*args, "--write-baseline"]) == 0
        # 2. Baselined findings no longer fail the gate.
        assert lint_main(args) == 0
        assert "2 baselined" in capsys.readouterr().out
        # 3. A *new* finding still fails it.
        (fixture_pkg / "worse.py").write_text("import time\nt = time.time()\n")
        assert lint_main(args) == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out
        assert "2 baselined" in out

    def test_stale_entries_reported(self, fixture_pkg, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = ["--root", str(fixture_pkg), "--baseline", str(baseline)]
        assert lint_main([*args, "--write-baseline"]) == 0
        (fixture_pkg / "bad.py").write_text("power_w = 0.0\n")
        assert lint_main(args) == 0
        assert "stale baseline" in capsys.readouterr().out


class TestListRules:
    def test_lists_all_eight(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "seeded-rng",
            "wall-clock",
            "float-eq",
            "silent-except",
            "mutable-default",
            "unit-suffix",
            "import-cycle",
            "nondet-set-iter",
        ):
            assert rule in out


class TestModuleEntryPoint:
    def _run(self, *args, cwd=REPO_ROOT):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", "lint", *args],
            cwd=cwd,
            env=env,
            capture_output=True,
            text=True,
        )

    def test_repo_gate_exits_zero(self):
        """Acceptance: `python -m repro lint` exits 0 on the repo, using
        the committed baseline."""
        proc = self._run()
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 new finding(s)" in proc.stdout

    def test_json_gate(self):
        proc = self._run("--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["new_count"] == 0

    def test_violating_root_exits_nonzero(self, fixture_pkg):
        proc = self._run("--root", str(fixture_pkg), "--no-baseline")
        assert proc.returncode == 1
        assert "seeded-rng" in proc.stdout
