"""Shared-readonly violation: a declared table written after build."""

import numpy as np


class Engine:
    __shared_readonly__ = ("_table",)

    def __init__(self, n):
        self._table = np.zeros(n)

    def poke(self, i, v):
        self._table[i] = v
        return self._table
