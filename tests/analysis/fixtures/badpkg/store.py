"""End of the path: mutates module state three hops from the root."""

import os
import time

_DB = {}
_LOG = []


def put(key, value):
    _DB[key] = value
    _LOG.append(key)
    stamp = time.time()
    tag = os.getenv("STORE_TAG")
    return (value, stamp, tag)
