"""Worker entry point: the root of a three-module reachability path."""

from badpkg import mid
from badpkg.pool import map_tasks


def task(item):
    return mid.step(item)


def sweep(items):
    # Ships an unregistered target and a lambda: two shipment findings.
    map_tasks(helper, items, 2)
    map_tasks(lambda x: x + 1, items, 2)
    return items


def helper(item):
    return item
