"""Seeded true-positive fixture package for the interprocedural rules.

Never imported by tests - only parsed and linted.  Each module holds
exactly the violations tests/analysis/test_project_rules.py pins.
"""
