"""Stand-in pool layer: the registry and a map_tasks-shaped sink."""


WORKER_ROOTS = (
    "badpkg.work.task",
    "badpkg.ghost.not_there",
)


def map_tasks(fn, tasks, workers):
    return [fn(t) for t in tasks]
