"""Middle hop of the reachability path: pure pass-through."""

from badpkg import store


def step(item):
    return store.put("k", item)
