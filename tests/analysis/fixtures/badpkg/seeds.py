"""Seed-provenance violations: literal seeds, arithmetic, OS entropy."""

import random

import numpy as np


def literal_seed():
    return np.random.default_rng(42)


def seed_arithmetic(base, index):
    return np.random.default_rng(base * 1000 + index)


def os_entropy():
    return random.Random()
