"""End of the path: pure - results flow back instead of into globals."""


def put(key, value):
    return (key, value)
