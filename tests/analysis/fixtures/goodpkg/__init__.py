"""Fixed counterpart of badpkg: same shape, zero parmlint findings."""
