"""Seeds with provenance: parameters and derive_seed streams."""

import numpy as np

from repro.harness.seeding import derive_seed


def from_parameter(seed):
    return np.random.default_rng(seed)


def from_derivation(root_seed, label):
    return np.random.default_rng(derive_seed(root_seed, label, 0))


def via_helper(root_seed, label):
    return np.random.default_rng(_stream(root_seed, label))


def _stream(root_seed, label):
    return derive_seed(root_seed, label, 1)
