"""Middle hop of the reachability path: pure pass-through."""

from goodpkg import store


def step(item):
    return store.put("k", item)
