"""Worker entry point: every shipped callable is registered."""

from goodpkg import mid
from goodpkg.pool import map_tasks


def task(item):
    return mid.step(item)


def sweep(items):
    return map_tasks(helper, items, 2)


def helper(item):
    return item + 1
