"""Shared-readonly contract honoured: writes only in declared builders."""

import numpy as np


class Engine:
    __shared_readonly__ = ("_table", "_cols")
    __shared_readonly_init__ = ("_build_cols",)

    def __init__(self, n):
        self._table = np.zeros(n)
        self._cols = np.zeros(n)
        self._built = False

    def _build_cols(self, values):
        self._cols[:] = values
        self._built = True

    def read(self, i):
        return float(self._table[i])
