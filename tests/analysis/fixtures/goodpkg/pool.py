"""Stand-in pool layer: the registry and a map_tasks-shaped sink."""


WORKER_ROOTS = (
    "goodpkg.work.task",
    "goodpkg.work.helper",
)


def map_tasks(fn, tasks, workers):
    return [fn(t) for t in tasks]
