"""End-to-end tests for the interprocedural rules over fixture packages.

``fixtures/badpkg`` seeds one true positive per rule (and several for
worker-safety); ``fixtures/goodpkg`` is the same package shape with the
violations fixed and must lint completely clean.  The packages are
parsed by the engine, never imported.
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import LintEngine
from repro.analysis.rules import default_rules

FIXTURES = Path(__file__).parent / "fixtures"


def run_lint(root, cache_dir=None):
    return LintEngine(default_rules()).run(Path(root), cache_dir=cache_dir)


def by_rule(result, rule):
    return [f for f in result.findings if f.rule == rule]


@pytest.fixture(scope="module")
def bad_result():
    return run_lint(FIXTURES / "badpkg")


class TestBadPackage:
    def test_mutation_three_hops_from_root_is_flagged(self, bad_result):
        store = [
            f
            for f in by_rule(bad_result, "worker-safety")
            if f.path == "badpkg/store.py"
        ]
        lines = {f.line for f in store}
        # _DB[key] = value and _LOG.append(key)
        assert {11, 12} <= lines
        db = next(f for f in store if f.line == 11)
        assert "badpkg.work.task" in db.message
        assert "badpkg.mid.step" in db.message
        assert "badpkg.store.put" in db.message

    def test_wall_clock_and_env_reads_flagged(self, bad_result):
        store = [
            f
            for f in by_rule(bad_result, "worker-safety")
            if f.path == "badpkg/store.py"
        ]
        messages = " | ".join(f.message for f in store)
        assert "time.time" in messages
        assert "os.getenv" in messages

    def test_unresolvable_registry_entry_flagged(self, bad_result):
        pool = [
            f
            for f in by_rule(bad_result, "worker-safety")
            if f.path == "badpkg/pool.py"
        ]
        assert any("badpkg.ghost.not_there" in f.message for f in pool)

    def test_unregistered_and_lambda_shipments_flagged(self, bad_result):
        work = [
            f
            for f in by_rule(bad_result, "worker-safety")
            if f.path == "badpkg/work.py"
        ]
        lines = {f.line for f in work}
        assert {13, 14} <= lines

    def test_seed_provenance_literal_and_arithmetic(self, bad_result):
        seeds = by_rule(bad_result, "seed-provenance")
        assert {(f.path, f.line) for f in seeds} == {
            ("badpkg/seeds.py", 9),
            ("badpkg/seeds.py", 13),
        }

    def test_zero_arg_rng_flagged(self, bad_result):
        rng = [
            f
            for f in by_rule(bad_result, "seeded-rng")
            if f.path == "badpkg/seeds.py"
        ]
        assert any(
            f.line == 17 and "OS entropy" in f.message for f in rng
        )

    def test_shared_readonly_write_flagged(self, bad_result):
        shared = by_rule(bad_result, "shared-readonly")
        assert [(f.path, f.line) for f in shared] == [("badpkg/eng.py", 13)]


class TestGoodPackage:
    def test_fixed_counterpart_is_clean(self):
        result = run_lint(FIXTURES / "goodpkg")
        assert result.findings == []


class TestPragmaInterplay:
    def _copy_badpkg(self, tmp_path):
        dst = tmp_path / "badpkg"
        shutil.copytree(FIXTURES / "badpkg", dst)
        return dst

    def test_pragma_at_mutation_site_suppresses_deep_finding(
        self, tmp_path
    ):
        dst = self._copy_badpkg(tmp_path)
        store = dst / "store.py"
        lines = store.read_text().splitlines()
        idx = lines.index("    _DB[key] = value")
        lines.insert(idx, "    # parmlint: ok[worker-safety] - test")
        store.write_text("\n".join(lines) + "\n")

        result = run_lint(dst)
        flagged = {
            f.line
            for f in by_rule(result, "worker-safety")
            if f.path == "badpkg/store.py"
        }
        # The pragma'd _DB write (now line 12) is gone; the _LOG.append
        # on the next line (13) still fires — suppression is per-site.
        assert 12 not in flagged
        assert 13 in flagged
        assert result.suppressed >= 1


class TestFingerprintStability:
    def test_findings_identical_across_runs(self):
        first = run_lint(FIXTURES / "badpkg")
        second = run_lint(FIXTURES / "badpkg")
        assert first.findings == second.findings

    def test_fingerprint_keys_rule_path_line(self, bad_result):
        shared = by_rule(bad_result, "shared-readonly")[0]
        assert shared.fingerprint == "badpkg/eng.py:13:shared-readonly"

    def test_baseline_round_trip_swallows_all_findings(
        self, tmp_path, bad_result
    ):
        baseline_path = tmp_path / ".parmlint-baseline.json"
        write_baseline(baseline_path, bad_result.findings)
        known = load_baseline(baseline_path)
        fresh = run_lint(FIXTURES / "badpkg")
        new = [f for f in fresh.findings if f.fingerprint not in known]
        assert new == []


class TestEngineCache:
    def test_delete_cache_findings_identical(self, tmp_path):
        cache = tmp_path / "cache"
        first = run_lint(FIXTURES / "badpkg", cache_dir=cache)
        (artifact,) = sorted(cache.glob("callgraph-*.json"))
        pristine = artifact.read_bytes()

        warm = run_lint(FIXTURES / "badpkg", cache_dir=cache)
        assert warm.findings == first.findings

        shutil.rmtree(cache)
        cold = run_lint(FIXTURES / "badpkg", cache_dir=cache)
        assert cold.findings == first.findings
        (rebuilt,) = sorted(cache.glob("callgraph-*.json"))
        assert rebuilt.read_bytes() == pristine
