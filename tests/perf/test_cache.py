"""Tests for the on-disk calibration cache: hits skip the transient
fits, key changes invalidate, and corruption degrades to a miss."""

import json

import pytest

import repro.pdn.calibrate as calibrate_module
from repro.chip.technology import technology
from repro.pdn.calibrate import CalibrationResult
from repro.pdn.fast import KernelLadder, PsnKernel
from repro.pdn.waveforms import ActivityBin
from repro.perf.cache import (
    _ladder_to_json,
    cache_path,
    calibration_key,
    cached_fit_kernels,
)

GRID = (0.7, 0.8)


def fake_fit_result():
    kernel = PsnKernel(
        z_own={ActivityBin.HIGH: 0.11, ActivityBin.LOW: 0.07},
        z_cross={
            (ActivityBin.HIGH, ActivityBin.HIGH): 0.031,
            (ActivityBin.HIGH, ActivityBin.LOW): 0.022,
            (ActivityBin.LOW, ActivityBin.HIGH): 0.022,
            (ActivityBin.LOW, ActivityBin.LOW): 0.013,
        },
        z_own_router=0.052,
        z_cross_router=0.009,
        kappa2=0.75,
    )
    ladder = KernelLadder({0.6: kernel, 0.8: kernel})
    return CalibrationResult(
        peak_kernels=ladder,
        avg_kernels=ladder,
        peak_rms_error_pct=1.5,
        avg_rms_error_pct=0.8,
        samples=(),
    )


@pytest.fixture
def counting_fit(monkeypatch):
    """Replace the expensive fit with a counted deterministic stand-in."""
    calls = []

    def fake_fit(tech=None, samples=None, kappa2_grid=(), **kwargs):
        calls.append((tech, tuple(kappa2_grid), tuple(sorted(kwargs))))
        return fake_fit_result()

    monkeypatch.setattr(calibrate_module, "fit_kernels", fake_fit)
    return calls


class TestCalibrationKey:
    def test_explicit_defaults_hash_like_no_args(self):
        tech = technology("7nm")
        assert calibration_key(tech, GRID, {}) == calibration_key(
            tech, GRID, {"vdds": (0.4, 0.6, 0.8), "seed": 2018}
        )

    def test_key_tracks_every_input(self):
        tech = technology("7nm")
        base = calibration_key(tech, GRID, {})
        assert calibration_key(technology("14nm"), GRID, {}) != base
        assert calibration_key(tech, (0.5, 0.9), {}) != base
        assert calibration_key(tech, GRID, {"seed": 7}) != base

    def test_unknown_sample_kwarg_rejected(self):
        with pytest.raises(ValueError, match="unknown sample kwargs"):
            calibration_key(technology("7nm"), GRID, {"typo": 1})


class TestCachedFitKernels:
    def test_hit_skips_the_fit_and_round_trips(self, tmp_path, counting_fit):
        cache_dir = str(tmp_path)
        first = cached_fit_kernels(cache_dir=cache_dir, kappa2_grid=GRID)
        second = cached_fit_kernels(cache_dir=cache_dir, kappa2_grid=GRID)
        assert len(counting_fit) == 1
        assert second.samples == ()
        assert _ladder_to_json(second.peak_kernels) == _ladder_to_json(
            first.peak_kernels
        )
        assert second.peak_rms_error_pct == first.peak_rms_error_pct
        assert second.avg_rms_error_pct == first.avg_rms_error_pct

    def test_key_change_invalidates(self, tmp_path, counting_fit):
        cache_dir = str(tmp_path)
        cached_fit_kernels(cache_dir=cache_dir, kappa2_grid=GRID)
        cached_fit_kernels(
            cache_dir=cache_dir, kappa2_grid=GRID, tech=technology("14nm")
        )
        cached_fit_kernels(cache_dir=cache_dir, kappa2_grid=GRID, seed=7)
        assert len(counting_fit) == 3

    def test_corrupt_entry_is_a_miss_and_heals(self, tmp_path, counting_fit):
        cache_dir = str(tmp_path)
        cached_fit_kernels(cache_dir=cache_dir, kappa2_grid=GRID)
        key = calibration_key(technology("7nm"), GRID, {})
        path = cache_path(cache_dir, key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        cached_fit_kernels(cache_dir=cache_dir, kappa2_grid=GRID)
        assert len(counting_fit) == 2
        # The refit overwrote the damaged entry: next call hits again.
        cached_fit_kernels(cache_dir=cache_dir, kappa2_grid=GRID)
        assert len(counting_fit) == 2
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle)["schema"] == "parm-calibration-cache"

    def test_env_var_selects_cache_dir(self, tmp_path, counting_fit,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        cached_fit_kernels(kappa2_grid=GRID)
        cached_fit_kernels(kappa2_grid=GRID)
        assert len(counting_fit) == 1
        assert (tmp_path / "env").is_dir()
