"""Tests for the pinned benchmark suite: workload pinning, the
regression gate, and the CLI contract (without timing anything slow)."""

import json

import numpy as np
import pytest

import repro.perf.bench as bench
from repro.perf.bench import (
    DEFAULT_GATE_PCT,
    _bench_cells,
    _domain_batch,
    gate_against_baseline,
)


def payload(seconds, quick=True, **extra):
    return {
        "schema": "parm-bench",
        "version": 1,
        "rev": "test",
        "quick": quick,
        "workers": 4,
        "benchmarks": {
            name: {"seconds": value, "meta": {}}
            for name, value in seconds.items()
        },
        "derived": {},
        **extra,
    }


class TestPinnedWorkloads:
    def test_domain_batch_is_pinned(self):
        a = _domain_batch(64)
        b = _domain_batch(64)
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    def test_bench_cells_sizes(self):
        quick = _bench_cells(True)
        full = _bench_cells(False)
        assert len(quick) == 4
        assert len(full) == 8
        assert len({c.key for c in quick + full}) == len(quick) + len(full)

    def test_kernel_bench_smoke(self):
        result = bench.bench_kernel(quick=True)
        assert set(result) == {"kernel_eval_scalar", "kernel_eval_batch"}
        for entry in result.values():
            assert entry["seconds"] > 0

    def test_noc_engine_bench_smoke(self):
        result = bench.bench_noc_engine(quick=True)
        assert set(result) == {
            "noc_engine_legacy",
            "noc_engine_array",
            "noc_engine_array_adaptive",
            "noc_engine_batch_loop",
            "noc_engine_batched",
        }
        for entry in result.values():
            assert entry["seconds"] > 0
            assert entry["meta"]["mesh"] == "8x8"
        # The array engine must actually be faster than the reference
        # on the saturation workload (the gate for the exact multiple
        # lives in the committed BENCH baselines).
        assert (
            result["noc_engine_array"]["seconds"]
            < result["noc_engine_legacy"]["seconds"]
        )
        # bench_noc_engine verifies every batched lane against a fresh
        # scalar engine before timing, so reaching here also certifies
        # the lane-identity contract on the quick workload.
        assert result["noc_engine_batched"]["meta"]["lanes"] == 8

    def test_lint_bench_smoke(self):
        result = bench.bench_lint(quick=True)
        assert set(result) == {"lint_deep"}
        assert result["lint_deep"]["seconds"] > 0
        assert result["lint_deep"]["meta"]["cache"] == "cold"

    def test_routing_sweep_bench_asserts_identity(self):
        result = bench.bench_routing_sweep(quick=True, workers=1)
        assert set(result) == {
            "routing_sweep_serial",
            "routing_sweep_parallel",
        }
        assert result["routing_sweep_serial"]["meta"]["points"] == 4


class TestGate:
    def test_regression_detected(self):
        result = payload({"kernel_eval_batch": 1.0})
        baseline = payload({"kernel_eval_batch": 0.5})
        failures = gate_against_baseline(result, baseline)
        assert len(failures) == 1
        assert "kernel_eval_batch" in failures[0]

    def test_within_gate_passes(self):
        result = payload({"kernel_eval_batch": 0.55})
        baseline = payload({"kernel_eval_batch": 0.5})
        assert gate_against_baseline(result, baseline) == []

    def test_tighter_gate_pct(self):
        result = payload({"kernel_eval_batch": 0.55})
        baseline = payload({"kernel_eval_batch": 0.5})
        assert gate_against_baseline(result, baseline, gate_pct=5.0)

    def test_new_benchmark_skipped(self):
        result = payload({"brand_new": 9.0, "kernel_eval_batch": 0.5})
        baseline = payload({"kernel_eval_batch": 0.5})
        assert gate_against_baseline(result, baseline) == []

    def test_quick_mismatch_skips_gate(self):
        result = payload({"kernel_eval_batch": 9.0}, quick=True)
        baseline = payload({"kernel_eval_batch": 0.5}, quick=False)
        assert gate_against_baseline(result, baseline) == []

    def test_zero_baseline_skipped(self):
        result = payload({"kernel_eval_batch": 1.0})
        baseline = payload({"kernel_eval_batch": 0.0})
        assert gate_against_baseline(result, baseline) == []


class TestCli:
    def test_workers_must_be_positive(self, capsys):
        assert bench.main(["--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_main_writes_output_and_gates(self, tmp_path, monkeypatch,
                                          capsys):
        fake = payload(
            {"kernel_eval_batch": 0.5, "kernel_eval_scalar": 1.0}
        )
        monkeypatch.setattr(bench, "run_suite", lambda **kw: fake)

        out = tmp_path / "bench.json"
        base = tmp_path / "baseline.json"
        with open(base, "w", encoding="utf-8") as handle:
            json.dump(payload({"kernel_eval_batch": 0.5}), handle)

        code = bench.main(
            ["--quick", "--output", str(out), "--baseline", str(base)]
        )
        assert code == 0
        written = json.loads(out.read_text())
        assert written["benchmarks"]["kernel_eval_batch"]["seconds"] == 0.5
        assert "gate passed" in capsys.readouterr().out

    def test_main_fails_on_regression(self, tmp_path, monkeypatch, capsys):
        fake = payload({"kernel_eval_batch": 2.0})
        monkeypatch.setattr(bench, "run_suite", lambda **kw: fake)

        out = tmp_path / "bench.json"
        base = tmp_path / "baseline.json"
        with open(base, "w", encoding="utf-8") as handle:
            json.dump(payload({"kernel_eval_batch": 0.5}), handle)

        code = bench.main(
            ["--output", str(out), "--baseline", str(base)]
        )
        assert code == 1
        assert "regressions" in capsys.readouterr().err

    def test_default_gate_is_generous(self):
        assert DEFAULT_GATE_PCT == 25.0
