"""Tests for the deterministic process pool: byte-identical merges,
crash-safe resume under workers, and pickling guards.

The toy runner lives at module level so ``spawn`` workers can unpickle
it (pytest's rootdir sys.path is inherited by the children).
"""

import json
import os
import signal

import pytest

from repro.harness.errors import ConfigError, SolverError, WorkerCrash
from repro.harness.supervisor import (
    CampaignCell,
    CampaignSupervisor,
    SupervisorPolicy,
)
from repro.perf.parallel import _auto_chunk_size, map_tasks, run_cells


def toy_runner(c):
    """Deterministic module-level cell runner (picklable for spawn)."""
    return {
        "cell": c.spec(),
        "key": c.key,
        "framework": c.framework,
        "workload": c.workload,
        "arrival_interval_s": c.arrival_interval_s,
        "total_time_s": 1.0 + c.arrival_interval_s,
    }


def cells(n=4):
    return [
        CampaignCell(
            framework=fw,
            workload="mixed",
            arrival_interval_s=interval,
            n_apps=2,
            seeds=(1,),
        )
        for fw in ("HM+XY", "PARM+PANR")
        for interval in (0.2, 0.1)
    ][:n]


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


def crash_on_three(task):
    """Module-level map task that raises on one specific input."""
    if task == 3:
        raise ValueError("boom on three")
    return task * 2


def raise_taxonomy(task):
    """Module-level map task raising a classified (taxonomy) error."""
    raise SolverError("already classified", node="n0", task=task)


def sigkill_self(task):
    """Module-level map task whose worker is killed outright (OOM-like)."""
    os.kill(os.getpid(), signal.SIGKILL)
    return task  # pragma: no cover - the process is dead


class TestMapTasksFailures:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_task_exception_becomes_worker_crash(self, workers):
        with pytest.raises(WorkerCrash) as info:
            map_tasks(crash_on_three, [1, 2, 3, 4], workers=workers)
        err = info.value
        assert err.context["task_index"] == 2
        assert err.context["task"] == "3"
        assert err.context["error_type"] == "ValueError"
        assert "boom on three" in err.context["error"]

    def test_serial_cause_is_preserved(self):
        with pytest.raises(WorkerCrash) as info:
            map_tasks(crash_on_three, [3], workers=1)
        assert isinstance(info.value.__cause__, ValueError)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_taxonomy_errors_propagate_unwrapped(self, workers):
        # A classified failure already carries provenance; wrapping it
        # in WorkerCrash would bury the classification.
        with pytest.raises(SolverError, match="already classified"):
            map_tasks(raise_taxonomy, [1, 2], workers=workers)

    def test_oom_killed_worker_becomes_worker_crash(self):
        # SIGKILL-ing the worker process is how an OOM kill looks from
        # the parent: BrokenProcessPool with zero context.  map_tasks
        # must classify it and name the in-flight task.
        with pytest.raises(WorkerCrash, match="worker process died") as info:
            map_tasks(sigkill_self, [10, 20], workers=2)
        err = info.value
        assert err.context["error_type"] == "BrokenProcessPool"
        assert err.context["task"] in ("10", "20")


def crash_once_marker(task):
    """Kill the worker on first sight of the task, succeed after.

    The marker file is the cross-process memory of the injected fault:
    absent means "not crashed yet".  An empty marker path never crashes.
    """
    value, marker = task
    if marker and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


def flaky_until(task):
    """Raise ValueError until the counter file reaches ``fail_times``."""
    value, counter_path, fail_times = task
    count = 0
    if os.path.exists(counter_path):
        with open(counter_path, "r", encoding="utf-8") as handle:
            count = int(handle.read())
    if count < fail_times:
        with open(counter_path, "w", encoding="utf-8") as handle:
            handle.write(str(count + 1))
        raise ValueError(f"transient failure {count}")
    return value * 2


class TestMapTasksRetries:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError, match="retries"):
            map_tasks(crash_on_three, [1], workers=1, retries=-1)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_transient_exception_retried(self, tmp_path, workers):
        counter = str(tmp_path / "counter")
        tasks = [(1, str(tmp_path / "c1"), 0), (2, counter, 2)]
        assert map_tasks(
            flaky_until, tasks, workers=workers, retries=2
        ) == [2, 4]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_budget_exhaustion_raises_with_attempts(self, tmp_path, workers):
        counter = str(tmp_path / "counter")
        tasks = [(2, counter, 5)]
        with pytest.raises(WorkerCrash) as info:
            map_tasks(flaky_until, tasks, workers=workers, retries=2)
        assert info.value.context["attempts"] == 3
        assert info.value.context["task_index"] == 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_taxonomy_errors_never_retried(self, workers):
        # A classified error is a deterministic verdict, not a transient
        # fault; retrying a pure fn on it would just repeat the verdict.
        with pytest.raises(SolverError, match="already classified"):
            map_tasks(raise_taxonomy, [1], workers=workers, retries=3)

    def test_sigkilled_worker_retried_and_merge_order_kept(self, tmp_path):
        # One injected OOM-style kill mid-pool: the broken pool is
        # rebuilt, unfinished tasks resubmitted, and the merged result
        # is byte-identical to an undisturbed run.
        marker = str(tmp_path / "crashed-once")
        tasks = [(1, ""), (2, marker), (3, ""), (4, "")]
        result = map_tasks(
            crash_once_marker, tasks, workers=2, retries=1
        )
        assert result == [2, 4, 6, 8]
        assert os.path.exists(marker)

    def test_backoff_schedule_is_seeded_and_recorded(self, tmp_path):
        def run(tag):
            delays = []
            counter = str(tmp_path / f"counter-{tag}")
            map_tasks(
                flaky_until,
                [(1, counter, 2)],
                workers=1,
                retries=2,
                retry_seed=7,
                sleep_fn=delays.append,
            )
            return delays

        first, second = run("a"), run("b")
        assert len(first) == 2
        assert all(d > 0 for d in first)
        # Exponential growth with jitter, reproduced exactly per seed.
        assert first[1] > first[0]
        assert first == second


class TestRunCells:
    def test_single_worker_runs_in_process(self):
        outcomes = run_cells(cells(), SupervisorPolicy(), workers=1,
                             cell_runner=toy_runner)
        assert [o.cell.key for o in outcomes] == [c.key for c in cells()]
        assert all(o.completed for o in outcomes)

    def test_pool_preserves_input_order(self):
        outcomes = run_cells(cells(), SupervisorPolicy(), workers=4,
                             cell_runner=toy_runner)
        assert [o.cell.key for o in outcomes] == [c.key for c in cells()]
        assert all(o.completed for o in outcomes)

    def test_unpicklable_runner_rejected(self):
        with pytest.raises(ConfigError, match="not picklable"):
            run_cells(cells(), SupervisorPolicy(), workers=4,
                      cell_runner=lambda c: toy_runner(c))

    def test_on_outcome_sees_every_cell(self):
        seen = []
        run_cells(cells(), SupervisorPolicy(), workers=4,
                  cell_runner=toy_runner, on_outcome=lambda o: seen.append(o))
        assert sorted(o.cell.key for o in seen) == sorted(
            c.key for c in cells()
        )


class TestParallelSupervisor:
    def test_workers_validated(self, tmp_path):
        with pytest.raises(ConfigError, match="workers"):
            CampaignSupervisor(
                cells(), str(tmp_path / "cp.json"), workers=0
            )

    def test_parallel_run_is_byte_identical_to_serial(self, tmp_path):
        serial_cp = str(tmp_path / "serial.json")
        parallel_cp = str(tmp_path / "parallel.json")
        serial = CampaignSupervisor(
            cells(), serial_cp, cell_runner=toy_runner, workers=1
        ).run()
        parallel = CampaignSupervisor(
            cells(), parallel_cp, cell_runner=toy_runner, workers=4
        ).run()
        assert parallel.table_json() == serial.table_json()
        assert read_bytes(parallel_cp) == read_bytes(serial_cp)

    def test_kill_midrun_then_parallel_resume_matches_serial(self, tmp_path):
        serial_cp = str(tmp_path / "serial.json")
        CampaignSupervisor(
            cells(), serial_cp, cell_runner=toy_runner, workers=1
        ).run()

        crashed_cp = str(tmp_path / "crashed.json")
        victim = CampaignSupervisor(
            cells(), crashed_cp, cell_runner=toy_runner, workers=4
        )
        original_save = victim._save_state
        saves = []

        def crashing_save(state):
            if len(saves) >= 2:
                raise RuntimeError("injected mid-campaign crash")
            saves.append(len(state))
            original_save(state)

        victim._save_state = crashing_save
        with pytest.raises(RuntimeError, match="injected"):
            victim.run()

        # The checkpoint survived the crash with a strict subset of
        # cells; a parallel resume finishes the rest and the final
        # bytes match the never-crashed serial run exactly.
        with open(crashed_cp, "r", encoding="utf-8") as handle:
            partial = json.load(handle)["payload"]["cells"]
        assert 0 < len(partial) < len(cells())

        resumed = CampaignSupervisor(
            cells(), crashed_cp, cell_runner=toy_runner, workers=4
        ).run(resume=True)
        assert all(o.completed for o in resumed.outcomes)
        assert read_bytes(crashed_cp) == read_bytes(serial_cp)


def double(task):
    """Module-level map task (picklable for spawn workers)."""
    return task * 2


class TestMapTasksChunking:
    def test_chunk_size_must_be_positive(self):
        with pytest.raises(ConfigError, match="chunk_size"):
            map_tasks(double, [1, 2], workers=1, chunk_size=0)

    def test_auto_heuristic_stays_unchunked_for_small_batches(self):
        # Up to 4 tasks per worker: one descriptor per round trip.
        assert _auto_chunk_size(1, 2) == 1
        assert _auto_chunk_size(8, 2) == 1
        # Beyond that: ceil(n / (4 * workers)) consecutive tasks each.
        assert _auto_chunk_size(9, 2) == 2
        assert _auto_chunk_size(100, 2) == 13
        assert _auto_chunk_size(100, 4) == 7

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 5, None])
    def test_chunked_merge_is_byte_identical(self, chunk_size):
        tasks = list(range(11))
        expected = [t * 2 for t in tasks]
        assert map_tasks(
            double, tasks, workers=2, chunk_size=chunk_size
        ) == expected

    def test_chunked_failure_names_global_task_index(self):
        # The crash sits mid-chunk; the raised context must carry the
        # original (global) task index and error type, exactly as the
        # unchunked path reports them.
        with pytest.raises(WorkerCrash) as info:
            map_tasks(
                crash_on_three, [1, 2, 3, 4], workers=2, chunk_size=4
            )
        err = info.value
        assert err.context["task_index"] == 2
        assert err.context["task"] == "3"
        assert err.context["error_type"] == "ValueError"

    def test_chunked_taxonomy_errors_propagate_unwrapped(self):
        with pytest.raises(SolverError, match="already classified"):
            map_tasks(raise_taxonomy, [1, 2], workers=2, chunk_size=2)

    def test_chunked_transient_failure_retried(self, tmp_path):
        counter = str(tmp_path / "counter")
        tasks = [(1, str(tmp_path / "c1"), 0), (2, counter, 2)]
        assert map_tasks(
            flaky_until, tasks, workers=2, retries=2, chunk_size=2
        ) == [2, 4]

    def test_chunked_sigkill_retried_and_merge_order_kept(self, tmp_path):
        marker = str(tmp_path / "crashed-once")
        tasks = [(1, ""), (2, marker), (3, ""), (4, "")]
        result = map_tasks(
            crash_once_marker, tasks, workers=2, retries=1, chunk_size=2
        )
        assert result == [2, 4, 6, 8]
        assert os.path.exists(marker)
