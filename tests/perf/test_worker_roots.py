"""The WORKER_ROOTS registry must stay importable and complete.

Every entry is a dotted path to a callable that can legitimately run
inside a spawn worker; parmlint's worker-safety rule treats the tuple
as the root set for its reachability analysis, so a stale entry would
silently shrink the analyzed surface.
"""

import importlib

import pytest

from repro.perf.parallel import WORKER_ROOTS


def resolve(dotted):
    """Import the longest importable module prefix, then getattr down."""
    parts = dotted.split(".")
    for cut in range(len(parts) - 1, 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:cut]))
        except ImportError:
            continue
        for attr in parts[cut:]:
            obj = getattr(obj, attr)
        return obj
    raise ImportError(dotted)


class TestWorkerRoots:
    def test_registry_is_sorted_and_unique(self):
        assert list(WORKER_ROOTS) == sorted(set(WORKER_ROOTS))

    @pytest.mark.parametrize("dotted", WORKER_ROOTS)
    def test_every_entry_resolves_to_a_callable(self, dotted):
        assert callable(resolve(dotted))

    def test_pool_targets_are_registered(self):
        # The callables the perf layer actually ships to spawn workers.
        for required in (
            "repro.exp.routing_sweep.run_point",
            "repro.exp.verify.sequential.run_replica_cell",
            "repro.perf.parallel._pool_run_cell",
        ):
            assert required in WORKER_ROOTS
