"""Tests for the persistent warm worker pool and shared read-only state.

Covers the pool lifecycle (create / reuse / ephemeral / broken-rebuild),
the shared-memory publish/attach round trip and its failure taxonomy,
and the two no-leak guarantees: zero residual segments after a normal
shutdown and after a SIGKILLed parent (the process tree's resource
tracker reaps them).

Task callables live at module level so ``spawn`` workers can unpickle
them.
"""

import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro
from repro.harness.errors import ConfigError, WorkerCrash
from repro.harness.supervisor import CampaignCell, SupervisorPolicy
from repro.perf import pool
from repro.perf.parallel import map_tasks, run_cells


def segment_exists(name):
    """True when a shared-memory segment of that name is attachable."""
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


def make_cells(n=2):
    return [
        CampaignCell(
            framework=fw,
            workload="mixed",
            arrival_interval_s=0.2,
            n_apps=2,
            seeds=(1,),
        )
        for fw in ("HM+XY", "PARM+PANR")
    ][:n]


def slow_square(task):
    """Module-level map task slow enough for batches to interleave."""
    time.sleep(0.05)
    return task * task


def world_report(task):
    """Module-level map task describing the worker's warm world."""
    world = pool.warm_world()
    if world is None:
        return None
    table = world.route_table(8, 8, "xy")
    return {
        "has_topology": world.topology(8, 8) is not None,
        "route_writeable": None if table is None else bool(
            table.flags.writeable
        ),
        "init_seconds_positive": world.init_seconds > 0.0,
        "transient_primed": world.transient is not None,
    }


def sigkill_cell_runner(cell):
    """Cell runner that takes its worker down outright, every time."""
    os.kill(os.getpid(), signal.SIGKILL)
    return {}  # pragma: no cover - the process is dead


class TestPublishAttach:
    def test_round_trip_values_and_read_only(self):
        arrays = {
            "ints": np.arange(12, dtype=np.int64).reshape(3, 4),
            "floats": np.linspace(0.0, 1.0, 7),
        }
        bundle = pool.publish_arrays(arrays, prefix="parmtest")
        attached = pool.attach_arrays(bundle.specs())
        try:
            for key, array in arrays.items():
                view = attached.arrays[key]
                assert np.array_equal(view, array)
                assert view.dtype == array.dtype
                assert not view.flags.writeable
                with pytest.raises(ValueError):
                    view[0] = 0
        finally:
            attached.close()
            bundle.unlink()
        for spec in bundle.specs():
            assert not segment_exists(spec.segment)

    def test_empty_array_rejected(self):
        with pytest.raises(ConfigError) as info:
            pool.publish_arrays(
                {"empty": np.empty((0, 4))}, prefix="parmtest"
            )
        assert info.value.context["key"] == "empty"

    def test_unlink_is_idempotent(self):
        bundle = pool.publish_arrays(
            {"x": np.ones(3)}, prefix="parmtest"
        )
        bundle.unlink()
        bundle.unlink()
        for spec in bundle.specs():
            assert not segment_exists(spec.segment)

    def test_attach_after_unlink_is_classified(self):
        bundle = pool.publish_arrays(
            {"gone": np.ones((2, 2))}, prefix="parmtest"
        )
        specs = bundle.specs()
        bundle.unlink()
        with pytest.raises(WorkerCrash, match="segment vanished") as info:
            pool.attach_arrays(specs)
        assert info.value.context["segment"] == specs[0].segment
        assert info.value.context["key"] == "gone"
        assert info.value.context["error_type"] == "FileNotFoundError"


class TestSharedWorldValues:
    def test_published_tables_match_fresh_computation(self):
        from repro.chip.mesh import MeshGeometry
        from repro.noc.engine import build_route_table
        from repro.noc.routing import make_routing
        from repro.noc.topology import MeshTopology

        spec = pool.default_warm_spec()
        attached = pool.attach_arrays(spec.array_specs)
        try:
            mesh = MeshGeometry(8, 8)
            topo = MeshTopology(mesh)
            assert np.array_equal(
                attached.arrays["topology/8x8/hops"], topo.hops_table()
            )
            assert np.array_equal(
                attached.arrays["topology/8x8/neighbor_codes"],
                topo.neighbor_codes(),
            )
            for policy in spec.route_policies:
                assert np.array_equal(
                    attached.arrays[f"route/8x8/{policy}"],
                    build_route_table(mesh, make_routing(policy)),
                )
        finally:
            attached.close()


class TestWarmPoolLifecycle:
    def test_lease_reuse_init_and_clean_shutdown(self):
        pool.shutdown_pool()
        before = pool.pool_stats()
        lease = pool.lease_pool(2)
        try:
            probes = [
                lease.pool.submit(pool._probe_worker, i).result()
                for i in range(6)
            ]
        finally:
            lease.release()
        assert all(init_s > 0.0 for _, init_s in probes)
        second = pool.lease_pool(2)
        try:
            assert second.pool is lease.pool
        finally:
            second.release()
        after = pool.pool_stats()
        assert after["created"] == before["created"] + 1
        assert after["reused"] >= before["reused"] + 1
        segments = [
            spec.segment for spec in pool.default_warm_spec().array_specs
        ]
        assert segments and all(segment_exists(s) for s in segments)
        pool.shutdown_pool()
        assert not any(segment_exists(s) for s in segments)

    def test_workers_expose_warm_world(self):
        pool.shutdown_pool()
        assert pool.warm_world() is None  # parent has no world
        try:
            reports = map_tasks(world_report, [0, 1], workers=2)
        finally:
            pool.shutdown_pool()
        for report in reports:
            assert report is not None
            assert report["has_topology"]
            assert report["route_writeable"] is False
            assert report["init_seconds_positive"]
            assert report["transient_primed"]

    def test_concurrent_different_fingerprint_gets_ephemeral_pool(self):
        pool.shutdown_pool()
        lease = pool.lease_pool(2)
        try:
            before = pool.pool_stats()
            other = pool.lease_pool(1)  # different fingerprint, mid-flight
            try:
                assert other.pool is not lease.pool
                pid, _ = other.pool.submit(pool._probe_worker, 0).result()
                assert pid != os.getpid()
            finally:
                other.release()
            after = pool.pool_stats()
            assert after["ephemeral"] == before["ephemeral"] + 1
            again = pool.lease_pool(2)
            try:
                assert again.pool is lease.pool  # shared pool untouched
            finally:
                again.release()
        finally:
            lease.release()
        pool.shutdown_pool()

    def test_broken_pool_rebuilt_on_next_lease(self):
        pool.shutdown_pool()
        lease = pool.lease_pool(1)
        lease.mark_broken()
        lease.release()
        before = pool.pool_stats()
        fresh = pool.lease_pool(1)
        try:
            assert fresh.pool is not lease.pool
        finally:
            fresh.release()
        after = pool.pool_stats()
        assert after["broken_rebuilds"] == before["broken_rebuilds"] + 1
        pool.shutdown_pool()


class TestInterleavedBatches:
    def test_map_tasks_batches_do_not_cancel_each_other(self):
        pool.shutdown_pool()
        before = pool.pool_stats()
        results = {}

        def background(tag, items):
            results[tag] = map_tasks(slow_square, items, workers=2)

        thread = threading.Thread(
            target=background, args=("a", list(range(8)))
        )
        thread.start()
        try:
            # Same fingerprint: this batch shares the pool with the
            # background one and, crucially, finishing first must not
            # cancel the background batch's queued futures.
            results["b"] = map_tasks(slow_square, [10, 11, 12], workers=2)
        finally:
            thread.join()
        pool.shutdown_pool()
        assert results["a"] == [t * t for t in range(8)]
        assert results["b"] == [100, 121, 144]
        after = pool.pool_stats()
        assert after["ephemeral"] == before["ephemeral"]


class TestPoolRebuildLimit:
    def test_pool_kept_dying_is_classified(self):
        pool.shutdown_pool()
        with pytest.raises(WorkerCrash, match="kept dying") as info:
            run_cells(
                make_cells(2),
                SupervisorPolicy(),
                workers=2,
                cell_runner=sigkill_cell_runner,
            )
        err = info.value
        assert err.context["rebuilds"] == pool.MAX_POOL_REBUILDS + 1
        assert err.context["pending_cells"]
        pool.shutdown_pool()


class TestSigkilledParent:
    def test_resource_tracker_reaps_segments_of_dead_parent(self, tmp_path):
        script = tmp_path / "kill_parent.py"
        script.write_text(
            textwrap.dedent(
                """
                import os
                import signal
                import sys

                from repro.perf import pool

                if __name__ == "__main__":
                    lease = pool.lease_pool(1)
                    lease.pool.submit(pool._probe_worker, 0).result()
                    for spec in pool.default_warm_spec().array_specs:
                        print(spec.segment)
                    sys.stdout.flush()
                    # No shutdown, no unlink: the whole tree (workers
                    # first, then this parent) dies with the segments
                    # published and the pool live - the OOM-killer /
                    # cgroup-kill scenario.  Only the detached resource
                    # tracker survives.
                    for proc in lease.pool._processes.values():
                        os.kill(proc.pid, signal.SIGKILL)
                    os.kill(os.getpid(), signal.SIGKILL)
                """
            )
        )
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            env=env,
            timeout=180,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        segments = [
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        ]
        assert segments, proc.stderr
        # The tracker (a separate process that survives the SIGKILL)
        # notices the tree is gone and unlinks what the parent leaked.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and any(
            segment_exists(s) for s in segments
        ):
            time.sleep(0.25)
        assert [s for s in segments if segment_exists(s)] == []
