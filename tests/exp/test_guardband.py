"""Tests for the guardband/decap savings analysis."""

import numpy as np
import pytest

from repro.chip.technology import technology
from repro.exp.guardband import (
    equivalent_decap_factor,
    guardband_pct,
    guardband_table,
    print_guardband,
)
from repro.pdn.circuit import GROUND, Circuit


class TestGuardband:
    def test_zero_psn_zero_guardband(self):
        assert guardband_pct(0.0, 0.8) == pytest.approx(0.0)

    def test_guardband_grows_with_psn(self):
        values = [guardband_pct(p, 0.8) for p in (2.0, 5.0, 13.0)]
        assert values == sorted(values)
        assert values[-1] > 10.0

    def test_ntc_margin_is_thinner(self):
        """The same droop costs more frequency near threshold - the
        paper's NTC motivation."""
        assert guardband_pct(5.0, 0.4) > guardband_pct(5.0, 0.8)

    def test_full_margin_consumed(self):
        """A droop that pushes Vdd to the threshold voltage costs the
        entire clock."""
        tech = technology("7nm")
        psn = 100.0 * (1.0 - tech.vth / 0.4) + 1.0
        assert guardband_pct(psn, 0.4) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            guardband_pct(-1.0, 0.8)
        with pytest.raises(ValueError):
            guardband_pct(100.0, 0.8)

    def test_table_and_print(self, capsys):
        """Compared at the same NTC operating point, HM-level noise
        would cost far more guardband than PARM-level noise - the point
        of running PSN-aware at near threshold."""
        rows = guardband_table(
            {"HM-level": (0.4, 15.0), "PARM-level": (0.4, 4.7)}
        )
        by = {r.label: r for r in rows}
        assert by["PARM-level"].guardband_pct < 0.6 * by["HM-level"].guardband_pct
        assert by["HM-level"].relative_frequency < 1.0
        print_guardband(rows)
        out = capsys.readouterr().out
        assert "HM-level" in out and "guardband" in out


class TestEquivalentDecap:
    def test_linear_law(self):
        assert equivalent_decap_factor(1.0) == 1.0
        assert equivalent_decap_factor(2.0) == 2.0
        with pytest.raises(ValueError):
            equivalent_decap_factor(0.5)

    def test_matches_ac_impedance_scaling(self):
        """Verify L/(RC) against the AC solver: 4x decap cuts the peak
        impedance of the series-damped tank by ~4x."""
        import math

        def peak_z(c_f):
            c = Circuit()
            c.vsource("vin", GROUND, 1.0)
            c.resistor("vin", "m", 0.003)
            c.inductor("m", "a", 20e-12)
            c.capacitor("a", GROUND, c_f)
            f_res = 1.0 / (2 * math.pi * math.sqrt(20e-12 * c_f))
            freqs = np.geomspace(f_res / 5, f_res * 5, 121)
            return float(c.ac_impedance("a", freqs).max())

        ratio = peak_z(8.5e-9) / peak_z(4 * 8.5e-9)
        assert ratio == pytest.approx(4.0, rel=0.1)
