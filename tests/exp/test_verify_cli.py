"""Tests for ``python -m repro verify``: CLI plumbing plus the
SIGKILL-mid-run / resume-from-checkpoint smoke path.

The kill test is this PR's acceptance criterion in miniature: a
sequential estimation run killed with SIGKILL mid-batch resumes from
its shared checkpoint, re-executes nothing that already committed, and
writes a result JSON byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.exp.verify.cli import main
from repro.harness.errors import ConfigError

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A deterministic budget-exhausting run: the half-width target is
#: unreachable, so every invocation runs exactly 512 replicas - long
#: enough (per-replica checkpoint commits) for a poll-then-kill to land
#: mid-run.
KILL_RUN = [
    "--estimand", "ve",
    "--half-width", "0.001",
    "--budget", "512",
    "--batch-size", "64",
]


def verify_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def run_cli(args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", "verify", *args],
        cwd=REPO_ROOT,
        env=verify_env(),
        capture_output=True,
        text=True,
        timeout=600,
        **kwargs,
    )


def checkpointed_cells(path):
    """Replica records currently in the checkpoint (empty when absent)."""
    try:
        with open(path) as handle:
            return json.load(handle)["payload"]["cells"]
    except (OSError, ValueError, KeyError):
        return {}


class TestMainInProcess:
    def test_stops_before_budget_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main(
            [
                "--confidence", "0.95",
                "--half-width", "0.05",
                "--json-out", str(out),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "stopped when confident" in stdout
        data = json.loads(out.read_text())
        assert data["schema"] == "parm-verify"
        assert data["stopped_early"] is True
        assert data["n_replicas"] < data["rule"]["budget"]
        assert data["interval"]["half_width"] <= 0.05

    def test_json_deterministic_across_runs(self, tmp_path, capsys):
        outs = [tmp_path / "a.json", tmp_path / "b.json"]
        for out in outs:
            assert main(
                [
                    "--half-width", "0.05",
                    "--budget", "256",
                    "--json-out", str(out),
                ]
            ) == 0
        capsys.readouterr()
        assert outs[0].read_bytes() == outs[1].read_bytes()

    def test_splitting_mode_writes_json(self, tmp_path, capsys):
        out = tmp_path / "split.json"
        code = main(
            [
                "--splitting",
                "--threshold-pct", "19.5",
                "--n-per-level", "400",
                "--json-out", str(out),
            ]
        )
        assert code == 0
        assert "splitting ve" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert data["schema"] == "parm-verify-splitting"
        assert 0.0 < data["probability"] < 1.0

    def test_splitting_rejects_non_ve_estimand(self):
        with pytest.raises(ConfigError, match="level function"):
            main(["--splitting", "--estimand", "latency"])

    def test_method_choices_are_validated(self, capsys):
        with pytest.raises(SystemExit):
            main(["--method", "wald"])
        capsys.readouterr()


class TestSigkillResume:
    def test_kill_mid_run_then_resume_byte_identical(self, tmp_path):
        cp = str(tmp_path / "cp.json")
        out = str(tmp_path / "resumed.json")
        ref_out = str(tmp_path / "reference.json")

        # Uninterrupted reference run (no checkpoint - the result JSON
        # must not depend on persistence at all).
        ref = run_cli(["--json-out", ref_out, *KILL_RUN])
        assert ref.returncode == 0, ref.stderr
        assert "budget exhausted" in ref.stdout

        # Launch the same run with a checkpoint and SIGKILL it once the
        # checkpoint holds some committed replicas (the rest in flight).
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "verify",
                "--checkpoint", cp, *KILL_RUN,
            ],
            cwd=REPO_ROOT,
            env=verify_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            while proc.poll() is None and len(checkpointed_cells(cp)) < 32:
                time.sleep(0.01)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()

        survived = checkpointed_cells(cp)
        assert len(survived) >= 1

        # Resume: committed replicas restore, the rest re-derive their
        # seeds from the same stream, and the JSON is byte-identical.
        res = run_cli(
            [
                "--checkpoint", cp, "--resume", "--json-out", out,
                *KILL_RUN,
            ]
        )
        assert res.returncode == 0, res.stderr
        assert Path(out).read_bytes() == Path(ref_out).read_bytes()
