"""Tests for the fast-vs-transient validation experiment."""

import pytest

from repro.exp.validation import (
    ValidationRow,
    ValidationSummary,
    print_validation,
    validate_on_manager_decisions,
)


@pytest.fixture(scope="module")
def summary():
    return validate_on_manager_decisions(
        benchmarks=("fft", "swaptions"), window_s=200e-9, dt_s=100e-12
    )


class TestValidation:
    def test_rows_cover_both_managers(self, summary):
        managers = {r.manager for r in summary.rows}
        assert managers == {"PARM", "HM"}
        benchmarks = {r.benchmark for r in summary.rows}
        assert benchmarks == {"fft", "swaptions"}

    def test_fast_model_tracks_transient(self, summary):
        assert summary.mean_abs_peak_error_pct < 2.0
        assert summary.worst_tile_error_pct < 5.0

    def test_rank_agreement(self, summary):
        """The fast model must order mappings by noise like the ground
        truth - that is what the runtime's decisions rest on."""
        assert summary.rank_agreement

    def test_parm_quieter_than_hm_in_both_models(self, summary):
        by = {(r.benchmark, r.manager): r for r in summary.rows}
        for name in ("fft", "swaptions"):
            parm = by[(name, "PARM")]
            hm = by[(name, "HM")]
            assert hm.transient_peak_pct > 2 * parm.transient_peak_pct
            assert hm.fast_peak_pct > 2 * parm.fast_peak_pct

    def test_print(self, summary, capsys):
        print_validation(summary)
        out = capsys.readouterr().out
        assert "rank agreement = True" in out
        assert "fft" in out


class TestSummaryMechanics:
    def test_rank_agreement_tolerates_near_ties(self):
        rows = (
            ValidationRow("a", "PARM", 0.4, 8, 3.0, 3.2, 0.2),
            ValidationRow("b", "PARM", 0.4, 8, 3.1, 3.0, 0.2),  # swapped, near tie
            ValidationRow("c", "HM", 0.8, 16, 10.0, 11.0, 1.0),
        )
        assert ValidationSummary(rows).rank_agreement

    def test_rank_agreement_fails_on_real_inversion(self):
        rows = (
            ValidationRow("a", "PARM", 0.4, 8, 3.0, 12.0, 9.0),
            ValidationRow("c", "HM", 0.8, 16, 10.0, 2.0, 8.0),
        )
        assert not ValidationSummary(rows).rank_agreement
