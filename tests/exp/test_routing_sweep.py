"""Tests for the routing-policy sweep and the generic parallel map."""

import numpy as np
import pytest

from repro.exp.routing_sweep import (
    DEFAULT_POLICIES,
    SweepPoint,
    hotspot_psn,
    main,
    print_routing_sweep,
    routing_sweep,
    run_batch,
    run_point,
    uniform_random_flows,
)
from repro.chip.mesh import MeshGeometry
from repro.harness.errors import ConfigError
from repro.perf.parallel import map_tasks

SMALL = dict(
    rates=(0.1, 0.3),
    policies=("xy", "panr"),
    seeds=(1,),
    mesh_width=4,
    mesh_height=4,
    cycles=200,
)


class TestSweep:
    def test_rows_cover_grid_in_order(self):
        rows = routing_sweep(**SMALL)
        assert [(r.policy, r.injection_rate_flits) for r in rows] == [
            ("xy", 0.1), ("xy", 0.3), ("panr", 0.1), ("panr", 0.3),
        ]
        for row in rows:
            assert row.avg_latency_cycles > 0
            assert row.throughput_flits_per_cycle > 0
            assert 0 < row.delivered_pct <= 100.0

    def test_parallel_identical_to_serial(self):
        serial = routing_sweep(**SMALL, workers=1)
        parallel = routing_sweep(**SMALL, workers=2)
        assert serial == parallel

    def test_deterministic_across_calls(self):
        assert routing_sweep(**SMALL) == routing_sweep(**SMALL)

    def test_latency_rises_with_load(self):
        rows = routing_sweep(
            rates=(0.05, 0.4), policies=("xy",), seeds=(1,), cycles=600,
        )
        assert rows[1].avg_latency_cycles > rows[0].avg_latency_cycles

    def test_point_is_pure(self):
        point = SweepPoint(policy="icon", injection_rate_flits=0.2, seed=3,
                           mesh_width=4, mesh_height=4, cycles=150)
        assert run_point(point) == run_point(point)

    def test_traffic_same_pattern_for_all_policies(self):
        mesh = MeshGeometry(8, 8)
        a = uniform_random_flows(mesh, 0.1, seed=4, packet_size_flits=4)
        b = uniform_random_flows(mesh, 0.3, seed=4, packet_size_flits=4)
        assert [(f.src, f.dst) for f in a] == [(f.src, f.dst) for f in b]

    def test_hotspot_band(self):
        mesh = MeshGeometry(8, 8)
        psn = hotspot_psn(mesh)
        hot = {t for t in range(mesh.tile_count) if psn[t] > 5.0}
        assert hot == {t for t in range(mesh.tile_count)
                       if mesh.coord_of(t)[1] in (3, 4)}

    def test_print_and_cli(self, capsys):
        print_routing_sweep(routing_sweep(**SMALL))
        table = capsys.readouterr().out
        assert "panr" in table and "avg_lat[cyc]" in table
        assert main([
            "--rates", "0.1", "--policies", "xy", "--seeds", "1",
            "--cycles", "100", "--mesh", "4", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "xy" in out

    def test_default_policies_cover_paper_baselines(self):
        assert set(DEFAULT_POLICIES) == {"xy", "odd-even", "icon", "panr"}


def _double(x):
    return 2 * x


class TestMapTasks:
    def test_serial_matches_parallel_in_order(self):
        tasks = list(range(7))
        assert map_tasks(_double, tasks, workers=1) == [
            2 * t for t in tasks
        ]
        assert map_tasks(_double, tasks, workers=3) == [
            2 * t for t in tasks
        ]

    def test_workers_validated(self):
        with pytest.raises(ConfigError):
            map_tasks(_double, [1], workers=0)

    def test_unpicklable_fn_rejected(self):
        with pytest.raises(ConfigError):
            map_tasks(lambda x: x, [1, 2], workers=2)

    def test_lambda_ok_in_process(self):
        # workers=1 never pickles, so local callables are fine there.
        assert map_tasks(lambda x: x + 1, [1, 2], workers=1) == [2, 3]


class TestRunBatch:
    def points(self, policy="xy", n=4):
        return [
            SweepPoint(policy=policy, injection_rate_flits=rate, seed=seed,
                       mesh_width=4, mesh_height=4, cycles=200)
            for rate in (0.1, 0.3)
            for seed in (1, 2)
        ][:n]

    def test_batch_matches_scalar_points(self):
        points = self.points()
        assert run_batch(points) == [run_point(p) for p in points]

    def test_single_point_batch_matches_scalar(self):
        points = self.points(n=1)
        assert run_batch(points) == [run_point(points[0])]

    def test_empty_batch(self):
        assert run_batch([]) == []

    def test_mixed_policy_batch_rejected(self):
        bad = self.points("xy", 2) + self.points("odd-even", 2)
        with pytest.raises(ConfigError, match="policy"):
            run_batch(bad)

    def test_mixed_geometry_batch_rejected(self):
        a = self.points(n=1)[0]
        b = SweepPoint(policy="xy", injection_rate_flits=0.3, seed=1,
                       mesh_width=8, mesh_height=8, cycles=200)
        with pytest.raises(ConfigError):
            run_batch([a, b])

    def test_adaptive_policy_batch_rejected(self):
        with pytest.raises(ValueError, match="context-free"):
            run_batch(self.points("panr", 2))
