"""Tests for the experiment harness plumbing."""

import pytest

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType
from repro.core import HarmonicManager, ParmManager
from repro.exp.frameworks import FRAMEWORKS, Framework, framework
from repro.exp.runner import run_framework
from repro.noc.routing import IconRouting, PanrRouting, XYRouting


class TestFramework:
    def test_six_combinations(self):
        names = [f.name for f in FRAMEWORKS]
        assert names == [
            "HM+XY", "HM+ICON", "HM+PANR",
            "PARM+XY", "PARM+ICON", "PARM+PANR",
        ]

    def test_lookup_case_insensitive(self):
        assert framework("parm+panr").name == "PARM+PANR"
        with pytest.raises(KeyError):
            framework("PARM+WORMY")

    def test_factories(self):
        fw = framework("PARM+PANR")
        assert isinstance(fw.make_manager(), ParmManager)
        assert isinstance(fw.make_routing(), PanrRouting)
        fw = framework("HM+ICON")
        assert isinstance(fw.make_manager(), HarmonicManager)
        assert isinstance(fw.make_routing(), IconRouting)
        assert isinstance(framework("HM+XY").make_routing(), XYRouting)

    def test_invalid_parts_rejected(self):
        with pytest.raises(ValueError):
            Framework("XXX", "xy")
        with pytest.raises(KeyError):
            Framework("PARM", "bogus")


class TestRunner:
    @pytest.fixture(scope="class")
    def library(self):
        return ProfileLibrary()

    def test_run_framework_aggregates_seeds(self, library):
        result = run_framework(
            framework("PARM+XY"),
            WorkloadType.COMPUTE,
            arrival_interval_s=0.2,
            n_apps=4,
            seeds=(1, 2),
            library=library,
        )
        assert result.framework == "PARM+XY"
        assert result.workload == "compute"
        assert len(result.runs) == 2
        assert 0 <= result.completed <= 4
        assert result.completed + result.dropped == pytest.approx(4.0)
        assert result.total_time_s > 0
        assert result.total_time_std_s >= 0
        assert result.completed_std >= 0

    def test_loose_slack_override(self, library):
        result = run_framework(
            framework("HM+XY"),
            WorkloadType.COMPUTE,
            arrival_interval_s=0.2,
            n_apps=4,
            seeds=(1,),
            library=library,
            deadline_slack_range=(30.0, 30.0),
        )
        assert result.completed == pytest.approx(4.0)
        assert result.dropped == 0.0
