"""Tests for the experiment harness plumbing."""

import pytest

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType
from repro.core import HarmonicManager, ParmManager
from repro.exp.faults import fault_sweep
from repro.exp.frameworks import FRAMEWORKS, Framework, framework
from repro.exp.runner import run_framework
from repro.harness.errors import ConfigError
from repro.noc.routing import IconRouting, PanrRouting, XYRouting


class TestFramework:
    def test_six_combinations(self):
        names = [f.name for f in FRAMEWORKS]
        assert names == [
            "HM+XY", "HM+ICON", "HM+PANR",
            "PARM+XY", "PARM+ICON", "PARM+PANR",
        ]

    def test_lookup_case_insensitive(self):
        assert framework("parm+panr").name == "PARM+PANR"
        with pytest.raises(KeyError):
            framework("PARM+WORMY")

    def test_factories(self):
        fw = framework("PARM+PANR")
        assert isinstance(fw.make_manager(), ParmManager)
        assert isinstance(fw.make_routing(), PanrRouting)
        fw = framework("HM+ICON")
        assert isinstance(fw.make_manager(), HarmonicManager)
        assert isinstance(fw.make_routing(), IconRouting)
        assert isinstance(framework("HM+XY").make_routing(), XYRouting)

    def test_invalid_parts_rejected(self):
        with pytest.raises(ValueError):
            Framework("XXX", "xy")
        with pytest.raises(KeyError):
            Framework("PARM", "bogus")


class TestRunner:
    @pytest.fixture(scope="class")
    def library(self):
        return ProfileLibrary()

    def test_run_framework_aggregates_seeds(self, library):
        result = run_framework(
            framework("PARM+XY"),
            WorkloadType.COMPUTE,
            arrival_interval_s=0.2,
            n_apps=4,
            seeds=(1, 2),
            library=library,
        )
        assert result.framework == "PARM+XY"
        assert result.workload == "compute"
        assert len(result.runs) == 2
        assert 0 <= result.completed <= 4
        assert result.completed + result.dropped == pytest.approx(4.0)
        assert result.total_time_s > 0
        assert result.total_time_std_s >= 0
        assert result.completed_std >= 0

    def test_loose_slack_override(self, library):
        result = run_framework(
            framework("HM+XY"),
            WorkloadType.COMPUTE,
            arrival_interval_s=0.2,
            n_apps=4,
            seeds=(1,),
            library=library,
            deadline_slack_range=(30.0, 30.0),
        )
        assert result.completed == pytest.approx(4.0)
        assert result.dropped == 0.0


class TestRunnerValidation:
    """Invalid inputs fail fast with a classified ConfigError."""

    def _run(self, **overrides):
        kwargs = dict(
            fw=framework("HM+XY"),
            workload_type=WorkloadType.MIXED,
            arrival_interval_s=0.2,
            n_apps=4,
            seeds=(1,),
        )
        kwargs.update(overrides)
        return run_framework(**kwargs)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigError, match="seeds") as excinfo:
            self._run(seeds=())
        assert excinfo.value.context["framework"] == "HM+XY"
        assert excinfo.value.context["workload"] == "mixed"

    def test_generator_seeds_accepted(self):
        # tuple() coercion means one-shot iterables work too.
        result = self._run(seeds=iter([1]), n_apps=2)
        assert len(result.runs) == 1

    @pytest.mark.parametrize("n_apps", [0, -3])
    def test_nonpositive_n_apps_rejected(self, n_apps):
        with pytest.raises(ConfigError, match="n_apps"):
            self._run(n_apps=n_apps)

    @pytest.mark.parametrize(
        "interval", [0.0, -0.1, float("nan"), float("inf")]
    )
    def test_bad_arrival_interval_rejected(self, interval):
        with pytest.raises(ConfigError, match="arrival_interval_s"):
            self._run(arrival_interval_s=interval)

    def test_config_error_is_repro_error(self):
        from repro.harness.errors import ReproError

        with pytest.raises(ReproError):
            self._run(seeds=())


class TestFaultSweepValidation:
    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigError, match="seeds"):
            fault_sweep(seeds=())
        with pytest.raises(ConfigError, match="intensities"):
            fault_sweep(intensities=())

    def test_out_of_range_intensity_rejected(self):
        with pytest.raises(ConfigError, match=r"\[0, 1\]"):
            fault_sweep(intensities=(0.5, 1.5))

    def test_bad_sizing_rejected(self):
        with pytest.raises(ConfigError, match="n_apps"):
            fault_sweep(n_apps=0)
        with pytest.raises(ConfigError, match="arrival_interval_s"):
            fault_sweep(arrival_interval_s=float("nan"))


class TestFaultNocSweep:
    """Network-level fault response: grid shape, determinism, droop."""

    def _sweep(self, **overrides):
        from repro.chip.cmp import default_chip
        from repro.exp.faults import fault_noc_sweep

        kwargs = dict(
            intensities=(0.0, 1.0),
            policies=("xy", "panr"),
            seeds=(1, 2),
            cycles=300,
            chip=default_chip(4, 4),
        )
        kwargs.update(overrides)
        return fault_noc_sweep(**kwargs)

    def test_rows_cover_grid_policy_major(self):
        rows = self._sweep()
        assert [(r.policy, r.intensity) for r in rows] == [
            ("xy", 0.0), ("xy", 1.0), ("panr", 0.0), ("panr", 1.0),
        ]
        for row in rows:
            assert row.avg_latency_cycles > 0
            assert row.throughput_flits_per_cycle > 0
            assert 0 < row.delivered_pct <= 100.0

    def test_deterministic_across_calls(self):
        assert self._sweep() == self._sweep()

    def test_droop_fields_track_intensity(self):
        rows = self._sweep()
        by = {(r.policy, r.intensity): r for r in rows}
        quiet, loaded = by[("xy", 0.0)], by[("xy", 1.0)]
        # Zero intensity thins away every event; full intensity leaves
        # droop episodes active at the observation instant.
        assert quiet.droop_tiles == 0.0
        assert quiet.mean_droop_pct == 0.0
        assert loaded.droop_tiles > 0.0
        assert loaded.mean_droop_pct > 0.0

    def test_validation(self):
        from repro.exp.faults import fault_noc_sweep

        with pytest.raises(ConfigError, match="must not be empty"):
            fault_noc_sweep(seeds=())
        with pytest.raises(ConfigError, match="must not be empty"):
            fault_noc_sweep(policies=())
        with pytest.raises(ConfigError, match=r"\[0, 1\]"):
            fault_noc_sweep(intensities=(0.5, 1.5))
        with pytest.raises(ConfigError, match="positive"):
            fault_noc_sweep(cycles=0)
        with pytest.raises(ConfigError, match="positive"):
            fault_noc_sweep(injection_rate_flits=-0.1)

    def test_print_smoke(self, capsys):
        from repro.exp.faults import print_fault_noc_sweep

        print_fault_noc_sweep(self._sweep())
        out = capsys.readouterr().out
        assert "droop_tiles" in out
        assert "panr" in out
