"""Tests for rare-event importance splitting.

The acceptance criterion: at an emergency probability of ~1e-4 the
splitting estimate must land within 10x of a direct exhaustive
reference while spending no more than 10 % of the reference's replica
count.  Plus determinism, config validation, and the stall guards.
"""

import numpy as np
import pytest

from repro.exp.verify.estimands import PdnEmergencyEstimand
from repro.exp.verify.splitting import (
    SplittingConfig,
    run_splitting,
)
from repro.harness.errors import ConfigError, SolverError

#: Calibrated rare regime: P(peak PSN > 19.5 %) ~ 1e-4 at the default
#: (vdd=0.8, occupancy=0.35) configuration.
RARE_THRESHOLD_PCT = 19.5


class TestSplittingConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_per_level": 5},
            {"survivor_fraction": 0.0},
            {"survivor_fraction": 1.0},
            {"mcmc_moves": 0},
            {"max_levels": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigError):
            SplittingConfig(**kwargs)


class TestRunSplitting:
    def test_easy_event_matches_direct_estimate(self):
        # At the paper's 5 % threshold the event is common (~0.8), so
        # splitting finishes in one stage and must agree closely with
        # direct sampling.
        estimand = PdnEmergencyEstimand()
        result = run_splitting(
            estimand, config=SplittingConfig(n_per_level=2000), root_seed=0
        )
        levels = estimand.direct_levels(
            np.random.default_rng(13579), 100_000
        )
        direct = float((levels > estimand.threshold_pct).mean())
        assert result.probability == pytest.approx(direct, abs=0.05)
        assert len(result.levels) == 1

    def test_rare_event_within_10x_at_under_10pct_cost(self):
        estimand = PdnEmergencyEstimand(threshold_pct=RARE_THRESHOLD_PCT)
        result = run_splitting(
            estimand, config=SplittingConfig(n_per_level=1000), root_seed=0
        )

        n_direct = 200_000
        levels = estimand.direct_levels(
            np.random.default_rng(24680), n_direct
        )
        direct = float((levels > RARE_THRESHOLD_PCT).mean())
        assert direct > 0, "reference run saw no events; recalibrate"

        ratio = result.probability / direct
        assert 0.1 <= ratio <= 10.0
        assert result.n_evaluations <= 0.1 * n_direct
        assert result.relative_std > 0.0

    def test_deterministic_across_reruns(self):
        estimand = PdnEmergencyEstimand(threshold_pct=RARE_THRESHOLD_PCT)
        config = SplittingConfig(n_per_level=500)
        a = run_splitting(estimand, config=config, root_seed=42)
        b = run_splitting(estimand, config=config, root_seed=42)
        assert a.json_str() == b.json_str()

    def test_different_root_seed_changes_estimate(self):
        estimand = PdnEmergencyEstimand(threshold_pct=RARE_THRESHOLD_PCT)
        config = SplittingConfig(n_per_level=500)
        a = run_splitting(estimand, config=config, root_seed=1)
        b = run_splitting(estimand, config=config, root_seed=2)
        assert a.probability != b.probability

    def test_product_of_stage_probabilities(self):
        estimand = PdnEmergencyEstimand(threshold_pct=RARE_THRESHOLD_PCT)
        result = run_splitting(
            estimand, config=SplittingConfig(n_per_level=500), root_seed=7
        )
        product = 1.0
        for p in result.level_probabilities:
            product *= p
        assert result.probability == pytest.approx(product, rel=1e-12)

    def test_rejects_missing_threshold(self):
        class NoThreshold:
            name = "x"

            def spec(self):
                return {"estimand": "x"}

        with pytest.raises(ConfigError):
            run_splitting(NoThreshold())

    def test_unreachable_threshold_raises_solver_error(self):
        # Peak PSN is bounded; a threshold far above the physical range
        # must trip a stall/exhaustion guard instead of looping forever.
        estimand = PdnEmergencyEstimand(threshold_pct=10_000.0)
        with pytest.raises(SolverError):
            run_splitting(
                estimand,
                config=SplittingConfig(n_per_level=100, max_levels=8),
                root_seed=0,
            )
