"""Tests for the report generator and CLI."""

import pytest

from repro.__main__ import main
from repro.exp.report import PRESETS, generate_report


class TestPresets:
    def test_known_presets(self):
        assert set(PRESETS) == {"quick", "full"}
        assert PRESETS["full"].n_apps >= PRESETS["quick"].n_apps

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="preset"):
            generate_report(preset="gigantic")

    def test_unknown_section_rejected(self):
        with pytest.raises(KeyError, match="sections"):
            generate_report(sections=["fig99"])


class TestGenerate:
    def test_single_section_report(self):
        report = generate_report(preset="quick", sections=["overhead"])
        assert report.startswith("# PARM reproduction report")
        assert "Section 4.4 overhead" in report
        assert "um^2" in report
        assert "Fig. 1" not in report

    def test_fig1_section_contains_all_nodes(self):
        report = generate_report(preset="quick", sections=["fig1"])
        for node in ("45nm", "32nm", "22nm", "14nm", "10nm", "7nm"):
            assert node in report

    def test_extensions_section(self):
        report = generate_report(preset="quick", sections=["extensions"])
        assert "dark-silicon power budget" in report
        assert "checkpoint-period" in report
        assert "guardband" in report


class TestCli:
    def test_writes_output_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main(["--sections", "overhead", "--output", str(out)])
        assert code == 0
        assert "Section 4.4 overhead" in out.read_text()
        assert str(out) in capsys.readouterr().out

    def test_stdout_by_default(self, capsys):
        code = main(["--sections", "overhead"])
        assert code == 0
        assert "PARM reproduction report" in capsys.readouterr().out

    def test_bad_preset_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["--preset", "huge"])
