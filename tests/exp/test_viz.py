"""Tests for the ASCII renderers."""

import numpy as np
import pytest

from repro.apps.suite import ProfileLibrary
from repro.chip import default_chip
from repro.core import ParmManager
from repro.exp.viz import render_occupancy, render_placement, render_psn_heatmap
from repro.runtime.state import ChipState


@pytest.fixture(scope="module")
def chip():
    return default_chip()


@pytest.fixture(scope="module")
def decision(chip):
    profile = ProfileLibrary().get("fft")
    return profile, ParmManager().try_map(profile, 100.0, ChipState(chip))


class TestPlacement:
    def test_grid_shape(self, chip, decision):
        profile, d = decision
        art = render_placement(chip, d, profile.graph(d.dop))
        lines = art.splitlines()
        assert len(lines) == chip.mesh.height
        assert all(len(l.split()) == chip.mesh.width for l in lines)

    def test_symbol_counts_match_bins(self, chip, decision):
        profile, d = decision
        graph = profile.graph(d.dop)
        art = render_placement(chip, d, graph)
        assert art.count("H") == len(graph.high_tasks())
        assert art.count("L") == len(graph.low_tasks())
        assert art.count(".") == chip.tile_count - d.dop


class TestOccupancy:
    def test_free_chip_all_dots(self, chip):
        art = render_occupancy(chip, ChipState(chip))
        assert set(art.replace(" ", "").replace("\n", "")) == {"."}

    def test_apps_lettered_in_order(self, chip):
        state = ChipState(chip)
        state.occupy(7, {0: 0, 1: 1}, 0.4, 1.0)
        state.occupy(9, {0: 10, 1: 11}, 0.4, 1.0)
        art = render_occupancy(chip, state)
        flat = art.replace(" ", "").replace("\n", "")
        assert flat.count("a") == 2  # app 7
        assert flat.count("b") == 2  # app 9


class TestHeatmap:
    def test_emergency_marker(self, chip):
        psn = np.zeros(chip.tile_count)
        psn[5] = 7.0
        psn[6] = 3.0
        art = render_psn_heatmap(chip, psn)
        grid, legend = art.rsplit("\n", 1)
        assert grid.count("!") == 1
        assert "voltage emergency" in legend

    def test_no_threshold_mode(self, chip):
        psn = np.full(chip.tile_count, 8.0)
        art = render_psn_heatmap(chip, psn, threshold_pct=None)
        assert "!" not in art

    def test_shape_validated(self, chip):
        with pytest.raises(ValueError):
            render_psn_heatmap(chip, [1.0, 2.0])


class TestTimeline:
    def test_empty_trace(self):
        from repro.exp.viz import render_psn_timeline

        assert render_psn_timeline([]) == "(empty trace)"

    def test_timeline_shape_and_markers(self):
        from repro.exp.viz import render_psn_timeline

        trace = [(t / 10, 2.0 + 6.0 * (t == 5), 4) for t in range(11)]
        art = render_psn_timeline(trace, width=20)
        lines = art.splitlines()
        assert len(lines) == 9  # 8 levels + time axis
        assert "!" in art  # the 8% spike crosses the margin
        assert "#" in art
        assert lines[-1].strip().startswith("0s")

    def test_no_threshold(self):
        from repro.exp.viz import render_psn_timeline

        trace = [(0.0, 8.0, 1), (1.0, 8.0, 1)]
        art = render_psn_timeline(trace, threshold_pct=None)
        assert "!" not in art
