"""Tests for the stop-when-confident sequential estimator.

Covers the PR's tentpole guarantees in-process: early stopping under
the half-width rule, hard budgets, batch-size-invariant determinism,
checkpoint resume equivalence, and the failed-replica abort (a silent
seed-stream gap would bias the estimate).
"""

import json

import pytest

from repro.exp.verify.estimands import (
    PdnEmergencyEstimand,
    _REGISTRY,
    register_estimand,
)
from repro.exp.verify.sequential import (
    ReplicaCell,
    SequentialEstimator,
    StopRule,
    canonical_spec_json,
)
from repro.harness.errors import ConfigError, ReproError
from repro.harness.seeding import derive_seed


@pytest.fixture()
def failing_estimand():
    """A registered estimand whose sample() always raises."""

    class _Failing:
        name = "always-fails"
        kind = "probability"

        def spec(self):
            return {"estimand": "always-fails"}

        def sample(self, seed):
            raise ValueError("synthetic replica failure")

    register_estimand("always-fails", lambda spec: _Failing())
    yield _Failing()
    _REGISTRY.pop("always-fails", None)


class TestStopRule:
    def test_defaults_are_valid(self):
        rule = StopRule()
        assert rule.confidence == 0.95
        assert rule.min_replicas <= rule.budget

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"confidence": 1.0},
            {"confidence": 0.0},
            {"half_width": 0.0},
            {"budget": 0},
            {"batch_size": 0},
            {"min_replicas": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigError):
            StopRule(**kwargs)


class TestReplicaCell:
    def _cell(self, index=0):
        spec_json = canonical_spec_json(PdnEmergencyEstimand().spec())
        seed = derive_seed(0, "verify/ve/replica", index)
        return ReplicaCell(spec_json, index, seed)

    def test_key_is_content_hashed_and_stable(self):
        assert self._cell().key == self._cell().key
        assert self._cell(0).key != self._cell(1).key

    def test_label_names_estimand_and_index(self):
        assert self._cell(3).label == "verify/ve#3"

    def test_validate_rejects_unknown_estimand(self):
        cell = ReplicaCell(json.dumps({"estimand": "nope"}), 0, 1)
        with pytest.raises(ConfigError):
            cell.validate()


class TestSequentialEstimator:
    def test_stops_before_budget_when_confident(self):
        rule = StopRule(half_width=0.05, budget=4096, batch_size=64)
        result = SequentialEstimator(
            PdnEmergencyEstimand(), rule=rule, root_seed=0
        ).run()
        assert result.stopped_early
        assert result.n_replicas < rule.budget
        assert result.interval.half_width <= rule.half_width
        assert result.interval.contains(result.values_mean)

    def test_budget_exhaustion_is_reported(self):
        rule = StopRule(
            half_width=1e-6, budget=64, batch_size=32, min_replicas=8
        )
        result = SequentialEstimator(
            PdnEmergencyEstimand(), rule=rule, root_seed=0
        ).run()
        assert not result.stopped_early
        assert result.n_replicas == rule.budget
        assert result.batches == 2

    def test_interval_contains_exhaustive_point_estimate(self):
        import numpy as np

        estimand = PdnEmergencyEstimand()
        rule = StopRule(half_width=0.02, budget=4096)
        result = SequentialEstimator(estimand, rule=rule, root_seed=0).run()
        # Exhaustive reference over a disjoint, much larger stream.
        levels = estimand.direct_levels(
            np.random.default_rng(987654321), 200_000
        )
        reference = float((levels > estimand.threshold_pct).mean())
        assert result.interval.contains(reference)

    def test_batch_size_invariant_result(self):
        estimand = PdnEmergencyEstimand()

        def run(batch_size):
            rule = StopRule(
                half_width=1e-6,
                budget=96,
                batch_size=batch_size,
                min_replicas=8,
            )
            return SequentialEstimator(
                estimand, rule=rule, root_seed=5
            ).run()

        a, b = run(16), run(96)
        assert a.values_mean == b.values_mean
        assert a.interval.to_json() == b.interval.to_json()

    def test_method_must_match_kind(self):
        with pytest.raises(ConfigError):
            SequentialEstimator(PdnEmergencyEstimand(), method="dkw")

    def test_failed_replica_aborts_with_provenance(self, failing_estimand):
        rule = StopRule(budget=8, batch_size=4, min_replicas=2)
        estimator = SequentialEstimator(
            failing_estimand, rule=rule, root_seed=0
        )
        with pytest.raises(ReproError, match="gap in the seed stream"):
            estimator.run()


class TestCheckpointResume:
    def _run(self, checkpoint, resume=False):
        rule = StopRule(
            half_width=0.08, budget=256, batch_size=32, min_replicas=16
        )
        return SequentialEstimator(
            PdnEmergencyEstimand(),
            rule=rule,
            root_seed=3,
            checkpoint_path=checkpoint,
        ).run(resume=resume)

    def test_resume_from_partial_checkpoint_is_byte_identical(
        self, tmp_path
    ):
        reference = self._run(str(tmp_path / "ref.json"))

        # Simulate a crash: run only the first batch into a checkpoint,
        # then resume the full loop against it.
        partial_cp = str(tmp_path / "partial.json")
        rule = StopRule(
            half_width=1e-9, budget=32, batch_size=32, min_replicas=32
        )
        SequentialEstimator(
            PdnEmergencyEstimand(),
            rule=rule,
            root_seed=3,
            checkpoint_path=partial_cp,
        ).run()

        resumed = self._run(partial_cp, resume=True)
        assert resumed.json_str() == reference.json_str()

    def test_rerun_same_checkpoint_without_resume_matches(self, tmp_path):
        cp = str(tmp_path / "cp.json")
        first = self._run(cp)
        second = self._run(str(tmp_path / "cp2.json"))
        assert first.json_str() == second.json_str()


class TestBatchedSampling:
    """The batched lane path must be invisible in every result byte."""

    def _estimand(self, policy="xy"):
        from repro.exp.verify.estimands import PacketLatencyEstimand

        return PacketLatencyEstimand(
            policy=policy, mesh_width=4, mesh_height=4, cycles=300
        )

    def test_sample_batch_matches_scalar_samples(self):
        estimand = self._estimand("xy")
        seeds = [derive_seed(0, "verify/latency/replica", i)
                 for i in range(5)]
        assert estimand.sample_batch(seeds) == [
            estimand.sample(seed) for seed in seeds
        ]

    def test_sample_batch_adaptive_fallback_matches_scalar(self):
        estimand = self._estimand("panr")
        seeds = [derive_seed(0, "verify/latency/replica", i)
                 for i in range(2)]
        assert estimand.sample_batch(seeds) == [
            estimand.sample(seed) for seed in seeds
        ]

    def test_sample_batch_empty(self):
        assert self._estimand().sample_batch([]) == []

    def test_primed_run_is_byte_identical_to_scalar_run(self, monkeypatch):
        from repro.exp.verify import sequential

        estimand = self._estimand("xy")
        rule = StopRule(half_width=1e-6, budget=24, batch_size=8,
                        min_replicas=8)

        primed = SequentialEstimator(
            estimand, rule=rule, method="dkw", root_seed=3
        ).run()
        monkeypatch.setattr(
            sequential.SequentialEstimator,
            "_prime_batch",
            lambda self, cells: None,
        )
        scalar = SequentialEstimator(
            estimand, rule=rule, method="dkw", root_seed=3
        ).run()
        assert primed.values_mean == scalar.values_mean
        assert primed.interval.to_json() == scalar.interval.to_json()
        assert primed.n_replicas == scalar.n_replicas
