"""End-to-end tests: the figure entry points reproduce the paper's shapes.

These are the reproduction's acceptance tests.  They run with reduced
sizes/seeds to stay fast; the benchmarks run the full configurations.
"""

import pytest

from repro.apps.workload import WorkloadType
from repro.exp import figures
from repro.exp.figures import FIG8_FRAMEWORKS


class TestFig1:
    @pytest.fixture(scope="class")
    def rows(self):
        return figures.fig1(window_s=200e-9, dt_s=100e-12)

    def test_all_nodes_present(self, rows):
        assert [r.node for r in rows] == [
            "45nm", "32nm", "22nm", "14nm", "10nm", "7nm",
        ]

    def test_psn_grows_with_scaling(self, rows):
        peaks = [r.peak_psn_pct for r in rows]
        assert peaks == sorted(peaks)

    def test_margin_crossed_at_newest_nodes(self, rows):
        """The motivation: peak PSN exceeds the 5 % VE margin at the
        newest nodes while older nodes are safely below."""
        by_node = {r.node: r.peak_psn_pct for r in rows}
        assert by_node["45nm"] < 2.5
        assert by_node["7nm"] > 5.0


class TestFig3a:
    @pytest.fixture(scope="class")
    def rows(self):
        return figures.fig3a(vdds=(0.4, 0.6, 0.8), window_s=200e-9, dt_s=100e-12)

    def test_psn_proportional_to_vdd(self, rows):
        for kind in ("compute", "communication"):
            peaks = [r.peak_psn_pct for r in rows if r.kind == kind]
            assert peaks == sorted(peaks)

    def test_communication_noisier(self, rows):
        comm = {r.vdd: r.peak_psn_pct for r in rows if r.kind == "communication"}
        comp = {r.vdd: r.peak_psn_pct for r in rows if r.kind == "compute"}
        for vdd in comm:
            assert comm[vdd] > comp[vdd]


class TestFig3b:
    @pytest.fixture(scope="class")
    def rows(self):
        return figures.fig3b(window_s=300e-9, dt_s=100e-12)

    def test_high_low_pair_normalises_to_one(self, rows):
        by_key = {(r.pair, r.hops): r.normalised for r in rows}
        assert by_key[("H-L", 1)] == pytest.approx(1.0)

    def test_paper_orderings(self, rows):
        by_key = {(r.pair, r.hops): r.normalised for r in rows}
        # H-L interferes up to ~35 % more than H-H and L-L...
        assert by_key[("H-H", 1)] < 0.9
        assert by_key[("L-L", 1)] < by_key[("H-L", 1)]
        # ...and 2-hop separation interferes ~10 % less.
        assert by_key[("H-L", 2)] < 0.98
        assert by_key[("H-L", 2)] > 0.7


class TestFig67:
    @pytest.fixture(scope="class")
    def rows(self):
        return figures.run_fig67(
            workloads=(WorkloadType.COMPUTE, WorkloadType.COMMUNICATION),
            n_apps=10,
            seeds=(1,),
        )

    def _by(self, rows, workload):
        return {r.framework: r for r in rows if r.workload == workload}

    @pytest.mark.parametrize("workload", ["compute", "communication"])
    def test_parm_beats_hm_on_execution_time(self, rows, workload):
        by = self._by(rows, workload)
        assert (
            by["PARM+PANR"].total_time_s < by["HM+XY"].total_time_s
        )
        assert by["PARM+PANR"].improvement_vs_hm_xy_pct > 10.0

    @pytest.mark.parametrize("workload", ["compute", "communication"])
    def test_parm_has_much_lower_psn(self, rows, workload):
        by = self._by(rows, workload)
        assert by["PARM+PANR"].psn_reduction_vs_hm_xy > 1.5
        assert by["PARM+PANR"].avg_psn_pct < by["HM+XY"].avg_psn_pct

    def test_all_six_frameworks_reported(self, rows):
        by = self._by(rows, "compute")
        assert set(by) == {
            "HM+XY", "HM+ICON", "HM+PANR",
            "PARM+XY", "PARM+ICON", "PARM+PANR",
        }


class TestFig8:
    @pytest.fixture(scope="class")
    def rows(self):
        return figures.fig8(
            workloads=(WorkloadType.COMPUTE,),
            arrival_intervals_s=(0.2, 0.05),
            n_apps=10,
            seeds=(1,),
        )

    def test_framework_subset(self, rows):
        assert {r.framework for r in rows} == set(FIG8_FRAMEWORKS)

    def test_parm_completes_more_when_oversubscribed(self, rows):
        fast = {
            r.framework: r for r in rows if r.arrival_interval_s == 0.05
        }
        assert fast["PARM+PANR"].completed > fast["HM+XY"].completed

    def test_slow_arrival_is_easier_for_everyone(self, rows):
        for fw in FIG8_FRAMEWORKS:
            slow = next(
                r for r in rows
                if r.framework == fw and r.arrival_interval_s == 0.2
            )
            fast = next(
                r for r in rows
                if r.framework == fw and r.arrival_interval_s == 0.05
            )
            assert slow.completed >= fast.completed
