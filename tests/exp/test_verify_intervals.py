"""Tests for the interval estimators in ``repro.exp.verify.intervals``.

Three layers, per the PR's acceptance criteria:

* closed-form spot checks against hand-computed values;
* degenerate cases (0 or n successes, n=1, p=0/1, tiny samples);
* seeded empirical coverage: over many Bernoulli experiments the
  realised coverage of a nominal 95% interval must stay >= 93%.
"""

import math

import numpy as np
import pytest

from repro.exp.verify.intervals import (
    Interval,
    clopper_pearson,
    dkw_epsilon,
    dkw_quantile,
    hoeffding,
    wilson,
)
from repro.harness.errors import ConfigError


class TestIntervalValue:
    def test_half_width_and_contains(self):
        iv = Interval(0.5, 0.4, 0.62, 0.95, 100, "wilson")
        assert iv.half_width == pytest.approx(0.11)
        assert iv.contains(0.4) and iv.contains(0.62) and iv.contains(0.5)
        assert not iv.contains(0.39) and not iv.contains(0.63)

    def test_to_json_round_trips_plain_types(self):
        payload = wilson(7, 10).to_json()
        assert payload["method"] == "wilson"
        assert payload["n"] == 10
        assert isinstance(payload["estimate"], float)


class TestWilson:
    def test_closed_form_spot_check(self):
        # 15/100 at z = 1.959964: centre = (15 + z^2/2) / (100 + z^2),
        # half = z * sqrt(15 * 85 / 100 + z^2 / 4) / (100 + z^2).
        iv = wilson(15, 100, confidence=0.95)
        z = 1.959963985
        centre = (15 + z * z / 2) / (100 + z * z)
        half = (
            z * math.sqrt(15 * 85 / 100 + z * z / 4) / (100 + z * z)
        )
        assert iv.estimate == pytest.approx(0.15)
        assert iv.lo == pytest.approx(centre - half, abs=1e-8)
        assert iv.hi == pytest.approx(centre + half, abs=1e-8)

    def test_zero_and_all_successes_stay_in_unit_interval(self):
        lo_iv = wilson(0, 20)
        hi_iv = wilson(20, 20)
        assert lo_iv.lo == pytest.approx(0.0, abs=1e-12)
        assert lo_iv.hi > 0.0
        assert hi_iv.hi == pytest.approx(1.0, abs=1e-12)
        assert hi_iv.lo < 1.0

    def test_n_one(self):
        iv = wilson(1, 1)
        assert 0.0 <= iv.lo <= iv.estimate <= iv.hi <= 1.0

    def test_narrows_with_n(self):
        assert wilson(50, 100).half_width > wilson(500, 1000).half_width

    def test_higher_confidence_is_wider(self):
        assert (
            wilson(30, 100, confidence=0.99).half_width
            > wilson(30, 100, confidence=0.95).half_width
        )

    def test_rejects_bad_counts_and_confidence(self):
        with pytest.raises(ConfigError):
            wilson(5, 0)
        with pytest.raises(ConfigError):
            wilson(-1, 10)
        with pytest.raises(ConfigError):
            wilson(11, 10)
        with pytest.raises(ConfigError):
            wilson(5, 10, confidence=1.0)


class TestClopperPearson:
    def test_exact_edges(self):
        # 0/n: lo is exactly 0 and hi = 1 - (alpha/2)^(1/n).
        iv = clopper_pearson(0, 10)
        assert iv.lo == 0.0
        assert iv.hi == pytest.approx(1 - 0.025 ** (1 / 10), abs=1e-8)
        iv = clopper_pearson(10, 10)
        assert iv.hi == 1.0
        assert iv.lo == pytest.approx(0.025 ** (1 / 10), abs=1e-8)

    def test_contains_wilson_interval(self):
        # Clopper-Pearson is conservative: it should cover at least the
        # Wilson interval at the same confidence.
        cp = clopper_pearson(15, 100)
        wi = wilson(15, 100)
        assert cp.lo <= wi.lo + 1e-12
        assert cp.hi >= wi.hi - 1e-12

    def test_n_one(self):
        iv = clopper_pearson(1, 1)
        assert iv.lo == pytest.approx(0.025, abs=1e-9)
        assert iv.hi == 1.0


class TestHoeffding:
    def test_closed_form_half_width(self):
        # half = sqrt(ln(2/alpha) / (2n)) on the unit interval.
        iv = hoeffding(0.5, 200, confidence=0.95)
        assert iv.half_width == pytest.approx(
            math.sqrt(math.log(2 / 0.05) / 400), abs=1e-12
        )

    def test_bounds_scale_the_width(self):
        unit = hoeffding(0.5, 50)
        wide = hoeffding(5.0, 50, bounds=(0.0, 10.0))
        assert wide.half_width == pytest.approx(10 * unit.half_width)

    def test_clamps_to_bounds(self):
        iv = hoeffding(0.01, 5)
        assert iv.lo == 0.0
        assert iv.hi <= 1.0

    def test_rejects_mean_outside_bounds(self):
        with pytest.raises(ConfigError):
            hoeffding(1.5, 10)


class TestDkw:
    def test_epsilon_closed_form(self):
        assert dkw_epsilon(1000, 0.95) == pytest.approx(
            math.sqrt(math.log(2 / 0.05) / 2000), abs=1e-12
        )

    def test_median_band_on_known_sample(self):
        samples = list(range(1, 101))  # 1..100
        iv = dkw_quantile(samples, 0.5, confidence=0.95)
        assert iv.estimate == 50
        assert iv.lo < 50 < iv.hi
        assert iv.method == "dkw"

    def test_band_truncates_at_sample_extremes(self):
        iv = dkw_quantile([1.0, 2.0, 3.0], 0.99, confidence=0.95)
        assert iv.hi == 3.0
        assert iv.lo >= 1.0

    def test_rejects_empty_and_bad_quantile(self):
        with pytest.raises(ConfigError):
            dkw_quantile([], 0.5)
        with pytest.raises(ConfigError):
            dkw_quantile([1.0], 1.0)


class TestEmpiricalCoverage:
    """Seeded coverage experiments: realised >= 93% at nominal 95%."""

    N_EXPERIMENTS = 400

    def _bernoulli_coverage(self, estimator, p, n):
        rng = np.random.default_rng(20260808)
        covered = 0
        for _ in range(self.N_EXPERIMENTS):
            successes = int(rng.binomial(n, p))
            if estimator(successes, n, confidence=0.95).contains(p):
                covered += 1
        return covered / self.N_EXPERIMENTS

    @pytest.mark.parametrize("estimator", [wilson, clopper_pearson])
    @pytest.mark.parametrize("p,n", [(0.5, 100), (0.1, 200), (0.9, 150)])
    def test_bernoulli_coverage(self, estimator, p, n):
        assert self._bernoulli_coverage(estimator, p, n) >= 0.93

    def test_hoeffding_coverage_uniform_mean(self):
        rng = np.random.default_rng(7)
        covered = 0
        for _ in range(self.N_EXPERIMENTS):
            values = rng.random(80)
            iv = hoeffding(float(values.mean()), 80, confidence=0.95)
            covered += iv.contains(0.5)
        # Hoeffding is very conservative; coverage should be ~100%.
        assert covered / self.N_EXPERIMENTS >= 0.93

    def test_dkw_coverage_exponential_p90(self):
        rng = np.random.default_rng(11)
        true_p90 = -math.log(0.1)  # Exp(1) quantile
        covered = 0
        for _ in range(self.N_EXPERIMENTS):
            samples = rng.exponential(1.0, 400)
            iv = dkw_quantile(samples.tolist(), 0.9, confidence=0.95)
            covered += iv.lo <= true_p90 <= iv.hi
        assert covered / self.N_EXPERIMENTS >= 0.93
