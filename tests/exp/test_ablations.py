"""Tests for the ablation studies."""

import pytest

from repro.exp import ablations


class TestBufferThreshold:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.buffer_threshold_sweep(
            thresholds=(0.1, 0.5, 0.9), cycles=2500
        )

    def test_sweep_structure(self, rows):
        assert [r.threshold for r in rows] == [0.1, 0.5, 0.9]
        for r in rows:
            assert r.avg_latency_cycles > 0
            assert r.throughput_flits_per_cycle > 0
            assert r.noisy_traffic_flits_per_cycle >= 0

    def test_low_threshold_ignores_noise(self, rows):
        """B = 0.1 is congestion-mode almost always: far more traffic
        crosses the noisy band than at the paper's B = 0.5."""
        by_b = {r.threshold: r for r in rows}
        assert by_b[0.1].noisy_traffic_flits_per_cycle > (
            1.5 * by_b[0.5].noisy_traffic_flits_per_cycle
        )


class TestDopSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.dop_sweep(dops=(4, 8, 16, 32, 48, 64))

    def test_parallelism_helps_initially(self, rows):
        by_dop = {r.dop: r.wcet_s for r in rows}
        assert by_dop[16] < by_dop[4]
        assert by_dop[32] < by_dop[16]

    def test_returns_diminish_beyond_32(self, rows):
        """The paper caps DoP at 32: gains beyond are marginal or
        negative due to synchronisation overhead."""
        by_dop = {r.dop: r.wcet_s for r in rows}
        gain_to_32 = by_dop[16] - by_dop[32]
        gain_past_32 = by_dop[32] - by_dop[64]
        assert gain_past_32 < 0.5 * gain_to_32


class TestParmComponents:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.parm_component_ablation(n_apps=8, seeds=(1,))

    def test_variants_present(self, rows):
        assert [r.variant for r in rows] == ["PARM", "PARM-noact", "PARM-novdd"]

    def test_vdd_adaptation_is_the_big_lever(self, rows):
        """Forcing nominal Vdd must raise PSN substantially - the paper's
        central claim that DVS + DoP adaptation drives PSN down."""
        by = {r.variant: r for r in rows}
        assert by["PARM-novdd"].peak_psn_pct > 1.3 * by["PARM"].peak_psn_pct
        assert by["PARM-novdd"].avg_psn_pct > by["PARM"].avg_psn_pct


class TestDspbSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.dspb_sensitivity_sweep(
            budgets_w=(40.0, 65.0, 100.0), n_apps=8
        )

    def test_hm_gains_with_budget(self, rows):
        """HM is power-bound: raising the DsPB buys it completions."""
        by = {r.budget_w: r for r in rows}
        assert by[100.0].hm_completed > by[40.0].hm_completed

    def test_parm_insensitive_to_budget(self, rows):
        """PARM at NTC barely touches the budget - it is tile-bound."""
        done = [r.parm_completed for r in rows]
        assert max(done) - min(done) <= 2.0

    def test_thermal_model_marks_large_budgets_uncoolable(self, rows):
        by = {r.budget_w: r for r in rows}
        assert by[40.0].thermally_safe
        assert by[65.0].thermally_safe
        assert not by[100.0].thermally_safe


class TestCheckpointSweep:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablations.checkpoint_period_sweep()

    def test_monotone_components(self, rows):
        steady = [r.steady_overhead_pct for r in rows]
        loss = [r.loss_per_ve_ms for r in rows]
        assert steady == sorted(steady, reverse=True)
        assert loss == sorted(loss)

    def test_paper_period_is_near_optimal(self, rows):
        """At PARM's residual VE rate the 1 ms period minimises the
        combined cost."""
        best = min(rows, key=lambda r: r.combined_cost_pct)
        assert best.period_s in (0.5e-3, 1e-3)
        by = {r.period_s: r for r in rows}
        assert by[1e-3].combined_cost_pct <= 1.2 * best.combined_cost_pct
