"""Tests for seeded fault campaigns: determinism and coupled thinning."""

import numpy as np
import pytest

from repro.chip import default_chip
from repro.faults import (
    DEFAULT_FAULT_RATES,
    FaultCampaign,
    FaultEvent,
    FaultKind,
    FaultRates,
)


@pytest.fixture(scope="module")
def chip():
    return default_chip()


class TestFaultRates:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRates(sensor_hz=-1.0)
        with pytest.raises(ValueError):
            FaultRates(link_duration_s=0.0)
        with pytest.raises(ValueError):
            FaultRates(droop_pct=0.0)

    def test_scaled_scales_only_rates(self):
        doubled = DEFAULT_FAULT_RATES.scaled(2.0)
        assert doubled.sensor_hz == 2 * DEFAULT_FAULT_RATES.sensor_hz
        assert doubled.tile_hz == 2 * DEFAULT_FAULT_RATES.tile_hz
        assert doubled.link_duration_s == DEFAULT_FAULT_RATES.link_duration_s
        with pytest.raises(ValueError):
            DEFAULT_FAULT_RATES.scaled(-1.0)


class TestCampaign:
    def test_scheduled_sorts_events(self):
        late = FaultEvent(FaultKind.TILE_FAIL, 2.0, 1)
        early = FaultEvent(FaultKind.TILE_FAIL, 1.0, 2)
        camp = FaultCampaign.scheduled([late, early])
        assert [e.time_s for e in camp.events] == [1.0, 2.0]
        assert len(camp) == 2
        assert not camp.empty
        assert camp.count(FaultKind.TILE_FAIL) == 2
        assert camp.count(FaultKind.LINK_FAIL) == 0

    def test_sample_deterministic(self, chip):
        a = FaultCampaign.sample(chip, 10.0, np.random.default_rng(5))
        b = FaultCampaign.sample(chip, 10.0, np.random.default_rng(5))
        assert a.events == b.events
        assert not a.empty

    def test_zero_intensity_is_empty(self, chip):
        camp = FaultCampaign.sample(
            chip, 10.0, np.random.default_rng(5), intensity=0.0
        )
        assert camp.empty
        assert len(camp) == 0

    def test_intensities_are_nested(self, chip):
        """Coupled thinning: lower intensity => subset of events."""
        campaigns = {
            i: FaultCampaign.sample(
                chip, 20.0, np.random.default_rng(3), intensity=i
            )
            for i in (0.25, 0.5, 0.75, 1.0)
        }
        previous = set()
        for intensity in (0.25, 0.5, 0.75, 1.0):
            current = set(campaigns[intensity].events)
            assert previous <= current, intensity
            previous = current
        assert len(campaigns[0.25]) < len(campaigns[1.0])

    def test_events_within_horizon_and_valid(self, chip):
        camp = FaultCampaign.sample(
            chip, 5.0, np.random.default_rng(11), DEFAULT_FAULT_RATES.scaled(4)
        )
        assert camp.count(FaultKind.VRM_DROOP) > 0
        for ev in camp.events:
            assert 0.0 <= ev.time_s < 5.0
            if not ev.permanent:
                assert ev.duration_s > 0

    def test_sample_validation(self, chip):
        with pytest.raises(ValueError):
            FaultCampaign.sample(chip, 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            FaultCampaign.sample(
                chip, 1.0, np.random.default_rng(0), intensity=1.5
            )

    def test_seed_accepted_in_place_of_generator(self, chip):
        a = FaultCampaign.sample(chip, 10.0, 5)
        b = FaultCampaign.sample(chip, 10.0, np.random.default_rng(5))
        assert a.events == b.events
