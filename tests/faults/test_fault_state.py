"""Tests for FaultState: applying and expiring faults."""

import pytest

from repro.chip import default_chip
from repro.faults import FaultEvent, FaultKind, FaultState, RecoveryPolicy
from repro.noc.topology import Direction
from repro.pdn.sensors import SensorNetwork


@pytest.fixture(scope="module")
def chip():
    return default_chip()


class TestFaultState:
    def test_link_fail_applies_and_expires(self, chip):
        fs = FaultState(chip)
        ev = FaultEvent(
            FaultKind.LINK_FAIL, 1.0, (4, Direction.EAST), duration_s=1.0
        )
        assert not fs.any_noc_faults
        fs.apply(ev)
        assert (4, Direction.EAST) in fs.dead_links
        assert fs.any_noc_faults
        fs.expire(ev)
        assert not fs.dead_links
        assert not fs.any_noc_faults

    def test_router_fail_kills_tile_too(self, chip):
        fs = FaultState(chip)
        ev = FaultEvent(FaultKind.ROUTER_FAIL, 0.5, 9)
        fs.apply(ev)
        assert 9 in fs.dead_routers
        assert 9 in fs.failed_tiles
        # Permanent: expire is a no-op.
        fs.expire(ev)
        assert 9 in fs.dead_routers

    def test_droop_accumulates_per_domain(self, chip):
        fs = FaultState(chip)
        ev = FaultEvent(
            FaultKind.VRM_DROOP, 0.0, 0, duration_s=1.0, magnitude=2.0
        )
        fs.apply(ev)
        fs.apply(ev)
        domain_tiles = chip.domains.tiles_of(0)
        for tile in domain_tiles:
            assert fs.droop_pct[tile] == pytest.approx(4.0)
        other = next(
            t for t in chip.mesh.tiles() if t not in set(domain_tiles)
        )
        assert fs.droop_pct[other] == 0.0
        fs.expire(ev)
        for tile in domain_tiles:
            assert fs.droop_pct[tile] == pytest.approx(2.0)
        fs.expire(ev)
        for tile in domain_tiles:
            assert fs.droop_pct[tile] == 0.0

    def test_sensor_fault_round_trip(self, chip):
        fs = FaultState(chip)
        net = SensorNetwork()
        ev = FaultEvent(FaultKind.SENSOR_STUCK, 2.0, 5, duration_s=1.0,
                        magnitude=7.0)
        fs.apply(ev, net)
        fault = net.fault(5)
        assert fault is not None
        assert fault.kind == "stuck"
        assert fault.value_pct == 7.0
        assert fault.since_s == 2.0
        fs.expire(ev, net)
        assert net.fault(5) is None

    def test_expiry_does_not_clear_newer_fault(self, chip):
        """A transient fault expiring must not clear a fault injected
        later on the same tile (last fault wins)."""
        fs = FaultState(chip)
        net = SensorNetwork()
        old = FaultEvent(FaultKind.SENSOR_STUCK, 1.0, 5, duration_s=2.0)
        new = FaultEvent(FaultKind.SENSOR_DEAD, 2.0, 5, duration_s=2.0)
        fs.apply(old, net)
        fs.apply(new, net)
        fs.expire(old, net)  # fires at t=3, after `new` replaced it
        fault = net.fault(5)
        assert fault is not None and fault.kind == "dead"

    def test_counts_applied_faults(self, chip):
        fs = FaultState(chip)
        fs.apply(FaultEvent(FaultKind.TILE_FAIL, 0.0, 1))
        fs.apply(FaultEvent(FaultKind.TILE_FAIL, 0.0, 2))
        assert fs.faults_applied == 2
        assert fs.failed_tiles == {1, 2}


class TestRecoveryPolicy:
    def test_backoff_grows_exponentially(self):
        policy = RecoveryPolicy(backoff_initial_s=0.1, backoff_factor=2.0)
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.8)
        with pytest.raises(ValueError):
            policy.backoff_s(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_remap_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(max_total_remaps=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_initial_s=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_factor=0.5)
