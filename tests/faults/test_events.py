"""Tests for the fault taxonomy (FaultEvent validation and semantics)."""

import math

import pytest

from repro.faults import (
    PERMANENT_FAULT_KINDS,
    SENSOR_FAULT_KINDS,
    FaultEvent,
    FaultKind,
)
from repro.noc.topology import Direction


class TestFaultEvent:
    def test_transient_end_time(self):
        ev = FaultEvent(FaultKind.SENSOR_DEAD, 1.0, 3, duration_s=0.5)
        assert not ev.permanent
        assert ev.end_s == pytest.approx(1.5)

    def test_permanent_end_is_inf(self):
        ev = FaultEvent(FaultKind.TILE_FAIL, 2.0, 7)
        assert ev.permanent
        assert ev.end_s == math.inf

    def test_permanent_kinds_reject_duration(self):
        for kind in PERMANENT_FAULT_KINDS:
            with pytest.raises(ValueError):
                FaultEvent(kind, 0.0, 1, duration_s=1.0)

    def test_droop_must_be_transient_with_magnitude(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.VRM_DROOP, 0.0, 1, magnitude=2.0)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.VRM_DROOP, 0.0, 1, duration_s=1.0)
        ev = FaultEvent(
            FaultKind.VRM_DROOP, 0.0, 1, duration_s=1.0, magnitude=2.0
        )
        assert ev.magnitude == 2.0

    def test_link_target_must_be_link(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.LINK_FAIL, 0.0, 5, duration_s=1.0)
        ev = FaultEvent(
            FaultKind.LINK_FAIL, 0.0, (5, Direction.EAST), duration_s=1.0
        )
        assert ev.target == (5, Direction.EAST)

    def test_tile_kinds_reject_link_target(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.TILE_FAIL, 0.0, (5, Direction.EAST))

    def test_time_and_duration_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.TILE_FAIL, -1.0, 0)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.TILE_FAIL, math.nan, 0)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.SENSOR_DEAD, 0.0, 0, duration_s=0.0)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.SENSOR_DEAD, 0.0, 0, duration_s=math.inf)

    def test_kind_partition(self):
        assert SENSOR_FAULT_KINDS.isdisjoint(PERMANENT_FAULT_KINDS)
        assert FaultKind.SENSOR_DRIFT in SENSOR_FAULT_KINDS
        assert FaultKind.ROUTER_FAIL in PERMANENT_FAULT_KINDS
