"""Tests for the structured exception taxonomy."""

import json

import pytest

from repro.harness.errors import (
    CheckpointCorrupt,
    ConfigError,
    ReproError,
    SimTimeout,
    SolverError,
    SolverInputError,
    jsonable_context,
)


class TestTaxonomy:
    def test_subclasses_share_one_root(self):
        for cls in (ConfigError, SolverError, SimTimeout, CheckpointCorrupt):
            assert issubclass(cls, ReproError)
            assert issubclass(cls, Exception)

    def test_input_error_is_a_solver_error(self):
        # Handlers that catch SolverError keep catching input errors;
        # only the fallback ladder distinguishes the two.
        assert issubclass(SolverInputError, SolverError)
        with pytest.raises(SolverError):
            raise SolverInputError("poisoned waveform", node="t00")

    def test_message_without_context(self):
        err = ReproError("it broke")
        assert str(err) == "it broke"
        assert err.context == {}

    def test_context_is_sorted_by_key(self):
        err = SolverError("bad node", step=7, node="t00", dt_s=5e-11)
        assert list(err.context) == ["dt_s", "node", "step"]
        assert "node='t00'" in str(err)
        assert "step=7" in str(err)

    def test_catchable_as_root(self):
        with pytest.raises(ReproError):
            raise SimTimeout("too slow", deadline_s=1.0)

    def test_to_json_is_serialisable(self):
        err = ConfigError("bad seeds", framework="PARM+PANR", seeds=(1, 2))
        record = err.to_json()
        assert record["type"] == "ConfigError"
        assert record["message"] == "bad seeds"
        # Tuples are repr()-ed into strings so the record always dumps.
        text = json.dumps(record)
        assert "PARM+PANR" in text


class TestJsonableContext:
    def test_scalars_pass_through(self):
        ctx = jsonable_context(
            {"a": 1, "b": 2.5, "c": "x", "d": True, "e": None}
        )
        assert ctx == {"a": 1, "b": 2.5, "c": "x", "d": True, "e": None}

    def test_non_scalars_become_repr(self):
        ctx = jsonable_context({"seeds": (1, 2, 3)})
        assert ctx["seeds"] == repr((1, 2, 3))

    def test_keys_sorted(self):
        ctx = jsonable_context({"z": 1, "a": 2})
        assert list(ctx) == ["a", "z"]

    def test_non_finite_floats_become_repr(self):
        # The solver guards put NaN/inf into context by construction
        # (non-finite currents, vdd, condition estimates); checkpoints
        # are digested with allow_nan=False, so raw NaN/inf here would
        # crash _save_state and lose the salvage table.
        ctx = jsonable_context(
            {
                "core_current_a": float("nan"),
                "vdd": float("inf"),
                "headroom": float("-inf"),
                "fine": 1.5,
            }
        )
        assert ctx["core_current_a"] == "nan"
        assert ctx["vdd"] == "inf"
        assert ctx["headroom"] == "-inf"
        assert ctx["fine"] == 1.5
        # Must survive strict serialisation end to end.
        json.dumps(ctx, allow_nan=False)

    def test_non_finite_error_record_is_strictly_serialisable(self):
        err = SolverError(
            "non-finite tile current",
            core_current_a=float("nan"),
            vdd=float("inf"),
            tile=2,
        )
        json.dumps(err.to_json(), allow_nan=False)
