"""Tests for SeedSequence-based replica seeding (repro.harness.seeding)."""

import pytest

from repro.harness.errors import ConfigError
from repro.harness.seeding import derive_seed, derive_seeds


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 0) == derive_seed(1, "a", 0)

    def test_distinct_across_indices(self):
        seeds = {derive_seed(1, "a", i) for i in range(64)}
        assert len(seeds) == 64

    def test_distinct_across_labels(self):
        assert derive_seed(1, "verify/ve", 0) != derive_seed(
            1, "verify/latency", 0
        )

    def test_distinct_across_roots(self):
        assert derive_seed(1, "a", 0) != derive_seed(2, "a", 0)

    def test_uint64_range(self):
        for i in range(8):
            seed = derive_seed(123, "range", i)
            assert isinstance(seed, int)
            assert 0 <= seed < 2**64

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigError):
            derive_seed(1, "a", -1)


class TestDeriveSeeds:
    def test_matches_scalar_derivation(self):
        assert derive_seeds(7, "s", 4) == tuple(
            derive_seed(7, "s", i) for i in range(4)
        )

    def test_batch_size_invariance(self):
        # Replica i's seed must not depend on how many replicas are
        # drawn around it - the sequential verifier's resume re-derives
        # exactly the seeds it already ran.
        full = derive_seeds(7, "s", 10)
        assert derive_seeds(7, "s", 3, start=5) == full[5:8]
        assert derive_seeds(7, "s", 1, start=9) == (full[9],)

    def test_empty(self):
        assert derive_seeds(7, "s", 0) == ()

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            derive_seeds(7, "s", -1)

    def test_pinned_returned_verbatim(self):
        assert derive_seeds(7, "s", 3, pinned=[7001, 7002, 7003]) == (
            7001,
            7002,
            7003,
        )

    def test_pinned_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            derive_seeds(7, "s", 3, pinned=[1, 2])


class TestLegacyPins:
    def test_fault_sweep_streams_unchanged(self):
        # The fault sweep's committed behaviour pins its historical
        # additive streams through derive_seeds.
        from repro.exp.faults import _CAMPAIGN_SEED_OFFSET, _SIM_SEED_OFFSET

        seeds = (1, 2, 3)
        assert derive_seeds(
            seeds[0],
            "exp/faults/campaign",
            len(seeds),
            pinned=tuple(_CAMPAIGN_SEED_OFFSET + s for s in seeds),
        ) == (7001, 7002, 7003)
        assert derive_seeds(
            seeds[0],
            "exp/faults/sim",
            len(seeds),
            pinned=tuple(s + _SIM_SEED_OFFSET for s in seeds),
        ) == (1001, 1002, 1003)
