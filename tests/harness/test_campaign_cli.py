"""Tests for ``python -m repro campaign``: CLI plumbing and the
SIGKILL-mid-run / resume-from-checkpoint smoke path.

The kill test is the PR's acceptance criterion in miniature: a campaign
killed with SIGKILL between cells resumes from its checkpoint, re-executes
nothing that already finished, reports zero failed cells, and emits a
final result table byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness.cli import build_cells, build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[2]

#: A minimal real campaign: 2 cells, 1 seed, few apps - seconds, not
#: minutes, but long enough per cell that a poll-then-kill lands mid-run.
SMALL_CAMPAIGN = [
    "--frameworks", "HM+XY",
    "--workloads", "mixed",
    "--intervals", "0.2", "0.1",
    "--seeds", "1",
    "--n-apps", "6",
]


def campaign_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def run_cli(args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", "campaign", *args],
        cwd=REPO_ROOT,
        env=campaign_env(),
        capture_output=True,
        text=True,
        timeout=600,
        **kwargs,
    )


def checkpointed_cells(path):
    """Cell records currently in the checkpoint (empty when absent)."""
    try:
        with open(path) as handle:
            return json.load(handle)["payload"]["cells"]
    except (OSError, ValueError, KeyError):
        return {}


class TestParser:
    def test_grid_is_cartesian_product(self):
        args = build_parser().parse_args(
            ["--checkpoint", "cp.json", *SMALL_CAMPAIGN]
        )
        cells = build_cells(args)
        assert len(cells) == 2
        assert {c.arrival_interval_s for c in cells} == {0.2, 0.1}
        assert all(c.n_apps == 6 and c.seeds == (1,) for c in cells)

    def test_checkpoint_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMainInProcess:
    def test_bad_framework_exits_2(self, tmp_path, capsys):
        code = main(
            [
                "--checkpoint", str(tmp_path / "cp.json"),
                "--frameworks", "NOPE+XY",
            ]
        )
        assert code == 2
        assert "configuration error" in capsys.readouterr().err

    def test_retry_failed_requires_resume(self, tmp_path, capsys):
        code = main(
            ["--checkpoint", str(tmp_path / "cp.json"), "--retry-failed"]
        )
        assert code == 2
        assert "--retry-failed requires --resume" in capsys.readouterr().err

    def test_status_without_checkpoint(self, tmp_path, capsys):
        code = main(
            ["--checkpoint", str(tmp_path / "cp.json"), "--status"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pending" in out and "no checkpoint on disk" in out

    def test_tiny_campaign_runs_and_writes_outputs(self, tmp_path, capsys):
        cp = tmp_path / "cp.json"
        table = tmp_path / "table.json"
        report = tmp_path / "report.md"
        code = main(
            [
                "--checkpoint", str(cp),
                "--frameworks", "HM+XY",
                "--workloads", "mixed",
                "--intervals", "0.2",
                "--seeds", "1",
                "--n-apps", "2",
                "--json-out", str(table),
                "--output", str(report),
            ]
        )
        assert code == 0
        assert "1 completed, 0 failed" in capsys.readouterr().out
        data = json.loads(table.read_text())
        assert len(data["results"]) == 1
        assert data["failed_cells"] == []
        assert report.read_text().startswith("# PARM campaign report")
        # The checkpoint now reports the cell as completed.
        code = main(["--checkpoint", str(cp), "--status"])
        assert code == 0


class TestSigkillResume:
    def test_kill_mid_run_then_resume_byte_identical(self, tmp_path):
        cp = str(tmp_path / "cp.json")
        ref_cp = str(tmp_path / "ref.json")
        out = str(tmp_path / "resumed.json")
        ref_out = str(tmp_path / "reference.json")

        # Uninterrupted reference run.
        ref = run_cli(
            ["--checkpoint", ref_cp, "--json-out", ref_out, *SMALL_CAMPAIGN]
        )
        assert ref.returncode == 0, ref.stderr

        # Launch the same campaign and SIGKILL it once the checkpoint
        # records the first completed cell (the second is then mid-run).
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign",
                "--checkpoint", cp, *SMALL_CAMPAIGN,
            ],
            cwd=REPO_ROOT,
            env=campaign_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            while proc.poll() is None and len(checkpointed_cells(cp)) < 1:
                time.sleep(0.02)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()

        survived = checkpointed_cells(cp)
        assert 1 <= len(survived) <= 2
        restored = len(survived)

        # Resume: checkpointed cells must be restored, not re-executed.
        res = run_cli(
            [
                "--checkpoint", cp, "--resume", "--json-out", out,
                *SMALL_CAMPAIGN,
            ]
        )
        assert res.returncode == 0, res.stderr
        assert "2 completed, 0 failed" in res.stdout
        assert f"({restored} restored from checkpoint" in res.stdout

        resumed_bytes = Path(out).read_bytes()
        reference_bytes = Path(ref_out).read_bytes()
        assert resumed_bytes == reference_bytes
