"""Tests for the campaign supervisor: retries, watchdog, crash-safe resume."""

import json
import threading

import pytest

import repro.harness.supervisor as supervisor_module
from repro.faults.recovery import RecoveryPolicy
from repro.harness.errors import (
    CheckpointCorrupt,
    ConfigError,
    ReproError,
    SimTimeout,
    SolverError,
)
from repro.harness.supervisor import (
    CAMPAIGN_SCHEMA,
    CAMPAIGN_VERSION,
    CampaignCell,
    CampaignSupervisor,
    SupervisorPolicy,
)


def cell(framework="HM+XY", workload="mixed", interval=0.2, seeds=(1,)):
    return CampaignCell(
        framework=framework,
        workload=workload,
        arrival_interval_s=interval,
        n_apps=4,
        seeds=seeds,
    )


def fake_result(c):
    """A deterministic stand-in for a run_framework result row."""
    return {
        "cell": c.spec(),
        "key": c.key,
        "framework": c.framework,
        "workload": c.workload,
        "arrival_interval_s": c.arrival_interval_s,
        "total_time_s": 1.0 + c.arrival_interval_s,
    }


class CountingRunner:
    """Cell runner that counts invocations and fails on request."""

    def __init__(self, fail=None):
        #: cell key -> list of exceptions to raise, consumed in order.
        self.fail = dict(fail or {})
        self.calls = []

    def __call__(self, c):
        self.calls.append(c.key)
        pending = self.fail.get(c.key)
        if pending:
            raise pending.pop(0)
        return fake_result(c)


@pytest.fixture
def cp(tmp_path):
    return str(tmp_path / "campaign.json")


class TestCampaignCell:
    def test_key_is_content_hashed(self):
        a, b = cell(), cell()
        assert a.key == b.key
        assert len(a.key) == 16
        assert cell(interval=0.1).key != a.key

    def test_spec_round_trips(self):
        c = cell(seeds=(1, 2))
        assert CampaignCell.from_spec(c.spec()) == c

    def test_label(self):
        assert cell().label == "HM+XY/mixed@0.2s"

    def test_validate_rejects_bad_specs(self):
        with pytest.raises(ConfigError, match="unknown framework"):
            cell(framework="NOPE+XY").validate()
        with pytest.raises(ConfigError, match="unknown workload"):
            cell(workload="imaginary").validate()
        with pytest.raises(ConfigError, match="at least one seed"):
            cell(seeds=()).validate()
        with pytest.raises(ConfigError, match="n_apps"):
            CampaignCell("HM+XY", "mixed", 0.2, n_apps=0).validate()
        with pytest.raises(ConfigError, match="arrival_interval_s"):
            cell(interval=float("nan")).validate()


class TestPolicy:
    def test_max_attempts(self):
        policy = SupervisorPolicy(recovery=RecoveryPolicy(max_remap_retries=2))
        assert policy.max_attempts == 3

    def test_backoff_schedule_deterministic_per_cell(self):
        policy = SupervisorPolicy(recovery=RecoveryPolicy(max_remap_retries=3))
        key = cell().key
        assert policy.backoff_schedule_s(key) == policy.backoff_schedule_s(key)
        other = policy.backoff_schedule_s(cell(interval=0.1).key)
        assert policy.backoff_schedule_s(key) != other

    def test_backoff_schedule_tracks_recovery_curve(self):
        recovery = RecoveryPolicy(
            max_remap_retries=3, backoff_initial_s=0.1, backoff_factor=2.0
        )
        policy = SupervisorPolicy(recovery=recovery, jitter_fraction=0.1)
        schedule = policy.backoff_schedule_s(cell().key)
        assert len(schedule) == 3
        for i, delay in enumerate(schedule):
            base = recovery.backoff_s(i)
            assert 0.9 * base <= delay <= 1.1 * base

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(jitter_fraction=1.0)


class TestSupervisorConstruction:
    def test_empty_campaign_rejected(self, cp):
        with pytest.raises(ConfigError, match="no cells"):
            CampaignSupervisor([], cp)

    def test_duplicate_cells_rejected(self, cp):
        with pytest.raises(ConfigError, match="duplicate"):
            CampaignSupervisor([cell(), cell()], cp)

    def test_invalid_cell_rejected_before_any_run(self, cp):
        runner = CountingRunner()
        sup = CampaignSupervisor(
            [cell(), cell(framework="NOPE+XY", interval=0.1)],
            cp,
            cell_runner=runner,
        )
        with pytest.raises(ConfigError, match="unknown framework"):
            sup.run()
        assert runner.calls == []


class TestRunAndResume:
    def test_all_cells_complete(self, cp):
        cells = [cell(interval=0.2), cell(interval=0.1)]
        runner = CountingRunner()
        outcome = CampaignSupervisor(cells, cp, cell_runner=runner).run()
        assert len(outcome.completed_cells) == 2
        assert outcome.failed_cells == ()
        assert runner.calls == [c.key for c in cells]

    def test_resume_restores_without_rerunning(self, cp):
        cells = [cell(interval=0.2), cell(interval=0.1)]
        first = CountingRunner()
        baseline = CampaignSupervisor(cells, cp, cell_runner=first).run()

        second = CountingRunner()
        resumed = CampaignSupervisor(cells, cp, cell_runner=second).run(
            resume=True
        )
        assert second.calls == []
        assert resumed.restored_count == 2
        assert resumed.table_json() == baseline.table_json()

    def test_partial_checkpoint_resumes_byte_identical(self, cp, tmp_path):
        """The acceptance criterion: interrupted + resumed == uninterrupted."""
        cells = [cell(interval=0.2), cell(interval=0.1)]
        # Uninterrupted reference campaign.
        reference = CampaignSupervisor(
            cells, str(tmp_path / "ref.json"), cell_runner=CountingRunner()
        ).run()
        # "Interrupted" campaign: only the first cell ran before the kill.
        CampaignSupervisor(cells[:1], cp, cell_runner=CountingRunner()).run()

        runner = CountingRunner()
        resumed = CampaignSupervisor(cells, cp, cell_runner=runner).run(
            resume=True
        )
        assert runner.calls == [cells[1].key]
        assert resumed.restored_count == 1
        assert resumed.table_json() == reference.table_json()

    def test_fresh_run_overwrites_checkpoint(self, cp):
        cells = [cell()]
        CampaignSupervisor(cells, cp, cell_runner=CountingRunner()).run()
        runner = CountingRunner()
        CampaignSupervisor(cells, cp, cell_runner=runner).run(resume=False)
        assert runner.calls == [cells[0].key]

    def test_resume_with_missing_checkpoint_starts_fresh(self, cp):
        runner = CountingRunner()
        outcome = CampaignSupervisor(
            [cell()], cp, cell_runner=runner
        ).run(resume=True)
        assert runner.calls == [cell().key]
        assert len(outcome.completed_cells) == 1

    def test_resume_from_corrupt_checkpoint_raises(self, cp):
        CampaignSupervisor([cell()], cp, cell_runner=CountingRunner()).run()
        with open(cp) as handle:
            envelope = json.load(handle)
        envelope["payload"]["cells"] = {"tampered": {"status": "completed"}}
        with open(cp, "w") as handle:
            json.dump(envelope, handle)
        with pytest.raises(CheckpointCorrupt):
            CampaignSupervisor(
                [cell()], cp, cell_runner=CountingRunner()
            ).run(resume=True)

    def test_status_reflects_checkpoint(self, cp):
        cells = [cell(interval=0.2), cell(interval=0.1)]
        sup = CampaignSupervisor(
            cells[:1], cp, cell_runner=CountingRunner()
        )
        before = sup.status()
        assert before["exists"] is False
        assert before["pending"] == 1
        sup.run()
        full = CampaignSupervisor(cells, cp, cell_runner=CountingRunner())
        after = full.status()
        assert after["completed"] == 1
        assert after["pending"] == 1


class TestRetriesAndFailure:
    def _policy(self, retries=2, deadline_s=None):
        return SupervisorPolicy(
            recovery=RecoveryPolicy(
                max_remap_retries=retries, backoff_initial_s=0.01
            ),
            deadline_s=deadline_s,
        )

    def test_flaky_cell_recovers_with_provenance(self, cp):
        c = cell()
        runner = CountingRunner(
            fail={c.key: [SolverError("singular", node="t00", step=3)]}
        )
        outcome = CampaignSupervisor(
            [c], cp, policy=self._policy(), cell_runner=runner
        ).run()
        assert len(outcome.completed_cells) == 1
        attempt = outcome.outcomes[0].attempts[0]
        assert attempt.error_type == "SolverError"
        assert attempt.context["node"] == "t00"
        assert runner.calls == [c.key, c.key]

    def test_exhausted_retries_salvage_the_rest(self, cp):
        bad, good = cell(interval=0.2), cell(interval=0.1)
        runner = CountingRunner(
            fail={bad.key: [SolverError("boom", step=i) for i in range(3)]}
        )
        outcome = CampaignSupervisor(
            [bad, good], cp, policy=self._policy(retries=2), cell_runner=runner
        ).run()
        assert [o.cell.key for o in outcome.failed_cells] == [bad.key]
        assert [o.cell.key for o in outcome.completed_cells] == [good.key]
        failed = outcome.failed_cells[0]
        assert len(failed.attempts) == 3
        assert failed.attempts[-1].backoff_s == 0.0
        table = outcome.table()
        assert table["failed_cells"][0]["error_type"] == "SolverError"

    def test_recorded_backoff_matches_schedule(self, cp):
        c = cell()
        policy = self._policy(retries=2)
        runner = CountingRunner(
            fail={c.key: [SolverError("boom")] * 3}
        )
        slept = []
        outcome = CampaignSupervisor(
            [c], cp, policy=policy, cell_runner=runner,
            sleep_fn=slept.append,
        ).run()
        schedule = policy.backoff_schedule_s(c.key)
        attempts = outcome.failed_cells[0].attempts
        assert [a.backoff_s for a in attempts[:-1]] == schedule
        assert slept == schedule  # not slept after the final attempt

    def test_unclassified_error_is_wrapped(self, cp):
        c = cell()
        runner = CountingRunner(fail={c.key: [ValueError("raw")] * 10})
        outcome = CampaignSupervisor(
            [c], cp, policy=self._policy(retries=0), cell_runner=runner
        ).run()
        attempt = outcome.failed_cells[0].attempts[0]
        assert attempt.error_type == "ReproError"
        assert attempt.context["error_type"] == "ValueError"

    def test_failed_cell_restored_as_failed_on_resume(self, cp):
        c = cell()
        runner = CountingRunner(fail={c.key: [SolverError("boom")] * 10})
        CampaignSupervisor(
            [c], cp, policy=self._policy(retries=0), cell_runner=runner
        ).run()
        second = CountingRunner()
        resumed = CampaignSupervisor(
            [c], cp, policy=self._policy(retries=0), cell_runner=second
        ).run(resume=True)
        assert second.calls == []
        assert len(resumed.failed_cells) == 1
        assert resumed.failed_cells[0].from_checkpoint

    def test_retry_failed_reexecutes_only_failed_cells(self, cp):
        bad, good = cell(interval=0.2), cell(interval=0.1)
        runner = CountingRunner(fail={bad.key: [SolverError("boom")]})
        first = CampaignSupervisor(
            [bad, good], cp, policy=self._policy(retries=0),
            cell_runner=runner,
        ).run()
        assert [o.cell.key for o in first.failed_cells] == [bad.key]

        second = CountingRunner()  # succeeds this time
        resumed = CampaignSupervisor(
            [bad, good], cp, policy=self._policy(retries=0),
            cell_runner=second,
        ).run(resume=True, retry_failed=True)
        assert second.calls == [bad.key]  # good was restored, not rerun
        assert resumed.failed_cells == ()
        assert len(resumed.completed_cells) == 2
        # The checkpoint record was overwritten with the new outcome.
        third = CampaignSupervisor(
            [bad, good], cp, policy=self._policy(retries=0),
            cell_runner=CountingRunner(),
        ).run(resume=True)
        assert third.failed_cells == ()
        assert third.restored_count == 2

    def test_non_finite_solver_context_survives_checkpointing(self, cp):
        """The solver guards put NaN/inf into error context by
        construction; checkpointing such a failure must not crash the
        campaign (payload digests use allow_nan=False)."""
        bad, good = cell(interval=0.2), cell(interval=0.1)
        poison = SolverError(
            "non-finite tile current in PSN kernel",
            core_current_a=float("nan"),
            vdd=float("inf"),
            tile=0,
        )
        runner = CountingRunner(fail={bad.key: [poison] * 10})
        outcome = CampaignSupervisor(
            [bad, good], cp, policy=self._policy(retries=0),
            cell_runner=runner,
        ).run()
        assert [o.cell.key for o in outcome.failed_cells] == [bad.key]
        assert [o.cell.key for o in outcome.completed_cells] == [good.key]
        ctx = outcome.failed_cells[0].attempts[0].context
        assert ctx["core_current_a"] == "nan"
        assert ctx["vdd"] == "inf"
        # The checkpoint round-trips and the failure is restorable.
        resumed = CampaignSupervisor(
            [bad, good], cp, policy=self._policy(retries=0),
            cell_runner=CountingRunner(),
        ).run(resume=True)
        assert resumed.restored_count == 2
        assert resumed.table_json() == outcome.table_json()

    def test_timeout_rebuilds_shared_default_runner(self, cp, monkeypatch):
        """An abandoned (timed-out) worker keeps a reference to the
        runner it was started with; the supervisor must hand retries a
        fresh default runner so the two never share mutable state."""
        c = cell()
        release = threading.Event()
        built = []

        def fake_default_runner():
            index = len(built)
            built.append(index)

            def runner(_cell):
                if index == 0:  # only the first runner hangs
                    release.wait(10.0)
                return fake_result(_cell)

            return runner

        monkeypatch.setattr(
            supervisor_module, "default_cell_runner", fake_default_runner
        )
        outcome = CampaignSupervisor(
            [c], cp, policy=self._policy(retries=1, deadline_s=0.05)
        ).run()
        release.set()
        assert built == [0, 1]  # fresh runner built after the timeout
        assert len(outcome.completed_cells) == 1
        assert outcome.outcomes[0].attempts[0].error_type == "SimTimeout"

    def test_watchdog_times_out_hung_cell(self, cp):
        c = cell()
        release = threading.Event()

        def hang(_cell):
            release.wait(30.0)
            return fake_result(_cell)

        outcome = CampaignSupervisor(
            [c],
            cp,
            policy=self._policy(retries=0, deadline_s=0.05),
            cell_runner=hang,
        ).run()
        release.set()
        failed = outcome.failed_cells[0]
        assert failed.attempts[0].error_type == "SimTimeout"
        assert failed.attempts[0].context["deadline_s"] == 0.05

    def test_watchdog_passes_fast_cells_through(self, cp):
        outcome = CampaignSupervisor(
            [cell()],
            cp,
            policy=self._policy(deadline_s=30.0),
            cell_runner=CountingRunner(),
        ).run()
        assert len(outcome.completed_cells) == 1

    def test_watchdog_propagates_worker_errors(self, cp):
        c = cell()
        runner = CountingRunner(fail={c.key: [SimTimeout("inner")] * 10})
        outcome = CampaignSupervisor(
            [c],
            cp,
            policy=self._policy(retries=0, deadline_s=30.0),
            cell_runner=runner,
        ).run()
        assert outcome.failed_cells[0].attempts[0].error_message == "inner"


class TestTable:
    def test_table_schema_and_determinism(self, cp):
        cells = [cell(interval=0.2), cell(interval=0.1)]
        outcome = CampaignSupervisor(
            cells, cp, cell_runner=CountingRunner()
        ).run()
        table = outcome.table()
        assert table["schema"] == CAMPAIGN_SCHEMA
        assert table["version"] == CAMPAIGN_VERSION
        assert len(table["results"]) == 2
        # Canonical serialisation round-trips and is byte-stable.
        text = outcome.table_json()
        assert text == json.dumps(
            json.loads(text), sort_keys=True, indent=2
        ) + "\n"
