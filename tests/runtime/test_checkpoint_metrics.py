"""Tests for the checkpoint cost model and run metrics."""

import pytest

from repro.runtime.checkpoint import CheckpointPolicy
from repro.runtime.metrics import AppRecord, RunMetrics


class TestCheckpointPolicy:
    def test_paper_defaults(self):
        policy = CheckpointPolicy()
        assert policy.period_s == pytest.approx(1e-3)
        assert policy.checkpoint_cycles == 256
        assert policy.rollback_cycles == 10000

    def test_dilation_small_but_positive(self):
        policy = CheckpointPolicy()
        dilation = policy.execution_dilation(1e9)
        # 256 cycles per 1e6-cycle period: 0.0256 % overhead.
        assert dilation == pytest.approx(1.000256)

    def test_rollback_penalty_dominated_by_reexecution(self):
        policy = CheckpointPolicy()
        penalty = policy.rollback_penalty_s(1e9)
        assert penalty == pytest.approx(10e-6 + 0.5e-3)

    def test_slower_clock_costs_more(self):
        policy = CheckpointPolicy()
        assert policy.rollback_penalty_s(0.5e9) > policy.rollback_penalty_s(2e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(period_s=0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(checkpoint_cycles=-1)
        with pytest.raises(ValueError):
            CheckpointPolicy().execution_dilation(0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy().rollback_penalty_s(-1.0)


class TestAppRecord:
    def test_lifecycle_flags(self):
        rec = AppRecord(0, "fft", arrival_s=0.0, deadline_s=1.0)
        assert not rec.completed and not rec.dropped
        rec.finished_s = 0.9
        assert rec.completed and rec.met_deadline
        late = AppRecord(1, "fft", arrival_s=0.0, deadline_s=1.0)
        late.finished_s = 1.5
        assert late.completed and not late.met_deadline
        dropped = AppRecord(2, "fft", arrival_s=0.0, deadline_s=1.0)
        dropped.dropped_s = 0.4
        assert dropped.dropped and not dropped.completed


class TestRunMetrics:
    def test_counts(self):
        m = RunMetrics()
        for i in range(3):
            m.apps[i] = AppRecord(i, "x", 0.0, 1.0)
        m.apps[0].finished_s = 0.5
        m.apps[1].dropped_s = 0.5
        assert m.completed_count == 1
        assert m.dropped_count == 1
        assert m.deadline_met_count == 1

    def test_psn_interval_accounting(self):
        m = RunMetrics()
        m.record_psn_interval(1.0, [2.0, 4.0], peak_pct=6.0)
        assert m.peak_psn_pct == 6.0
        assert m.avg_psn_pct == pytest.approx(3.0)
        m.record_psn_interval(3.0, [1.0], peak_pct=2.0)
        # Weighted: (1*2 + 1*4 + 3*1) / (2 + 3) tile-seconds.
        assert m.avg_psn_pct == pytest.approx(9.0 / 5.0)
        assert m.peak_psn_pct == 6.0  # running maximum

    def test_empty_interval_ignored(self):
        m = RunMetrics()
        m.record_psn_interval(0.0, [5.0], peak_pct=1.0)
        assert m.avg_psn_pct == 0.0
        with pytest.raises(ValueError):
            m.record_psn_interval(-1.0, [], 0.0)
