"""Runtime fault-recovery integration tests.

Exercises the checkpoint-rollback + re-mapping path end to end: tile
failures evict and re-place applications, exhausted retries fail an
application cleanly instead of raising, an absent/empty campaign leaves
the simulation bit-identical to the fault-free code path, and a seeded
campaign is fully deterministic.
"""

import pytest

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import ApplicationArrival, WorkloadType, generate_workload
from repro.chip import default_chip
from repro.core import ParmManager
from repro.faults import (
    DEFAULT_FAULT_RATES,
    FaultCampaign,
    FaultEvent,
    FaultKind,
    RecoveryPolicy,
)
from repro.noc.routing import make_routing
from repro.runtime import RuntimeSimulator


@pytest.fixture(scope="module")
def library():
    return ProfileLibrary()


@pytest.fixture(scope="module")
def chip():
    return default_chip()


def simulate(chip, workload, routing="panr", seed=7, **kw):
    sim = RuntimeSimulator(
        chip, ParmManager(), make_routing(routing), seed=seed, **kw
    )
    return sim.run(workload)


def domain_kill(chip, domains, time_s):
    """TILE_FAIL events for every tile of the given domains."""
    return [
        FaultEvent(FaultKind.TILE_FAIL, time_s, tile)
        for d in domains
        for tile in chip.domains.tiles_of(d)
    ]


def app_signature(rec):
    return (
        rec.mapped_s,
        rec.finished_s,
        rec.dropped_s,
        rec.failed_s,
        rec.vdd,
        rec.dop,
        rec.ve_count,
        rec.remap_count,
    )


class TestTileFaultRecovery:
    def test_tile_fault_remaps_and_completes(self, library, chip):
        """Killing 8 of 15 domains under a 32-thread app guarantees an
        eviction (pigeonhole); the app must re-map onto the surviving
        domains and still finish."""
        w = [ApplicationArrival(0, library.get("fft"), 0.0, 100.0)]
        camp = FaultCampaign.scheduled(domain_kill(chip, range(8), 0.02))
        m = simulate(
            chip,
            w,
            faults=camp,
            recovery=RecoveryPolicy(max_total_remaps=64),
        )
        rec = m.apps[0]
        assert m.completed_count == 1
        assert rec.completed and rec.degraded
        assert rec.remap_count >= 1
        assert m.remap_count >= 1
        assert m.fault_count == 32
        assert m.failed_count == 0

    def test_recovery_costs_wall_clock_time(self, library, chip):
        """A recovered run can never finish earlier than the fault-free
        one: rollback and restart penalties are real time."""
        w = [ApplicationArrival(0, library.get("fft"), 0.0, 100.0)]
        base = simulate(chip, w)
        camp = FaultCampaign.scheduled(domain_kill(chip, range(8), 0.02))
        faulted = simulate(
            chip,
            w,
            faults=camp,
            recovery=RecoveryPolicy(max_total_remaps=64),
        )
        assert faulted.total_time_s > base.total_time_s

    def test_retries_exhausted_fails_cleanly(self, library, chip):
        """With every domain dead no re-map can succeed; the app must be
        abandoned via failed_s, not an exception."""
        w = [ApplicationArrival(0, library.get("fft"), 0.0, 100.0)]
        camp = FaultCampaign.scheduled(domain_kill(chip, range(15), 0.02))
        m = simulate(chip, w, faults=camp)
        rec = m.apps[0]
        assert m.completed_count == 0
        assert m.failed_count == 1
        assert rec.failed and rec.failed_s is not None
        assert not rec.completed and not rec.dropped
        # The immediate attempt plus backoff retries were spent.
        assert m.remap_retry_count >= 1


class TestOtherFaultKinds:
    def test_sensor_faults_do_not_break_panr(self, library, chip):
        """Every sensor dead: PANR degrades to deterministic routing but
        the workload still completes."""
        events = [
            FaultEvent(FaultKind.SENSOR_DEAD, 0.0, t)
            for t in chip.mesh.tiles()
        ]
        w = generate_workload(
            WorkloadType.MIXED, 0.1, n_apps=6, seed=2, library=library
        )
        m = simulate(chip, w, faults=FaultCampaign.scheduled(events))
        assert m.fault_count == chip.mesh.tile_count
        assert m.completed_count + m.dropped_count == 6
        assert m.failed_count == 0

    def test_vrm_droop_raises_emergencies(self, library, chip):
        """A chip-wide droop pushes PSN over the VE margin, so the
        faulted run must see strictly more emergencies."""
        w = [ApplicationArrival(0, library.get("fft"), 0.0, 100.0)]
        base = simulate(chip, w)
        droops = [
            FaultEvent(
                FaultKind.VRM_DROOP, 0.01, d, duration_s=0.2, magnitude=8.0
            )
            for d in range(chip.domains.domain_count)
        ]
        m = simulate(chip, w, faults=FaultCampaign.scheduled(droops))
        assert m.total_ve_count > base.total_ve_count
        assert m.completed_count == 1


class TestZeroFaultEquivalence:
    def test_empty_campaign_bit_identical(self, library, chip):
        """faults=None, an empty scheduled campaign, and a sampled
        zero-intensity campaign must all produce bit-identical metrics
        (the fault machinery stays fully dormant)."""
        w = generate_workload(
            WorkloadType.MIXED, 0.1, n_apps=8, seed=5, library=library
        )
        base = simulate(chip, w)
        for camp in (
            None,
            FaultCampaign.scheduled([]),
            FaultCampaign.sample(chip, 2.0, 11, intensity=0.0),
        ):
            m = simulate(chip, w, faults=camp)
            assert m.total_time_s == base.total_time_s
            assert m.peak_psn_pct == base.peak_psn_pct
            assert m.avg_psn_pct == base.avg_psn_pct
            assert m.total_ve_count == base.total_ve_count
            assert m.fault_count == 0 and m.remap_count == 0
            for aid, rec in base.apps.items():
                assert app_signature(m.apps[aid]) == app_signature(rec)


class TestCampaignDeterminism:
    def test_same_seed_same_campaign_identical_metrics(self, library, chip):
        """Two runs with identically seeded campaigns and simulator
        seeds must agree on every metric (the repeatability guarantee
        the sweep experiment rests on)."""
        w = generate_workload(
            WorkloadType.MIXED, 0.1, n_apps=8, seed=6, library=library
        )
        runs = []
        for _ in range(2):
            camp = FaultCampaign.sample(
                chip, 1.5, 13, DEFAULT_FAULT_RATES.scaled(3.0)
            )
            runs.append(simulate(chip, w, seed=9, faults=camp))
        a, b = runs
        assert a.total_time_s == b.total_time_s
        assert a.peak_psn_pct == b.peak_psn_pct
        assert a.avg_psn_pct == b.avg_psn_pct
        assert a.total_ve_count == b.total_ve_count
        assert a.fault_count == b.fault_count and a.fault_count > 0
        assert a.remap_count == b.remap_count
        assert a.remap_retry_count == b.remap_retry_count
        assert set(a.apps) == set(b.apps)
        for aid in a.apps:
            assert app_signature(a.apps[aid]) == app_signature(b.apps[aid])
