"""Tests for the CSV export helpers."""

import csv
import io

import pytest

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType, generate_workload
from repro.chip import default_chip
from repro.core import ParmManager
from repro.exp.frameworks import framework
from repro.exp.runner import run_framework
from repro.noc.routing import make_routing
from repro.runtime import RuntimeSimulator
from repro.runtime.export import (
    APP_COLUMNS,
    app_records_csv,
    run_summary_csv,
    write_app_records_csv,
)


@pytest.fixture(scope="module")
def metrics():
    library = ProfileLibrary()
    workload = generate_workload(
        WorkloadType.MIXED, 0.1, n_apps=6, seed=3, library=library
    )
    sim = RuntimeSimulator(
        default_chip(), ParmManager(), make_routing("panr"), seed=1
    )
    return sim.run(workload)


class TestAppRecordsCsv:
    def test_header_and_row_count(self, metrics):
        rows = list(csv.reader(io.StringIO(app_records_csv(metrics))))
        assert rows[0] == list(APP_COLUMNS)
        assert len(rows) == 1 + len(metrics.apps)

    def test_status_values(self, metrics):
        rows = list(csv.DictReader(io.StringIO(app_records_csv(metrics))))
        statuses = {r["status"] for r in rows}
        assert statuses <= {"completed", "late", "dropped", "unfinished"}
        completed_rows = [r for r in rows if r["status"] in ("completed", "late")]
        assert len(completed_rows) == metrics.completed_count

    def test_rows_sorted_by_app_id(self, metrics):
        rows = list(csv.DictReader(io.StringIO(app_records_csv(metrics))))
        ids = [int(r["app_id"]) for r in rows]
        assert ids == sorted(ids)

    def test_write_to_file(self, metrics, tmp_path):
        path = tmp_path / "apps.csv"
        write_app_records_csv(metrics, str(path))
        # read_text translates the csv module's \r\n line endings.
        on_disk = path.read_text().replace("\r\n", "\n")
        assert on_disk == app_records_csv(metrics).replace("\r\n", "\n")


class TestRunSummaryCsv:
    def test_summary_round_trip(self):
        result = run_framework(
            framework("PARM+XY"),
            WorkloadType.COMPUTE,
            arrival_interval_s=0.2,
            n_apps=4,
            seeds=(1,),
        )
        text = run_summary_csv([result])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 1
        assert rows[0]["framework"] == "PARM+XY"
        assert float(rows[0]["total_time_s"]) == pytest.approx(
            result.total_time_s
        )

    def test_no_header_mode(self):
        assert run_summary_csv([], header=False) == ""
