"""Tests for the open-ended service engine: seeded arrivals,
determinism, the admission/shedding/preemption/re-admission control
plane, epoch-chaining purity, and the O(1)-state guarantee under
sustained overload.
"""

import json

import numpy as np
import pytest

from repro.apps.suite import ProfileLibrary
from repro.chip import default_chip
from repro.runtime.service.arrivals import (
    DiurnalProcess,
    MmppProcess,
    PoissonProcess,
    UniformStream,
    arrival_process_from_spec,
)
from repro.runtime.service.config import (
    AdmissionPolicy,
    ServiceClass,
    ServiceConfig,
)
from repro.runtime.service.engine import ServiceEngine, ServiceState
from repro.runtime.simulator import SimulatorContext


@pytest.fixture(scope="module")
def chip():
    return default_chip()


@pytest.fixture(scope="module")
def library():
    return ProfileLibrary()


@pytest.fixture(scope="module")
def context(chip):
    return SimulatorContext.for_chip(chip)


def make_config(**kw):
    kw.setdefault("arrival", PoissonProcess(rate_hz=6.0))
    kw.setdefault("epochs", 2)
    kw.setdefault("epoch_duration_s", 1.0)
    kw.setdefault("root_seed", 5)
    return ServiceConfig(**kw)


def run_epochs(config, chip, library, context, epochs=None):
    engine = ServiceEngine(
        config, chip=chip, library=library, context=context
    )
    state = ServiceState(config)
    for _ in range(epochs if epochs is not None else config.epochs):
        engine.run_epoch(state)
    return engine, state


class TestArrivalProcesses:
    def draw_gaps(self, process, n=4000, seed=1):
        stream = UniformStream(np.random.default_rng(seed))
        now, gaps = 0.0, []
        for _ in range(n):
            gap = process.next_gap_s(now, stream)
            gaps.append(gap)
            now += gap
        return gaps

    def test_poisson_mean_gap(self):
        gaps = self.draw_gaps(PoissonProcess(rate_hz=8.0))
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1.0 / 8.0, rel=0.1)

    def test_mmpp_bursts_beat_calm(self):
        mmpp = MmppProcess(
            calm_rate_hz=2.0,
            burst_rate_hz=40.0,
            calm_dwell_s=1.0,
            burst_dwell_s=1.0,
        )
        poisson = PoissonProcess(rate_hz=2.0)
        assert sum(self.draw_gaps(mmpp)) < sum(self.draw_gaps(poisson))

    def test_diurnal_period_shapes_rate(self):
        diurnal = DiurnalProcess(base_rate_hz=4.0, period_s=8.0)
        gaps = self.draw_gaps(diurnal, n=2000)
        assert all(g > 0 for g in gaps)

    @pytest.mark.parametrize(
        "process",
        [
            PoissonProcess(rate_hz=3.0),
            MmppProcess(
                calm_rate_hz=1.0,
                burst_rate_hz=9.0,
                calm_dwell_s=2.0,
                burst_dwell_s=0.5,
            ),
            DiurnalProcess(base_rate_hz=2.0, period_s=10.0),
        ],
    )
    def test_spec_round_trip(self, process):
        clone = arrival_process_from_spec(process.spec())
        assert clone.spec() == process.spec()
        stream_a = UniformStream(np.random.default_rng(3))
        stream_b = UniformStream(np.random.default_rng(3))
        gaps_a = [process.next_gap_s(0.1 * i, stream_a) for i in range(50)]
        gaps_b = [clone.next_gap_s(0.1 * i, stream_b) for i in range(50)]
        assert gaps_a == gaps_b


class TestDeterminism:
    def test_identical_runs_identical_bytes(self, chip, library, context):
        config = make_config()
        _, a = run_epochs(config, chip, library, context)
        _, b = run_epochs(config, chip, library, context)
        assert json.dumps(a.to_json(), sort_keys=True) == json.dumps(
            b.to_json(), sort_keys=True
        )

    def test_seed_changes_the_run(self, chip, library, context):
        _, a = run_epochs(make_config(root_seed=5), chip, library, context)
        _, b = run_epochs(make_config(root_seed=6), chip, library, context)
        assert a.to_json() != b.to_json()

    def test_state_round_trips_through_json(self, chip, library, context):
        config = make_config()
        _, state = run_epochs(config, chip, library, context, epochs=1)
        data = json.loads(json.dumps(state.to_json(), sort_keys=True))
        clone = ServiceState.from_json(data, config)
        assert clone.to_json() == state.to_json()

    def test_epoch_chaining_is_pure(self, chip, library, context):
        # Serialise after epoch 1, rebuild a *fresh* engine, resume, and
        # the final state must match the uninterrupted 3-epoch run byte
        # for byte - the property SIGKILL + --resume rides on.
        config = make_config(epochs=3)
        _, straight = run_epochs(config, chip, library, context)

        engine_a, partial = run_epochs(
            config, chip, library, context, epochs=1
        )
        frozen = json.loads(json.dumps(partial.to_json(), sort_keys=True))
        engine_b = ServiceEngine(
            config, chip=chip, library=library, context=context
        )
        resumed = ServiceState.from_json(frozen, config)
        for _ in range(2):
            engine_b.run_epoch(resumed)
        assert json.dumps(resumed.to_json(), sort_keys=True) == json.dumps(
            straight.to_json(), sort_keys=True
        )


class TestControlPlane:
    def test_admission_rejects_over_caps(self, chip, library, context):
        config = make_config(
            arrival=PoissonProcess(rate_hz=200.0),
            admission=AdmissionPolicy(max_total_queue=8, max_readmit=4),
            epochs=1,
        )
        _, state = run_epochs(config, chip, library, context)
        stats = state.stats
        assert stats.total("rejected") > 0
        assert state.backlog() <= 8
        assert len(state.readmit) <= 4

    def test_queue_caps_respected_at_every_epoch(self, chip, library, context):
        config = make_config(arrival=PoissonProcess(rate_hz=60.0), epochs=3)
        engine = ServiceEngine(
            config, chip=chip, library=library, context=context
        )
        state = ServiceState(config)
        for _ in range(config.epochs):
            engine.run_epoch(state)
            assert state.backlog() <= config.admission.max_total_queue
            for c in config.classes:
                assert len(state.queues[c.name]) <= c.queue_cap
            assert len(state.readmit) <= config.admission.max_readmit

    def test_saturation_sheds_and_preempts(self, chip, library, context):
        # A PSN-oblivious mapper under heavy load: the control plane
        # must shed best-effort work and preempt it for SLA classes.
        config = make_config(
            framework="HM+XY",
            arrival=PoissonProcess(rate_hz=30.0),
            epochs=3,
        )
        _, state = run_epochs(config, chip, library, context)
        stats = state.stats
        assert stats.total("shed") > 0
        assert stats.total("preempted") > 0
        assert stats.total("readmitted") > 0
        # Best-effort work pays the price; SLA classes keep completing.
        assert stats.cls("gold").counters["shed"] == 0
        assert stats.cls("gold").counters["preempted"] == 0
        assert stats.cls("gold").counters["completed"] > 0

    def test_light_load_needs_no_control_plane(self, chip, library, context):
        config = make_config(arrival=PoissonProcess(rate_hz=1.0), epochs=2)
        _, state = run_epochs(config, chip, library, context)
        stats = state.stats
        assert stats.total("shed") == 0
        assert stats.total("rejected") == 0
        assert stats.total("completed") > 0
        assert stats.rate_fraction("sla_met", "completed") == 1.0


class TestOverloadO1State:
    def test_state_size_independent_of_arrival_count(
        self, chip, library, context
    ):
        # ~200x more arrivals must not grow the serialised state or the
        # stats leaf count: queues, re-admission set and running set are
        # all capped, and every completed app folds into P-square
        # summaries.  (The 1M-arrival variant runs in the benchmark
        # suite; this is the same property at test-sized load.)
        light_cfg = make_config(
            arrival=PoissonProcess(rate_hz=10.0), epochs=1
        )
        heavy_cfg = make_config(
            arrival=PoissonProcess(rate_hz=2000.0), epochs=1
        )
        _, light = run_epochs(light_cfg, chip, library, context)
        _, heavy = run_epochs(heavy_cfg, chip, library, context)
        assert heavy.stats.total("arrived") > 100 * light.stats.total(
            "arrived"
        )
        assert heavy.stats.scalar_count() == light.stats.scalar_count()
        heavy_bytes = len(json.dumps(heavy.to_json(), sort_keys=True))
        light_bytes = len(json.dumps(light.to_json(), sort_keys=True))
        # The serialised states differ only in the capped live sets, so
        # they stay the same order of magnitude despite the 200x load.
        assert heavy_bytes < 4 * light_bytes
        assert heavy_bytes < 150_000
