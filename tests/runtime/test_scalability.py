"""End-to-end runs on platforms beyond the paper's 10x6 / 7 nm point."""

import pytest

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType, generate_workload
from repro.chip.cmp import ChipDescription
from repro.chip.dvfs import VddLadder
from repro.chip.mesh import MeshGeometry
from repro.chip.technology import technology
from repro.core import ParmManager
from repro.noc.routing import make_routing
from repro.runtime.simulator import RuntimeSimulator


@pytest.mark.parametrize(
    "width,height",
    [(4, 4), (12, 8), (16, 6)],
)
def test_parm_runs_on_other_mesh_sizes(width, height):
    chip = ChipDescription(
        mesh=MeshGeometry(width, height),
        tech=technology("7nm"),
        vdd_ladder=VddLadder.paper_default(),
        dark_silicon_budget_w=65.0 / 60 * width * height,
    )
    library = ProfileLibrary()
    workload = generate_workload(
        WorkloadType.MIXED,
        0.15,
        n_apps=5,
        seed=1,
        library=library,
        deadline_slack_range=(30.0, 30.0),
    )
    sim = RuntimeSimulator(chip, ParmManager(), make_routing("panr"), seed=2)
    metrics = sim.run(workload)
    assert metrics.completed_count + metrics.dropped_count == 5
    # On roomy chips with loose deadlines everything completes.
    if width * height >= 60:
        assert metrics.completed_count == 5


@pytest.mark.parametrize("node", ["14nm", "10nm"])
def test_parm_runs_on_other_technology_nodes(node):
    tech = technology(node)
    ladder = VddLadder.from_range(tech.vdd_ntc, tech.vdd_nominal, 0.1)
    chip = ChipDescription(
        mesh=MeshGeometry(10, 6),
        tech=tech,
        vdd_ladder=ladder,
        dark_silicon_budget_w=65.0,
    )
    library = ProfileLibrary(tech=tech, vdds=tuple(ladder))
    workload = generate_workload(
        WorkloadType.COMPUTE,
        0.15,
        n_apps=4,
        seed=1,
        library=library,
        deadline_slack_range=(30.0, 30.0),
    )
    sim = RuntimeSimulator(chip, ParmManager(), make_routing("panr"), seed=2)
    metrics = sim.run(workload)
    assert metrics.completed_count == 4
    # PARM still prefers the node's NTC floor under loose deadlines.
    vdds = {r.vdd for r in metrics.apps.values() if r.vdd is not None}
    assert min(vdds) == pytest.approx(tech.vdd_ntc)
