"""Edge-case tests for checkpointing, migration and failed-tile state.

Covers the corners the fault-recovery path leans on: zero/invalid
checkpoint periods, migration when no feasible destination exists, and
the ChipState invariants around permanently failed tiles.
"""

import pytest

from repro.chip import default_chip
from repro.runtime.checkpoint import CheckpointPolicy
from repro.runtime.migration import (
    MigrationPolicy,
    ReactiveMigrationPolicy,
    pick_migration_target,
    plan_compaction,
)
from repro.runtime.state import ChipState


@pytest.fixture(scope="module")
def chip():
    return default_chip()


class TestCheckpointEdges:
    def test_zero_period_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(period_s=0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(period_s=-1e-3)

    def test_negative_overheads_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(checkpoint_cycles=-1.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(rollback_cycles=-1.0)

    def test_dilation_formula_and_validation(self):
        policy = CheckpointPolicy(
            period_s=1e-3, checkpoint_cycles=256.0, rollback_cycles=10000.0
        )
        f = 1e9
        assert policy.execution_dilation(f) == pytest.approx(
            1.0 + (256.0 / f) / 1e-3
        )
        assert policy.rollback_penalty_s(f) == pytest.approx(
            10000.0 / f + 0.5e-3
        )
        with pytest.raises(ValueError):
            policy.execution_dilation(0.0)
        with pytest.raises(ValueError):
            policy.rollback_penalty_s(-1.0)

    def test_zero_overhead_checkpointing_is_free(self):
        policy = CheckpointPolicy(checkpoint_cycles=0.0, rollback_cycles=0.0)
        assert policy.execution_dilation(1e9) == 1.0
        # Only the half-period re-execution remains.
        assert policy.rollback_penalty_s(1e9) == pytest.approx(
            0.5 * policy.period_s
        )


class TestMigrationEdges:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            MigrationPolicy(per_task_cost_s=-1.0)
        with pytest.raises(ValueError):
            MigrationPolicy(max_compactions=0)
        with pytest.raises(ValueError):
            ReactiveMigrationPolicy(trigger_pct=0.0)
        with pytest.raises(ValueError):
            ReactiveMigrationPolicy(max_moves=0)

    def test_target_on_idle_chip(self, chip):
        state = ChipState(chip)
        target = pick_migration_target(state, 0, 0.4)
        assert target is not None and target != 0
        # Prefers distance from the hotspot on an otherwise equal chip.
        assert chip.mesh.manhattan(target, 0) > 1

    def test_no_target_when_chip_full(self, chip):
        state = ChipState(chip)
        state.occupy(
            0,
            {i: t for i, t in enumerate(chip.mesh.tiles())},
            0.4,
            0.0,
        )
        assert pick_migration_target(state, 5, 0.4) is None

    def test_no_target_when_all_domains_vdd_incompatible(self, chip):
        """Free tiles exist but every partially occupied domain runs at
        another voltage, so a 0.4 V thread has nowhere to go."""
        state = ChipState(chip)
        state.occupy(
            0,
            {
                d: chip.domains.tiles_of(d)[0]
                for d in range(chip.domains.domain_count)
            },
            0.7,
            0.0,
        )
        assert pick_migration_target(state, 3, 0.4) is None

    def test_no_target_when_only_candidate_is_hot_tile(self, chip):
        """The hotspot itself is never a destination even when it is the
        only voltage-compatible free tile."""
        hot = 0
        hot_domain = chip.domains.domain_of(hot)
        state = ChipState(chip)
        # Fill the rest of the hot domain at the thread's Vdd and poison
        # every other domain with an incompatible voltage.
        others = [t for t in chip.domains.tiles_of(hot_domain) if t != hot]
        state.occupy(0, {i: t for i, t in enumerate(others)}, 0.4, 0.0)
        state.occupy(
            1,
            {
                d: chip.domains.tiles_of(d)[0]
                for d in range(chip.domains.domain_count)
                if d != hot_domain
            },
            0.7,
            0.0,
        )
        assert pick_migration_target(state, hot, 0.4) is None

    def test_compaction_of_empty_chip_is_trivial(self, chip):
        assert plan_compaction(ChipState(chip), {}) == {}


class TestFailedTileState:
    def test_failed_tiles_excluded_from_queries(self, chip):
        dead = list(chip.domains.tiles_of(0))
        state = ChipState(chip, failed_tiles=dead)
        assert state.failed_tiles() == set(dead)
        assert all(t not in state.free_tiles() for t in dead)
        assert 0 not in state.free_domains()
        assert state.is_failed(dead[0])

    def test_cannot_occupy_or_move_to_failed_tile(self, chip):
        state = ChipState(chip, failed_tiles=[0])
        with pytest.raises(ValueError):
            state.occupy(0, {0: 0}, 0.4, 0.0)
        state.occupy(1, {0: 1}, 0.4, 0.0)
        with pytest.raises(ValueError):
            state.move_task(1, 0, 0)

    def test_fail_tile_requires_vacancy(self, chip):
        state = ChipState(chip)
        state.occupy(0, {0: 7}, 0.4, 0.0)
        with pytest.raises(ValueError):
            state.fail_tile(7)
        state.release(0)
        state.fail_tile(7)
        assert state.is_failed(7)

    def test_invalid_failed_tile_rejected(self, chip):
        with pytest.raises(Exception):
            ChipState(chip, failed_tiles=[chip.mesh.tile_count])
