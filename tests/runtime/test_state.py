"""Tests for the chip occupancy state."""

import pytest

from repro.chip import default_chip
from repro.runtime.state import ChipState


@pytest.fixture
def state():
    return ChipState(default_chip())


class TestQueries:
    def test_initially_all_free(self, state):
        assert len(state.free_tiles()) == 60
        assert len(state.free_domains()) == 15
        assert state.used_power_w() == 0.0
        assert state.available_power_w() == pytest.approx(65.0)
        assert state.occupant(0) is None
        assert state.domain_vdd(0) is None
        assert state.running_apps() == []


class TestOccupy:
    def test_basic_occupy_release(self, state):
        state.occupy(1, {0: 0, 1: 1, 2: 2, 3: 3}, 0.4, 5.0)
        assert state.occupant(0).app_id == 1
        assert state.occupant(0).task_id == 0
        assert state.occupant(0).vdd == 0.4
        assert 0 not in state.free_tiles()
        assert state.used_power_w() == pytest.approx(5.0)
        assert state.domain_vdd(0) == pytest.approx(0.4)
        assert state.tiles_of_app(1) == {0: 0, 1: 1, 2: 2, 3: 3}
        state.release(1)
        assert len(state.free_tiles()) == 60
        assert state.domain_vdd(0) is None
        assert state.used_power_w() == 0.0

    def test_free_domains_requires_all_four_tiles(self, state):
        state.occupy(1, {0: 0}, 0.4, 1.0)
        assert 0 not in state.free_domains()
        assert len(state.free_domains()) == 14

    def test_double_occupy_tile_rejected(self, state):
        state.occupy(1, {0: 5}, 0.4, 1.0)
        with pytest.raises(ValueError, match="occupied"):
            state.occupy(2, {0: 5}, 0.4, 1.0)

    def test_duplicate_app_rejected(self, state):
        state.occupy(1, {0: 5}, 0.4, 1.0)
        with pytest.raises(ValueError, match="already placed"):
            state.occupy(1, {0: 6}, 0.4, 1.0)

    def test_two_tasks_one_tile_rejected(self, state):
        with pytest.raises(ValueError, match="one tile"):
            state.occupy(1, {0: 5, 1: 5}, 0.4, 1.0)

    def test_domain_voltage_conflict_rejected(self, state):
        state.occupy(1, {0: 0}, 0.4, 1.0)
        # Tile 1 is in domain 0, which now runs at 0.4 V.
        with pytest.raises(ValueError, match="domain"):
            state.occupy(2, {0: 1}, 0.8, 1.0)
        # Same voltage is fine (HM shares domains at nominal Vdd).
        state.occupy(3, {0: 1}, 0.4, 1.0)

    def test_power_budget_enforced(self, state):
        with pytest.raises(ValueError, match="budget"):
            state.occupy(1, {0: 0}, 0.4, 66.0)
        state.occupy(1, {0: 0}, 0.4, 60.0)
        with pytest.raises(ValueError, match="budget"):
            state.occupy(2, {0: 1}, 0.4, 6.0)

    def test_release_unknown_app_rejected(self, state):
        with pytest.raises(ValueError, match="not placed"):
            state.release(42)

    def test_release_frees_domain_only_when_empty(self, state):
        state.occupy(1, {0: 0}, 0.4, 1.0)
        state.occupy(2, {0: 1}, 0.4, 1.0)
        state.release(1)
        assert state.domain_vdd(0) == pytest.approx(0.4)  # app 2 remains
        state.release(2)
        assert state.domain_vdd(0) is None
