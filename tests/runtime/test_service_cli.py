"""End-to-end tests of ``python -m repro service``: exit codes, status
inspection, and the headline robustness property - SIGKILL mid-campaign
followed by ``--resume`` produces byte-identical traffic JSON.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.runtime.service.cli import main as service_main

ENV = {**os.environ, "PYTHONPATH": "src"}

#: Heavy enough that the campaign outlives the kill window: sustained
#: overload across many short epochs.
CAMPAIGN = [
    "--rate", "60", "--epochs", "10", "--epoch-s", "0.5", "--seed", "3",
]


def run_cli(args):
    return subprocess.run(
        [sys.executable, "-m", "repro", "service", *args],
        capture_output=True,
        text=True,
        env=ENV,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        timeout=600,
    )


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


class TestArgumentErrors:
    def test_missing_checkpoint_exits_2(self, capsys):
        with pytest.raises(SystemExit) as info:
            service_main([])
        assert info.value.code == 2

    def test_unknown_framework_exits_2(self, tmp_path, capsys):
        code = service_main(
            [
                "--checkpoint", str(tmp_path / "cp.json"),
                "--framework", "NOPE+XY",
            ]
        )
        assert code == 2
        assert "configuration error" in capsys.readouterr().err

    def test_corrupt_checkpoint_exits_2(self, tmp_path, capsys):
        path = tmp_path / "cp.json"
        path.write_text("not json {")
        code = service_main(
            ["--checkpoint", str(path), "--status"]
        )
        assert code == 2
        assert "checkpoint error" in capsys.readouterr().err

    def test_status_without_checkpoint_reports_pending(self, tmp_path, capsys):
        code = service_main(
            ["--checkpoint", str(tmp_path / "cp.json"), "--status"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "every epoch is pending" in out


class TestSigkillResume:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        # Reference: one uninterrupted campaign.
        ref_cp = str(tmp_path / "ref.json")
        ref_json = str(tmp_path / "ref_traffic.json")
        ref = run_cli(
            ["--checkpoint", ref_cp, "--json-out", ref_json, *CAMPAIGN]
        )
        assert ref.returncode == 0, ref.stderr

        # Victim: same campaign, SIGKILLed once the first epoch has been
        # checkpointed (polling the file beats guessing a sleep).
        victim_cp = str(tmp_path / "victim.json")
        victim_json = str(tmp_path / "victim_traffic.json")
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(__file__))
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "service",
                "--checkpoint", victim_cp, "--json-out", victim_json,
                *CAMPAIGN,
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=ENV,
            cwd=repo_root,
        )
        deadline = time.time() + 300
        while time.time() < deadline:
            if os.path.exists(victim_cp) or proc.poll() is not None:
                break
            time.sleep(0.005)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)

        killed_mid_run = proc.returncode == -signal.SIGKILL
        assert os.path.exists(victim_cp), "no checkpoint survived the kill"
        if killed_mid_run:
            # The kill landed mid-campaign; the victim cannot have
            # written its final traffic JSON yet.
            assert not os.path.exists(victim_json)

        resumed = run_cli(
            [
                "--checkpoint", victim_cp, "--resume",
                "--json-out", victim_json, *CAMPAIGN,
            ]
        )
        assert resumed.returncode == 0, resumed.stderr
        assert read_bytes(victim_json) == read_bytes(ref_json)

        # Zero failed epochs, every epoch completed.
        status = run_cli(["--checkpoint", victim_cp, "--status"])
        assert status.returncode == 0
        assert "completed: 10" in status.stdout
        assert "failed: 0" in status.stdout

        # The payload is canonical JSON with the documented sections.
        payload = json.loads(read_bytes(ref_json))
        assert set(payload) == {
            "classes", "config", "final_state", "schema", "totals",
            "version",
        }
        assert payload["totals"]["arrived"] > 0
