"""Tests for the migration/defragmentation extension."""

import pytest

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType, generate_workload
from repro.chip import default_chip
from repro.core import ParmManager
from repro.noc.routing import make_routing
from repro.runtime import RuntimeSimulator
from repro.runtime.migration import (
    MigrationPolicy,
    moved_task_count,
    plan_compaction,
)
from repro.runtime.state import ChipState


@pytest.fixture(scope="module")
def library():
    return ProfileLibrary()


@pytest.fixture(scope="module")
def chip():
    return default_chip()


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationPolicy(per_task_cost_s=-1.0)
        with pytest.raises(ValueError):
            MigrationPolicy(max_compactions=0)


class TestPlanCompaction:
    def test_fragmented_state_compacts(self, library, chip):
        """Two small apps placed at opposite chip corners leave no
        contiguous region; compaction re-places them adjacently."""
        profile = library.get("blackscholes")
        state = ChipState(chip)
        decisions = {}
        manager = ParmManager()
        # Place app 0 normally, app 1 manually at the far corner.
        d0 = manager.try_map(profile, 100.0, state)
        state.occupy(0, d0.task_to_tile, d0.vdd, d0.power_w)
        decisions[0] = (profile, d0)
        far = chip.domains.tiles_of(14)
        graph = profile.graph(4)
        d1_tiles = {t.task_id: far[i] for i, t in enumerate(graph.tasks())}
        from repro.core.base import MappingDecision

        d1 = MappingDecision(
            vdd=d0.vdd,
            dop=4,
            task_to_tile=d1_tiles,
            power_w=profile.power_w(d0.vdd, 4),
        )
        state.occupy(1, d1.task_to_tile, d1.vdd, d1.power_w)
        decisions[1] = (profile, d1)

        replacements = plan_compaction(state, decisions)
        assert replacements is not None
        assert set(replacements) == {0, 1}
        # Operating points preserved.
        for aid, (prof, old) in decisions.items():
            assert replacements[aid].vdd == old.vdd
            assert replacements[aid].dop == old.dop

    def test_moved_task_count(self):
        from repro.core.base import MappingDecision

        a = MappingDecision(0.4, 4, {0: 0, 1: 1, 2: 2, 3: 3}, 1.0)
        b = MappingDecision(0.4, 4, {0: 0, 1: 1, 2: 8, 3: 9}, 1.0)
        assert moved_task_count(a, a) == 0
        assert moved_task_count(a, b) == 2


class TestRuntimeIntegration:
    def _run(self, library, chip, migration):
        workload = generate_workload(
            WorkloadType.MIXED,
            0.1,
            n_apps=14,
            seed=6,
            library=library,
        )
        sim = RuntimeSimulator(
            chip,
            ParmManager(),
            make_routing("panr"),
            migration=migration,
            seed=11,
        )
        return sim.run(workload)

    def test_migration_never_hurts_completions(self, library, chip):
        base = self._run(library, chip, migration=None)
        migrated = self._run(library, chip, migration=MigrationPolicy())
        assert migrated.completed_count >= base.completed_count
        assert base.compaction_count == 0

    def test_parm_needs_no_migration(self, library, chip):
        """The module-level finding: PARM's contiguity-free allocator
        never hits a fragmentation block, so compaction never fires -
        the paper's "minimize the software overhead due to ... thread
        migration" claim, measured."""
        migrated = self._run(library, chip, migration=MigrationPolicy())
        assert migrated.compaction_count == 0
        assert migrated.total_migrated_tasks == 0

    def test_compaction_budget_respected(self, library, chip):
        migrated = self._run(
            library, chip, migration=MigrationPolicy(max_compactions=1)
        )
        assert migrated.compaction_count <= 1
