"""Integration tests for the discrete-event runtime simulator."""

import pytest

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import ApplicationArrival, WorkloadType, generate_workload
from repro.chip import default_chip
from repro.core import HarmonicManager, ParmManager
from repro.noc.routing import make_routing
from repro.pdn.emergencies import VoltageEmergencyPolicy
from repro.runtime import RuntimeSimulator


@pytest.fixture(scope="module")
def library():
    return ProfileLibrary()


@pytest.fixture(scope="module")
def chip():
    return default_chip()


def simulate(chip, manager, routing, workload, seed=7, **kw):
    sim = RuntimeSimulator(chip, manager, make_routing(routing), seed=seed, **kw)
    return sim.run(workload)


class TestSingleApp:
    def test_one_app_completes(self, library, chip):
        w = [
            ApplicationArrival(
                0, library.get("fft"), arrival_s=0.0, deadline_s=100.0
            )
        ]
        m = simulate(chip, ParmManager(), "panr", w)
        assert m.completed_count == 1
        assert m.dropped_count == 0
        rec = m.apps[0]
        assert rec.mapped_s == 0.0
        assert rec.vdd == pytest.approx(0.4)  # loose deadline -> NTC
        assert rec.dop == 32
        assert 0.05 < m.total_time_s < 2.0

    def test_impossible_deadline_dropped(self, library, chip):
        profile = library.get("fft")
        w = [ApplicationArrival(0, profile, 0.0, deadline_s=1e-4)]
        m = simulate(chip, ParmManager(), "xy", w)
        assert m.dropped_count == 1
        assert m.completed_count == 0

    def test_tight_deadline_forces_high_vdd(self, library, chip):
        profile = library.get("fft")
        best_low = min(profile.wcet_s(0.4, d) for d in profile.supported_dops)
        w = [ApplicationArrival(0, profile, 0.0, deadline_s=best_low * 0.8)]
        m = simulate(chip, ParmManager(), "xy", w)
        assert m.completed_count == 1
        assert m.apps[0].vdd > 0.4


class TestQueueBehaviour:
    def test_fcfs_blocks_until_resources_free(self, library, chip):
        """Two 32-thread apps cannot both hold 8 domains; the second maps
        only after the first frees resources or a smaller DoP fits."""
        profile = library.get("swaptions")
        w = [
            ApplicationArrival(0, profile, 0.0, 100.0),
            ApplicationArrival(1, profile, 0.0, 100.0),
        ]
        m = simulate(chip, ParmManager(), "xy", w)
        assert m.completed_count == 2
        a, b = m.apps[0], m.apps[1]
        # The second app either got fewer domains or waited.
        assert b.dop < 32 or b.mapped_s > a.mapped_s

    def test_oversubscription_drops_some(self, library, chip):
        w = generate_workload(
            WorkloadType.MIXED, 0.05, n_apps=12, seed=3, library=library
        )
        m = simulate(chip, ParmManager(), "panr", w)
        assert m.completed_count + m.dropped_count == 12
        assert m.dropped_count > 0

    def test_all_apps_accounted(self, library, chip):
        w = generate_workload(
            WorkloadType.COMPUTE, 0.1, n_apps=8, seed=4, library=library
        )
        for manager in (ParmManager(), HarmonicManager()):
            m = simulate(chip, manager, "xy", w)
            assert m.completed_count + m.dropped_count == 8


class TestPsnAndEmergencies:
    def test_hm_noisier_than_parm(self, library, chip):
        """The core Fig. 7 contrast, end to end."""
        w = generate_workload(
            WorkloadType.MIXED,
            0.1,
            n_apps=8,
            seed=5,
            library=library,
            deadline_slack_range=(20.0, 20.0),
        )
        parm = simulate(chip, ParmManager(), "panr", w)
        hm = simulate(chip, HarmonicManager(), "xy", w)
        assert hm.peak_psn_pct > 1.5 * parm.peak_psn_pct
        assert hm.avg_psn_pct > parm.avg_psn_pct
        assert hm.total_ve_count > parm.total_ve_count

    def test_disabling_emergencies_speeds_up_hm(self, library, chip):
        w = generate_workload(
            WorkloadType.COMPUTE,
            0.1,
            n_apps=6,
            seed=6,
            library=library,
            deadline_slack_range=(20.0, 20.0),
        )
        normal = simulate(chip, HarmonicManager(), "xy", w)
        no_ve = simulate(
            chip,
            HarmonicManager(),
            "xy",
            w,
            ve_policy=VoltageEmergencyPolicy(rate_per_pct_s=0.0),
        )
        assert no_ve.total_ve_count == 0
        assert no_ve.total_time_s < normal.total_time_s

    def test_deterministic_given_seed(self, library, chip):
        w = generate_workload(
            WorkloadType.MIXED, 0.1, n_apps=6, seed=8, library=library
        )
        a = simulate(chip, ParmManager(), "panr", w, seed=9)
        b = simulate(chip, ParmManager(), "panr", w, seed=9)
        assert a.total_time_s == b.total_time_s
        assert a.total_ve_count == b.total_ve_count
        assert a.peak_psn_pct == b.peak_psn_pct

    def test_ve_records_attached_to_apps(self, library, chip):
        w = generate_workload(
            WorkloadType.COMMUNICATION,
            0.1,
            n_apps=6,
            seed=10,
            library=library,
            deadline_slack_range=(20.0, 20.0),
        )
        m = simulate(chip, HarmonicManager(), "xy", w)
        assert m.total_ve_count == sum(r.ve_count for r in m.apps.values())


class TestStreamingStats:
    def test_aggregates_match_legacy_and_records_drop(self, library, chip):
        w = generate_workload(
            WorkloadType.MIXED, 0.05, n_apps=12, seed=3, library=library
        )
        legacy = simulate(chip, ParmManager(), "panr", w)
        stream = simulate(
            chip, ParmManager(), "panr", w, streaming_stats=True
        )
        # Same aggregates through the counting properties...
        assert stream.completed_count == legacy.completed_count
        assert stream.dropped_count == legacy.dropped_count
        assert stream.failed_count == legacy.failed_count
        assert stream.deadline_met_count == legacy.deadline_met_count
        assert stream.total_migrated_tasks == legacy.total_migrated_tasks
        assert stream.total_time_s == legacy.total_time_s
        assert stream.peak_psn_pct == legacy.peak_psn_pct
        assert stream.avg_psn_pct == legacy.avg_psn_pct
        assert stream.total_ve_count == legacy.total_ve_count
        # ...but no per-app records survive: every terminal record was
        # folded into the O(1) counters.
        assert stream.apps == {}
        assert stream.retired_count == len(w)
        assert legacy.retired_count == 0
        assert len(legacy.apps) == len(w)

    def test_retire_refuses_live_records(self):
        from repro.runtime.metrics import AppRecord, RunMetrics

        m = RunMetrics(streaming=True)
        m.apps[0] = AppRecord(0, "fft", arrival_s=0.0, deadline_s=1.0)
        with pytest.raises(ValueError, match="not terminal"):
            m.retire(0)
        m.retire(99)  # unknown ids are ignored
