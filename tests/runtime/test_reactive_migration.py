"""Tests for the Orchestrator-style reactive migration baseline."""

import pytest

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType, generate_workload
from repro.chip import default_chip
from repro.core import OrchestratorManager, ParmManager
from repro.noc.routing import make_routing
from repro.runtime import RuntimeSimulator
from repro.runtime.migration import ReactiveMigrationPolicy, pick_migration_target
from repro.runtime.state import ChipState


@pytest.fixture(scope="module")
def library():
    return ProfileLibrary()


@pytest.fixture(scope="module")
def chip():
    return default_chip()


class TestMoveTask:
    def test_move_updates_occupancy_and_domains(self, chip):
        state = ChipState(chip)
        state.occupy(1, {0: 0, 1: 1}, 0.8, 2.0)
        state.move_task(1, 0, 20)
        assert state.occupant(0) is None
        assert state.occupant(20).task_id == 0
        assert state.domain_vdd(chip.domains.domain_of(20)) == 0.8
        # Domain 0 still holds task 1 at tile 1.
        assert state.domain_vdd(0) == 0.8
        state.move_task(1, 1, 21)
        assert state.domain_vdd(0) is None  # now fully vacated

    def test_move_validation(self, chip):
        state = ChipState(chip)
        state.occupy(1, {0: 0}, 0.8, 1.0)
        state.occupy(2, {0: 40}, 0.4, 1.0)
        with pytest.raises(ValueError, match="no task"):
            state.move_task(1, 9, 5)
        with pytest.raises(ValueError, match="occupied"):
            state.move_task(1, 0, 40)
        with pytest.raises(ValueError, match="domain"):
            state.move_task(1, 0, 41)  # domain of 40 runs at 0.4 V
        state.move_task(1, 0, 0)  # no-op move is fine


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReactiveMigrationPolicy(trigger_pct=0.0)
        with pytest.raises(ValueError):
            ReactiveMigrationPolicy(max_moves=0)
        with pytest.raises(ValueError):
            ReactiveMigrationPolicy(cooldown_s=-1.0)

    def test_target_prefers_idle_domains(self, chip):
        state = ChipState(chip)
        # Occupy three tiles of domain 0; the hot tile is tile 0.
        state.occupy(1, {0: 0, 1: 1, 2: 10}, 0.8, 2.0)
        target = pick_migration_target(state, hot_tile=0, vdd=0.8)
        assert target is not None
        # An entirely idle domain exists, so the target's domain is idle.
        d = chip.domains.domain_of(target)
        assert all(
            state.occupant(t) in (None,)
            for t in chip.domains.tiles_of(d)
        )

    def test_no_target_on_full_chip(self, chip):
        state = ChipState(chip)
        state.occupy(1, {i: i for i in range(60)}, 0.8, 10.0)
        assert pick_migration_target(state, 0, 0.8) is None


class TestEndToEnd:
    def test_reactive_scheme_cuts_emergencies_but_not_to_parm_level(
        self, library, chip
    ):
        """The paper's Section 2 argument, measured: correction beats
        no correction, prevention (PARM) beats correction."""
        workload = generate_workload(
            WorkloadType.MIXED,
            0.1,
            n_apps=10,
            seed=1,
            library=library,
            deadline_slack_range=(30.0, 30.0),
        )

        def run(manager, reactive):
            sim = RuntimeSimulator(
                chip,
                manager,
                make_routing("xy"),
                reactive_migration=reactive,
                seed=5,
            )
            return sim.run(workload)

        orch = run(OrchestratorManager(), None)
        reactive = run(OrchestratorManager(), ReactiveMigrationPolicy())
        parm = run(ParmManager(), None)

        assert reactive.reactive_move_count > 0
        assert reactive.total_ve_count < orch.total_ve_count
        assert parm.total_ve_count < 0.2 * reactive.total_ve_count
        assert parm.avg_psn_pct < reactive.avg_psn_pct

    def test_move_budget_respected(self, library, chip):
        workload = generate_workload(
            WorkloadType.MIXED, 0.1, n_apps=8, seed=2, library=library
        )
        sim = RuntimeSimulator(
            chip,
            OrchestratorManager(),
            make_routing("xy"),
            reactive_migration=ReactiveMigrationPolicy(max_moves=3),
            seed=5,
        )
        metrics = sim.run(workload)
        assert metrics.reactive_move_count <= 3
