"""Fault interaction under load: the service's robustness control plane
must keep its invariants when a router dies and sensors go stale while
the chip is saturated (the ISSUE's compound-fault scenario).
"""

import pytest

from repro.apps.suite import ProfileLibrary
from repro.chip import default_chip
from repro.runtime.service.arrivals import PoissonProcess
from repro.runtime.service.config import ServiceConfig, ServiceFault
from repro.runtime.service.engine import ServiceEngine, ServiceState
from repro.runtime.simulator import SimulatorContext


@pytest.fixture(scope="module")
def chip():
    return default_chip()


@pytest.fixture(scope="module")
def library():
    return ProfileLibrary()


@pytest.fixture(scope="module")
def context(chip):
    return SimulatorContext.for_chip(chip)


FAULTS = (
    # One dead router plus two untrustworthy sensors, injected together
    # while the arrival rate keeps the chip saturated.
    ServiceFault(time_s=0.30, kind="router_fail", target=5),
    ServiceFault(time_s=0.30, kind="sensor_dead", target=2),
    ServiceFault(time_s=0.35, kind="sensor_stuck", target=3, value_pct=0.5),
)


def run_service(chip, library, context, framework, faults=()):
    config = ServiceConfig(
        framework=framework,
        arrival=PoissonProcess(rate_hz=12.0),
        epochs=4,
        epoch_duration_s=1.0,
        root_seed=11,
        faults=tuple(faults),
    )
    engine = ServiceEngine(
        config, chip=chip, library=library, context=context
    )
    state = ServiceState(config)
    per_epoch = []
    for _ in range(config.epochs):
        engine.run_epoch(state)
        per_epoch.append(
            {
                "completed": state.stats.total("completed"),
                "running_tiles": [
                    tile
                    for entry in state.running.values()
                    for tile in entry["task_to_tile"].values()
                ],
                "failed_tiles": list(state.failed_tiles),
            }
        )
    return engine, state, per_epoch


class TestFaultInteractionUnderLoad:
    def test_compound_faults_while_saturated(self, chip, library, context):
        engine, state, per_epoch = run_service(
            chip, library, context, "HM+XY", faults=FAULTS
        )
        stats = state.stats

        # The whole fault script was applied exactly once.
        assert state.applied_faults == len(FAULTS)
        assert stats.fault_count == len(FAULTS)
        assert state.failed_tiles == [5]

        # Shedding engaged under the saturated, noisy regime (HM+XY runs
        # well above the PSN threshold, so running best-effort work is
        # shed even though two sensors are untrustworthy - invalid
        # readings fall back to the true level, never to silence).
        assert stats.total("shed") > 0
        assert stats.shed_events > 0

        # No application was ever admitted onto the dead router's tile:
        # the failed tile appears in no placement at any epoch boundary
        # after the fault.
        for snapshot in per_epoch[1:]:
            assert 5 in snapshot["failed_tiles"]
            assert 5 not in snapshot["running_tiles"]

        # Recovery drains the backlog: the service keeps completing work
        # after the fault burst, and the evicted app either re-entered
        # via the re-admission queue or terminated cleanly.
        assert per_epoch[-1]["completed"] > per_epoch[0]["completed"]
        assert stats.total("completed") > 0
        assert len(state.readmit) <= engine.config.admission.max_readmit
        assert state.backlog() <= engine.config.admission.max_total_queue

    def test_accounting_survives_the_faults(self, chip, library, context):
        # Every arrival is accounted for: terminal counters plus the
        # still-live population plus queue-sheds (the only terminal
        # transition folded into the mixed "shed" counter) cover the
        # arrived total exactly.
        _, state, _ = run_service(
            chip, library, context, "HM+XY", faults=FAULTS
        )
        stats = state.stats
        terminal = (
            stats.total("completed")
            + stats.total("rejected")
            + stats.total("dropped")
            + stats.total("failed")
        )
        live = (
            state.backlog() + len(state.running) + len(state.readmit)
        )
        queue_sheds = stats.total("arrived") - terminal - live
        assert 0 <= queue_sheds <= stats.total("shed")

    def test_faults_only_hurt(self, chip, library, context):
        # The same seed and load without the fault script completes at
        # least as much work - the script is doing real damage.
        _, faulted, _ = run_service(
            chip, library, context, "PARM+PANR", faults=FAULTS
        )
        _, clean, _ = run_service(chip, library, context, "PARM+PANR")
        assert clean.stats.fault_count == 0
        assert clean.stats.total("completed") >= faulted.stats.total(
            "completed"
        )
