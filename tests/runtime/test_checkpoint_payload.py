"""Tests for the versioned, checksummed checkpoint payload envelope."""

import json
import os

import pytest

from repro.harness.errors import CheckpointCorrupt
from repro.runtime.checkpoint import (
    dump_payload,
    load_payload,
    payload_digest,
    save_payload,
)

SCHEMA = "test-schema"
VERSION = 3


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "cp.json")


class TestDigest:
    def test_insertion_order_independent(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )

    def test_content_sensitive(self):
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


class TestRoundTrip:
    def test_save_load(self, path):
        payload = {"cells": {"abc": {"status": "completed"}}, "n": 4}
        save_payload(path, payload, schema=SCHEMA, version=VERSION)
        assert load_payload(path, schema=SCHEMA, version=VERSION) == payload

    def test_no_tmp_file_left_behind(self, path):
        save_payload(path, {"x": 1}, schema=SCHEMA, version=VERSION)
        assert not os.path.exists(path + ".tmp")

    def test_envelope_carries_all_keys(self, path):
        save_payload(path, {"x": 1}, schema=SCHEMA, version=VERSION)
        with open(path) as handle:
            envelope = json.load(handle)
        assert set(envelope) == {"digest", "payload", "schema", "version"}
        assert envelope["schema"] == SCHEMA
        assert envelope["version"] == VERSION

    def test_dump_is_deterministic(self):
        a = dump_payload({"b": 2, "a": 1}, SCHEMA, VERSION)
        b = dump_payload({"a": 1, "b": 2}, SCHEMA, VERSION)
        assert a == b


class TestCorruption:
    def _expect_corrupt(self, path, match):
        with pytest.raises(CheckpointCorrupt, match=match):
            load_payload(path, schema=SCHEMA, version=VERSION)

    def test_missing_file(self, path):
        self._expect_corrupt(path, "unreadable")

    def test_not_json(self, path):
        with open(path, "w") as handle:
            handle.write("not json {")
        self._expect_corrupt(path, "not valid JSON")

    def test_zero_byte_file(self, path):
        with open(path, "w"):
            pass
        with pytest.raises(CheckpointCorrupt, match="file is empty") as exc:
            load_payload(path, schema=SCHEMA, version=VERSION)
        assert exc.value.context["size_b"] == 0

    @pytest.mark.parametrize("keep_fraction", [0.25, 0.5, 0.9])
    def test_truncated_envelope(self, path, keep_fraction):
        # A torn write: the file ends mid-envelope.  The error must name
        # the truncation and carry the decode offset for forensics.
        save_payload(path, {"x": 1}, schema=SCHEMA, version=VERSION)
        with open(path) as handle:
            text = handle.read()
        kept = text[: max(1, int(len(text) * keep_fraction))]
        with open(path, "w") as handle:
            handle.write(kept)
        with pytest.raises(
            CheckpointCorrupt, match="envelope truncated"
        ) as exc:
            load_payload(path, schema=SCHEMA, version=VERSION)
        context = exc.value.context
        assert context["size_b"] == len(kept.encode("utf-8"))
        assert 0 <= context["offset"] <= len(kept)
        assert context["line"] >= 1 and context["column"] >= 1

    def test_mid_file_garbage_is_not_truncation(self, path):
        # Corruption in the middle of the file is reported as invalid
        # JSON, not as a torn write.
        save_payload(path, {"x": 1}, schema=SCHEMA, version=VERSION)
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text.replace('"payload"', "@payload@", 1))
        with pytest.raises(
            CheckpointCorrupt, match="not valid JSON"
        ) as exc:
            load_payload(path, schema=SCHEMA, version=VERSION)
        assert exc.value.context["offset"] < len(text)

    def test_non_object_envelope(self, path):
        with open(path, "w") as handle:
            json.dump([1, 2, 3], handle)
        self._expect_corrupt(path, "not an object")

    def test_missing_envelope_keys(self, path):
        with open(path, "w") as handle:
            json.dump({"payload": {}, "schema": SCHEMA}, handle)
        self._expect_corrupt(path, "keys missing")

    def test_schema_mismatch(self, path):
        save_payload(path, {"x": 1}, schema="other-schema", version=VERSION)
        self._expect_corrupt(path, "schema mismatch")

    def test_version_mismatch(self, path):
        save_payload(path, {"x": 1}, schema=SCHEMA, version=VERSION + 1)
        self._expect_corrupt(path, "version mismatch")

    def test_tampered_payload_fails_digest(self, path):
        save_payload(path, {"x": 1}, schema=SCHEMA, version=VERSION)
        with open(path) as handle:
            envelope = json.load(handle)
        envelope["payload"]["x"] = 999
        with open(path, "w") as handle:
            json.dump(envelope, handle)
        self._expect_corrupt(path, "digest mismatch")

    def test_error_context_names_path(self, path):
        with pytest.raises(CheckpointCorrupt) as excinfo:
            load_payload(path, schema=SCHEMA, version=VERSION)
        assert excinfo.value.context["path"] == path
