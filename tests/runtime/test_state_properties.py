"""Property-based tests: ChipState invariants under random workloads."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chip import default_chip
from repro.runtime.state import ChipState


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), steps=st.integers(1, 40))
def test_state_invariants_under_random_operations(seed, steps):
    """Random occupy/release sequences must preserve:

    * every tile has at most one occupant and free+occupied == all tiles;
    * used power equals the sum of the placed apps' powers and never
      exceeds the budget;
    * each occupied domain carries exactly one voltage;
    * releasing everything restores the pristine state.
    """
    chip = default_chip()
    state = ChipState(chip)
    rng = np.random.default_rng(seed)
    placed = {}  # app_id -> (tiles, power)
    next_app = 0

    for _ in range(steps):
        if placed and rng.uniform() < 0.4:
            app_id = int(rng.choice(sorted(placed)))
            state.release(app_id)
            del placed[app_id]
            continue
        free = state.free_tiles()
        if not free:
            continue
        n = int(rng.integers(1, min(8, len(free)) + 1))
        tiles = list(rng.choice(free, size=n, replace=False))
        vdd = float(rng.choice([0.4, 0.6, 0.8]))
        # Respect the one-Vdd-per-domain rule up front.
        domains = chip.domains
        if any(
            state.domain_vdd(domains.domain_of(t)) not in (None, vdd)
            for t in tiles
        ):
            continue
        power = float(rng.uniform(0.1, 4.0))
        if power > state.available_power_w():
            continue
        task_to_tile = {i: int(t) for i, t in enumerate(tiles)}
        state.occupy(next_app, task_to_tile, vdd, power)
        placed[next_app] = (set(task_to_tile.values()), power)
        next_app += 1

        # --- invariants ------------------------------------------------
        occupied = {
            t for tiles_, _ in placed.values() for t in tiles_
        }
        assert set(state.free_tiles()) == (
            set(chip.mesh.tiles()) - occupied
        )
        assert state.used_power_w() == pytest.approx(
            sum(p for _, p in placed.values())
        )
        assert state.used_power_w() <= chip.dark_silicon_budget_w + 1e-9
        for d in range(chip.domain_count):
            vdds = {
                state.occupant(t).vdd
                for t in chip.domains.tiles_of(d)
                if state.occupant(t) is not None
            }
            assert len(vdds) <= 1
            if vdds:
                assert state.domain_vdd(d) == vdds.pop()

    for app_id in sorted(placed):
        state.release(app_id)
    assert len(state.free_tiles()) == chip.tile_count
    assert state.used_power_w() == 0.0
    assert state.running_apps() == []
