"""Tests for the bounded-memory streaming statistics of the service
runtime: P-square accuracy, serialisation round-trips, and the O(1)
leaf-count guarantee.
"""

import json

import numpy as np
import pytest

from repro.runtime.service.stats import (
    CLASS_COUNTERS,
    ClassStats,
    LatencySummary,
    P2Quantile,
    StreamingMoments,
    TrafficStats,
)


class TestP2Quantile:
    def test_rejects_degenerate_quantiles(self):
        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                P2Quantile(q)

    def test_empty_stream_reads_zero(self):
        assert P2Quantile(0.5).value == 0.0

    def test_small_streams_are_exact(self):
        est = P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            est.add(x)
        assert est.value == 2.0

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    @pytest.mark.parametrize(
        "sampler",
        [
            lambda rng, n: rng.uniform(0.0, 10.0, n),
            lambda rng, n: rng.exponential(2.0, n),
            lambda rng, n: rng.lognormal(0.0, 1.0, n),
        ],
        ids=["uniform", "exponential", "lognormal"],
    )
    def test_tracks_numpy_percentile(self, q, sampler):
        rng = np.random.default_rng(42)
        data = sampler(rng, 20000)
        est = P2Quantile(q)
        for x in data:
            est.add(x)
        exact = float(np.percentile(data, 100.0 * q))
        spread = float(np.percentile(data, 99.5)) - float(
            np.percentile(data, 0.5)
        )
        # P-square is an approximation; 5 % of the distribution spread
        # is far tighter than anything the traffic report quotes.
        assert abs(est.value - exact) <= 0.05 * spread

    def test_monotone_in_quantile(self):
        rng = np.random.default_rng(7)
        data = rng.exponential(1.0, 5000)
        p50, p95, p99 = (P2Quantile(q) for q in (0.5, 0.95, 0.99))
        for x in data:
            p50.add(x)
            p95.add(x)
            p99.add(x)
        assert p50.value <= p95.value <= p99.value

    @pytest.mark.parametrize("n", [0, 1, 3, 5, 6, 100])
    def test_json_round_trip_resumes_identically(self, n):
        rng = np.random.default_rng(3)
        head = rng.uniform(0.0, 1.0, n)
        tail = rng.uniform(0.0, 1.0, 50)

        straight = P2Quantile(0.95)
        for x in head:
            straight.add(x)
        resumed = P2Quantile.from_json(
            json.loads(json.dumps(straight.to_json()))
        )
        for x in tail:
            straight.add(x)
            resumed.add(x)
        assert resumed.to_json() == straight.to_json()
        assert resumed.value == straight.value

    def test_serialised_leaf_count_is_fixed(self):
        cold = P2Quantile(0.5)
        warm = P2Quantile(0.5)
        for x in range(1000):
            warm.add(float(x))
        def leaves(est):
            payload = est.to_json()
            return sum(
                len(v) if isinstance(v, list) else 1
                for v in payload.values()
            )
        assert leaves(cold) == leaves(warm)


class TestStreamingMoments:
    def test_mean_and_max(self):
        m = StreamingMoments()
        for x in (1.0, 2.0, 6.0):
            m.add(x)
        assert m.mean_s == pytest.approx(3.0)
        assert m.max_s == 6.0
        assert StreamingMoments.from_json(m.to_json()).to_json() == m.to_json()


class TestLatencySummary:
    def test_untracked_quantile_raises(self):
        with pytest.raises(KeyError):
            LatencySummary().quantile_s(0.42)

    def test_round_trip(self):
        summary = LatencySummary()
        for x in np.random.default_rng(0).uniform(0, 5, 200):
            summary.add(float(x))
        clone = LatencySummary.from_json(summary.to_json())
        assert clone.to_json() == summary.to_json()
        assert clone.quantile_s(0.95) == summary.quantile_s(0.95)


class TestClassStats:
    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            ClassStats().bump("nope")

    def test_round_trip_preserves_counters(self):
        stats = ClassStats()
        for name in CLASS_COUNTERS:
            stats.bump(name, 2)
        stats.wait.add(0.5)
        stats.sojourn.add(1.5)
        stats.busy_tile_s = 7.0
        assert ClassStats.from_json(stats.to_json()).to_json() == (
            stats.to_json()
        )


class TestTrafficStats:
    def make(self):
        return TrafficStats(("gold", "silver", "batch"))

    def test_requires_classes(self):
        with pytest.raises(ValueError):
            TrafficStats(())

    def test_utilization_and_avg_psn(self):
        stats = self.make()
        stats.record_interval(1.0, 64, 32, 4.0, 6.0)
        stats.record_interval(1.0, 64, 0, 0.0, 0.0)
        assert stats.utilization_fraction == pytest.approx(0.25)
        assert stats.avg_psn_pct == pytest.approx(4.0)
        assert stats.peak_psn_pct == 6.0

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            self.make().record_interval(-1.0, 64, 0, 0.0, 0.0)

    def test_totals_and_rate_fractions(self):
        stats = self.make()
        stats.cls("gold").bump("arrived", 8)
        stats.cls("batch").bump("arrived", 2)
        stats.cls("batch").bump("shed", 5)
        assert stats.total("arrived") == 10
        assert stats.rate_fraction("shed") == pytest.approx(0.5)
        assert TrafficStats(("a",)).rate_fraction("shed") == 0.0

    def test_round_trip(self):
        stats = self.make()
        stats.cls("gold").bump("completed")
        stats.cls("gold").wait.add(0.25)
        stats.record_interval(2.0, 64, 10, 3.0, 5.0)
        stats.shed_events = 3
        clone = TrafficStats.from_json(stats.to_json())
        assert clone.to_json() == stats.to_json()

    def test_scalar_count_independent_of_traffic(self):
        # The heart of the O(1)-state guarantee: folding 100x more
        # arrivals must not change the serialised leaf count by a
        # single scalar.
        light, heavy = self.make(), self.make()
        rng = np.random.default_rng(5)
        for i in range(10):
            light.cls("gold").bump("arrived")
            light.cls("gold").wait.add(float(rng.uniform()))
        for i in range(1000):
            name = ("gold", "silver", "batch")[i % 3]
            heavy.cls(name).bump("arrived")
            heavy.cls(name).wait.add(float(rng.uniform()))
            heavy.cls(name).sojourn.add(float(rng.uniform()))
            heavy.record_interval(0.01, 64, i % 64, 2.0, 4.0)
        assert light.scalar_count() == heavy.scalar_count()
        # And the count only moves with the class list.
        assert TrafficStats(("a",)).scalar_count() < light.scalar_count()
