"""Focused tests for runtime-simulator internals."""

import pytest

from repro.apps.suite import ProfileLibrary
from repro.apps.workload import ApplicationArrival
from repro.chip import default_chip
from repro.core import ParmManager
from repro.noc.routing import make_routing
from repro.runtime import RuntimeSimulator


@pytest.fixture(scope="module")
def library():
    return ProfileLibrary()


@pytest.fixture(scope="module")
def chip():
    return default_chip()


def simulate(chip, workload, **kw):
    sim = RuntimeSimulator(
        chip, ParmManager(), make_routing("xy"), seed=3, **kw
    )
    return sim.run(workload)


class TestContentionCoupling:
    def test_noc_contention_slows_running_apps(self, library, chip):
        """A communication-heavy neighbour arriving mid-run lengthens an
        app's execution (the exec-time refresh rescales remaining work
        under the new NoC load)."""
        comm = library.get("canneal")
        solo = simulate(
            chip, [ApplicationArrival(0, comm, 0.0, 100.0)]
        )
        crowded = simulate(
            chip,
            [
                ApplicationArrival(0, comm, 0.0, 100.0),
                ApplicationArrival(1, library.get("fft"), 0.01, 100.0),
                ApplicationArrival(2, library.get("vips"), 0.02, 100.0),
            ],
        )
        solo_time = solo.apps[0].finished_s - solo.apps[0].mapped_s
        crowded_time = crowded.apps[0].finished_s - crowded.apps[0].mapped_s
        assert crowded_time >= solo_time

    def test_compute_apps_barely_interact(self, library, chip):
        compute = library.get("blackscholes")
        solo = simulate(chip, [ApplicationArrival(0, compute, 0.0, 100.0)])
        crowded = simulate(
            chip,
            [
                ApplicationArrival(0, compute, 0.0, 100.0),
                ApplicationArrival(1, library.get("swaptions"), 0.01, 100.0),
            ],
        )
        solo_time = solo.apps[0].finished_s - solo.apps[0].mapped_s
        crowded_time = crowded.apps[0].finished_s - crowded.apps[0].mapped_s
        assert crowded_time <= solo_time * 1.1


class TestAccounting:
    def test_unfinished_apps_left_unaccounted_at_horizon(self, library, chip):
        """An artificially tiny simulation horizon leaves apps neither
        completed nor dropped - they show up as 'unfinished'."""
        profile = library.get("raytrace")
        workload = [ApplicationArrival(0, profile, 0.0, 100.0)]
        metrics = simulate(chip, workload, max_sim_time_s=1e-3)
        rec = metrics.apps[0]
        assert not rec.completed and not rec.dropped
        assert rec.mapped_s is not None  # it did start

    def test_deadline_met_flag_tracks_finish_time(self, library, chip):
        profile = library.get("blackscholes")
        generous = simulate(
            chip, [ApplicationArrival(0, profile, 0.0, 100.0)]
        )
        assert generous.apps[0].met_deadline
        # Feasible-but-tight deadline: the app maps (fast point exists)
        # but queue-free execution still finishes close to the limit.
        best = min(
            profile.wcet_s(v, d)
            for v in profile.supported_vdds
            for d in profile.supported_dops
        )
        tight = simulate(
            chip, [ApplicationArrival(0, profile, 0.0, best * 1.5)]
        )
        assert tight.apps[0].completed

    def test_total_time_is_last_finish(self, library, chip):
        workload = [
            ApplicationArrival(0, library.get("fft"), 0.0, 100.0),
            ApplicationArrival(1, library.get("radix"), 0.05, 100.0),
        ]
        metrics = simulate(chip, workload)
        finishes = [r.finished_s for r in metrics.apps.values()]
        assert metrics.total_time_s == pytest.approx(max(finishes))

    def test_empty_workload(self, chip):
        metrics = simulate(chip, [])
        assert metrics.total_time_s == 0.0
        assert metrics.completed_count == 0


class TestTraceRecording:
    def test_trace_disabled_by_default(self, library, chip):
        workload = [
            ApplicationArrival(0, library.get("fft"), 0.0, 100.0)
        ]
        metrics = simulate(chip, workload)
        assert metrics.trace == []

    def test_trace_snapshots_cover_the_run(self, library, chip):
        from repro.noc.routing import make_routing
        from repro.runtime import RuntimeSimulator

        workload = [
            ApplicationArrival(0, library.get("fft"), 0.0, 100.0),
            ApplicationArrival(1, library.get("radix"), 0.05, 100.0),
        ]
        sim = RuntimeSimulator(
            chip,
            ParmManager(),
            make_routing("xy"),
            seed=3,
            record_trace=True,
        )
        metrics = sim.run(workload)
        assert len(metrics.trace) >= 3
        times = [t for t, _, _ in metrics.trace]
        assert times == sorted(times)
        peaks = [p for _, p, _ in metrics.trace]
        assert max(peaks) == pytest.approx(metrics.peak_psn_pct)
        # Occupancy rises when apps run and falls back to zero.
        occupancies = [o for _, _, o in metrics.trace]
        assert max(occupancies) > 0
