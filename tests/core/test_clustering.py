"""Tests for Algorithm 2's task clustering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.graph import ApplicationGraph, TaskNode
from repro.core.clustering import TaskCluster, cluster_tasks
from repro.pdn.waveforms import ActivityBin


def graph_with_bins(bins, edges):
    g = ApplicationGraph()
    for i, b in enumerate(bins):
        g.add_task(TaskNode(i, b, 1e6, 0.5))
    for src, dst, vol in edges:
        g.add_edge(src, dst, vol)
    return g


H, L = ActivityBin.HIGH, ActivityBin.LOW


class TestValidation:
    def test_non_multiple_of_four_rejected(self):
        g = graph_with_bins([H, H, L], [])
        with pytest.raises(ValueError, match="multiple of 4"):
            cluster_tasks(g)

    def test_cluster_size_validated(self):
        with pytest.raises(ValueError):
            TaskCluster((), mixed=False)
        with pytest.raises(ValueError):
            TaskCluster((0, 1, 2, 3, 4), mixed=False)


class TestClustering:
    def test_pure_bins_give_pure_clusters(self):
        g = graph_with_bins([H] * 4 + [L] * 4, [(0, 1, 10.0), (4, 5, 10.0)])
        clusters = cluster_tasks(g)
        assert len(clusters) == 2
        assert all(not c.mixed for c in clusters)
        assert set(clusters[0].tasks) == {0, 1, 2, 3}
        assert set(clusters[1].tasks) == {4, 5, 6, 7}

    def test_remainders_merge_into_single_mixed_cluster(self):
        """Paper: leftover tasks (< 4 per list) form one cluster; with
        DoP a multiple of 4, the two remainders always total 0 or 4."""
        g = graph_with_bins([H] * 5 + [L] * 3, [])
        clusters = cluster_tasks(g)
        assert len(clusters) == 2
        mixed = [c for c in clusters if c.mixed]
        assert len(mixed) == 1
        assert len(mixed[0].tasks) == 4
        # The mixed cluster holds 1 High + 3 Low tasks.
        bins = [g.task(t).activity_bin for t in mixed[0].tasks]
        assert bins.count(H) == 1 and bins.count(L) == 3

    def test_edge_order_drives_cluster_membership(self):
        """Tasks on the heaviest edges are listed (and clustered) first."""
        bins = [H] * 8
        # Heavy edges connect {0,7} and {2,5}; light edges the rest.
        edges = [
            (0, 7, 1000.0),
            (2, 5, 900.0),
            (1, 3, 10.0),
            (4, 6, 5.0),
        ]
        clusters = cluster_tasks(graph_with_bins(bins, edges))
        assert set(clusters[0].tasks) == {0, 7, 2, 5}
        assert set(clusters[1].tasks) == {1, 3, 4, 6}

    def test_isolated_tasks_appended(self):
        g = graph_with_bins([H, H, H, H], [(0, 1, 10.0)])
        clusters = cluster_tasks(g)
        assert len(clusters) == 1
        assert clusters[0].tasks == (0, 1, 2, 3)

    def test_activity_blind_mode(self):
        g = graph_with_bins([H, L, H, L, H, L, H, L], [(0, 1, 100.0), (2, 3, 90.0)])
        aware = cluster_tasks(g, activity_aware=True)
        blind = cluster_tasks(g, activity_aware=False)
        # Aware: first cluster all-H; blind: first cluster follows edge
        # order regardless of bins.
        assert set(aware[0].tasks) == {0, 2, 4, 6}
        assert blind[0].tasks == (0, 1, 2, 3)
        assert blind[0].mixed

    @settings(max_examples=25, deadline=None)
    @given(
        n_groups=st.integers(1, 8),
        high_fraction=st.floats(0.0, 1.0),
        seed=st.integers(0, 99),
    )
    def test_partition_properties(self, n_groups, high_fraction, seed):
        """Clusters partition the tasks; at most one cluster is mixed."""
        rng = np.random.default_rng(seed)
        n = 4 * n_groups
        bins = [H if rng.uniform() < high_fraction else L for _ in range(n)]
        edges = []
        for _ in range(n):
            a, b = rng.integers(0, n, size=2)
            if a < b:
                edges.append((int(a), int(b), float(rng.uniform(1, 100))))
        g = ApplicationGraph()
        for i, b in enumerate(bins):
            g.add_task(TaskNode(i, b, 1e6, 0.5))
        seen = set()
        for s_, d_, v in edges:
            if (s_, d_) not in seen:
                seen.add((s_, d_))
                g.add_edge(s_, d_, v)
        clusters = cluster_tasks(g)
        assert len(clusters) == n_groups
        all_tasks = [t for c in clusters for t in c.tasks]
        assert sorted(all_tasks) == list(range(n))
        assert sum(1 for c in clusters if c.mixed) <= 1
        assert all(len(c.tasks) == 4 for c in clusters)
