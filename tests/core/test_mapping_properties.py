"""Property tests: every PARM decision satisfies the platform invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.suite import COMMUNICATION_BENCHMARKS, COMPUTE_BENCHMARKS, ProfileLibrary
from repro.chip import default_chip
from repro.core import ParmManager
from repro.runtime.state import ChipState

_LIBRARY = ProfileLibrary()
_CHIP = default_chip()
_NAMES = tuple(dict.fromkeys(COMPUTE_BENCHMARKS + COMMUNICATION_BENCHMARKS))


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(_NAMES),
    deadline_s=st.floats(0.05, 5.0),
    occupied_domains=st.integers(0, 14),
    budget_used=st.floats(0.0, 60.0),
    seed=st.integers(0, 99),
)
def test_parm_decisions_respect_all_invariants(
    name, deadline_s, occupied_domains, budget_used, seed
):
    """For random chip pressure and deadlines, any decision PARM returns:

    * meets the deadline per the profile's WCET table;
    * fits the remaining power budget;
    * occupies whole, previously-free domains only;
    * maps every task to a distinct tile;
    * is applicable (ChipState.occupy accepts it).
    """
    rng = np.random.default_rng(seed)
    state = ChipState(_CHIP)
    if occupied_domains:
        chosen = rng.choice(15, size=occupied_domains, replace=False)
        fake = {}
        for i, d in enumerate(chosen):
            for j, t in enumerate(_CHIP.domains.tiles_of(int(d))):
                fake[i * 4 + j] = t
        power = min(budget_used, 60.0)
        state.occupy(999, fake, 0.4, power)

    profile = _LIBRARY.get(name)
    decision = ParmManager().try_map(profile, deadline_s, state)
    if decision is None:
        return

    assert profile.wcet_s(decision.vdd, decision.dop) < deadline_s
    assert decision.power_w <= state.available_power_w() + 1e-9
    assert len(set(decision.task_to_tile.values())) == decision.dop
    free_before = set(state.free_domains())
    used = {_CHIP.domains.domain_of(t) for t in decision.tiles}
    assert used <= free_before
    for d in used:
        assert set(_CHIP.domains.tiles_of(d)) <= set(decision.tiles)
    # The decision must be applicable as-is.
    state.occupy(1, decision.task_to_tile, decision.vdd, decision.power_w)
