"""Tests for cluster-to-domain and task-to-tile placement."""

import pytest

from repro.apps.graph import ApplicationGraph, TaskNode
from repro.chip.domains import DomainMap
from repro.chip.mesh import MeshGeometry
from repro.core.clustering import TaskCluster, cluster_tasks
from repro.core.placement import place_clusters
from repro.pdn.waveforms import ActivityBin

H, L = ActivityBin.HIGH, ActivityBin.LOW


@pytest.fixture
def domains():
    return DomainMap(MeshGeometry(10, 6))


def make_graph(bins, edges):
    g = ApplicationGraph()
    for i, b in enumerate(bins):
        g.add_task(TaskNode(i, b, 1e6, 0.7 if b is H else 0.2))
    for s, d, v in edges:
        g.add_edge(s, d, v)
    return g


class TestPlaceClusters:
    def test_insufficient_domains_returns_none(self, domains):
        g = make_graph([H] * 8, [])
        clusters = cluster_tasks(g)
        assert place_clusters(g, clusters, free_domains=[0], domains=domains) is None

    def test_all_tasks_placed_once(self, domains):
        g = make_graph([H] * 8 + [L] * 8, [(0, 8, 100.0), (1, 9, 50.0)])
        clusters = cluster_tasks(g)
        mapping = place_clusters(g, clusters, list(range(15)), domains)
        assert mapping is not None
        assert sorted(mapping.keys()) == list(range(16))
        tiles = list(mapping.values())
        assert len(set(tiles)) == 16

    def test_clusters_land_on_whole_domains(self, domains):
        g = make_graph([H] * 8, [(0, 1, 10.0)])
        clusters = cluster_tasks(g)
        mapping = place_clusters(g, clusters, list(range(15)), domains)
        for cluster in clusters:
            ds = {domains.domain_of(mapping[t]) for t in cluster.tasks}
            assert len(ds) == 1

    def test_communicating_clusters_placed_adjacent(self, domains):
        """Heavy inter-cluster traffic pulls the two domains together."""
        # Two all-H clusters linked by a heavy edge.
        g = make_graph(
            [H] * 8,
            [(0, 4, 1e6), (1, 5, 1e6), (2, 3, 1.0), (6, 7, 1.0)],
        )
        clusters = cluster_tasks(g)
        assert len(clusters) == 2
        mapping = place_clusters(g, clusters, list(range(15)), domains)
        d0 = domains.domain_of(mapping[clusters[0].tasks[0]])
        d1 = domains.domain_of(mapping[clusters[1].tasks[0]])
        assert domains.domain_distance(d0, d1) == 1

    def test_same_bin_tasks_adjacent_in_mixed_domain(self, domains):
        """Fig. 5: in a 2H+2L domain, the two H tasks sit on adjacent
        tiles and the two L tasks on adjacent tiles."""
        g = make_graph([H, H, L, L], [(0, 2, 10.0)])
        clusters = cluster_tasks(g)
        assert len(clusters) == 1 and clusters[0].mixed
        mapping = place_clusters(g, clusters, list(range(15)), domains)
        mesh = domains.mesh
        h_tiles = [mapping[0], mapping[1]]
        l_tiles = [mapping[2], mapping[3]]
        assert mesh.manhattan(*h_tiles) == 1
        assert mesh.manhattan(*l_tiles) == 1

    def test_respects_free_domain_list(self, domains):
        g = make_graph([H] * 4, [])
        clusters = cluster_tasks(g)
        mapping = place_clusters(g, clusters, [7], domains)
        assert {domains.domain_of(t) for t in mapping.values()} == {7}

    def test_deterministic(self, domains):
        g = make_graph([H] * 8 + [L] * 4, [(0, 8, 100.0)])
        clusters = cluster_tasks(g)
        a = place_clusters(g, clusters, list(range(15)), domains)
        b = place_clusters(g, clusters, list(range(15)), domains)
        assert a == b
