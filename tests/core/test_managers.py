"""Tests for the PARM manager (Algorithms 1+2) and the HM baseline."""

import pytest

from repro.apps.suite import ProfileLibrary
from repro.chip import default_chip
from repro.core import HarmonicManager, ParmManager, psn_aware_mapping
from repro.core.base import MappingDecision
from repro.runtime.state import ChipState


@pytest.fixture(scope="module")
def library():
    return ProfileLibrary()


@pytest.fixture(scope="module")
def chip():
    return default_chip()


@pytest.fixture
def state(chip):
    return ChipState(chip)


LOOSE = 100.0  # a deadline that everything meets


class TestMappingDecision:
    def test_dop_mismatch_rejected(self):
        with pytest.raises(ValueError, match="DoP"):
            MappingDecision(vdd=0.4, dop=8, task_to_tile={0: 0}, power_w=1.0)

    def test_duplicate_tiles_rejected(self):
        with pytest.raises(ValueError, match="one tile"):
            MappingDecision(
                vdd=0.4, dop=4, task_to_tile={0: 0, 1: 0, 2: 1, 3: 2}, power_w=1.0
            )


class TestPsnAwareMapping:
    def test_power_budget_enforced(self, library, chip):
        """Algorithm 2 lines 1-2: estimated power above the DsPB headroom
        means no mapping."""
        state = ChipState(chip)
        profile = library.get("swaptions")
        assert profile.power_w(0.8, 32) > chip.dark_silicon_budget_w
        assert psn_aware_mapping(profile, 0.8, 32, state) is None

    def test_domain_availability_enforced(self, library, chip, state):
        """Algorithm 2 lines 10-11: fewer free domains than clusters."""
        profile = library.get("fft")
        # Occupy 14 of 15 domains with a fake app.
        fake = {}
        for d in range(14):
            for i, t in enumerate(chip.domains.tiles_of(d)):
                fake[d * 4 + i] = t
        state.occupy(99, fake, 0.4, 1.0)
        assert psn_aware_mapping(profile, 0.4, 8, state) is None
        decision = psn_aware_mapping(profile, 0.4, 4, state)
        assert decision is not None
        assert len(decision.task_to_tile) == 4

    def test_successful_mapping_covers_whole_domains(self, library, chip, state):
        profile = library.get("fft")
        decision = psn_aware_mapping(profile, 0.4, 16, state)
        assert decision is not None
        used = {chip.domains.domain_of(t) for t in decision.tiles}
        assert len(used) == 4  # 16 tasks / 4 per domain
        for d in used:
            assert set(chip.domains.tiles_of(d)) <= set(decision.tiles)


class TestParmManager:
    def test_prefers_lowest_vdd_highest_dop(self, library, state):
        """Algorithm 1 starts from the lowest Vdd and the highest DoP."""
        manager = ParmManager()
        profile = library.get("blackscholes")
        decision = manager.try_map(profile, LOOSE, state)
        assert decision is not None
        assert decision.vdd == pytest.approx(0.4)
        assert decision.dop == 32

    def test_escalates_vdd_for_tight_deadline(self, library, state):
        manager = ParmManager()
        profile = library.get("blackscholes")
        loose = manager.try_map(profile, LOOSE, state)
        best_low = min(
            profile.wcet_s(0.4, d) for d in profile.supported_dops
        )
        tight = manager.try_map(profile, best_low * 0.9, state)
        assert tight is not None
        assert tight.vdd > loose.vdd

    def test_lowers_dop_when_domains_scarce(self, library, chip):
        manager = ParmManager()
        profile = library.get("blackscholes")
        state = ChipState(chip)
        # Leave only 3 free domains.
        fake = {}
        for d in range(12):
            for i, t in enumerate(chip.domains.tiles_of(d)):
                fake[d * 4 + i] = t
        state.occupy(99, fake, 0.4, 1.0)
        decision = manager.try_map(profile, LOOSE, state)
        assert decision is not None
        assert decision.dop <= 12

    def test_returns_none_for_impossible_deadline(self, library, state):
        manager = ParmManager()
        profile = library.get("raytrace")
        assert manager.try_map(profile, 1e-6, state) is None

    def test_respects_available_power(self, library, chip):
        manager = ParmManager()
        profile = library.get("fft")
        state = ChipState(chip)
        # Consume nearly the whole budget with a 1-domain fake app.
        state.occupy(
            99,
            {i: t for i, t in enumerate(chip.domains.tiles_of(0))},
            0.4,
            chip.dark_silicon_budget_w - 1.0,
        )
        decision = manager.try_map(profile, LOOSE, state)
        assert decision is None or decision.power_w <= 1.0 + 1e-9


class TestHarmonicManager:
    def test_fixed_nominal_vdd_and_default_dop(self, library, chip, state):
        manager = HarmonicManager()
        decision = manager.try_map(library.get("fft"), LOOSE, state)
        assert decision is not None
        assert decision.vdd == pytest.approx(chip.vdd_ladder.highest)
        assert decision.dop == 16

    def test_default_dop_validated(self):
        with pytest.raises(ValueError):
            HarmonicManager(default_dop=6)

    def test_scatters_high_tasks_far_apart(self, library, chip, state):
        """Harmonic mapping: High-activity tasks at long pairwise
        distances (much farther than PARM's clustered placement)."""
        manager = HarmonicManager()
        profile = library.get("fft")
        decision = manager.try_map(profile, LOOSE, state)
        graph = profile.graph(decision.dop)
        highs = [decision.task_to_tile[t] for t in graph.high_tasks()]
        mesh = chip.mesh
        min_dist = min(
            mesh.manhattan(a, b)
            for i, a in enumerate(highs)
            for b in highs[i + 1:]
        )
        assert min_dist >= 3

    def test_parm_places_more_compactly_than_hm(self, library, chip):
        profile = library.get("fft")
        parm = ParmManager().try_map(profile, LOOSE, ChipState(chip))
        hm = HarmonicManager().try_map(profile, LOOSE, ChipState(chip))
        graph = profile.graph(16)
        mesh = chip.mesh

        def comm_distance(decision):
            return sum(
                mesh.manhattan(
                    decision.task_to_tile[s], decision.task_to_tile[d]
                )
                * v
                for s, d, v in graph.edges()
            )

        assert comm_distance(parm) < comm_distance(hm)

    def test_rejects_when_power_insufficient(self, library, chip):
        manager = HarmonicManager()
        state = ChipState(chip)
        state.occupy(
            99,
            {i: t for i, t in enumerate(chip.domains.tiles_of(0))},
            0.8,
            chip.dark_silicon_budget_w - 5.0,
        )
        assert manager.try_map(library.get("fft"), LOOSE, state) is None

    def test_rejects_when_tiles_insufficient(self, library, chip):
        manager = HarmonicManager()
        state = ChipState(chip)
        # Occupy 50 of 60 tiles at the same (nominal) Vdd so only tile
        # count blocks the 16-thread default.
        fake = {i: i for i in range(50)}
        state.occupy(99, fake, chip.vdd_ladder.highest, 1.0)
        assert manager.try_map(library.get("fft"), LOOSE, state) is None
