"""Tests for the numerical guards of the PDN solvers.

Covers the acceptance criterion of the robustness PR: a singular or
NaN-poisoned solve surfaces as a :class:`SolverError` naming the
offending node and step (instead of a raw ``LinAlgError`` or silent
garbage), the guarded transient walks its method/timestep fallback
ladder, and the fast kernel path fails the same way as the circuit path
on the same class of poisoned input.
"""

import numpy as np
import pytest

from repro.harness.errors import SolverError, SolverInputError
from repro.pdn.circuit import GROUND, Circuit
from repro.pdn.fast import FastPsnModel, _DEFAULT_PEAK
from repro.pdn.transient import MIN_DT_SCALE, guarded_transient
from repro.pdn.waveforms import ActivityBin, TileLoad


def rc_circuit():
    c = Circuit()
    c.vsource("in", GROUND, 1.0)
    c.resistor("in", "out", 100.0)
    c.capacitor("out", GROUND, 1e-6)
    return c


class TestTransientGuards:
    def test_nan_waveform_names_node_and_step(self):
        c = rc_circuit()
        # NaN appears from 0.5 ms onward on the source at node "out".
        c.isource(
            "out", GROUND,
            lambda t: np.where(t >= 0.5e-3, np.nan, 1e-3),
        )
        with pytest.raises(SolverError) as excinfo:
            c.transient(1e-3, 1e-5)
        ctx = excinfo.value.context
        assert ctx["node"] == "out"
        assert ctx["step"] == 50
        assert ctx["time_s"] == pytest.approx(0.5e-3)

    def test_inf_waveform_rejected(self):
        c = rc_circuit()
        c.isource("out", GROUND, lambda t: np.full_like(t, np.inf))
        with pytest.raises(SolverError, match="non-finite source current"):
            c.transient(1e-3, 1e-5)

    def test_singular_system_matrix(self):
        # Two parallel voltage sources forcing conflicting voltages make
        # the MNA matrix singular (duplicate source rows).
        c = Circuit()
        c.vsource("a", GROUND, 1.0)
        c.vsource("a", GROUND, 2.0)
        c.resistor("a", GROUND, 1.0)
        with pytest.raises(SolverError, match="singular MNA system"):
            c.transient(1e-6, 1e-7)

    def test_singular_dc_network(self):
        # A current source into a capacitor-only node floats at DC
        # (capacitors open), so the operating-point solve is singular.
        c = Circuit()
        c.isource(GROUND, "n", 1e-3)
        c.capacitor("n", GROUND, 1e-9)
        with pytest.raises(SolverError) as excinfo:
            c.transient(1e-6, 1e-7)
        assert excinfo.value.context.get("stage") == "dc"

    def test_condition_number_gate(self):
        with pytest.raises(SolverError, match="ill-conditioned") as excinfo:
            rc_circuit().transient(1e-3, 1e-5, max_condition=1.0)
        assert excinfo.value.context["condition_estimate"] > 1.0

    def test_divergence_gate_names_node(self):
        with pytest.raises(SolverError) as excinfo:
            rc_circuit().transient(1e-3, 1e-5, max_abs_v=1e-3)
        ctx = excinfo.value.context
        assert "diverged" in excinfo.value.message
        assert ctx["node"] in ("in", "out")
        assert ctx["step"] >= 1

    def test_healthy_solve_unaffected_by_guards(self):
        res = rc_circuit().transient(1e-3, 1e-5)
        assert np.all(np.isfinite(res.voltages))
        assert res.voltage("out")[-1] == pytest.approx(1.0, abs=1e-3)

    def test_ac_singular_matrix_classified(self):
        c = Circuit()
        c.vsource("a", GROUND, 1.0)
        c.vsource("a", GROUND, 2.0)
        c.resistor("a", GROUND, 1.0)
        with pytest.raises(SolverError) as excinfo:
            c.ac_impedance("a", [1e6])
        assert excinfo.value.context.get("stage") == "ac"


class FakeCircuit:
    """Records (method, dt) attempts; fails until a configured rung."""

    def __init__(self, succeed_at=None):
        self.succeed_at = succeed_at
        self.attempts = []

    def transient(self, duration, dt, method="trapezoidal"):
        self.attempts.append((method, dt))
        if self.succeed_at is not None and (
            len(self.attempts) >= self.succeed_at
        ):
            return f"result-{method}-{dt:g}"
        raise SolverError(
            "fake failure", node="t03", step=len(self.attempts), time_s=1e-9
        )


class TestGuardedTransient:
    DT = 50e-12

    def test_first_rung_is_trapezoidal_at_requested_dt(self):
        fake = FakeCircuit(succeed_at=1)
        result, method, dt = guarded_transient(fake, 1e-9, self.DT)
        assert (method, dt) == ("trapezoidal", self.DT)
        assert fake.attempts == [("trapezoidal", self.DT)]
        assert result == f"result-trapezoidal-{self.DT:g}"

    def test_falls_back_to_backward_euler(self):
        fake = FakeCircuit(succeed_at=2)
        _, method, dt = guarded_transient(fake, 1e-9, self.DT)
        assert (method, dt) == ("backward-euler", self.DT)

    def test_timestep_halving_converges(self):
        fake = FakeCircuit(succeed_at=4)
        _, method, dt = guarded_transient(fake, 1e-9, self.DT)
        assert method == "backward-euler"
        assert dt == pytest.approx(self.DT / 4)
        assert [a[1] for a in fake.attempts] == [
            self.DT, self.DT, self.DT / 2, self.DT / 4
        ]

    def test_halving_respects_floor(self):
        fake = FakeCircuit(succeed_at=None)
        with pytest.raises(SolverError) as excinfo:
            guarded_transient(fake, 1e-9, self.DT, min_dt_scale=MIN_DT_SCALE)
        # Ladder: trap@dt, BE@dt, BE@dt/2, BE@dt/4, BE@dt/8 (= floor).
        assert len(fake.attempts) == 5
        assert min(a[1] for a in fake.attempts) == pytest.approx(
            self.DT * MIN_DT_SCALE
        )
        ctx = excinfo.value.context
        assert len(ctx["attempts"]) == 5
        assert ctx["node"] == "t03"

    def test_invalid_floor_rejected(self):
        with pytest.raises(ValueError):
            guarded_transient(FakeCircuit(1), 1e-9, self.DT, min_dt_scale=0.0)

    def test_input_error_short_circuits_the_ladder(self):
        # Bad input data cannot be fixed by a method or timestep
        # change: the ladder must stop after the first rung instead of
        # burning four more full transient solves.
        class PoisonedCircuit(FakeCircuit):
            def transient(self, duration, dt, method="trapezoidal"):
                self.attempts.append((method, dt))
                raise SolverInputError(
                    "non-finite source current waveform", node="t00", step=0
                )

        poisoned = PoisonedCircuit()
        with pytest.raises(SolverInputError) as excinfo:
            guarded_transient(poisoned, 1e-9, self.DT)
        assert poisoned.attempts == [("trapezoidal", self.DT)]
        # The original error propagates as-is, node context intact.
        assert excinfo.value.context["node"] == "t00"

    def test_input_error_short_circuits_on_real_circuit(self):
        c = rc_circuit()
        c.isource("out", GROUND, lambda t: np.full_like(t, np.inf))
        with pytest.raises(SolverInputError):
            guarded_transient(c, 1e-3, 1e-5)


class TestFastCircuitParity:
    """The fast kernel path and the circuit path fail alike on poison."""

    def test_kernel_rejects_nan_vdd(self):
        kernel = _DEFAULT_PEAK.kernel_for(0.5)
        # Classified as an input error (same class as the circuit
        # path's waveform pre-check) so retry ladders skip it.
        with pytest.raises(
            SolverInputError, match="non-finite supply voltage"
        ):
            kernel.evaluate(float("nan"), [None] * 4)

    def test_kernel_rejects_nan_tile_power(self):
        kernel = _DEFAULT_PEAK.kernel_for(0.5)
        loads = [TileLoad(float("nan"), 0.05, ActivityBin.HIGH)] + [None] * 3
        with pytest.raises(SolverInputError) as excinfo:
            kernel.evaluate(0.5, loads)
        assert excinfo.value.context["tile"] == 0

    def test_model_propagates_kernel_guard(self):
        with pytest.raises(SolverError):
            FastPsnModel().domain_psn(float("nan"), [None] * 4)

    def test_circuit_path_rejects_nan_current_too(self):
        # Same poison class on the SPICE-level path: a NaN current
        # waveform raises SolverError instead of silently producing
        # NaN voltages.
        c = rc_circuit()
        c.isource("out", GROUND, lambda t: np.full_like(t, np.nan))
        with pytest.raises(SolverError):
            c.transient(1e-3, 1e-5)

    def test_both_paths_healthy_on_valid_input(self):
        loads = [TileLoad(0.4, 0.05, ActivityBin.HIGH)] + [None] * 3
        peak, avg = FastPsnModel().domain_psn(0.5, loads)
        assert np.all(np.isfinite(peak)) and np.all(np.isfinite(avg))
