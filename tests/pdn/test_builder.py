"""Tests for the domain PDN netlist builder."""

import math

import numpy as np
import pytest

from repro.chip.technology import technology
from repro.pdn.builder import TILE_NODES, DomainPdnBuilder
from repro.pdn.circuit import GROUND


@pytest.fixture
def builder():
    return DomainPdnBuilder(technology("7nm"))


class TestBuild:
    def test_tile_nodes_present(self, builder):
        circuit = builder.build(0.6, [0.0, 0.0, 0.0, 0.0])
        for node in TILE_NODES:
            assert node in circuit.node_names

    def test_dc_rail_voltage_with_no_load(self, builder):
        circuit = builder.build(0.6, [0.0] * 4)
        op = circuit.operating_point()
        for node in TILE_NODES:
            assert op[node] == pytest.approx(0.6, abs=1e-9)

    def test_dc_ir_drop_with_load(self, builder):
        circuit = builder.build(0.6, [1.0, 0.0, 0.0, 0.0])
        op = circuit.operating_point()
        # Loaded tile sags below the rail; all tiles stay below Vdd.
        assert op["tile0"] < 0.6
        for node in TILE_NODES:
            assert op[node] <= 0.6

    def test_adjacent_tile_sags_more_than_diagonal(self, builder):
        """DC coupling through the grid: tile1 (1 hop from tile0) sags at
        least as much as tile3 (diagonal)."""
        circuit = builder.build(0.6, [2.0, 0.0, 0.0, 0.0])
        op = circuit.operating_point()
        drop_1hop = 0.6 - op["tile1"]
        drop_2hop = 0.6 - op["tile3"]
        assert drop_1hop >= drop_2hop > 0

    def test_wrong_load_count_rejected(self, builder):
        with pytest.raises(ValueError, match="tile currents"):
            builder.build(0.6, [0.0] * 3)

    def test_nonpositive_vdd_rejected(self, builder):
        with pytest.raises(ValueError, match="vdd"):
            builder.build(0.0, [0.0] * 4)

    def test_resonance_frequency(self, builder):
        tech = builder.tech
        expected = 1.0 / (2 * math.pi * math.sqrt(tech.l_bump_h * tech.c_decap_f))
        assert builder.resonance_hz() == pytest.approx(expected)

    def test_time_varying_load_transient_runs(self, builder):
        wave = lambda t: 0.5 + 0.2 * np.sin(2 * math.pi * 1e8 * t)
        circuit = builder.build(0.5, [wave, 0.0, 0.0, 0.0])
        res = circuit.transient(50e-9, 100e-12)
        v = res.voltage("tile0")
        assert np.all(v < 0.5)
        assert np.all(v > 0.4)
