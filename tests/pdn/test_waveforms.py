"""Tests for workload current waveforms."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pdn.waveforms import (
    BIN_WAVE_PARAMS,
    ActivityBin,
    BinWaveParams,
    CurrentWaveform,
    TileLoad,
    waveform_for,
)


class TestTileLoad:
    def test_idle(self):
        idle = TileLoad.idle()
        assert idle.total_power_w == 0.0

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            TileLoad(-0.1, 0.0, ActivityBin.HIGH)
        with pytest.raises(ValueError):
            TileLoad(0.1, -0.1, ActivityBin.HIGH)

    def test_nonpositive_freq_scale_rejected(self):
        with pytest.raises(ValueError):
            TileLoad(0.1, 0.0, ActivityBin.HIGH, freq_scale=0.0)

    def test_total_power(self):
        load = TileLoad(0.3, 0.1, ActivityBin.LOW)
        assert load.total_power_w == pytest.approx(0.4)


class TestBinWaveParams:
    def test_bins_have_distinct_burst_frequencies(self):
        high = BIN_WAVE_PARAMS[ActivityBin.HIGH]
        low = BIN_WAVE_PARAMS[ActivityBin.LOW]
        assert high.burst_hz != low.burst_hz
        assert high.swing >= low.swing

    def test_validation(self):
        with pytest.raises(ValueError):
            BinWaveParams(burst_hz=0.0, swing=0.5, sharpness=4.0)
        with pytest.raises(ValueError):
            BinWaveParams(burst_hz=1e8, swing=1.0, sharpness=4.0)
        with pytest.raises(ValueError):
            BinWaveParams(burst_hz=1e8, swing=0.5, sharpness=0.0)


class TestCurrentWaveform:
    def _times(self):
        return np.linspace(0.0, 400e-9, 40001)

    def test_mean_current_matches_power(self):
        """Time-average of the waveform must be P / Vdd so that the IR
        component of PSN tracks power consumption."""
        load = TileLoad(0.4, 0.1, ActivityBin.HIGH)
        wave = CurrentWaveform(load, 0.5)
        samples = wave(self._times())
        assert float(np.mean(samples)) == pytest.approx(0.5 / 0.5, rel=0.01)
        assert wave.mean_amps == pytest.approx(1.0)

    def test_idle_waveform_is_zero(self):
        wave = CurrentWaveform(TileLoad.idle(), 0.5)
        assert np.allclose(wave(self._times()), 0.0)

    def test_swing_bounds(self):
        load = TileLoad(0.4, 0.0, ActivityBin.HIGH)
        wave = CurrentWaveform(load, 0.5)
        samples = wave(self._times())
        mean = 0.4 / 0.5
        swing = BIN_WAVE_PARAMS[ActivityBin.HIGH].swing
        assert samples.max() <= mean * (1 + swing) + 1e-9
        assert samples.min() >= mean * (1 - swing) - 1e-9
        assert samples.min() > 0  # current never reverses

    def test_phase_shift_moves_waveform(self):
        load0 = TileLoad(0.4, 0.0, ActivityBin.HIGH, phase_s=0.0)
        load1 = TileLoad(0.4, 0.0, ActivityBin.HIGH, phase_s=2e-9)
        t = self._times()
        w0, w1 = CurrentWaveform(load0, 0.5)(t), CurrentWaveform(load1, 0.5)(t)
        assert not np.allclose(w0, w1)
        # Shifting back by the phase recovers the original.
        w1_shifted = CurrentWaveform(load1, 0.5)(t + 2e-9)
        assert np.allclose(w0, w1_shifted, atol=1e-9)

    def test_vdd_must_be_positive(self):
        with pytest.raises(ValueError):
            CurrentWaveform(TileLoad.idle(), 0.0)

    def test_waveform_for_returns_callable(self):
        wave = waveform_for(TileLoad(0.2, 0.0, ActivityBin.LOW), 0.4)
        out = wave(np.array([0.0, 1e-9]))
        assert out.shape == (2,)

    @given(
        core=st.floats(0.01, 2.0),
        router=st.floats(0.0, 0.5),
        vdd=st.sampled_from([0.4, 0.6, 0.8]),
        bin_=st.sampled_from(list(ActivityBin)),
    )
    def test_mean_preserved_for_any_load(self, core, router, vdd, bin_):
        wave = CurrentWaveform(TileLoad(core, router, bin_), vdd)
        t = np.linspace(0.0, 1e-6, 100001)
        assert float(np.mean(wave(t))) == pytest.approx(
            (core + router) / vdd, rel=0.02
        )
