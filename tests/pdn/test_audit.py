"""Tests for the chip-level transient PSN audit."""

import numpy as np
import pytest

from repro.apps.suite import ProfileLibrary
from repro.chip import default_chip
from repro.core import HarmonicManager, ParmManager
from repro.pdn.audit import audit_mapping
from repro.runtime.state import ChipState


@pytest.fixture(scope="module")
def chip():
    return default_chip()


@pytest.fixture(scope="module")
def parm_audit(chip):
    profile = ProfileLibrary().get("blackscholes")
    decision = ParmManager().try_map(profile, 100.0, ChipState(chip))
    graph = profile.graph(decision.dop)
    audit = audit_mapping(
        chip, decision, graph, window_s=200e-9, dt_s=100e-12
    )
    return decision, audit


class TestAudit:
    def test_only_occupied_domains_have_noise(self, chip, parm_audit):
        decision, audit = parm_audit
        occupied_domains = {chip.domains.domain_of(t) for t in decision.tiles}
        for tile in chip.mesh.tiles():
            if chip.domains.domain_of(tile) in occupied_domains:
                continue
            assert audit.peak_psn_pct[tile] == 0.0
            assert audit.avg_psn_pct[tile] == 0.0

    def test_occupied_tiles_have_noise(self, parm_audit):
        decision, audit = parm_audit
        for tile in decision.tiles:
            assert audit.peak_psn_pct[tile] > 0.5
            assert audit.avg_psn_pct[tile] > 0.0
            assert audit.avg_psn_pct[tile] <= audit.peak_psn_pct[tile]

    def test_fast_model_tracks_transient_on_real_mapping(self, parm_audit):
        """The runtime's fast kernel must stay within ~2.5 PSN points of
        the ground truth on mappings PARM actually produces."""
        _, audit = parm_audit
        assert audit.fast_model_peak_error_pct < 2.5

    def test_hm_mapping_noisier_than_parm(self, chip, parm_audit):
        _, parm = parm_audit
        profile = ProfileLibrary().get("blackscholes")
        decision = HarmonicManager().try_map(profile, 100.0, ChipState(chip))
        graph = profile.graph(decision.dop)
        hm = audit_mapping(chip, decision, graph, window_s=200e-9, dt_s=100e-12)
        assert hm.chip_peak_pct > 1.5 * parm.chip_peak_pct

    def test_router_rate_shape_validated(self, chip):
        profile = ProfileLibrary().get("blackscholes")
        decision = ParmManager().try_map(profile, 100.0, ChipState(chip))
        graph = profile.graph(decision.dop)
        with pytest.raises(ValueError, match="router rates"):
            audit_mapping(chip, decision, graph, router_flits_per_cycle=[1.0])

    def test_router_traffic_raises_noise(self, chip):
        profile = ProfileLibrary().get("blackscholes")
        decision = ParmManager().try_map(profile, 100.0, ChipState(chip))
        graph = profile.graph(decision.dop)
        quiet = audit_mapping(
            chip, decision, graph, window_s=200e-9, dt_s=100e-12
        )
        rates = np.zeros(chip.tile_count)
        for tile in decision.tiles:
            rates[tile] = 2.0
        loud = audit_mapping(
            chip,
            decision,
            graph,
            router_flits_per_cycle=rates,
            window_s=200e-9,
            dt_s=100e-12,
        )
        assert loud.chip_peak_pct > quiet.chip_peak_pct


class TestIdleDomainTraffic:
    def test_traffic_through_idle_domains_is_audited(self, chip):
        import numpy as np

        profile = ProfileLibrary().get("blackscholes")
        decision = ParmManager().try_map(profile, 100.0, ChipState(chip))
        graph = profile.graph(decision.dop)
        occupied = {chip.domains.domain_of(t) for t in decision.tiles}
        idle_domain = next(
            d for d in range(chip.domain_count) if d not in occupied
        )
        rates = np.zeros(chip.tile_count)
        for t in chip.domains.tiles_of(idle_domain):
            rates[t] = 2.0
        audit = audit_mapping(
            chip,
            decision,
            graph,
            router_flits_per_cycle=rates,
            window_s=200e-9,
            dt_s=100e-12,
        )
        for t in chip.domains.tiles_of(idle_domain):
            assert audit.peak_psn_pct[t] > 0.0
