"""Tests for kernel calibration and fast-vs-transient agreement."""

import numpy as np
import pytest

from repro.chip.power import PowerModel
from repro.chip.technology import technology
from repro.pdn.calibrate import fit_kernels, generate_samples
from repro.pdn.fast import FastPsnModel
from repro.pdn.transient import PsnTransientAnalysis
from repro.pdn.waveforms import ActivityBin, TileLoad


@pytest.fixture(scope="module")
def small_corpus():
    """A reduced calibration corpus (single Vdd, short window).

    Uses the nominal voltage, where the inductive coupling regime (and
    hence the cross-bin asymmetry) is strongest.
    """
    return generate_samples(
        technology("7nm"),
        vdds=(0.8,),
        n_random=3,
        seed=11,
        window_s=200e-9,
        dt_s=100e-12,
    )


class TestGenerateSamples:
    def test_corpus_structure(self, small_corpus):
        # 4 singles + 4 same-bin domains + 8 pairs + 3 random per Vdd.
        assert len(small_corpus) == 19
        for s in small_corpus:
            assert s.vdd == 0.8
            assert s.freq_ratio == pytest.approx(1.0)
            assert len(s.loads) == 4
            assert s.peak_psn_pct.shape == (4,)
            assert np.all(s.peak_psn_pct >= s.avg_psn_pct - 1e-9)


class TestFit:
    def test_fit_reproduces_corpus(self, small_corpus):
        result = fit_kernels(samples=small_corpus, kappa2_grid=(0.8, 1.0))
        assert result.peak_rms_error_pct < 2.5
        assert result.avg_rms_error_pct < 0.5
        # The Fig. 3b asymmetry must be in the fitted kernel: a LOW victim
        # suffers more from a HIGH neighbour than a HIGH victim from a
        # HIGH neighbour of similar power.
        kernel = result.peak_kernels.kernel_for(0.8)
        z = kernel.z_cross
        assert z[(ActivityBin.LOW, ActivityBin.HIGH)] > z[
            (ActivityBin.HIGH, ActivityBin.HIGH)
        ]

    def test_fit_produces_one_kernel_per_vdd(self, small_corpus):
        result = fit_kernels(samples=small_corpus, kappa2_grid=(0.9,))
        assert set(result.peak_kernels.kernels) == {0.8}
        assert set(result.avg_kernels.kernels) == {0.8}

    def test_missing_vdd_raises(self, small_corpus):
        from repro.pdn.calibrate import _fit_one_vdd

        with pytest.raises(ValueError, match="no calibration samples"):
            _fit_one_vdd(small_corpus, 0.5, "peak", (0.9,))


class TestDefaultKernelAccuracy:
    """The frozen defaults must track the transient model on held-out
    configurations (they were fitted on a different corpus)."""

    @pytest.mark.parametrize("vdd", [0.4, 0.8])
    def test_fast_tracks_transient(self, vdd):
        tech = technology("7nm")
        power = PowerModel(tech)
        analysis = PsnTransientAnalysis(tech)
        fast = FastPsnModel()

        def load(activity, bin_, flits):
            return TileLoad(
                power.core_dynamic(activity, vdd) + power.core_leakage(vdd),
                power.router_dynamic(flits, vdd) + power.router_leakage(vdd),
                bin_,
            )

        loads = [
            load(0.75, ActivityBin.HIGH, 1.2),
            load(0.6, ActivityBin.HIGH, 0.8),
            load(0.3, ActivityBin.LOW, 1.5),
            TileLoad.idle(),
        ]
        true = analysis.analyze(vdd, loads)
        peak, avg = fast.domain_psn(vdd, loads)
        assert float(np.max(peak)) == pytest.approx(
            true.domain_peak_pct, rel=0.45
        )
        assert float(np.mean(avg)) == pytest.approx(
            true.domain_avg_pct, rel=0.35
        )
