"""Tests for the transient PSN analysis and the paper's Fig. 3 behaviours.

These run the MNA solver, so each analysis takes a noticeable fraction of
a second; the suite keeps the count modest and shares module-scoped
fixtures.
"""

import numpy as np
import pytest

from repro.chip.power import PowerModel
from repro.chip.technology import technology
from repro.pdn.transient import (
    SAME_BIN_JITTER_S,
    PsnTransientAnalysis,
    apply_phase_convention,
)
from repro.pdn.waveforms import ActivityBin, TileLoad


@pytest.fixture(scope="module")
def tech():
    return technology("7nm")


@pytest.fixture(scope="module")
def analysis(tech):
    return PsnTransientAnalysis(tech)


@pytest.fixture(scope="module")
def power(tech):
    return PowerModel(tech)


def make_load(power, vdd, activity, bin_, flits=0.5):
    core = power.core_dynamic(activity, vdd) + power.core_leakage(vdd)
    router = power.router_dynamic(flits, vdd) + power.router_leakage(vdd)
    return TileLoad(core, router, bin_)


class TestPhaseConvention:
    def test_same_bin_tasks_get_laddered_phases(self):
        loads = [
            TileLoad(0.3, 0.0, ActivityBin.HIGH),
            TileLoad(0.3, 0.0, ActivityBin.HIGH),
            TileLoad(0.1, 0.0, ActivityBin.LOW),
            TileLoad(0.3, 0.0, ActivityBin.HIGH),
        ]
        out = apply_phase_convention(loads)
        highs = [l for l in out if l.activity_bin is ActivityBin.HIGH]
        assert [l.phase_s for l in highs] == [
            0.0,
            SAME_BIN_JITTER_S,
            2 * SAME_BIN_JITTER_S,
        ]
        lows = [l for l in out if l.activity_bin is ActivityBin.LOW]
        assert lows[0].phase_s == 0.0

    def test_idle_tiles_unchanged(self):
        idle = TileLoad.idle()
        out = apply_phase_convention([idle] * 4)
        assert out == [idle] * 4

    def test_bins_counted_independently(self):
        loads = [
            TileLoad(0.3, 0.0, ActivityBin.HIGH),
            TileLoad(0.1, 0.0, ActivityBin.LOW),
            TileLoad(0.3, 0.0, ActivityBin.HIGH),
            TileLoad(0.1, 0.0, ActivityBin.LOW),
        ]
        out = apply_phase_convention(loads)
        assert out[0].phase_s == 0.0
        assert out[1].phase_s == 0.0
        assert out[2].phase_s == SAME_BIN_JITTER_S
        assert out[3].phase_s == SAME_BIN_JITTER_S


class TestAnalysis:
    def test_idle_domain_has_negligible_psn(self, analysis):
        report = analysis.analyze(0.5, [TileLoad.idle()] * 4)
        assert report.domain_peak_pct == pytest.approx(0.0, abs=1e-6)
        assert report.domain_avg_pct == pytest.approx(0.0, abs=1e-6)

    def test_load_count_validated(self, analysis):
        with pytest.raises(ValueError):
            analysis.analyze(0.5, [TileLoad.idle()] * 3)

    def test_window_validation(self, tech):
        with pytest.raises(ValueError):
            PsnTransientAnalysis(tech, window_s=0.0)
        with pytest.raises(ValueError):
            PsnTransientAnalysis(tech, window_s=1e-9, dt_s=2e-9)

    def test_loaded_tile_has_highest_psn(self, analysis, power):
        loads = [TileLoad.idle()] * 4
        loads[2] = make_load(power, 0.5, 0.7, ActivityBin.HIGH)
        report = analysis.analyze(0.5, loads)
        assert int(np.argmax(report.peak_psn_pct)) == 2
        assert report.peak_psn_pct[2] > 1.0
        assert report.domain_peak_pct == report.peak_psn_pct[2]
        assert np.all(report.avg_psn_pct <= report.peak_psn_pct)

    def test_peak_psn_grows_with_vdd(self, analysis, power):
        """Fig. 3a: peak PSN (percent of Vdd) rises with supply voltage."""
        peaks = []
        for vdd in (0.4, 0.6, 0.8):
            loads = [
                make_load(power, vdd, 0.7, ActivityBin.HIGH),
                make_load(power, vdd, 0.65, ActivityBin.HIGH),
                make_load(power, vdd, 0.2, ActivityBin.LOW),
                make_load(power, vdd, 0.25, ActivityBin.LOW),
            ]
            peaks.append(analysis.analyze(vdd, loads).domain_peak_pct)
        assert peaks[0] < peaks[1] < peaks[2]

    def test_communication_noisier_than_compute(self, analysis, power):
        """Fig. 3a holds for both workload kinds, comm slightly higher."""
        vdd = 0.6

        def domain(flits):
            loads = [
                make_load(power, vdd, 0.7, ActivityBin.HIGH, flits),
                make_load(power, vdd, 0.65, ActivityBin.HIGH, flits),
                make_load(power, vdd, 0.2, ActivityBin.LOW, flits),
                make_load(power, vdd, 0.25, ActivityBin.LOW, flits),
            ]
            return analysis.analyze(vdd, loads).domain_peak_pct

        assert domain(2.5) > domain(0.3)


class TestPairInterference:
    """The Fig. 3b behaviours, measured as interference components."""

    @pytest.fixture(scope="class")
    def bars(self, analysis, power):
        # Pair characterisation runs at the nominal voltage, where the
        # inductive coupling regime (and hence the hop-distance effect)
        # is strongest.
        vdd = 0.8
        high = make_load(power, vdd, 0.7, ActivityBin.HIGH)
        high2 = make_load(power, vdd, 0.65, ActivityBin.HIGH)
        low = make_load(power, vdd, 0.25, ActivityBin.LOW)
        low2 = make_load(power, vdd, 0.2, ActivityBin.LOW)

        def solo(load, pos):
            loads = [TileLoad.idle()] * 4
            loads[pos] = load
            return analysis.analyze(vdd, loads).peak_psn_pct[pos]

        def interference(load_a, load_b, hops):
            pos_b = 1 if hops == 1 else 3
            report = analysis.pair_analysis(vdd, load_a, load_b, hops)
            return max(
                report.peak_psn_pct[0] - solo(load_a, 0),
                report.peak_psn_pct[pos_b] - solo(load_b, pos_b),
            )

        return {
            ("HH", 1): interference(high, high2, 1),
            ("HL", 1): interference(high, low, 1),
            ("HL", 2): interference(high, low, 2),
            ("LL", 1): interference(low, low2, 1),
        }

    def test_high_low_interferes_most(self, bars):
        assert bars[("HL", 1)] > bars[("HH", 1)]
        assert bars[("HL", 1)] > bars[("LL", 1)]

    def test_high_low_excess_roughly_35_percent(self, bars):
        """Paper: H-L interference up to ~35 % higher than H-H."""
        excess = bars[("HL", 1)] / bars[("HH", 1)]
        assert 1.2 < excess < 1.6

    def test_two_hops_interfere_less(self, bars):
        """Paper: 2-hop separation interferes ~10 % less than 1-hop."""
        ratio = bars[("HL", 2)] / bars[("HL", 1)]
        assert 0.75 < ratio < 0.97

    def test_invalid_hops_rejected(self, analysis, power):
        load = make_load(power, 0.5, 0.5, ActivityBin.HIGH)
        with pytest.raises(ValueError, match="hops"):
            analysis.pair_analysis(0.5, load, load, 3)


class TestPlanReuse:
    """The second solve of one analyser must reuse the LU factorisation."""

    def _splu_counter(self, monkeypatch):
        import repro.pdn.circuit as circuit_mod

        calls = {"n": 0}
        real_splu = circuit_mod.spla.splu

        def counting_splu(*args, **kwargs):
            calls["n"] += 1
            return real_splu(*args, **kwargs)

        monkeypatch.setattr(circuit_mod.spla, "splu", counting_splu)
        return calls

    def test_second_solve_reuses_factorisation(
        self, tech, power, monkeypatch
    ):
        calls = self._splu_counter(monkeypatch)
        analysis = PsnTransientAnalysis(tech, window_s=10e-9)
        loads = [
            make_load(power, 0.6, 0.7, ActivityBin.HIGH) for _ in range(4)
        ]
        first = analysis.analyze(0.6, loads)
        primed = calls["n"]
        assert primed >= 1  # DC + transient factorisations
        # Same workload, a different workload, and a different supply
        # voltage: all enter through the right-hand side only, so none
        # may factorise again.
        analysis.analyze(0.6, loads)
        analysis.analyze(0.7, loads)
        low = [make_load(power, 0.5, 0.2, ActivityBin.LOW) for _ in range(4)]
        analysis.analyze(0.5, low)
        assert calls["n"] == primed
        again = analysis.analyze(0.6, loads)
        np.testing.assert_array_equal(first.peak_psn_pct, again.peak_psn_pct)

    def test_prime_prepays_factorisation(self, tech, power, monkeypatch):
        calls = self._splu_counter(monkeypatch)
        analysis = PsnTransientAnalysis(tech, window_s=10e-9)
        analysis.prime()
        primed = calls["n"]
        assert primed >= 1
        analysis.prime()  # idempotent
        assert calls["n"] == primed
        loads = [
            make_load(power, 0.6, 0.7, ActivityBin.HIGH) for _ in range(4)
        ]
        report = analysis.analyze(0.6, loads)
        # The solve itself must not add a transient factorisation; the
        # DC seed's LU was also built by prime's plan path.
        assert calls["n"] <= primed + 1
        fresh = PsnTransientAnalysis(tech, window_s=10e-9).analyze(0.6, loads)
        np.testing.assert_array_equal(
            report.peak_psn_pct, fresh.peak_psn_pct
        )
