"""Tests for the MNA circuit solver against analytic references."""

import math

import numpy as np
import pytest

from repro.pdn.circuit import GROUND, Circuit


class TestValidation:
    def test_nonpositive_elements_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.resistor("a", "b", 0.0)
        with pytest.raises(ValueError):
            c.capacitor("a", "b", -1e-9)
        with pytest.raises(ValueError):
            c.inductor("a", "b", 0.0)

    def test_transient_parameter_validation(self):
        c = Circuit()
        c.vsource("a", GROUND, 1.0)
        c.resistor("a", "b", 1.0)
        c.resistor("b", GROUND, 1.0)
        with pytest.raises(ValueError):
            c.transient(0.0, 1e-6)
        with pytest.raises(ValueError):
            c.transient(1e-3, -1e-6)
        with pytest.raises(ValueError):
            c.transient(1e-3, 1e-6, method="euler-forward")

    def test_empty_circuit_rejected(self):
        with pytest.raises(ValueError, match="no nodes"):
            Circuit().transient(1e-3, 1e-6)

    def test_unknown_node_in_result(self):
        c = Circuit()
        c.vsource("a", GROUND, 1.0)
        c.resistor("a", GROUND, 1.0)
        res = c.transient(1e-6, 1e-7)
        with pytest.raises(KeyError):
            res.voltage("nope")

    def test_ground_aliases(self):
        c = Circuit()
        c.vsource("a", "0", 1.0)
        c.resistor("a", "gnd", 1.0)
        res = c.transient(1e-6, 1e-7)
        assert np.allclose(res.voltage("gnd"), 0.0)
        assert np.allclose(res.voltage("0"), 0.0)
        assert np.allclose(res.voltage("a"), 1.0)


class TestDc:
    def test_voltage_divider(self):
        c = Circuit()
        c.vsource("in", GROUND, 10.0)
        c.resistor("in", "mid", 1000.0)
        c.resistor("mid", GROUND, 1000.0)
        op = c.operating_point()
        assert op["mid"] == pytest.approx(5.0)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.isource(GROUND, "n", 2.0)  # push 2 A into n
        c.resistor("n", GROUND, 3.0)
        op = c.operating_point()
        assert op["n"] == pytest.approx(6.0)

    def test_inductor_is_dc_short(self):
        c = Circuit()
        c.vsource("in", GROUND, 1.0)
        c.resistor("in", "a", 1.0)
        c.inductor("a", "b", 1e-9)
        c.resistor("b", GROUND, 1.0)
        op = c.operating_point()
        assert op["a"] == pytest.approx(op["b"])
        assert op["b"] == pytest.approx(0.5)

    def test_time_varying_source_evaluated_at_time(self):
        c = Circuit()
        c.isource(GROUND, "n", lambda t: 1.0 + t * 0.0)
        c.resistor("n", GROUND, 1.0)
        assert c.operating_point(at_time=0.0)["n"] == pytest.approx(1.0)


class TestTransientAnalytic:
    def test_rc_charging_curve(self):
        r_ohm, c_f = 1000.0, 1e-6
        tau = r_ohm * c_f
        c = Circuit()
        c.vsource("in", GROUND, 1.0)
        c.resistor("in", "out", r_ohm)
        c.capacitor("out", GROUND, c_f)
        c.isource("out", GROUND, lambda t: np.where(t >= 0, 0.0, 0.0))
        # Start the cap discharged by pre-loading: at DC with the source on,
        # the cap sits at 1 V, so instead drive the step through the source
        # current: pull 1mA out of the node forever and check steady state.
        res = c.transient(10 * tau, tau / 100)
        assert res.voltage("out")[-1] == pytest.approx(1.0, abs=1e-6)

    def test_rc_step_response_from_current_source(self):
        """Node driven by a current step into an RC reaches I*R with time
        constant R*C."""
        r_ohm, c_f, i_a = 100.0, 1e-6, 0.01
        tau = r_ohm * c_f
        c = Circuit()
        c.resistor("n", GROUND, r_ohm)
        c.capacitor("n", GROUND, c_f)
        c.isource(GROUND, "n", lambda t: np.where(t > 0, i_a, 0.0))
        res = c.transient(10 * tau, tau / 200)
        v = res.voltage("n")
        assert v[0] == pytest.approx(0.0, abs=1e-9)
        assert v[-1] == pytest.approx(i_a * r_ohm, rel=1e-3)
        # Value at t = tau should be (1 - e^-1) of final.
        idx = int(round(tau / (tau / 200)))
        assert v[idx] == pytest.approx(i_a * r_ohm * (1 - math.exp(-1)), rel=0.02)

    def test_rl_current_rise(self):
        """Series RL driven by a voltage source: i = V/R (1 - e^{-tR/L});
        node between R and L shows V * e^{-tR/L} ... checked via node v."""
        r_ohm, l_h, v_in = 10.0, 1e-3, 1.0
        tau = l_h / r_ohm
        c = Circuit()
        c.vsource("in", GROUND, v_in)
        c.resistor("in", "mid", r_ohm)
        c.inductor("mid", GROUND, l_h)
        # DC operating point shorts the inductor -> mid starts at 0 and
        # stays at 0 (steady state).  Perturb with a current step at mid.
        c.isource("mid", GROUND, lambda t: np.where(t > 0, 0.05, 0.0))
        res = c.transient(12 * tau, tau / 200)
        v = res.voltage("mid")
        # Initially the inductor holds its current, so the step flows
        # through R: v jumps by -0.05*R then recovers to 0.
        assert v[1] == pytest.approx(-0.05 * r_ohm, rel=0.05)
        assert v[-1] == pytest.approx(0.0, abs=1e-4)

    def test_rlc_ring_frequency(self):
        """Underdamped series RLC rings at ~1/(2*pi*sqrt(LC))."""
        l_h, c_f = 20e-12, 8.5e-9
        f_expected = 1.0 / (2 * math.pi * math.sqrt(l_h * c_f))
        c = Circuit()
        c.vsource("in", GROUND, 0.8)
        c.resistor("in", "m", 0.003)
        c.inductor("m", "out", l_h)
        c.capacitor("out", GROUND, c_f)
        c.isource("out", GROUND, lambda t: np.where(t > 1e-9, 2.0, 0.0))
        res = c.transient(80e-9, 50e-12)
        v = res.voltage("out")
        dev = v - v[-1]
        start = int(2e-9 / 50e-12)
        stop = int(40e-9 / 50e-12)
        seg = dev[start:stop]
        crossings = int(np.sum(np.abs(np.diff(np.sign(seg))) > 0))
        f_measured = crossings / 2 / (len(seg) * 50e-12)
        assert f_measured == pytest.approx(f_expected, rel=0.05)

    def test_superposition(self):
        """The network is linear: doubling the source current doubles the
        deviation from the DC rail."""

        def droop(i_amps):
            c = Circuit()
            c.vsource("in", GROUND, 1.0)
            c.resistor("in", "m", 0.01)
            c.inductor("m", "out", 1e-11)
            c.capacitor("out", GROUND, 1e-9)
            c.isource("out", GROUND, lambda t: i_amps * (t > 5e-10))
            res = c.transient(50e-9, 50e-12)
            return 1.0 - res.voltage("out").min()

        assert droop(2.0) == pytest.approx(2 * droop(1.0), rel=1e-6)

    def test_backward_euler_agrees_with_trapezoidal_at_steady_state(self):
        def final(method):
            c = Circuit()
            c.vsource("in", GROUND, 1.0)
            c.resistor("in", "out", 100.0)
            c.capacitor("out", GROUND, 1e-9)
            c.isource("out", GROUND, lambda t: 0.001 * (t > 0))
            return c.transient(5e-6, 1e-9, method=method).voltage("out")[-1]

        be = final("backward-euler")
        trap = final("trapezoidal")
        assert be == pytest.approx(trap, rel=1e-4)
        assert trap == pytest.approx(1.0 - 0.001 * 100.0, rel=1e-3)

    def test_result_time_axis(self):
        c = Circuit()
        c.vsource("a", GROUND, 1.0)
        c.resistor("a", GROUND, 1.0)
        res = c.transient(1e-6, 1e-7)
        assert res.time[0] == 0.0
        assert len(res.time) == 11
        assert res.time[-1] == pytest.approx(1e-6)
        assert res.voltages.shape == (11, 1)
