"""Tests for the fast interference-kernel PSN model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pdn.fast import (
    DOMAIN_DISTANCES,
    FastPsnModel,
    KernelLadder,
    PsnKernel,
    _DEFAULT_AVG,
    _DEFAULT_PEAK,
)
from repro.pdn.waveforms import ActivityBin, TileLoad


@pytest.fixture
def model():
    return FastPsnModel()


def high_load(power=0.4, router=0.05):
    return TileLoad(power, router, ActivityBin.HIGH)


def low_load(power=0.12, router=0.05):
    return TileLoad(power, router, ActivityBin.LOW)


class TestDomainDistances:
    def test_symmetric_with_zero_diagonal(self):
        assert np.all(DOMAIN_DISTANCES == DOMAIN_DISTANCES.T)
        assert np.all(np.diag(DOMAIN_DISTANCES) == 0)

    def test_matches_2x2_geometry(self):
        # positions: 0=TL, 1=TR, 2=BL, 3=BR
        assert DOMAIN_DISTANCES[0, 1] == 1
        assert DOMAIN_DISTANCES[0, 2] == 1
        assert DOMAIN_DISTANCES[0, 3] == 2
        assert DOMAIN_DISTANCES[1, 2] == 2


class TestKernelValidation:
    def test_default_ladders_cover_dvs_range(self):
        for ladder in (_DEFAULT_PEAK, _DEFAULT_AVG):
            assert set(ladder.kernels) == {0.4, 0.5, 0.6, 0.7, 0.8}

    def test_kappa(self):
        k = _DEFAULT_AVG.kernel_for(0.4)
        assert k.kappa(0) == 0.0
        assert k.kappa(1) == 1.0
        assert k.kappa(2) == k.kappa2
        with pytest.raises(ValueError):
            k.kappa(3)

    def test_nearest_level_dispatch(self):
        assert _DEFAULT_PEAK.kernel_for(0.42) is _DEFAULT_PEAK.kernels[0.4]
        assert _DEFAULT_PEAK.kernel_for(0.76) is _DEFAULT_PEAK.kernels[0.8]

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError):
            KernelLadder(kernels={})

    def test_missing_bins_rejected(self):
        with pytest.raises(ValueError):
            PsnKernel(
                z_own={ActivityBin.HIGH: 1e-3},
                z_cross=_DEFAULT_PEAK.kernel_for(0.4).z_cross,
                z_own_router=1e-3,
                z_cross_router=1e-3,
                kappa2=0.9,
            )

    def test_evaluate_input_validation(self):
        kernel = _DEFAULT_PEAK.kernel_for(0.5)
        with pytest.raises(ValueError):
            kernel.evaluate(0.0, [None] * 4)
        with pytest.raises(ValueError):
            kernel.evaluate(0.5, [None] * 3)


class TestEvaluate:
    def test_empty_domain_is_zero(self, model):
        peak, avg = model.domain_psn(0.5, [None] * 4)
        assert np.allclose(peak, 0.0)
        assert np.allclose(avg, 0.0)

    def test_idle_loads_equal_none(self, model):
        peak_none, _ = model.domain_psn(0.5, [high_load(), None, None, None])
        peak_idle, _ = model.domain_psn(
            0.5, [high_load(), TileLoad.idle(), TileLoad.idle(), TileLoad.idle()]
        )
        assert np.allclose(peak_none, peak_idle)

    def test_own_tile_dominates(self, model):
        peak, _ = model.domain_psn(0.5, [high_load(), None, None, None])
        assert peak[0] > peak[1]
        assert peak[0] > peak[3]

    def test_psn_grows_with_core_power(self, model):
        p1, _ = model.domain_psn(0.5, [high_load(0.2), None, None, None])
        p2, _ = model.domain_psn(0.5, [high_load(0.4), None, None, None])
        assert p2[0] > p1[0]

    def test_low_victim_suffers_from_high_aggressor(self, model):
        """The Fig. 3b effect in the kernel: a LOW task next to a HIGH
        task sees more noise than next to an equally powerful LOW task."""
        victim = low_load()
        high_agg = TileLoad(0.4, 0.05, ActivityBin.HIGH)
        low_agg = TileLoad(0.4, 0.05, ActivityBin.LOW)
        peak_hl, _ = model.domain_psn(0.5, [victim, high_agg, None, None])
        peak_ll, _ = model.domain_psn(0.5, [victim, low_agg, None, None])
        assert peak_hl[0] > peak_ll[0]

    def test_effective_impedance_grows_with_vdd(self):
        """Burst di/dt tracks the clock, so the fitted z_own(HIGH) rises
        monotonically across the ladder (the Fig. 3a mechanism)."""
        zs = [
            _DEFAULT_PEAK.kernels[v].z_own[ActivityBin.HIGH]
            for v in (0.4, 0.6, 0.8)
        ]
        assert zs[2] > zs[0]

    def test_parm_vs_hm_contrast(self, model):
        """The headline Fig. 7 contrast must be visible to the runtime:
        an all-HIGH NTC domain is far quieter than a mixed nominal-Vdd
        domain of the same tasks."""
        ntc = [
            TileLoad(0.33, 0.02, ActivityBin.HIGH),
            TileLoad(0.32, 0.02, ActivityBin.HIGH),
            TileLoad(0.30, 0.02, ActivityBin.HIGH),
            TileLoad(0.31, 0.02, ActivityBin.HIGH),
        ]
        nominal = [
            TileLoad(2.4, 0.3, ActivityBin.HIGH),
            TileLoad(0.9, 0.3, ActivityBin.LOW),
            TileLoad(1.0, 0.3, ActivityBin.LOW),
            TileLoad(2.3, 0.3, ActivityBin.HIGH),
        ]
        peak_parm, _ = model.domain_psn(0.4, ntc)
        peak_hm, _ = model.domain_psn(0.8, nominal)
        assert float(peak_hm.max()) > 1.7 * float(peak_parm.max())

    @settings(max_examples=30)
    @given(
        vdd=st.sampled_from([0.4, 0.5, 0.6, 0.7, 0.8]),
        powers=st.lists(st.floats(0.0, 1.5), min_size=4, max_size=4),
    )
    def test_psn_nonnegative_and_finite(self, vdd, powers):
        model = FastPsnModel()
        loads = [
            TileLoad(p, 0.02, ActivityBin.HIGH if i % 2 else ActivityBin.LOW)
            for i, p in enumerate(powers)
        ]
        peak, avg = model.domain_psn(vdd, loads)
        assert np.all(peak >= 0)
        assert np.all(avg >= 0)
        assert np.all(np.isfinite(peak))
