"""Tests for the sensor network and voltage-emergency models."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pdn.emergencies import (
    MAX_POISSON_MEAN,
    VE_THRESHOLD_PCT,
    VoltageEmergencyPolicy,
)
from repro.pdn.sensors import SensorFault, SensorNetwork


class TestSensorNetwork:
    def test_quantisation(self):
        net = SensorNetwork(lsb_pct=0.25)
        assert net.read(1.13) == pytest.approx(1.25)
        assert net.read(1.12) == pytest.approx(1.0)
        assert net.read(0.0) == 0.0

    def test_clamping(self):
        net = SensorNetwork(lsb_pct=0.25, full_scale_pct=10.0)
        assert net.read(50.0) == pytest.approx(10.0)
        assert net.read(-3.0) == 0.0

    def test_read_array_matches_scalar(self):
        net = SensorNetwork()
        values = np.array([0.0, 1.13, 4.9, 30.0])
        arr = net.read_array(values)
        assert arr == pytest.approx([net.read(v) for v in values])

    def test_update_and_latest(self):
        net = SensorNetwork()
        assert net.latest(5) == 0.0
        net.update(5, 3.1)
        assert net.latest(5) == pytest.approx(net.read(3.1))
        snap = net.snapshot()
        assert snap == {5: net.read(3.1)}
        snap[5] = 99.0  # snapshot is a copy
        assert net.latest(5) != 99.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorNetwork(lsb_pct=0.0)
        with pytest.raises(ValueError):
            SensorNetwork(lsb_pct=1.0, full_scale_pct=0.5)

    @given(value=st.floats(0.0, 25.0))
    def test_quantisation_error_bounded(self, value):
        net = SensorNetwork(lsb_pct=0.25)
        assert abs(net.read(value) - value) <= 0.125 + 1e-9

    def test_non_finite_input_rejected(self):
        """Regression: round(nan) used to propagate a NaN reading into
        every downstream PANR cost term; non-finite PSN must raise."""
        net = SensorNetwork()
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                net.read(bad)
        with pytest.raises(ValueError) as err:
            net.read_array(np.array([1.0, math.nan, 2.0, math.inf]))
        # The error names the offending tiles to speed up debugging.
        assert "[1, 3]" in str(err.value)
        with pytest.raises(ValueError):
            net.update(0, math.nan)


class TestSensorFaults:
    def test_stuck_sensor_reports_latched_code_invalid(self):
        net = SensorNetwork()
        net.set_fault(2, SensorFault("stuck", value_pct=7.0))
        values, valid = net.read_tiles(np.array([1.0, 1.0, 1.0]), 0.0)
        assert values[2] == pytest.approx(7.0)
        assert not valid[2]
        assert valid[0] and valid[1]

    def test_dead_sensor_holds_last_healthy_reading(self):
        net = SensorNetwork()
        net.read_tiles(np.array([3.0, 3.0]), 0.0)
        net.set_fault(1, SensorFault("dead", since_s=1.0))
        values, valid = net.read_tiles(np.array([8.0, 8.0]), 1.0)
        assert values[0] == pytest.approx(8.0)
        assert values[1] == pytest.approx(3.0)  # frozen
        assert not valid[1]

    def test_drift_is_silent(self):
        net = SensorNetwork()
        net.set_fault(0, SensorFault("drift", value_pct=2.0, since_s=0.0))
        values, valid = net.read_tiles(np.array([1.0]), 2.0)
        assert values[0] == pytest.approx(5.0)  # 1 + 2 %/s * 2 s
        assert valid[0]  # silent: consumers cannot tell

    def test_staleness_invalidates_unrefreshed_reading(self):
        net = SensorNetwork(staleness_limit_s=0.5)
        assert net.is_stale(0, 0.0)  # never sampled
        net.read_tiles(np.array([1.0]), 0.0)
        assert not net.is_stale(0, 0.4)
        assert net.is_stale(0, 0.6)

    def test_clear_fault_guarded_by_onset_time(self):
        net = SensorNetwork()
        net.set_fault(0, SensorFault("stuck", since_s=5.0))
        net.clear_fault(0, since_s=1.0)  # stale expiry: must not clear
        assert net.fault(0) is not None
        net.clear_fault(0, since_s=5.0)
        assert net.fault(0) is None
        net.clear_fault(0)  # clearing a healthy tile is a no-op

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            SensorFault("gone")
        with pytest.raises(ValueError):
            SensorFault("stuck", value_pct=math.nan)
        with pytest.raises(ValueError):
            SensorFault("stuck", since_s=-1.0)


class TestVoltageEmergencyPolicy:
    def test_threshold_matches_paper(self):
        assert VE_THRESHOLD_PCT == 5.0
        policy = VoltageEmergencyPolicy()
        assert not policy.is_emergency(4.99)
        assert policy.is_emergency(5.01)

    def test_rate_zero_below_threshold(self):
        policy = VoltageEmergencyPolicy()
        assert policy.expected_rate_hz(3.0) == 0.0
        assert policy.expected_rate_hz(5.0) == 0.0

    def test_rate_grows_superlinearly(self):
        policy = VoltageEmergencyPolicy()
        r1 = policy.expected_rate_hz(6.0)
        r2 = policy.expected_rate_hz(7.0)
        assert r2 > 2 * r1

    def test_sampling_deterministic_with_seed(self):
        policy = VoltageEmergencyPolicy()
        a = policy.sample_emergencies(7.0, 1.0, np.random.default_rng(3))
        b = policy.sample_emergencies(7.0, 1.0, np.random.default_rng(3))
        assert a == b

    def test_sampling_zero_cases(self):
        policy = VoltageEmergencyPolicy()
        rng = np.random.default_rng(0)
        assert policy.sample_emergencies(4.0, 10.0, rng) == 0
        assert policy.sample_emergencies(8.0, 0.0, rng) == 0
        with pytest.raises(ValueError):
            policy.sample_emergencies(8.0, -1.0, rng)

    def test_sampling_mean_tracks_rate(self):
        policy = VoltageEmergencyPolicy()
        rng = np.random.default_rng(42)
        rate = policy.expected_rate_hz(6.5)
        counts = [policy.sample_emergencies(6.5, 1.0, rng) for _ in range(300)]
        assert np.mean(counts) == pytest.approx(rate, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            VoltageEmergencyPolicy(threshold_pct=0.0)
        with pytest.raises(ValueError):
            VoltageEmergencyPolicy(rate_per_pct_s=-1.0)

    def test_non_finite_noise_rejected(self):
        """Regression: NaN/inf peak PSN must raise instead of poisoning
        the Poisson sampling (inf * duration -> nan mean)."""
        policy = VoltageEmergencyPolicy()
        rng = np.random.default_rng(0)
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                policy.expected_rate_hz(bad)
            with pytest.raises(ValueError):
                policy.sample_emergencies(bad, 1.0, rng)

    def test_poisson_mean_clamped(self):
        """Regression: a pathological rate x duration product used to
        crash numpy's Poisson sampler; the mean is clamped instead."""
        policy = VoltageEmergencyPolicy(rate_per_pct_s=1e30)
        rng = np.random.default_rng(1)
        count = policy.sample_emergencies(20.0, 1e6, rng)
        assert isinstance(count, int)
        assert 0 < count <= MAX_POISSON_MEAN * 1.01
