"""Tests for the sensor network and voltage-emergency models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.pdn.emergencies import VE_THRESHOLD_PCT, VoltageEmergencyPolicy
from repro.pdn.sensors import SensorNetwork


class TestSensorNetwork:
    def test_quantisation(self):
        net = SensorNetwork(lsb_pct=0.25)
        assert net.read(1.13) == pytest.approx(1.25)
        assert net.read(1.12) == pytest.approx(1.0)
        assert net.read(0.0) == 0.0

    def test_clamping(self):
        net = SensorNetwork(lsb_pct=0.25, full_scale_pct=10.0)
        assert net.read(50.0) == pytest.approx(10.0)
        assert net.read(-3.0) == 0.0

    def test_read_array_matches_scalar(self):
        net = SensorNetwork()
        values = np.array([0.0, 1.13, 4.9, 30.0])
        arr = net.read_array(values)
        assert arr == pytest.approx([net.read(v) for v in values])

    def test_update_and_latest(self):
        net = SensorNetwork()
        assert net.latest(5) == 0.0
        net.update(5, 3.1)
        assert net.latest(5) == pytest.approx(net.read(3.1))
        snap = net.snapshot()
        assert snap == {5: net.read(3.1)}
        snap[5] = 99.0  # snapshot is a copy
        assert net.latest(5) != 99.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorNetwork(lsb_pct=0.0)
        with pytest.raises(ValueError):
            SensorNetwork(lsb_pct=1.0, full_scale_pct=0.5)

    @given(value=st.floats(0.0, 25.0))
    def test_quantisation_error_bounded(self, value):
        net = SensorNetwork(lsb_pct=0.25)
        assert abs(net.read(value) - value) <= 0.125 + 1e-9


class TestVoltageEmergencyPolicy:
    def test_threshold_matches_paper(self):
        assert VE_THRESHOLD_PCT == 5.0
        policy = VoltageEmergencyPolicy()
        assert not policy.is_emergency(4.99)
        assert policy.is_emergency(5.01)

    def test_rate_zero_below_threshold(self):
        policy = VoltageEmergencyPolicy()
        assert policy.expected_rate_hz(3.0) == 0.0
        assert policy.expected_rate_hz(5.0) == 0.0

    def test_rate_grows_superlinearly(self):
        policy = VoltageEmergencyPolicy()
        r1 = policy.expected_rate_hz(6.0)
        r2 = policy.expected_rate_hz(7.0)
        assert r2 > 2 * r1

    def test_sampling_deterministic_with_seed(self):
        policy = VoltageEmergencyPolicy()
        a = policy.sample_emergencies(7.0, 1.0, np.random.default_rng(3))
        b = policy.sample_emergencies(7.0, 1.0, np.random.default_rng(3))
        assert a == b

    def test_sampling_zero_cases(self):
        policy = VoltageEmergencyPolicy()
        rng = np.random.default_rng(0)
        assert policy.sample_emergencies(4.0, 10.0, rng) == 0
        assert policy.sample_emergencies(8.0, 0.0, rng) == 0
        with pytest.raises(ValueError):
            policy.sample_emergencies(8.0, -1.0, rng)

    def test_sampling_mean_tracks_rate(self):
        policy = VoltageEmergencyPolicy()
        rng = np.random.default_rng(42)
        rate = policy.expected_rate_hz(6.5)
        counts = [policy.sample_emergencies(6.5, 1.0, rng) for _ in range(300)]
        assert np.mean(counts) == pytest.approx(rate, rel=0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            VoltageEmergencyPolicy(threshold_pct=0.0)
        with pytest.raises(ValueError):
            VoltageEmergencyPolicy(rate_per_pct_s=-1.0)
