"""Tests for the small-signal AC impedance analysis."""

import math

import numpy as np
import pytest

from repro.chip.technology import technology
from repro.pdn.builder import DomainPdnBuilder
from repro.pdn.circuit import GROUND, Circuit


class TestAcValidation:
    def test_ground_probe_rejected(self):
        c = Circuit()
        c.resistor("a", GROUND, 1.0)
        with pytest.raises(ValueError, match="ground"):
            c.ac_impedance(GROUND, [1e6])

    def test_unknown_node_rejected(self):
        c = Circuit()
        c.resistor("a", GROUND, 1.0)
        with pytest.raises(KeyError):
            c.ac_impedance("b", [1e6])

    def test_bad_frequencies_rejected(self):
        c = Circuit()
        c.resistor("a", GROUND, 1.0)
        with pytest.raises(ValueError):
            c.ac_impedance("a", [])
        with pytest.raises(ValueError):
            c.ac_impedance("a", [0.0])


class TestAcAnalytic:
    def test_pure_resistor_is_flat(self):
        c = Circuit()
        c.resistor("a", GROUND, 42.0)
        z = c.ac_impedance("a", [1e3, 1e6, 1e9])
        assert z == pytest.approx([42.0] * 3)

    def test_capacitor_impedance(self):
        """|Z_C| = 1 / (2 pi f C)."""
        c = Circuit()
        c.capacitor("a", GROUND, 1e-9)
        freqs = [1e6, 1e7, 1e8]
        z = c.ac_impedance("a", freqs)
        expected = [1.0 / (2 * math.pi * f * 1e-9) for f in freqs]
        assert z == pytest.approx(expected, rel=1e-9)

    def test_inductor_impedance_through_source(self):
        """A DC source is an AC short, so an L in series to the source
        gives |Z| = 2 pi f L at the far node."""
        c = Circuit()
        c.vsource("vin", GROUND, 1.0)
        c.inductor("vin", "a", 1e-9)
        freqs = [1e6, 1e8]
        z = c.ac_impedance("a", freqs)
        expected = [2 * math.pi * f * 1e-9 for f in freqs]
        assert z == pytest.approx(expected, rel=1e-9)

    def test_parallel_rlc_peaks_at_resonance(self):
        """Parallel L (via source) and C: anti-resonance at
        1/(2 pi sqrt(LC)), where |Z| = Q * sqrt(L/C) is maximal."""
        l_h, c_f, r_ohm = 20e-12, 8.5e-9, 0.003
        f_res = 1.0 / (2 * math.pi * math.sqrt(l_h * c_f))
        c = Circuit()
        c.vsource("vin", GROUND, 1.0)
        c.resistor("vin", "m", r_ohm)
        c.inductor("m", "a", l_h)
        c.capacitor("a", GROUND, c_f)
        freqs = np.geomspace(f_res / 10, f_res * 10, 201)
        z = c.ac_impedance("a", freqs)
        peak_f = freqs[int(np.argmax(z))]
        assert peak_f == pytest.approx(f_res, rel=0.05)
        # Peak magnitude ~ Q * characteristic impedance.
        z0 = math.sqrt(l_h / c_f)
        q = z0 / r_ohm
        assert z.max() == pytest.approx(q * z0, rel=0.05)


class TestDomainImpedance:
    def test_profile_peaks_near_tank_resonance(self):
        builder = DomainPdnBuilder(technology("7nm"))
        f_res = builder.resonance_hz()
        freqs = np.geomspace(f_res / 20, f_res * 20, 101)
        z = builder.impedance_profile(freqs)
        peak_f = freqs[int(np.argmax(z))]
        # The 4-tile grid shifts the peak somewhat from the single-tile
        # estimate, but it stays in the same octave.
        assert f_res / 2 < peak_f < f_res * 2
        # Low-frequency impedance approaches the resistive path.
        tech = technology("7nm")
        assert z[0] == pytest.approx(tech.r_bump_ohm, rel=0.5)

    def test_newer_nodes_have_peakier_pdn(self):
        """Less decap and thinner wires at 7 nm raise the anti-resonant
        impedance versus 45 nm - the Fig. 1 mechanism."""
        z_peaks = {}
        for name in ("45nm", "7nm"):
            builder = DomainPdnBuilder(technology(name))
            f_res = builder.resonance_hz()
            freqs = np.geomspace(f_res / 10, f_res * 10, 61)
            z_peaks[name] = float(builder.impedance_profile(freqs).max())
        assert z_peaks["7nm"] > z_peaks["45nm"]
