"""Tests for the routing algorithms."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chip.mesh import MeshGeometry
from repro.noc.routing import (
    IconRouting,
    PanrRouting,
    WestFirstRouting,
    XYRouting,
    make_routing,
)
from repro.noc.routing.base import RoutingContext
from repro.noc.topology import Direction, MeshTopology


@pytest.fixture(scope="module")
def topo():
    return MeshTopology(MeshGeometry(6, 6))


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("xy", XYRouting),
            ("XY", XYRouting),
            ("west-first", WestFirstRouting),
            ("panr", PanrRouting),
            ("icon", IconRouting),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_routing(name), cls)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="warp"):
            make_routing("warp")


class TestXY:
    def test_x_before_y(self, topo):
        # From (0,0) to (3,2): east until x matches, then south.
        assert XYRouting().permissible(topo, 0, 15) == [Direction.EAST]
        # (3,0) -> (3,2): x aligned, go south.
        assert XYRouting().permissible(topo, 3, 15) == [Direction.SOUTH]

    def test_arrival(self, topo):
        assert XYRouting().permissible(topo, 15, 15) == []

    def test_single_direction_always(self, topo):
        xy = XYRouting()
        for dst in (1, 8, 35, 30):
            for cur in range(36):
                dirs = xy.permissible(topo, cur, dst)
                assert len(dirs) <= 1


class TestWestFirst:
    def test_west_exclusive(self, topo):
        # (3,1)=9 to (1,3)=19: needs west, so west only.
        dirs = WestFirstRouting().permissible(topo, 9, 19)
        assert dirs == [Direction.WEST]

    def test_adaptive_when_no_west(self, topo):
        # (0,0) to (2,2)=14: east and south both permitted.
        dirs = WestFirstRouting().permissible(topo, 0, 14)
        assert set(dirs) == {Direction.EAST, Direction.SOUTH}

    def test_no_turn_into_west(self, topo):
        """The defining turn-model property: WEST never appears together
        with another direction."""
        wf = WestFirstRouting()
        for cur in range(36):
            for dst in range(36):
                dirs = wf.permissible(topo, cur, dst)
                if Direction.WEST in dirs:
                    assert dirs == [Direction.WEST]

    @settings(max_examples=50)
    @given(cur=st.integers(0, 35), dst=st.integers(0, 35))
    def test_minimal_and_productive(self, topo, cur, dst):
        """Every permitted hop reduces the Manhattan distance by one."""
        wf = WestFirstRouting()
        for d in wf.permissible(topo, cur, dst):
            nxt = topo.neighbor(cur, d)
            assert nxt is not None
            assert topo.mesh.manhattan(nxt, dst) == topo.mesh.manhattan(cur, dst) - 1


class TestPanr:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PanrRouting(buffer_threshold=1.5)

    def test_low_occupancy_prefers_low_psn(self, topo):
        """Algorithm 3 line 6: below B, pick the least-PSN direction."""
        panr = PanrRouting(buffer_threshold=0.5)
        ctx = RoutingContext(
            buffer_occupancy=0.2,
            neighbor_data_rate={Direction.EAST: 0.9, Direction.SOUTH: 0.1},
            neighbor_psn_pct={Direction.EAST: 1.0, Direction.SOUTH: 6.0},
        )
        # 0 -> 14: east or south permitted; east has lower PSN.
        assert panr.select(topo, 0, 14, ctx) is Direction.EAST

    def test_high_occupancy_prefers_low_data_rate(self, topo):
        """Algorithm 3 line 5: above B, pick the least-congested."""
        panr = PanrRouting(buffer_threshold=0.5)
        ctx = RoutingContext(
            buffer_occupancy=0.8,
            neighbor_data_rate={Direction.EAST: 0.9, Direction.SOUTH: 0.1},
            neighbor_psn_pct={Direction.EAST: 1.0, Direction.SOUTH: 6.0},
        )
        assert panr.select(topo, 0, 14, ctx) is Direction.SOUTH

    def test_single_permitted_direction_short_circuits(self, topo):
        panr = PanrRouting()
        ctx = RoutingContext(
            buffer_occupancy=0.0,
            neighbor_psn_pct={Direction.WEST: 99.0},
        )
        # 9 -> 19 requires west regardless of noise.
        assert panr.select(topo, 9, 19, ctx) is Direction.WEST

    def test_weights_inverse_to_metric(self, topo):
        panr = PanrRouting()
        ctx = RoutingContext(
            buffer_occupancy=0.0,
            neighbor_psn_pct={Direction.EAST: 2.0, Direction.SOUTH: 4.0},
        )
        w = panr.weights(topo, 0, 14, ctx)
        assert w[Direction.EAST] > w[Direction.SOUTH]


class TestIcon:
    def test_activity_balancing_regardless_of_psn(self, topo):
        """ICON ignores core PSN entirely - its defining limitation."""
        icon = IconRouting()
        ctx = RoutingContext(
            buffer_occupancy=0.0,
            neighbor_data_rate={Direction.EAST: 0.9, Direction.SOUTH: 0.1},
            neighbor_psn_pct={Direction.EAST: 0.1, Direction.SOUTH: 99.0},
        )
        assert icon.select(topo, 0, 14, ctx) is Direction.SOUTH

    def test_respects_west_first_turns(self, topo):
        icon = IconRouting()
        assert icon.permissible(topo, 9, 19) == [Direction.WEST]


class TestSelectDeterminism:
    def test_ties_break_deterministically(self, topo):
        panr = PanrRouting()
        ctx = RoutingContext(
            buffer_occupancy=0.0,
            neighbor_psn_pct={Direction.EAST: 1.0, Direction.SOUTH: 1.0},
        )
        picks = {panr.select(topo, 0, 14, ctx) for _ in range(5)}
        assert len(picks) == 1
