"""Cross-validation: the analytical model must rank scenarios like the
cycle-accurate simulator (DESIGN.md decision #2)."""

import numpy as np
import pytest

from repro.chip.mesh import MeshGeometry
from repro.noc.analytical import AnalyticalNocModel, Flow
from repro.noc.cycle import CycleNocSimulator, TrafficFlow
from repro.noc.routing import XYRouting
from repro.noc.topology import MeshTopology


@pytest.fixture(scope="module")
def mesh():
    return MeshGeometry(6, 6)


# Increasingly congested scenarios: under XY all flows to tile 35 share
# the column-5 south links, so contention genuinely escalates.  Rates are
# chosen so that "medium" stays below the analytical model's
# burstiness-scaled saturation clamp while "heavy" exceeds it.
SCENARIOS = {
    "light": [(0, 35, 0.05)],
    "medium": [(0, 35, 0.15), (6, 35, 0.15)],
    "heavy": [(0, 35, 0.35), (6, 35, 0.35), (12, 35, 0.35), (18, 35, 0.35)],
}


class TestRankAgreement:
    def test_latency_rank_matches(self, mesh):
        cyc_lat = {}
        ana_lat = {}
        topo = MeshTopology(mesh)
        for name, spec in SCENARIOS.items():
            sim = CycleNocSimulator(mesh, XYRouting(), seed=0)
            stats = sim.run(
                [TrafficFlow(s, d, r) for s, d, r in spec], 6000
            )
            cyc_lat[name] = stats.avg_packet_latency
            rep = AnalyticalNocModel(topo, XYRouting()).evaluate(
                [Flow(s, d, r) for s, d, r in spec]
            )
            ana_lat[name] = rep.avg_latency_cycles
        cyc_order = sorted(SCENARIOS, key=cyc_lat.get)
        ana_order = sorted(SCENARIOS, key=ana_lat.get)
        assert cyc_order == ana_order == ["light", "medium", "heavy"]

    def test_router_activity_correlates(self, mesh):
        spec = SCENARIOS["medium"]
        sim = CycleNocSimulator(mesh, XYRouting(), seed=0)
        stats = sim.run([TrafficFlow(s, d, r) for s, d, r in spec], 6000)
        topo = MeshTopology(mesh)
        rep = AnalyticalNocModel(topo, XYRouting()).evaluate(
            [Flow(s, d, r) for s, d, r in spec]
        )
        a = stats.router_flits_per_cycle
        b = rep.router_flits_per_cycle
        # Same set of active routers (deterministic XY paths)...
        assert set(np.nonzero(a > 0.01)[0]) == set(np.nonzero(b > 0.01)[0])
        # ...and strongly correlated magnitudes.
        active = b > 0.01
        corr = np.corrcoef(a[active], b[active])[0, 1]
        assert corr > 0.9
