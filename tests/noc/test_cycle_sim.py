"""Tests for the cycle-level NoC simulator."""

import numpy as np
import pytest

from repro.chip.mesh import MeshGeometry
from repro.noc.cycle import CycleNocSimulator, TrafficFlow
from repro.noc.cycle.packets import Flit, Packet
from repro.noc.cycle.router import Router
from repro.noc.routing import PanrRouting, XYRouting, make_routing


class TestPackets:
    def test_flit_roles(self):
        p = Packet(0, 0, 5, size_flits=3, injected_cycle=0)
        flits = [Flit(p, i) for i in range(3)]
        assert flits[0].is_head and not flits[0].is_tail
        assert not flits[1].is_head and not flits[1].is_tail
        assert flits[2].is_tail and not flits[2].is_head

    def test_single_flit_packet(self):
        p = Packet(0, 0, 5, size_flits=1, injected_cycle=0)
        f = Flit(p, 0)
        assert f.is_head and f.is_tail

    def test_size_validated(self):
        with pytest.raises(ValueError):
            Packet(0, 0, 5, size_flits=0, injected_cycle=0)


class TestRouterParts:
    def test_buffer_depth_validated(self):
        with pytest.raises(ValueError):
            Router(0, buffer_depth=0)

    def test_input_overflow_raises(self):
        r = Router(0, buffer_depth=1)
        from repro.noc.topology import Direction

        p = Packet(0, 0, 1, 1, 0)
        r.inputs[Direction.LOCAL].push(Flit(p, 0))
        with pytest.raises(OverflowError):
            r.inputs[Direction.LOCAL].push(Flit(p, 0))


class TestSimulator:
    def _sim(self, routing=None, **kw):
        return CycleNocSimulator(
            MeshGeometry(4, 4), routing or XYRouting(), seed=0, **kw
        )

    def test_single_packet_delivery_latency(self):
        """One lonely packet: latency = hops + serialisation."""
        sim = self._sim()
        # 0 -> 3 is 3 hops; packet of 4 flits.
        stats = sim.run([TrafficFlow(0, 3, rate=0.001, packet_size=4)], 4100)
        assert stats.packets_delivered >= 1
        lat = stats.packet_latencies[0]
        # Head crosses 3 hops + ejection, tail follows 3 cycles later;
        # injection and the first hop share a cycle, so the minimum is 6.
        assert 6 <= lat <= 20

    def test_all_injected_eventually_delivered(self):
        sim = self._sim()
        flows = [TrafficFlow(0, 15, 0.2), TrafficFlow(12, 3, 0.2)]
        stats = sim.run(flows, 4000)
        assert stats.packets_injected > 50
        # Allow a few packets in flight at the end.
        assert stats.packets_delivered >= stats.packets_injected - 8

    def test_flit_conservation(self):
        sim = self._sim()
        flows = [TrafficFlow(5, 10, 0.3, packet_size=4)]
        stats = sim.run(flows, 2000)
        assert stats.flits_delivered == pytest.approx(
            stats.packets_delivered * 4
        )

    def test_throughput_tracks_offered_load(self):
        sim = self._sim()
        stats = sim.run([TrafficFlow(0, 15, 0.25)], 4000)
        assert stats.throughput_flits_per_cycle == pytest.approx(0.25, rel=0.15)

    def test_router_activity_positive_on_path_only(self):
        sim = self._sim()
        stats = sim.run([TrafficFlow(0, 3, 0.2)], 2000)
        # XY: path is the top row (0,1,2,3); bottom row untouched.
        assert all(stats.router_flits_per_cycle[t] > 0 for t in (0, 1, 2, 3))
        assert all(stats.router_flits_per_cycle[t] == 0 for t in (12, 13, 14, 15))

    def test_latency_grows_with_congestion(self):
        light = self._sim().run([TrafficFlow(0, 15, 0.1)], 4000)
        # Three flows converging on the same column-3 links under XY.
        heavy_flows = [
            TrafficFlow(0, 15, 0.45),
            TrafficFlow(4, 15, 0.45),
            TrafficFlow(8, 15, 0.45),
        ]
        heavy = self._sim().run(heavy_flows, 4000)
        assert heavy.avg_packet_latency > light.avg_packet_latency

    def test_validation(self):
        sim = self._sim()
        with pytest.raises(ValueError):
            sim.run([], 0)
        with pytest.raises(ValueError):
            sim.run([TrafficFlow(3, 3, 0.1)], 100)
        with pytest.raises(ValueError):
            TrafficFlow(0, 1, -0.1)
        with pytest.raises(ValueError):
            TrafficFlow(0, 1, 0.1, packet_size=0)

    def test_psn_shape_validated(self):
        with pytest.raises(ValueError):
            self._sim(psn_pct=np.zeros(3))

    def test_deterministic(self):
        flows = [TrafficFlow(0, 15, 0.3), TrafficFlow(3, 12, 0.3)]
        a = self._sim(PanrRouting()).run(flows, 1500)
        b = self._sim(PanrRouting()).run(flows, 1500)
        assert a.packet_latencies == b.packet_latencies

    def test_panr_avoids_noisy_region(self):
        """With a hot-PSN row, PANR shifts traffic off it while XY
        ploughs straight through."""
        psn = np.zeros(16)
        psn[[1, 2]] = 9.0  # top row noisy
        # 0 -> 7 has minimal paths along the top row or dropping south
        # first; XY goes straight east through the noisy tiles.
        flows = [TrafficFlow(0, 7, 0.2, packet_size=4)]
        xy = CycleNocSimulator(MeshGeometry(4, 4), XYRouting(), psn_pct=psn)
        panr = CycleNocSimulator(MeshGeometry(4, 4), PanrRouting(), psn_pct=psn)
        s_xy = xy.run(flows, 3000)
        s_panr = panr.run(flows, 3000)
        noisy_xy = s_xy.router_flits_per_cycle[[1, 2]].sum()
        noisy_panr = s_panr.router_flits_per_cycle[[1, 2]].sum()
        assert noisy_panr < noisy_xy * 0.5
        # And PANR still delivers everything.
        assert s_panr.packets_delivered >= s_panr.packets_injected - 4


class TestWormholeIntegrity:
    def test_packets_stay_contiguous_under_contention(self):
        """Two flows merging on one link must not interleave flits of
        different packets (wormhole output ownership)."""
        mesh = MeshGeometry(4, 4)
        sim = CycleNocSimulator(mesh, XYRouting(), buffer_depth=4)
        flows = [
            TrafficFlow(0, 7, 0.4, packet_size=6),
            TrafficFlow(4, 7, 0.4, packet_size=6),
        ]
        stats = sim.run(flows, 3000)
        # If interleaving corrupted wormholes, the simulator would raise
        # (body flit without route) or drop flits; delivery must be clean.
        assert stats.flits_delivered == stats.packets_delivered * 6
        assert stats.packets_delivered > 100
