"""Tests for the PANR hardware overhead model (paper Section 4.4)."""

import pytest

from repro.chip.technology import technology
from repro.noc.overhead import panr_router_overhead


class TestOverheadAt7nm:
    @pytest.fixture(scope="class")
    def report(self):
        return panr_router_overhead()

    def test_logic_area_matches_paper(self, report):
        """Paper: ~115 um^2 of added logic per router at 7 nm."""
        assert report.logic_area_um2 == pytest.approx(115.0, rel=0.1)

    def test_area_fraction_below_one_percent(self, report):
        """Paper: well under 1 % of the ~71300 um^2 router."""
        assert report.area_fraction_of_router < 0.01

    def test_sensor_area_matches_paper(self, report):
        """Paper: ~413 um^2 sensor network, negligible vs ~4 mm^2 core."""
        assert report.sensor_area_um2 == pytest.approx(413.0, rel=0.01)
        assert report.sensor_fraction_of_core < 0.001

    def test_power_fraction_matches_paper(self, report):
        """Paper: ~3 % of router power."""
        assert report.power_fraction_of_router == pytest.approx(0.03)

    def test_power_about_one_milliwatt_at_ntc(self):
        """Paper: ~1 mW at ~1 GHz; our NTC point (0.74 GHz at 0.4 V,
        light load) lands in the same regime."""
        report = panr_router_overhead(vdd=0.4, flits_per_cycle=0.25)
        assert 0.3e-3 < report.power_overhead_w < 3e-3


class TestScaling:
    def test_older_nodes_have_larger_overhead_area(self):
        small = panr_router_overhead(technology("7nm"))
        big = panr_router_overhead(technology("45nm"))
        assert big.logic_area_um2 > small.logic_area_um2
        assert big.sensor_area_um2 > small.sensor_area_um2
