"""Tests for the analytical flow-based NoC model."""

import numpy as np
import pytest

from repro.chip.mesh import MeshGeometry
from repro.noc.analytical import AnalyticalNocModel, Flow
from repro.noc.routing import IconRouting, PanrRouting, WestFirstRouting, XYRouting
from repro.noc.topology import Direction, MeshTopology


@pytest.fixture(scope="module")
def topo():
    return MeshTopology(MeshGeometry(6, 6))


def model(topo, routing=None, **kw):
    return AnalyticalNocModel(topo, routing or XYRouting(), **kw)


class TestFlowValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            Flow(0, 1, -0.5)

    def test_constructor_validation(self, topo):
        with pytest.raises(ValueError):
            AnalyticalNocModel(topo, XYRouting(), iterations=0)
        with pytest.raises(ValueError):
            AnalyticalNocModel(topo, XYRouting(), link_bandwidth=0.0)

    def test_bad_psn_shape(self, topo):
        with pytest.raises(ValueError):
            model(topo).evaluate([Flow(0, 1, 0.1)], psn_pct=np.zeros(3))

    def test_bad_tile_ids(self, topo):
        with pytest.raises(ValueError):
            model(topo).evaluate([Flow(0, 99, 0.1)])


class TestConservation:
    def test_xy_single_flow_loads_path_links(self, topo):
        rep = model(topo).evaluate([Flow(0, 2, 0.4)])
        # Utilisation includes the burstiness factor (default 1.6).
        assert rep.link_rho[(0, Direction.EAST)] == pytest.approx(0.4 * 1.6)
        assert rep.link_rho[(1, Direction.EAST)] == pytest.approx(0.4 * 1.6)
        assert (2, Direction.EAST) not in rep.link_rho

    def test_router_load_includes_endpoints(self, topo):
        rep = model(topo).evaluate([Flow(0, 2, 0.4)])
        for t in (0, 1, 2):
            assert rep.router_flits_per_cycle[t] == pytest.approx(0.4)
        assert rep.router_flits_per_cycle[3] == 0.0

    def test_adaptive_split_conserves_flow(self, topo):
        """West-first splits over minimal paths; total ejected flow at
        the destination must equal the injected rate."""
        rep = model(topo, WestFirstRouting()).evaluate([Flow(0, 14, 0.6)])
        assert rep.router_flits_per_cycle[14] == pytest.approx(0.6)
        # Inflow to dst = sum of link loads on its incoming links
        # (link_rho carries the burstiness factor).
        inflow = sum(
            rho
            for (tile, d), rho in rep.link_rho.items()
            if topo.neighbor(tile, d) == 14
        )
        assert inflow == pytest.approx(0.6 * 1.6)

    def test_zero_rate_and_self_flow(self, topo):
        rep = model(topo).evaluate([Flow(0, 5, 0.0), Flow(3, 3, 0.5)])
        assert rep.avg_latency_cycles == 0.0
        assert rep.max_router_rate == 0.0


class TestLatency:
    def test_hops_match_manhattan_for_minimal_routing(self, topo):
        rep = model(topo, WestFirstRouting()).evaluate([Flow(0, 14, 0.2)])
        assert rep.flows[0].avg_hops == pytest.approx(4.0)

    def test_latency_grows_with_load(self, topo):
        light = model(topo).evaluate([Flow(0, 5, 0.1)])
        heavy = model(topo).evaluate([Flow(0, 5, 0.85)])
        assert (
            heavy.flows[0].header_latency_cycles
            > light.flows[0].header_latency_cycles
        )

    def test_latency_scale_grows_near_saturation(self, topo):
        light = model(topo).evaluate([Flow(0, 5, 0.1)])
        heavy = model(topo).evaluate([Flow(0, 5, 0.94)])
        assert light.flows[0].latency_scale < heavy.flows[0].latency_scale
        assert light.flows[0].latency_scale >= 1.0

    def test_saturation_flag(self, topo):
        ok = model(topo).evaluate([Flow(0, 5, 0.5)])
        sat = model(topo).evaluate([Flow(0, 5, 1.4)])
        assert not ok.saturated
        assert sat.saturated


class TestPolicyBehaviour:
    def test_west_first_spreads_load_vs_xy(self, topo):
        """Adaptive routing lowers the worst link utilisation for
        diagonal traffic."""
        flows = [Flow(0, 14, 0.8)]
        xy = model(topo).evaluate(flows)
        wf = model(topo, WestFirstRouting()).evaluate(flows)
        assert max(wf.link_rho.values()) < max(xy.link_rho.values())

    def test_panr_avoids_noisy_tiles(self, topo):
        psn = np.zeros(36)
        psn[[1, 2]] = 9.0  # noisy top row
        flows = [Flow(0, 14, 0.5)]
        panr = model(topo, PanrRouting()).evaluate(flows, psn_pct=psn)
        wf = model(topo, WestFirstRouting()).evaluate(flows, psn_pct=psn)
        noisy_panr = panr.router_flits_per_cycle[[1, 2]].sum()
        noisy_wf = wf.router_flits_per_cycle[[1, 2]].sum()
        assert noisy_panr < noisy_wf

    def test_icon_balances_router_activity(self, topo):
        """ICON steers away from routers already busy with other flows:
        the probe's XY path rides the loaded top row, ICON drops south."""
        base = [Flow(0, 4, 0.5)]  # loads the row y=0
        probe = [Flow(0, 16, 0.3)]  # XY shares row 0; ICON can go south
        icon = model(topo, IconRouting(), iterations=4).evaluate(base + probe)
        xy = model(topo).evaluate(base + probe)
        assert max(icon.link_rho.values()) < max(xy.link_rho.values()) - 0.1

    def test_deterministic(self, topo):
        flows = [Flow(0, 14, 0.5), Flow(3, 30, 0.3)]
        a = model(topo, PanrRouting()).evaluate(flows)
        b = model(topo, PanrRouting()).evaluate(flows)
        assert a.link_rho == b.link_rho
