"""Property-based tests: flow conservation in the analytical NoC model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chip.mesh import MeshGeometry
from repro.noc.analytical import AnalyticalNocModel, Flow
from repro.noc.routing import make_routing
from repro.noc.topology import MeshTopology

_TOPO = MeshTopology(MeshGeometry(6, 6))

POLICIES = ["xy", "west-first", "panr", "icon", "odd-even"]


def _random_flows(seed, n_flows):
    rng = np.random.default_rng(seed)
    flows = []
    for _ in range(n_flows):
        src, dst = rng.choice(36, size=2, replace=False)
        flows.append(Flow(int(src), int(dst), float(rng.uniform(0.01, 0.3))))
    psn = rng.uniform(0.0, 8.0, size=36)
    return flows, psn


@settings(max_examples=30, deadline=None)
@given(
    policy=st.sampled_from(POLICIES),
    seed=st.integers(0, 1000),
    n_flows=st.integers(1, 8),
)
def test_minimality_and_conservation(policy, seed, n_flows):
    """For any policy and any flow set:

    * the per-flow expected hop count equals the Manhattan distance
      (every policy here is minimal), so no flow is lost or detoured;
    * total router load equals sum over flows of rate * (hops + 1),
      since each flow visits exactly hops + 1 routers;
    * latency is bounded below by the zero-load pipeline latency.
    """
    flows, psn = _random_flows(seed, n_flows)
    model = AnalyticalNocModel(_TOPO, make_routing(policy))
    report = model.evaluate(flows, psn_pct=psn)

    for f, stats in zip(flows, report.flows):
        expected = _TOPO.mesh.manhattan(f.src, f.dst)
        assert stats.avg_hops == pytest.approx(expected, rel=1e-9)
        assert stats.header_latency_cycles >= 3.0 * expected - 1e-9
        assert stats.latency_scale >= 1.0

    assert np.all(report.router_flits_per_cycle >= 0)
    assert np.all(np.isfinite(report.router_flits_per_cycle))
    expected_total = sum(
        f.rate * (_TOPO.mesh.manhattan(f.src, f.dst) + 1) for f in flows
    )
    assert float(report.router_flits_per_cycle.sum()) == pytest.approx(
        expected_total, rel=1e-6
    )


@settings(max_examples=20, deadline=None)
@given(
    policy=st.sampled_from(POLICIES),
    seed=st.integers(0, 1000),
)
def test_destination_ejection_balance(policy, seed):
    """Link loads into each destination account for its whole offered
    rate: incoming-link rho (divided by the burstiness factor) plus
    locally injected flow equals locally ejected plus forwarded flow."""
    flows, psn = _random_flows(seed, 5)
    model = AnalyticalNocModel(_TOPO, make_routing(policy))
    report = model.evaluate(flows, psn_pct=psn)
    if report.saturated:
        return  # clamped loads break exact balance by design

    burstiness = 1.6  # model default
    for tile in _TOPO.mesh.tiles():
        link_in = sum(
            rho / burstiness
            for (src, d), rho in report.link_rho.items()
            if _TOPO.neighbor(src, d) == tile
        )
        link_out = sum(
            rho / burstiness
            for (src, d), rho in report.link_rho.items()
            if src == tile
        )
        injected = sum(f.rate for f in flows if f.src == tile)
        ejected = sum(f.rate for f in flows if f.dst == tile)
        assert link_in + injected == pytest.approx(
            link_out + ejected, rel=1e-6, abs=1e-9
        )
