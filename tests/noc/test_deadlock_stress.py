"""Deadlock-freedom stress tests: every routing policy keeps delivering
under sustained random all-to-all load (single virtual channel)."""

import numpy as np
import pytest

from repro.chip.mesh import MeshGeometry
from repro.noc.cycle import CycleNocSimulator, TrafficFlow
from repro.noc.routing import make_routing

POLICIES = ["xy", "west-first", "panr", "icon", "odd-even"]


@pytest.mark.parametrize("policy", POLICIES)
def test_no_deadlock_under_random_load(policy):
    """Random pairs at high aggregate load for many cycles: if the turn
    model admitted a cycle of channel dependencies the network would
    wedge and deliveries would stop."""
    mesh = MeshGeometry(6, 6)
    rng = np.random.default_rng(42)
    flows = []
    for _ in range(12):
        src, dst = rng.choice(36, size=2, replace=False)
        flows.append(
            TrafficFlow(int(src), int(dst), 0.12, packet_size=6)
        )
    psn = rng.uniform(0.0, 9.0, size=36)
    sim = CycleNocSimulator(mesh, make_routing(policy), psn_pct=psn, seed=1)
    stats = sim.run(flows, 8000)
    assert stats.packets_injected > 150
    # Nearly everything injected must come out the other side.
    assert stats.packets_delivered >= stats.packets_injected - 20


@pytest.mark.parametrize("policy", ["panr", "icon"])
def test_adaptive_policies_progress_under_hotspot(policy):
    """Adaptive selection must not livelock flits around a noisy hotspot."""
    mesh = MeshGeometry(6, 6)
    psn = np.zeros(36)
    psn[14] = psn[15] = psn[20] = psn[21] = 12.0  # hot centre block
    flows = [
        TrafficFlow(0, 35, 0.3, packet_size=4),
        TrafficFlow(30, 5, 0.3, packet_size=4),
        TrafficFlow(2, 33, 0.25, packet_size=4),
    ]
    sim = CycleNocSimulator(mesh, make_routing(policy), psn_pct=psn, seed=2)
    stats = sim.run(flows, 6000)
    assert stats.packets_delivered >= stats.packets_injected - 10
