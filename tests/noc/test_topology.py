"""Tests for the NoC topology layer."""

import pytest

from repro.chip.mesh import MeshGeometry
from repro.noc.topology import MESH_DIRECTIONS, Direction, MeshTopology


@pytest.fixture
def topo():
    return MeshTopology(MeshGeometry(4, 3))


class TestDirection:
    def test_opposites(self):
        assert Direction.EAST.opposite is Direction.WEST
        assert Direction.NORTH.opposite is Direction.SOUTH
        assert Direction.LOCAL.opposite is Direction.LOCAL

    def test_offsets(self):
        assert Direction.EAST.offset == (1, 0)
        assert Direction.SOUTH.offset == (0, 1)
        assert Direction.LOCAL.offset == (0, 0)


class TestTopology:
    def test_neighbor_lookup(self, topo):
        # Tile 5 is at (1, 1) in a 4x3 mesh.
        assert topo.neighbor(5, Direction.EAST) == 6
        assert topo.neighbor(5, Direction.WEST) == 4
        assert topo.neighbor(5, Direction.NORTH) == 1
        assert topo.neighbor(5, Direction.SOUTH) == 9
        assert topo.neighbor(5, Direction.LOCAL) == 5

    def test_edges_have_no_neighbor(self, topo):
        assert topo.neighbor(0, Direction.WEST) is None
        assert topo.neighbor(0, Direction.NORTH) is None
        assert topo.neighbor(11, Direction.EAST) is None
        assert topo.neighbor(11, Direction.SOUTH) is None

    def test_out_directions(self, topo):
        assert set(topo.out_directions(0)) == {Direction.EAST, Direction.SOUTH}
        assert set(topo.out_directions(5)) == set(MESH_DIRECTIONS)

    def test_direction_towards(self, topo):
        assert topo.direction_towards(0, 6) == [Direction.EAST, Direction.SOUTH]
        assert topo.direction_towards(6, 0) == [Direction.WEST, Direction.NORTH]
        assert topo.direction_towards(0, 3) == [Direction.EAST]
        assert topo.direction_towards(3, 3) == []

    def test_links_count(self, topo):
        # 4x3 mesh: horizontal 3*3*2 + vertical 4*2*2 = 18 + 16 = 34.
        assert len(topo.links()) == 34

    def test_links_bidirectional(self, topo):
        links = set(topo.links())
        for tile, d in links:
            nxt = topo.neighbor(tile, d)
            assert (nxt, d.opposite) in links
