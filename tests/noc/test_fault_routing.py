"""NoC graceful degradation under faults.

Covers the three fault-facing behaviours: PANR's deterministic-XY
fallback when sensor readings cannot be trusted, the analytical model
routing around dead links/routers, and unroutable-flow flagging when no
route survives.
"""

import numpy as np
import pytest

from repro.chip.mesh import MeshGeometry
from repro.noc.analytical import AnalyticalNocModel, Flow
from repro.noc.routing import PanrRouting, WestFirstRouting, XYRouting
from repro.noc.routing.base import RoutingContext
from repro.noc.topology import Direction, MeshTopology


@pytest.fixture(scope="module")
def topo():
    return MeshTopology(MeshGeometry(6, 6))


def all_invalid_ctx():
    return RoutingContext(
        neighbor_psn_pct={d: 3.0 for d in Direction},
        neighbor_psn_valid={d: False for d in Direction},
    )


class TestPanrSensorFallback:
    def test_fully_faulted_sensors_reduce_panr_to_xy(self, topo):
        """With every sensor reading untrusted, PANR must route exactly
        like deterministic XY at every hop (the acceptance criterion
        for sensor-fault degradation)."""
        panr, xy = PanrRouting(), XYRouting()
        ctx = all_invalid_ctx()
        for cur in topo.mesh.tiles():
            for dst in topo.mesh.tiles():
                got = panr.weights(topo, cur, dst, ctx)
                want = xy.weights(topo, cur, dst, RoutingContext())
                assert got == want, (cur, dst)
                if cur != dst:
                    assert panr.select(topo, cur, dst, ctx) == xy.select(
                        topo, cur, dst, RoutingContext()
                    )

    def test_single_untrusted_direction_triggers_fallback(self, topo):
        """One untrusted permissible direction is enough: a poisoned
        comparison cannot be salvaged by the other operand."""
        panr = PanrRouting()
        # At tile 0 toward 14 (east + south permissible for west-first).
        ctx = RoutingContext(
            neighbor_psn_pct={Direction.EAST: 0.0, Direction.SOUTH: 9.0},
            neighbor_psn_valid={Direction.SOUTH: False},
        )
        want = XYRouting().weights(topo, 0, 14, RoutingContext())
        assert panr.weights(topo, 0, 14, ctx) == want

    def test_trusted_sensors_keep_adaptive_selection(self, topo):
        """Sanity: with valid readings PANR still steers by PSN."""
        panr = PanrRouting()
        quiet_south = RoutingContext(
            neighbor_psn_pct={Direction.EAST: 9.0, Direction.SOUTH: 0.5},
        )
        weights = panr.weights(topo, 0, 14, quiet_south)
        assert weights[Direction.SOUTH] > weights[Direction.EAST]

    def test_xy_choice_always_permissible_under_west_first(self, topo):
        """The fallback preserves the turn model: XY's direction is
        always inside west-first's permissible set."""
        xy, wf = XYRouting(), WestFirstRouting()
        for cur in topo.mesh.tiles():
            for dst in topo.mesh.tiles():
                if cur == dst:
                    continue
                xy_dirs = xy.permissible(topo, cur, dst)
                assert len(xy_dirs) == 1
                assert xy_dirs[0] in wf.permissible(topo, cur, dst)


class TestDeadLinkRouting:
    def test_adaptive_routes_around_dead_link(self, topo):
        """West-first re-splits onto surviving minimal paths."""
        model = AnalyticalNocModel(topo, WestFirstRouting())
        dead = {(0, Direction.EAST)}
        rep = model.evaluate([Flow(0, 14, 0.4)], dead_links=dead)
        stats = rep.flows[0]
        assert not stats.unroutable
        assert (0, Direction.EAST) not in rep.link_rho
        # All traffic leaves tile 0 southward instead.
        assert rep.link_rho[(0, Direction.SOUTH)] > 0
        assert rep.router_flits_per_cycle[14] == pytest.approx(0.4)

    def test_xy_flow_blocked_by_dead_link_is_unroutable(self, topo):
        """Deterministic XY has a single path; killing it must flag the
        flow instead of raising."""
        model = AnalyticalNocModel(topo, XYRouting())
        rep = model.evaluate(
            [Flow(0, 2, 0.4), Flow(12, 13, 0.1)],
            dead_links={(1, Direction.EAST)},
        )
        assert rep.flows[0].unroutable
        assert not rep.flows[1].unroutable
        assert rep.unroutable_flow_indices == [0]

    def test_dead_router_blocks_endpoints_and_transit(self, topo):
        model = AnalyticalNocModel(topo, WestFirstRouting())
        rep = model.evaluate(
            [Flow(7, 9, 0.2), Flow(8, 1, 0.2), Flow(0, 3, 0.2)],
            dead_routers={8},
        )
        # Transit around router 8 is possible on other minimal paths? No:
        # 7 -> 9 is a straight east row; west-first allows no detour, so
        # the flow is unroutable.  A flow from the dead router itself is
        # unroutable by definition.
        assert rep.flows[0].unroutable
        assert rep.flows[1].unroutable
        assert not rep.flows[2].unroutable

    def test_fault_free_evaluate_unchanged(self, topo):
        """Passing no fault arguments must reproduce the plain report."""
        model = AnalyticalNocModel(topo, PanrRouting())
        flows = [Flow(0, 14, 0.3), Flow(20, 3, 0.2)]
        psn = np.linspace(0.0, 4.0, topo.mesh.tile_count)
        plain = model.evaluate(flows, psn_pct=psn)
        faulted = model.evaluate(
            flows, psn_pct=psn, dead_links=set(), dead_routers=set()
        )
        assert plain.link_rho == faulted.link_rho
        for a, b in zip(plain.flows, faulted.flows):
            assert a.avg_hops == b.avg_hops
            assert a.latency_scale == b.latency_scale

    def test_psn_valid_shape_checked(self, topo):
        model = AnalyticalNocModel(topo, PanrRouting())
        with pytest.raises(ValueError):
            model.evaluate([Flow(0, 1, 0.1)], psn_valid=np.ones(3, bool))

    def test_all_sensors_invalid_matches_xy_loads(self, topo):
        """End to end through the analytical model: PANR with every
        reading untrusted produces XY's link loads."""
        flows = [Flow(0, 14, 0.3), Flow(35, 3, 0.2), Flow(6, 29, 0.25)]
        psn = np.linspace(0.0, 4.0, topo.mesh.tile_count)
        invalid = np.zeros(topo.mesh.tile_count, dtype=bool)
        panr_rep = AnalyticalNocModel(topo, PanrRouting()).evaluate(
            flows, psn_pct=psn, psn_valid=invalid
        )
        xy_rep = AnalyticalNocModel(topo, XYRouting()).evaluate(flows)
        assert set(panr_rep.link_rho) == set(xy_rep.link_rho)
        for link, rho in xy_rep.link_rho.items():
            assert panr_rep.link_rho[link] == pytest.approx(rho)
