"""Tests for the odd-even turn-model extension routing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chip.mesh import MeshGeometry
from repro.noc.cycle import CycleNocSimulator, TrafficFlow
from repro.noc.routing import OddEvenRouting, make_routing
from repro.noc.topology import Direction, MeshTopology


@pytest.fixture(scope="module")
def topo():
    return MeshTopology(MeshGeometry(8, 6))


class TestTurnRules:
    def test_factory_names(self):
        assert isinstance(make_routing("odd-even"), OddEvenRouting)
        assert isinstance(make_routing("ODDEVEN"), OddEvenRouting)

    def test_arrival_returns_empty(self, topo):
        assert OddEvenRouting().permissible(topo, 10, 10) == []

    def test_aligned_routes_are_direct(self, topo):
        oe = OddEvenRouting()
        assert oe.permissible(topo, 0, 3) == [Direction.EAST]
        assert oe.permissible(topo, 3, 0) == [Direction.WEST]
        assert oe.permissible(topo, 0, 16) == [Direction.SOUTH]

    def test_no_east_turnoff_in_even_columns(self, topo):
        """EN/ES turns forbidden at even columns (conservative variant:
        vertical never offered while eastbound at an even column unless
        the east move itself is illegal)."""
        oe = OddEvenRouting()
        for cur in range(topo.mesh.tile_count):
            cx, _ = topo.mesh.coord_of(cur)
            for dst in range(topo.mesh.tile_count):
                dx_, _ = topo.mesh.coord_of(dst)
                dirs = oe.permissible(topo, cur, dst)
                eastbound = dx_ > cx
                if eastbound and cx % 2 == 0 and Direction.EAST in dirs:
                    assert Direction.NORTH not in dirs
                    assert Direction.SOUTH not in dirs

    def test_no_west_turnoff_in_odd_columns(self, topo):
        oe = OddEvenRouting()
        for cur in range(topo.mesh.tile_count):
            cx, _ = topo.mesh.coord_of(cur)
            for dst in range(topo.mesh.tile_count):
                dx_, _ = topo.mesh.coord_of(dst)
                dirs = oe.permissible(topo, cur, dst)
                if dx_ < cx and cx % 2 == 1:
                    assert dirs == [Direction.WEST]

    @settings(max_examples=60)
    @given(cur=st.integers(0, 47), dst=st.integers(0, 47))
    def test_minimal_and_always_progressing(self, topo, cur, dst):
        """Every offered hop reduces distance; some hop is always
        offered until arrival."""
        oe = OddEvenRouting()
        dirs = oe.permissible(topo, cur, dst)
        if cur == dst:
            assert dirs == []
            return
        assert dirs
        for d in dirs:
            nxt = topo.neighbor(cur, d)
            assert nxt is not None
            assert (
                topo.mesh.manhattan(nxt, dst)
                == topo.mesh.manhattan(cur, dst) - 1
            )


class TestDelivery:
    def test_cycle_sim_delivers_under_load(self):
        mesh = MeshGeometry(6, 6)
        sim = CycleNocSimulator(mesh, OddEvenRouting(), seed=1)
        flows = [
            TrafficFlow(0, 35, 0.3),
            TrafficFlow(5, 30, 0.3),
            TrafficFlow(30, 5, 0.25),
            TrafficFlow(35, 0, 0.25),
        ]
        stats = sim.run(flows, 5000)
        assert stats.packets_delivered >= stats.packets_injected - 8
