"""Golden equivalence suite: BatchedNocEngine lanes vs the oracle.

The batched engine's contract extends the array engine's "same bits,
less time" to whole sweeps: **every lane** of a batch must be
flit-for-flit identical to a scalar legacy run with that lane's flows,
regardless of what its sibling lanes carry.  These tests pin that
across all three context-free policies, two mesh sizes and two load
levels; exercise heterogeneous per-lane seeds/rates/PSN; check that
``set_psn`` on one lane leaves siblings untouched; and pin the S=1
batch against ArrayNocEngine directly.  The ``simulate_lanes``
dispatcher is covered on both paths (batched and adaptive fallback).
"""

import numpy as np
import pytest

from repro.chip.mesh import MeshGeometry
from repro.noc.batch import BatchedNocEngine, LaneSpec, simulate_lanes
from repro.noc.cycle import CycleNocSimulator, TrafficFlow
from repro.noc.engine import ArrayNocEngine, build_route_table
from repro.noc.routing import make_routing
from repro.noc.topology import MeshTopology

CONTEXT_FREE = ("xy", "west-first", "odd-even")
ADAPTIVE = ("icon", "panr")


def uniform_flows(mesh, rate, seed, packet_size=4):
    rng = np.random.default_rng(seed)
    n = mesh.tile_count
    flows = []
    for src in range(n):
        dst = int(rng.integers(0, n - 1))
        if dst >= src:
            dst += 1
        flows.append(TrafficFlow(src, dst, rate, packet_size=packet_size))
    return flows


def band_psn(mesh, hot=12.0, quiet=4.0):
    psn = np.full(mesh.tile_count, quiet)
    for t in range(mesh.tile_count):
        _, y = mesh.coord_of(t)
        if y in (mesh.height // 2 - 1, mesh.height // 2):
            psn[t] = hot
    return psn


def assert_stats_equal(a, b):
    assert a.cycles == b.cycles
    assert a.packets_injected == b.packets_injected
    assert a.packets_delivered == b.packets_delivered
    assert a.flits_delivered == b.flits_delivered
    assert a.packet_latencies == b.packet_latencies
    assert np.array_equal(a.router_flits_per_cycle, b.router_flits_per_cycle)


def lane_grid(mesh, rates, seeds, packet_size=4):
    """Rate-major x seed lane flows, the routing-sweep packing order."""
    return [
        uniform_flows(mesh, rate, seed=seed, packet_size=packet_size)
        for rate in rates
        for seed in seeds
    ]


class TestLaneIdentity:
    @pytest.mark.parametrize("policy", CONTEXT_FREE)
    @pytest.mark.parametrize("width,height", [(4, 4), (8, 8)])
    @pytest.mark.parametrize("rate", [0.05, 0.35])
    def test_every_lane_matches_legacy_oracle(
        self, policy, width, height, rate
    ):
        # Lanes differ by traffic seed; each must reproduce the legacy
        # simulator's stats for its own flows exactly.
        mesh = MeshGeometry(width, height)
        psn = band_psn(mesh)
        seeds = (7, 8, 9)
        flows = [uniform_flows(mesh, rate, seed=s) for s in seeds]
        cycles = 300 if (width, height) == (8, 8) else 500
        batch = BatchedNocEngine(
            mesh, make_routing(policy), n_lanes=len(seeds), psn_pct=psn
        ).run(flows, cycles)
        assert len(batch) == len(seeds)
        for lane, lane_flows in enumerate(flows):
            legacy = CycleNocSimulator(
                mesh, make_routing(policy), psn_pct=psn
            )
            assert_stats_equal(legacy.run(lane_flows, cycles), batch[lane])

    @pytest.mark.parametrize("policy", CONTEXT_FREE)
    def test_heterogeneous_rates_seeds_and_psn(self, policy):
        # A mixed batch - every lane a different (rate, seed, PSN) -
        # must still match per-lane scalar runs: lane state never
        # leaks across the block-diagonal boundary.
        mesh = MeshGeometry(8, 8)
        lane_cfg = [
            (0.05, 3, np.full(mesh.tile_count, 4.0)),
            (0.35, 7, band_psn(mesh)),
            (0.20, 11, band_psn(mesh)[::-1].copy()),
            (0.30, 13, np.zeros(mesh.tile_count)),
        ]
        flows = [uniform_flows(mesh, r, seed=s) for r, s, _ in lane_cfg]
        psn = np.stack([p for _, _, p in lane_cfg])
        batch = BatchedNocEngine(
            mesh,
            make_routing(policy),
            n_lanes=len(lane_cfg),
            psn_pct=psn,
            seeds=[s for _, s, _ in lane_cfg],
        ).run(flows, 300)
        for lane, (rate, seed, lane_psn) in enumerate(lane_cfg):
            scalar = ArrayNocEngine(
                mesh, make_routing(policy), psn_pct=lane_psn, seed=seed
            )
            assert_stats_equal(scalar.run(flows[lane], 300), batch[lane])

    def test_multi_flow_same_source_lanes(self):
        # Shared injection ports inside a lane: the backlog FIFO and
        # accumulator arithmetic serialise exactly as legacy even with
        # a sibling lane hammering the same tile ids.
        mesh = MeshGeometry(4, 4)
        lane_a = [
            TrafficFlow(0, 15, 0.31, packet_size=3),
            TrafficFlow(0, 12, 0.17, packet_size=5),
            TrafficFlow(5, 10, 0.23, packet_size=1),
        ]
        lane_b = [
            TrafficFlow(0, 9, 0.41, packet_size=2),
            TrafficFlow(5, 0, 0.11, packet_size=2),
        ]
        batch = BatchedNocEngine(mesh, make_routing("xy"), n_lanes=2).run(
            [lane_a, lane_b], 700
        )
        for lane_flows, got in zip((lane_a, lane_b), batch):
            legacy = CycleNocSimulator(mesh, make_routing("xy"))
            assert_stats_equal(legacy.run(lane_flows, 700), got)

    def test_singleton_batch_equals_array_engine(self):
        mesh = MeshGeometry(8, 8)
        flows = uniform_flows(mesh, 0.25, seed=5)
        scalar = ArrayNocEngine(
            mesh, make_routing("odd-even"), psn_pct=band_psn(mesh), seed=5
        ).run(flows, 400)
        (batched,) = BatchedNocEngine(
            mesh, make_routing("odd-even"), n_lanes=1,
            psn_pct=band_psn(mesh), seeds=[5],
        ).run([flows], 400)
        assert_stats_equal(scalar, batched)

    def test_adopted_route_table_and_topology_identical(self):
        # The warm-pool sharing path: one topology + one (n, n) table
        # serves the whole batch, byte-identical to lazy builds.
        mesh = MeshGeometry(8, 8)
        topo = MeshTopology(mesh)
        table = build_route_table(mesh, make_routing("xy"), topology=topo)
        flows = lane_grid(mesh, (0.1, 0.3), (2, 4))
        lazy = BatchedNocEngine(
            mesh, make_routing("xy"), n_lanes=len(flows)
        ).run(flows, 300)
        adopted = BatchedNocEngine(
            mesh, make_routing("xy"), n_lanes=len(flows),
            topology=topo, route_table=table,
        ).run(flows, 300)
        for a, b in zip(lazy, adopted):
            assert_stats_equal(a, b)

    def test_state_persists_across_runs(self):
        # Back-to-back run() calls carry in-flight flits and wormhole
        # state per lane, exactly like back-to-back scalar runs.
        mesh = MeshGeometry(8, 8)
        seeds = (11, 12)
        flows = [uniform_flows(mesh, 0.2, seed=s) for s in seeds]
        batch = BatchedNocEngine(
            mesh, make_routing("xy"), n_lanes=len(seeds)
        )
        scalars = [
            ArrayNocEngine(mesh, make_routing("xy")) for _ in seeds
        ]
        for _ in range(2):
            got = batch.run(flows, 250)
            for lane, scalar in enumerate(scalars):
                assert_stats_equal(scalar.run(flows[lane], 250), got[lane])


class TestPsnLaneIsolation:
    def test_set_psn_on_one_lane_leaves_siblings_identical(self):
        # Context-free routing never reads PSN, so the real assertion
        # is structural: a mid-run per-lane set_psn must not perturb
        # any lane's stats relative to scalar reference runs.
        mesh = MeshGeometry(8, 8)
        seeds = (3, 4, 5)
        flows = [uniform_flows(mesh, 0.25, seed=s) for s in seeds]
        batch = BatchedNocEngine(
            mesh, make_routing("west-first"), n_lanes=len(seeds),
            psn_pct=band_psn(mesh),
        )
        first = batch.run(flows, 200)
        batch.set_psn(np.full(mesh.tile_count, 40.0), lane=1)
        second = batch.run(flows, 200)
        for lane in range(len(seeds)):
            scalar = ArrayNocEngine(
                mesh, make_routing("west-first"), psn_pct=band_psn(mesh)
            )
            assert_stats_equal(scalar.run(flows[lane], 200), first[lane])
            assert_stats_equal(scalar.run(flows[lane], 200), second[lane])

    def test_set_psn_shapes(self):
        mesh = MeshGeometry(4, 4)
        batch = BatchedNocEngine(mesh, make_routing("xy"), n_lanes=3)
        n = mesh.tile_count
        batch.set_psn(np.full(n, 2.0), lane=2)
        assert np.allclose(batch._psn[2], 2.0)
        assert np.allclose(batch._psn[0], 0.0)
        batch.set_psn(np.full((3, n), 5.0))
        assert np.allclose(batch._psn, 5.0)
        batch.set_psn(np.full(n, 1.0))
        assert np.allclose(batch._psn, 1.0)
        with pytest.raises(ValueError):
            batch.set_psn(np.zeros(n - 1), lane=0)
        with pytest.raises(ValueError):
            batch.set_psn(np.zeros((2, n)))
        with pytest.raises(ValueError):
            batch.set_psn(np.zeros(n), lane=3)


class TestValidation:
    def test_adaptive_policy_rejected(self):
        mesh = MeshGeometry(4, 4)
        for policy in ADAPTIVE:
            with pytest.raises(ValueError):
                BatchedNocEngine(mesh, make_routing(policy), n_lanes=2)

    def test_bad_construction_rejected(self):
        mesh = MeshGeometry(4, 4)
        with pytest.raises(ValueError):
            BatchedNocEngine(mesh, make_routing("xy"), n_lanes=0)
        with pytest.raises(ValueError):
            BatchedNocEngine(mesh, make_routing("xy"), n_lanes=2,
                             buffer_depth=0)
        with pytest.raises(ValueError):
            BatchedNocEngine(mesh, make_routing("xy"), n_lanes=2,
                             psn_pct=np.zeros((3, mesh.tile_count)))
        with pytest.raises(ValueError):
            BatchedNocEngine(mesh, make_routing("xy"), n_lanes=2,
                             seeds=[1])
        with pytest.raises(ValueError):
            BatchedNocEngine(
                mesh, make_routing("xy"), n_lanes=2,
                topology=MeshTopology(MeshGeometry(8, 8)),
            )
        with pytest.raises(ValueError):
            BatchedNocEngine(
                mesh, make_routing("xy"), n_lanes=2,
                route_table=np.zeros((3, 3), np.int8),
            )

    def test_bad_run_arguments_rejected(self):
        mesh = MeshGeometry(4, 4)
        batch = BatchedNocEngine(mesh, make_routing("xy"), n_lanes=2)
        with pytest.raises(ValueError):
            batch.run([[TrafficFlow(0, 1, 0.1)]], 10)  # lane count
        with pytest.raises(ValueError):
            batch.run([[TrafficFlow(3, 3, 0.1)], []], 10)
        with pytest.raises(Exception):
            batch.run([[TrafficFlow(0, 99, 0.1)], []], 10)
        with pytest.raises(ValueError):
            batch.run([[], []], 0)


class TestSimulateLanes:
    def test_context_free_batched_path(self):
        mesh = MeshGeometry(8, 8)
        lanes = [
            LaneSpec(flows=tuple(uniform_flows(mesh, rate, seed=s)),
                     seed=s, psn_pct=tuple(band_psn(mesh)))
            for rate, s in ((0.1, 2), (0.3, 3))
        ]
        got = simulate_lanes(mesh, make_routing("xy"), lanes, 300)
        for spec, stats in zip(lanes, got):
            scalar = ArrayNocEngine(
                mesh, make_routing("xy"),
                psn_pct=np.asarray(spec.psn_pct), seed=spec.seed,
            )
            assert_stats_equal(scalar.run(list(spec.flows), 300), stats)

    @pytest.mark.parametrize("policy", ADAPTIVE)
    def test_adaptive_fallback_path(self, policy):
        mesh = MeshGeometry(4, 4)
        lanes = [
            LaneSpec(flows=tuple(uniform_flows(mesh, rate, seed=s)),
                     seed=s, psn_pct=tuple(band_psn(mesh)))
            for rate, s in ((0.1, 2), (0.3, 3))
        ]
        got = simulate_lanes(mesh, make_routing(policy), lanes, 300)
        for spec, stats in zip(lanes, got):
            legacy = CycleNocSimulator(
                mesh, make_routing(policy),
                psn_pct=np.asarray(spec.psn_pct), seed=spec.seed,
            )
            assert_stats_equal(legacy.run(list(spec.flows), 300), stats)

    def test_empty_lane_list(self):
        mesh = MeshGeometry(4, 4)
        assert simulate_lanes(mesh, make_routing("xy"), [], 100) == []

    def test_bad_lane_psn_rejected(self):
        mesh = MeshGeometry(4, 4)
        lanes = [LaneSpec(flows=(TrafficFlow(0, 1, 0.1),),
                          psn_pct=(1.0, 2.0))]
        with pytest.raises(ValueError):
            simulate_lanes(mesh, make_routing("xy"), lanes, 100)
