"""Golden equivalence suite: ArrayNocEngine vs the legacy simulator.

The array engine's whole contract is "same bits, less time": for any
seed, routing policy, mesh and load, its :class:`NocSimStats` must be
flit-for-flit identical to :class:`CycleNocSimulator`'s.  These tests
pin that across every routing policy, two mesh sizes and two load
levels, plus seed determinism, mid-run PSN updates and state
persistence across ``run()`` calls.
"""

import numpy as np
import pytest

from repro.chip.mesh import MeshGeometry
from repro.noc.cycle import CycleNocSimulator, NocSimStats, TrafficFlow
from repro.noc.engine import ArrayNocEngine
from repro.noc.routing import make_routing

POLICIES = ("xy", "west-first", "odd-even", "icon", "panr")


def uniform_flows(mesh, rate, seed, packet_size=4):
    rng = np.random.default_rng(seed)
    n = mesh.tile_count
    flows = []
    for src in range(n):
        dst = int(rng.integers(0, n - 1))
        if dst >= src:
            dst += 1
        flows.append(TrafficFlow(src, dst, rate, packet_size=packet_size))
    return flows


def band_psn(mesh, hot=12.0, quiet=4.0):
    psn = np.full(mesh.tile_count, quiet)
    for t in range(mesh.tile_count):
        _, y = mesh.coord_of(t)
        if y in (mesh.height // 2 - 1, mesh.height // 2):
            psn[t] = hot
    return psn


def assert_stats_equal(a: NocSimStats, b: NocSimStats):
    assert a.cycles == b.cycles
    assert a.packets_injected == b.packets_injected
    assert a.packets_delivered == b.packets_delivered
    assert a.flits_delivered == b.flits_delivered
    assert a.packet_latencies == b.packet_latencies
    assert np.array_equal(a.router_flits_per_cycle, b.router_flits_per_cycle)


class TestFlitLevelEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("width,height", [(4, 4), (8, 8)])
    @pytest.mark.parametrize("rate", [0.05, 0.35])
    def test_identical_stats(self, policy, width, height, rate):
        mesh = MeshGeometry(width, height)
        psn = band_psn(mesh)
        flows = uniform_flows(mesh, rate, seed=7)
        legacy = CycleNocSimulator(
            mesh, make_routing(policy), psn_pct=psn, seed=3
        )
        engine = ArrayNocEngine(
            mesh, make_routing(policy), psn_pct=psn, seed=3
        )
        cycles = 400 if (width, height) == (8, 8) else 600
        assert_stats_equal(
            legacy.run(flows, cycles), engine.run(flows, cycles)
        )

    @pytest.mark.parametrize("policy", ("xy", "panr"))
    def test_multi_flow_same_source(self, policy):
        # Several flows share an injection port: the backlog FIFO and
        # the accumulator arithmetic must serialise exactly as legacy.
        mesh = MeshGeometry(4, 4)
        flows = [
            TrafficFlow(0, 15, 0.31, packet_size=3),
            TrafficFlow(0, 12, 0.17, packet_size=5),
            TrafficFlow(5, 10, 0.23, packet_size=1),
            TrafficFlow(5, 0, 0.11, packet_size=2),
        ]
        legacy = CycleNocSimulator(mesh, make_routing(policy), seed=1)
        engine = ArrayNocEngine(mesh, make_routing(policy), seed=1)
        assert_stats_equal(legacy.run(flows, 700), engine.run(flows, 700))


class TestDeterminismAndState:
    def test_same_seed_same_stats(self):
        mesh = MeshGeometry(8, 8)
        flows = uniform_flows(mesh, 0.2, seed=5)
        runs = [
            ArrayNocEngine(mesh, make_routing("panr"),
                           psn_pct=band_psn(mesh), seed=9).run(flows, 300)
            for _ in range(2)
        ]
        assert_stats_equal(runs[0], runs[1])

    @pytest.mark.parametrize("policy", ("xy", "icon", "panr"))
    def test_state_persists_across_runs(self, policy):
        # Two back-to-back run() calls must match legacy, including the
        # in-flight flits, wormhole state and rate windows carried over.
        mesh = MeshGeometry(8, 8)
        psn = band_psn(mesh)
        flows = uniform_flows(mesh, 0.2, seed=11)
        legacy = CycleNocSimulator(mesh, make_routing(policy),
                                   psn_pct=psn, seed=5)
        engine = ArrayNocEngine(mesh, make_routing(policy),
                                psn_pct=psn, seed=5)
        assert_stats_equal(legacy.run(flows, 250), engine.run(flows, 250))
        assert_stats_equal(legacy.run(flows, 250), engine.run(flows, 250))

    @pytest.mark.parametrize("policy", ("panr", "icon"))
    def test_mid_run_psn_update(self, policy):
        # set_psn between runs redirects adaptive decisions identically.
        mesh = MeshGeometry(8, 8)
        psn = band_psn(mesh)
        flows = uniform_flows(mesh, 0.25, seed=13)
        legacy = CycleNocSimulator(mesh, make_routing(policy),
                                   psn_pct=psn, seed=5)
        engine = ArrayNocEngine(mesh, make_routing(policy),
                                psn_pct=psn, seed=5)
        assert_stats_equal(legacy.run(flows, 250), engine.run(flows, 250))
        flipped = psn[::-1].copy()
        legacy.set_psn(flipped)
        engine.set_psn(flipped)
        assert_stats_equal(legacy.run(flows, 250), engine.run(flows, 250))

    def test_psn_update_changes_adaptive_routes(self):
        # Sanity: the PSN field actually steers PANR (the equivalence
        # above would also pass if set_psn were ignored by both).
        mesh = MeshGeometry(8, 8)
        flows = uniform_flows(mesh, 0.3, seed=17)
        quiet = ArrayNocEngine(mesh, make_routing("panr"),
                               psn_pct=np.full(mesh.tile_count, 4.0),
                               seed=5).run(flows, 400)
        banded = ArrayNocEngine(mesh, make_routing("panr"),
                                psn_pct=band_psn(mesh),
                                seed=5).run(flows, 400)
        assert not np.array_equal(
            quiet.router_flits_per_cycle, banded.router_flits_per_cycle
        )


class TestEngineValidation:
    def test_bad_psn_shape_rejected(self):
        mesh = MeshGeometry(4, 4)
        with pytest.raises(ValueError):
            ArrayNocEngine(mesh, make_routing("xy"), psn_pct=np.zeros(3))
        engine = ArrayNocEngine(mesh, make_routing("xy"))
        with pytest.raises(ValueError):
            engine.set_psn(np.zeros(5))

    def test_bad_flows_rejected(self):
        mesh = MeshGeometry(4, 4)
        engine = ArrayNocEngine(mesh, make_routing("xy"))
        with pytest.raises(ValueError):
            engine.run([TrafficFlow(3, 3, 0.1)], 10)
        with pytest.raises(Exception):
            engine.run([TrafficFlow(0, 99, 0.1)], 10)
        with pytest.raises(ValueError):
            engine.run([TrafficFlow(0, 1, 0.1)], 0)

    def test_buffer_depth_validated(self):
        with pytest.raises(ValueError):
            ArrayNocEngine(MeshGeometry(2, 2), make_routing("xy"),
                           buffer_depth=0)


class TestStatsAccessors:
    def test_router_flits_optional_default(self):
        stats = NocSimStats(
            cycles=10, packets_injected=0, packets_delivered=0,
            flits_delivered=0,
        )
        assert stats.router_flits_per_cycle is None
        assert stats.peak_router_flits_per_cycle == 0.0

    def test_peak_router_flits(self):
        stats = NocSimStats(
            cycles=10, packets_injected=1, packets_delivered=1,
            flits_delivered=4,
            router_flits_per_cycle=np.array([0.1, 0.7, 0.3]),
        )
        assert stats.peak_router_flits_per_cycle == pytest.approx(0.7)
