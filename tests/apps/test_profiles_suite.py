"""Tests for profile building and the benchmark suite."""

import pytest

from repro.apps.profiles import (
    SUPPORTED_DOPS,
    AppKind,
    BenchmarkSpec,
    build_profile,
)
from repro.apps.suite import (
    BENCHMARKS,
    COMMUNICATION_BENCHMARKS,
    COMPUTE_BENCHMARKS,
    ProfileLibrary,
    benchmark,
)


@pytest.fixture(scope="module")
def library():
    return ProfileLibrary()


@pytest.fixture(scope="module")
def fft(library):
    return library.get("fft")


class TestSuite:
    def test_thirteen_benchmarks(self):
        assert len(BENCHMARKS) == 13

    def test_paper_group_membership(self):
        assert set(COMMUNICATION_BENCHMARKS) == {
            "cholesky", "fft", "radix", "raytrace", "dedup", "canneal", "vips",
        }
        assert set(COMPUTE_BENCHMARKS) == {
            "swaptions", "fluidanimate", "streamcluster", "blackscholes",
            "radix", "bodytrack", "radiosity",
        }

    def test_radix_in_both_groups(self):
        assert "radix" in COMMUNICATION_BENCHMARKS
        assert "radix" in COMPUTE_BENCHMARKS

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="nginx"):
            benchmark("nginx")

    def test_comm_benchmarks_have_larger_volumes(self):
        comm_lo = min(BENCHMARKS[n].total_comm_mb for n in COMMUNICATION_BENCHMARKS)
        comp_hi = max(
            BENCHMARKS[n].total_comm_mb
            for n in COMPUTE_BENCHMARKS
            if n != "radix"
        )
        assert comm_lo > 10 * comp_hi

    def test_library_caches(self, library):
        assert library.get("fft") is library.get("fft")
        assert "fft" in library
        assert "nginx" not in library


class TestSpecValidation:
    def _kwargs(self, **over):
        base = dict(
            name="x",
            kind=AppKind.COMPUTE,
            work_gcycles=1.0,
            serial_fraction=0.05,
            high_fraction=0.5,
            total_comm_mb=100.0,
            seed=1,
        )
        base.update(over)
        return base

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(**self._kwargs(work_gcycles=0.0))
        with pytest.raises(ValueError):
            BenchmarkSpec(**self._kwargs(serial_fraction=1.0))
        with pytest.raises(ValueError):
            BenchmarkSpec(**self._kwargs(high_fraction=-0.1))
        with pytest.raises(ValueError):
            BenchmarkSpec(**self._kwargs(total_comm_mb=0.0))


class TestProfile:
    def test_operating_point_grid(self, fft):
        assert fft.supported_dops == SUPPORTED_DOPS
        assert fft.supported_vdds == (0.4, 0.5, 0.6, 0.7, 0.8)

    def test_graph_size_equals_dop(self, fft):
        for dop in (4, 16, 32):
            assert fft.graph(dop).task_count == dop

    def test_graph_respects_high_fraction(self, fft):
        g = fft.graph(32)
        expected = round(BENCHMARKS["fft"].high_fraction * 32)
        assert len(g.high_tasks()) == expected

    def test_wcet_monotone_in_vdd(self, fft):
        for dop in (8, 32):
            wcets = [fft.wcet_s(v, dop) for v in (0.4, 0.6, 0.8)]
            assert wcets == sorted(wcets, reverse=True)

    def test_wcet_improves_with_dop(self, fft):
        assert fft.wcet_s(0.6, 32) < fft.wcet_s(0.6, 8)

    def test_power_grows_with_vdd_and_dop(self, fft):
        assert fft.power_w(0.8, 16) > fft.power_w(0.4, 16)
        assert fft.power_w(0.6, 32) > fft.power_w(0.6, 8)

    def test_unknown_points_raise(self, fft):
        with pytest.raises(KeyError):
            fft.graph(6)
        with pytest.raises(KeyError):
            fft.point(0.45, 8)

    def test_router_rate_comm_vs_compute(self, library):
        comm = library.get("canneal")
        compute = library.get("swaptions")
        r_comm = comm.task_router_flits_per_cycle(0.6, 16, 3)
        r_comp = compute.task_router_flits_per_cycle(0.6, 16, 3)
        assert r_comm > 5 * r_comp

    def test_deterministic_rebuild(self):
        a = build_profile(benchmark("fft"), dops=(8,), vdds=(0.6,))
        b = build_profile(benchmark("fft"), dops=(8,), vdds=(0.6,))
        assert a.wcet_s(0.6, 8) == b.wcet_s(0.6, 8)
        assert a.power_w(0.6, 8) == b.power_w(0.6, 8)

    def test_invalid_dops_rejected(self):
        with pytest.raises(ValueError, match="multiples of 4"):
            build_profile(benchmark("fft"), dops=(6,))

    def test_serial_work_on_source(self, fft):
        g = fft.graph(16)
        source = g.sources()[0]
        others = [t.work_cycles for t in g.tasks() if t.task_id != source]
        assert g.task(source).work_cycles > max(others)

    def test_dark_silicon_infeasible_at_max_everything(self, library):
        """A single 32-thread app at 0.8 V must break the 65 W budget -
        otherwise the paper's premise (HM cannot fit everything at high
        Vdd) would not bind."""
        p = library.get("swaptions")
        assert p.power_w(0.8, 32) > 65.0
        assert p.power_w(0.4, 32) < 65.0
