"""Tests for workload sequence generation."""

import pytest

from repro.apps.suite import (
    COMMUNICATION_BENCHMARKS,
    COMPUTE_BENCHMARKS,
    ProfileLibrary,
)
from repro.apps.workload import ApplicationArrival, WorkloadType, generate_workload


@pytest.fixture(scope="module")
def library():
    return ProfileLibrary()


class TestWorkloadType:
    def test_pools(self):
        assert set(WorkloadType.COMPUTE.pool()) == set(COMPUTE_BENCHMARKS)
        assert set(WorkloadType.COMMUNICATION.pool()) == set(
            COMMUNICATION_BENCHMARKS
        )
        mixed = WorkloadType.MIXED.pool()
        assert set(mixed) == set(COMPUTE_BENCHMARKS) | set(COMMUNICATION_BENCHMARKS)
        assert len(mixed) == len(set(mixed))  # no duplicate entries


class TestArrivalValidation:
    def test_deadline_after_arrival(self, library):
        profile = library.get("fft")
        with pytest.raises(ValueError):
            ApplicationArrival(0, profile, 1.0, 0.5)
        with pytest.raises(ValueError):
            ApplicationArrival(0, profile, -1.0, 2.0)

    def test_relative_deadline(self, library):
        a = ApplicationArrival(0, library.get("fft"), 1.0, 3.5)
        assert a.relative_deadline_s == pytest.approx(2.5)


class TestGeneration:
    def test_paper_shape(self, library):
        w = generate_workload(
            WorkloadType.MIXED, 0.1, n_apps=20, seed=5, library=library
        )
        assert len(w) == 20
        assert [a.arrival_s for a in w] == pytest.approx(
            [0.1 * i for i in range(20)]
        )
        assert all(a.deadline_s > a.arrival_s for a in w)

    def test_group_restriction(self, library):
        for wtype, pool in (
            (WorkloadType.COMPUTE, COMPUTE_BENCHMARKS),
            (WorkloadType.COMMUNICATION, COMMUNICATION_BENCHMARKS),
        ):
            w = generate_workload(wtype, 0.1, n_apps=15, seed=2, library=library)
            assert all(a.profile.name in pool for a in w)

    def test_deterministic(self, library):
        a = generate_workload(WorkloadType.MIXED, 0.05, seed=9, library=library)
        b = generate_workload(WorkloadType.MIXED, 0.05, seed=9, library=library)
        assert [x.profile.name for x in a] == [x.profile.name for x in b]
        assert [x.deadline_s for x in a] == [x.deadline_s for x in b]

    def test_different_seeds_differ(self, library):
        a = generate_workload(WorkloadType.MIXED, 0.05, seed=1, library=library)
        b = generate_workload(WorkloadType.MIXED, 0.05, seed=2, library=library)
        assert [x.profile.name for x in a] != [x.profile.name for x in b]

    def test_deadlines_allow_some_low_vdd_choice(self, library):
        """Deadlines must be loose enough that the best high-Vdd point is
        always feasible, and usually loose enough for something slower."""
        w = generate_workload(WorkloadType.COMPUTE, 0.1, seed=3, library=library)
        feasible_at_low = 0
        for a in w:
            p = a.profile
            best_fast = min(p.wcet_s(0.8, d) for d in p.supported_dops)
            assert a.relative_deadline_s > best_fast
            best_slow = min(p.wcet_s(0.4, d) for d in p.supported_dops)
            if a.relative_deadline_s > best_slow:
                feasible_at_low += 1
        assert feasible_at_low >= len(w) // 2

    def test_validation(self, library):
        with pytest.raises(ValueError):
            generate_workload(WorkloadType.MIXED, 0.0, library=library)
        with pytest.raises(ValueError):
            generate_workload(WorkloadType.MIXED, 0.1, n_apps=0, library=library)
        with pytest.raises(ValueError):
            generate_workload(
                WorkloadType.MIXED,
                0.1,
                library=library,
                deadline_slack_range=(0.5, 2.0),
            )


class TestPoissonArrivals:
    def test_unknown_process_rejected(self, library):
        with pytest.raises(ValueError, match="arrival process"):
            generate_workload(
                WorkloadType.MIXED, 0.1, library=library,
                arrival_process="burst",
            )

    def test_poisson_mean_interval(self, library):
        w = generate_workload(
            WorkloadType.MIXED, 0.1, n_apps=200, seed=5, library=library,
            arrival_process="poisson",
        )
        times = [a.arrival_s for a in w]
        assert times == sorted(times)
        assert times[0] == 0.0
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert 0.07 < mean_gap < 0.13  # exponential with mean 0.1

    def test_poisson_deterministic_per_seed(self, library):
        a = generate_workload(
            WorkloadType.MIXED, 0.1, n_apps=10, seed=4, library=library,
            arrival_process="poisson",
        )
        b = generate_workload(
            WorkloadType.MIXED, 0.1, n_apps=10, seed=4, library=library,
            arrival_process="poisson",
        )
        assert [x.arrival_s for x in a] == [x.arrival_s for x in b]

    def test_poisson_runs_through_simulator(self, library):
        from repro.chip import default_chip
        from repro.core import ParmManager
        from repro.noc.routing import make_routing
        from repro.runtime import RuntimeSimulator

        w = generate_workload(
            WorkloadType.COMPUTE, 0.15, n_apps=6, seed=2, library=library,
            arrival_process="poisson",
        )
        sim = RuntimeSimulator(
            default_chip(), ParmManager(), make_routing("panr"), seed=3
        )
        m = sim.run(w)
        assert m.completed_count + m.dropped_count == 6
