"""Tests for profile JSON persistence."""

import json

import pytest

from repro.apps.io import (
    FORMAT_VERSION,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.apps.profiles import build_profile
from repro.apps.suite import benchmark


@pytest.fixture(scope="module")
def profile():
    return build_profile(benchmark("fft"), dops=(4, 8), vdds=(0.4, 0.8))


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self, profile):
        data = profile_to_dict(profile, "7nm")
        loaded = profile_from_dict(data)
        assert loaded.name == profile.name
        assert loaded.kind == profile.kind
        assert loaded.supported_dops == profile.supported_dops
        assert loaded.supported_vdds == profile.supported_vdds
        for vdd in profile.supported_vdds:
            for dop in profile.supported_dops:
                assert loaded.wcet_s(vdd, dop) == profile.wcet_s(vdd, dop)
                assert loaded.power_w(vdd, dop) == profile.power_w(vdd, dop)

    def test_graphs_round_trip(self, profile):
        loaded = profile_from_dict(profile_to_dict(profile, "7nm"))
        for dop in profile.supported_dops:
            original = profile.graph(dop)
            restored = loaded.graph(dop)
            assert restored.task_count == original.task_count
            assert restored.edges() == original.edges()
            for t in original.tasks():
                r = restored.task(t.task_id)
                assert r.activity_bin == t.activity_bin
                assert r.work_cycles == t.work_cycles
                assert r.activity_factor == t.activity_factor

    def test_router_rates_work_after_load(self, profile):
        loaded = profile_from_dict(profile_to_dict(profile, "7nm"))
        assert loaded.task_router_flits_per_cycle(0.4, 8, 1) == (
            profile.task_router_flits_per_cycle(0.4, 8, 1)
        )

    def test_file_round_trip(self, profile, tmp_path):
        path = tmp_path / "fft.json"
        save_profile(profile, str(path))
        loaded = load_profile(str(path))
        assert loaded.wcet_s(0.8, 8) == profile.wcet_s(0.8, 8)
        # The file is plain JSON.
        assert json.loads(path.read_text())["spec"]["name"] == "fft"

    def test_loaded_profile_drives_the_manager(self, profile, tmp_path):
        from repro.chip import default_chip
        from repro.core import ParmManager
        from repro.runtime.state import ChipState

        path = tmp_path / "fft.json"
        save_profile(profile, str(path))
        loaded = load_profile(str(path))
        decision = ParmManager().try_map(
            loaded, 100.0, ChipState(default_chip())
        )
        assert decision is not None
        assert decision.dop in (4, 8)


class TestValidation:
    def test_bad_version_rejected(self, profile):
        data = profile_to_dict(profile, "7nm")
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="format version"):
            profile_from_dict(data)

    def test_unknown_tech_rejected_on_save(self, profile):
        with pytest.raises(KeyError):
            profile_to_dict(profile, "3nm")
