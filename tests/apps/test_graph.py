"""Tests for application graphs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.graph import ApplicationGraph, TaskNode
from repro.pdn.waveforms import ActivityBin


def node(i, bin_=ActivityBin.HIGH, work=1e6, factor=0.5):
    return TaskNode(i, bin_, work, factor)


@pytest.fixture
def diamond():
    """0 -> {1, 2} -> 3 with distinct volumes."""
    g = ApplicationGraph()
    for i in range(4):
        bin_ = ActivityBin.HIGH if i % 2 == 0 else ActivityBin.LOW
        g.add_task(node(i, bin_))
    g.add_edge(0, 1, 100.0)
    g.add_edge(0, 2, 300.0)
    g.add_edge(1, 3, 200.0)
    g.add_edge(2, 3, 50.0)
    return g


class TestTaskNode:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskNode(-1, ActivityBin.HIGH, 1.0, 0.5)
        with pytest.raises(ValueError):
            TaskNode(0, ActivityBin.HIGH, -1.0, 0.5)
        with pytest.raises(ValueError):
            TaskNode(0, ActivityBin.HIGH, 1.0, 1.5)


class TestConstruction:
    def test_duplicate_task_rejected(self):
        g = ApplicationGraph()
        g.add_task(node(0))
        with pytest.raises(ValueError, match="duplicate"):
            g.add_task(node(0))

    def test_edge_to_unknown_task_rejected(self):
        g = ApplicationGraph()
        g.add_task(node(0))
        with pytest.raises(ValueError, match="unknown"):
            g.add_edge(0, 1, 10.0)

    def test_self_edge_rejected(self):
        g = ApplicationGraph()
        g.add_task(node(0))
        with pytest.raises(ValueError, match="self"):
            g.add_edge(0, 0, 10.0)

    def test_cycle_rejected_and_rolled_back(self):
        g = ApplicationGraph()
        for i in range(3):
            g.add_task(node(i))
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        with pytest.raises(ValueError, match="cycle"):
            g.add_edge(2, 0, 1.0)
        assert g.edge_count == 2  # offending edge not left behind

    def test_negative_volume_rejected(self, diamond):
        with pytest.raises(ValueError):
            diamond.add_edge(1, 2, -1.0)

    def test_replace_task(self, diamond):
        diamond.replace_task(node(1, ActivityBin.HIGH, work=9e9))
        assert diamond.task(1).work_cycles == 9e9
        with pytest.raises(ValueError):
            diamond.replace_task(node(99))


class TestQueries:
    def test_counts(self, diamond):
        assert diamond.task_count == 4
        assert diamond.edge_count == 4

    def test_edges_by_volume_descending(self, diamond):
        volumes = [v for _, _, v in diamond.edges_by_volume()]
        assert volumes == sorted(volumes, reverse=True)
        assert diamond.edges_by_volume()[0] == (0, 2, 300.0)

    def test_volume_lookup(self, diamond):
        assert diamond.volume(0, 2) == 300.0
        assert diamond.volume(2, 0) == 0.0

    def test_total_volume(self, diamond):
        assert diamond.total_volume_bytes() == 650.0

    def test_topology_queries(self, diamond):
        assert diamond.sources() == [0]
        assert diamond.sinks() == [3]
        assert diamond.predecessors(3) == [1, 2]
        assert diamond.successors(0) == [1, 2]
        order = diamond.topological_order()
        assert order.index(0) < order.index(1) < order.index(3)

    def test_bin_partition(self, diamond):
        assert diamond.high_tasks() == [0, 2]
        assert diamond.low_tasks() == [1, 3]

    def test_unknown_task_lookup(self, diamond):
        with pytest.raises(KeyError):
            diamond.task(7)


class TestForkJoin:
    def test_shape(self):
        n = 6
        g = ApplicationGraph.fork_join(
            task_count=n,
            work_cycles=[1e6] * n,
            activity_bins=[ActivityBin.HIGH] * n,
            activity_factors=[0.5] * n,
            volumes_bytes=list(range(1, 2 * (n - 2) + 1)),
        )
        assert g.sources() == [0]
        assert g.sinks() == [n - 1]
        assert g.edge_count == 2 * (n - 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ApplicationGraph.fork_join(2, [1] * 2, [ActivityBin.HIGH] * 2, [0.5] * 2, [])
        with pytest.raises(ValueError, match="volumes"):
            ApplicationGraph.fork_join(
                4, [1] * 4, [ActivityBin.HIGH] * 4, [0.5] * 4, [1.0]
            )


class TestLayered:
    def _make(self, sizes, high_fraction=0.5, seed=0):
        return ApplicationGraph.layered(
            layer_sizes=sizes,
            rng=np.random.default_rng(seed),
            work_cycles_range=(1e6, 2e6),
            high_fraction=high_fraction,
            volume_range=(10.0, 100.0),
        )

    def test_every_noninitial_task_has_predecessor(self):
        g = self._make([1, 4, 4, 1])
        for t in g.tasks():
            if t.task_id != 0:
                assert g.predecessors(t.task_id), f"task {t.task_id} orphaned"

    def test_task_count(self):
        g = self._make([1, 3, 3, 1])
        assert g.task_count == 8

    def test_high_fraction_respected(self):
        g = self._make([1, 8, 8, 8, 8, 1], high_fraction=0.5)
        assert len(g.high_tasks()) == g.task_count // 2

    def test_deterministic_for_seed(self):
        a, b = self._make([1, 4, 1], seed=3), self._make([1, 4, 1], seed=3)
        assert a.edges() == b.edges()
        assert [t.work_cycles for t in a.tasks()] == [
            t.work_cycles for t in b.tasks()
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            self._make([])
        with pytest.raises(ValueError):
            self._make([1, 0, 1])
        with pytest.raises(ValueError):
            ApplicationGraph.layered(
                [1, 2, 1],
                np.random.default_rng(0),
                (1e6, 2e6),
                high_fraction=1.5,
                volume_range=(1.0, 2.0),
            )

    @settings(max_examples=20)
    @given(
        widths=st.lists(st.integers(1, 6), min_size=2, max_size=5),
        seed=st.integers(0, 100),
    )
    def test_always_acyclic_and_connected(self, widths, seed):
        g = self._make(widths, seed=seed)
        order = g.topological_order()  # raises if cyclic
        assert len(order) == sum(widths)
        for t in order:
            if t >= widths[0]:
                assert g.predecessors(t)


class TestDotExport:
    def test_dot_contains_tasks_edges_and_shapes(self, diamond):
        dot = diamond.to_dot(name="d")
        assert dot.startswith("digraph d {")
        assert dot.rstrip().endswith("}")
        for i in range(4):
            assert f"t{i} [shape=" in dot
        assert dot.count("->") == diamond.edge_count
        # High tasks (0, 2) double-circled; low tasks plain.
        assert "t0 [shape=doublecircle" in dot
        assert "t1 [shape=circle" in dot
