"""Tests for the WCET performance model."""

import numpy as np
import pytest

from repro.apps.graph import ApplicationGraph
from repro.apps.performance import PerformanceModel, SyncOverheadModel
from repro.chip.power import PowerModel
from repro.chip.technology import technology


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(PowerModel(technology("7nm")))


def make_graph(dop, seed=0, volume=(1e6, 2e6)):
    rng = np.random.default_rng(seed)
    return ApplicationGraph.layered(
        layer_sizes=[1, max(2, dop - 2), 1],
        rng=rng,
        work_cycles_range=(5e7, 1e8),
        high_fraction=0.5,
        volume_range=volume,
    )


class TestSyncOverhead:
    def test_no_overhead_at_min_dop(self):
        assert SyncOverheadModel().factor(4) == 1.0

    def test_monotone_in_dop(self):
        m = SyncOverheadModel()
        factors = [m.factor(d) for d in (4, 8, 16, 32, 64)]
        assert factors == sorted(factors)

    def test_validation(self):
        with pytest.raises(ValueError):
            SyncOverheadModel(coeff=-0.1)
        with pytest.raises(ValueError):
            SyncOverheadModel().factor(0)


class TestPerformanceModel:
    def test_cycle_time_decreases_with_vdd(self, model):
        assert model.cycle_time_s(0.8) < model.cycle_time_s(0.4)

    def test_task_time_scales_with_work(self, model):
        g = make_graph(8)
        times = {t.task_id: model.task_time_s(g, t.task_id, 0.6) for t in g.tasks()}
        works = {t.task_id: t.work_cycles for t in g.tasks()}
        a, b = 1, 2
        assert times[a] / times[b] == pytest.approx(works[a] / works[b])

    def test_comm_delay_scales_with_volume_and_hops(self, model):
        g = ApplicationGraph()
        from repro.apps.graph import TaskNode
        from repro.pdn.waveforms import ActivityBin

        g.add_task(TaskNode(0, ActivityBin.HIGH, 1e6, 0.5))
        g.add_task(TaskNode(1, ActivityBin.HIGH, 1e6, 0.5))
        g.add_edge(0, 1, 4e6)
        d_near = model.comm_delay_s(g, 0, 1, 0.6, avg_hops=1)
        d_far = model.comm_delay_s(g, 0, 1, 0.6, avg_hops=8)
        assert d_far > d_near
        d_congested = model.comm_delay_s(g, 0, 1, 0.6, avg_hops=1, latency_scale=2.0)
        assert d_congested == pytest.approx(2 * d_near, rel=1e-9)
        with pytest.raises(ValueError):
            model.comm_delay_s(g, 0, 1, 0.6, latency_scale=0.5)

    def test_wcet_decreases_with_vdd(self, model):
        g = make_graph(16)
        wcets = [model.estimate_wcet_s(g, v) for v in (0.4, 0.6, 0.8)]
        assert wcets[0] > wcets[1] > wcets[2]

    def test_wcet_improves_with_dop_then_saturates(self, model):
        """Speed-up from DoP must be real but saturating - the basis of
        the paper's DoP-for-Vdd trade and its DoP <= 32 cap."""
        # Same total work split across different thread counts.
        total = 3.2e9
        wcets = {}
        for dop in (4, 8, 16, 32):
            rng = np.random.default_rng(1)
            per = total / dop
            g = ApplicationGraph.layered(
                layer_sizes=[1, max(2, dop - 2), 1],
                rng=rng,
                work_cycles_range=(per * 0.9, per * 1.1),
                high_fraction=0.5,
                volume_range=(1e6, 2e6),
            )
            wcets[dop] = model.estimate_wcet_s(g, 0.6)
        assert wcets[8] < wcets[4]
        assert wcets[32] < wcets[8]
        # Diminishing returns: the 16->32 gain is smaller than 4->8.
        assert (wcets[16] - wcets[32]) < (wcets[4] - wcets[8])

    def test_dop_for_vdd_trade(self, model):
        """The key PARM lever: a low-Vdd high-DoP run can match a
        high-Vdd low-DoP run."""
        slow = model.estimate_wcet_s(make_graph(8, seed=2), 0.8)
        fast_parallel = model.estimate_wcet_s(make_graph(32, seed=2), 0.4)
        # Same per-task work but 4x threads at ~0.37x frequency: within 2x.
        assert fast_parallel < 4 * slow
