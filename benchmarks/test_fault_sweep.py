"""Fault sweep: graceful degradation under injected component faults.

Regenerates the robustness study: the Fig. 8-style over-subscribed
workload replayed under a seeded fault campaign (sensor faults, link and
router failures, VRM droop, permanent tile failures) whose intensity is
swept from 0 to 1 with coupled thinning (higher intensities replay a
strict superset of the events).

Expected shape: completions never increase with fault intensity, the
PSN-aware PARM+PANR stack completes at least as many applications as
HM+XY at every intensity, and the whole sweep finishes without a single
exception - faults degrade the run, they never crash it.
"""

from repro.exp.faults import fault_sweep, print_fault_sweep


def test_fault_sweep(benchmark, once):
    rows = once(benchmark, fault_sweep)
    print_fault_sweep(rows)

    by = {(r.framework, r.intensity): r for r in rows}
    intensities = sorted({r.intensity for r in rows})
    frameworks = sorted({r.framework for r in rows})
    assert intensities[0] == 0.0

    for fw in frameworks:
        # Monotone degradation: more faults never complete more apps.
        completed = [by[(fw, i)].completed for i in intensities]
        assert all(
            earlier >= later
            for earlier, later in zip(completed, completed[1:])
        ), (fw, completed)
        # The fault-free point is genuinely fault-free...
        assert by[(fw, 0.0)].fault_count == 0
        assert by[(fw, 0.0)].failed == 0
        # ...and full intensity injects a real campaign.
        assert by[(fw, 1.0)].fault_count > 0

    for intensity in intensities:
        parm = by[("PARM+PANR", intensity)]
        hm = by[("HM+XY", intensity)]
        # Graceful degradation keeps the PSN-aware stack ahead of the
        # baseline at every fault load.
        assert parm.completed >= hm.completed, intensity
