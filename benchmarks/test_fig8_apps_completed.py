"""Fig. 8: applications successfully completed versus arrival rate.

Regenerates the over-subscription study: 20-application sequences at
inter-arrival intervals of 0.2 s, 0.1 s and 0.05 s, for the paper's four
compared frameworks, counting the applications that complete before
their deadline-infeasibility forces a drop.

Expected shape: at 0.2 s everyone maps comfortably and the frameworks
are close; at 0.1 s and 0.05 s PARM completes substantially more than
HM+XY (paper: up to 38 % more for PARM+PANR).
"""

from repro.exp import figures


def test_fig8(benchmark, once):
    rows = once(benchmark, figures.fig8, seeds=(1, 2))
    figures.print_fig8(rows)

    by = {
        (r.workload, r.arrival_interval_s, r.framework): r for r in rows
    }
    for workload in ("compute", "communication"):
        # Saturated regimes: PARM+PANR completes clearly more than HM+XY.
        for interval in (0.1, 0.05):
            parm = by[(workload, interval, "PARM+PANR")]
            hm = by[(workload, interval, "HM+XY")]
            assert parm.completed > hm.completed
        # Relaxed regime: the gap narrows (everyone has headroom).
        relaxed_gap = (
            by[(workload, 0.2, "PARM+PANR")].completed
            - by[(workload, 0.2, "HM+XY")].completed
        )
        saturated_gap = (
            by[(workload, 0.1, "PARM+PANR")].completed
            - by[(workload, 0.1, "HM+XY")].completed
        )
        assert relaxed_gap <= saturated_gap + 2.0
