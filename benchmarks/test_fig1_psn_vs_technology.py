"""Fig. 1: peak supply noise across fabrication process nodes.

Regenerates the paper's motivation figure with the MNA transient solver:
peak PSN (percent of the near-threshold supply) for a fully occupied
mixed-activity domain, per technology node from 45 nm down to 7 nm.
Expected shape: monotone growth with scaling, crossing the 5 % voltage
emergency margin at the newest nodes.
"""

from repro.exp import figures


def test_fig1(benchmark, once):
    rows = once(benchmark, figures.fig1)
    figures.print_fig1(rows)

    peaks = [r.peak_psn_pct for r in rows]
    assert peaks == sorted(peaks), "PSN must grow with technology scaling"
    assert rows[-1].node == "7nm"
    assert rows[-1].peak_psn_pct > 5.0, "7nm must exceed the VE margin"
    assert rows[0].peak_psn_pct < 2.5, "45nm must be comfortably below it"
