"""Shared configuration for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's figures/tables and prints
the same rows/series the paper reports.  pytest-benchmark measures the
wall time of one full regeneration (`rounds=1`), since the interesting
output is the table itself rather than microsecond timings.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark one full execution and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
