"""Fig. 3a: peak PSN in a domain versus supply voltage.

Regenerates the characterisation behind PARM's Vdd selection: peak PSN
(percent of Vdd) of a fully occupied domain at every DVS step, for a
communication-intensive and a compute-intensive workload.  Expected
shape: PSN proportional to Vdd for both kinds, communication above
compute.
"""

from repro.exp import figures


def test_fig3a(benchmark, once):
    rows = once(benchmark, figures.fig3a)
    figures.print_fig3a(rows)

    for kind in ("compute", "communication"):
        peaks = [r.peak_psn_pct for r in rows if r.kind == kind]
        assert peaks == sorted(peaks), f"{kind}: PSN must grow with Vdd"
    comm = {r.vdd: r.peak_psn_pct for r in rows if r.kind == "communication"}
    comp = {r.vdd: r.peak_psn_pct for r in rows if r.kind == "compute"}
    assert all(comm[v] > comp[v] for v in comm)
