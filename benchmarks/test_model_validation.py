"""Cross-model validation: fast PSN kernels vs the transient solver.

DESIGN.md decision #1 commits the fast runtime model to tracking the
MNA ground truth on the configurations the managers actually produce;
this bench measures it across the suite and both managers and prints
the per-decision table.
"""

from repro.exp.validation import print_validation, validate_on_manager_decisions


def test_fast_model_validation(benchmark, once):
    summary = once(benchmark, validate_on_manager_decisions)
    print_validation(summary)

    assert summary.rank_agreement
    assert summary.mean_abs_peak_error_pct < 2.0
    assert summary.worst_tile_error_pct < 5.0
