"""Fig. 3b: normalised interference between task pairs.

Regenerates the proximity characterisation behind PARM's clustering:
interference PSN for High/Low activity pairs at 1-hop and 2-hop
Manhattan separation, normalised to the High-Low 1-hop pair.  Expected
shape (the paper's two observations): H-L pairs interfere up to ~35 %
more than H-H/L-L pairs, and 2-hop separation interferes ~10 % less
than 1-hop.
"""

from repro.exp import figures


def test_fig3b(benchmark, once):
    rows = once(benchmark, figures.fig3b)
    figures.print_fig3b(rows)

    by = {(r.pair, r.hops): r.normalised for r in rows}
    assert by[("H-L", 1)] == 1.0
    assert by[("H-H", 1)] < 0.9, "H-L must exceed H-H by >= ~10 %"
    assert by[("L-L", 1)] < 1.0
    assert 0.7 < by[("H-L", 2)] < 0.98, "2 hops must interfere less"
