"""Ablation: the DoP cap at 32 (Section 5.1).

The paper limits DoP to 32 "beyond which most of the applications were
observed to have lower performance due to communication
(synchronization) overheads".  This bench sweeps WCET versus thread
count past the cap.  Expected shape: strong gains up to ~16-24 threads,
flattening near 32, marginal or negative beyond.
"""

from repro.exp import ablations


def test_dop_sweep(benchmark, once):
    rows = once(benchmark, ablations.dop_sweep)
    ablations.print_dop_sweep(rows)

    by_dop = {r.dop: r.wcet_s for r in rows}
    assert by_dop[16] < by_dop[4]
    assert by_dop[32] < by_dop[16]
    gain_to_32 = by_dop[16] - by_dop[32]
    gain_past_32 = by_dop[32] - by_dop[64]
    assert gain_past_32 < 0.5 * gain_to_32
