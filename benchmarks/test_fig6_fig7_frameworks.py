"""Fig. 6 and Fig. 7: execution time and PSN across the six frameworks.

One set of runtime simulations feeds both figures (as in the paper):
20-application sequences of each workload type, arriving every 0.1 s
with loose deadlines so every framework executes all 20 applications.

Fig. 6 expected shape: PARM frameworks finish the sequence much faster
than HM frameworks (paper: up to 25 % compute / 34 % communication /
13 % mixed for PARM+PANR over HM+XY).

Fig. 7 expected shape: PARM frameworks show severalfold lower peak and
average PSN than HM frameworks (paper: up to 4.15-4.5x).
"""

import pytest

from repro.exp import figures

_ROWS = []


def test_fig6_execution_time(benchmark, once):
    rows = once(benchmark, figures.run_fig67, seeds=(1, 2))
    _ROWS.extend(rows)
    figures.print_fig6(rows)

    by = {(r.workload, r.framework): r for r in rows}
    for workload in ("compute", "communication", "mixed"):
        parm = by[(workload, "PARM+PANR")]
        hm = by[(workload, "HM+XY")]
        assert parm.total_time_s < hm.total_time_s
        assert parm.improvement_vs_hm_xy_pct > 8.0


def test_fig7_psn(benchmark, once):
    if not _ROWS:
        pytest.skip("fig6 benchmark did not run first")
    rows = once(benchmark, lambda: _ROWS)  # reuse the fig6 runs
    figures.print_fig7(rows)

    by = {(r.workload, r.framework): r for r in rows}
    for workload in ("compute", "communication", "mixed"):
        parm = by[(workload, "PARM+PANR")]
        hm = by[(workload, "HM+XY")]
        assert parm.psn_reduction_vs_hm_xy > 1.5
        assert parm.avg_psn_pct < hm.avg_psn_pct
