"""Extension analyses beyond the paper's figures.

Three analyses that the paper motivates but does not plot:

* **DsPB sensitivity** - how the Fig. 8 advantage depends on the 65 W
  budget, with the thermal model marking which budgets the cooling
  solution actually supports;
* **checkpoint period** - the trade-off behind the 1 ms choice of
  Section 5.1;
* **guardband savings** - the conclusion's claim that PARM displaces
  costly guardbanding and decap circuits, quantified with the
  alpha-power law and the PDN's AC impedance.
"""

from repro.exp import ablations
from repro.exp.guardband import (
    equivalent_decap_factor,
    guardband_table,
    print_guardband,
)


def test_dspb_sensitivity(benchmark, once):
    rows = once(benchmark, ablations.dspb_sensitivity_sweep)
    ablations.print_dspb_sweep(rows)

    by = {r.budget_w: r for r in rows}
    # HM is power-bound, PARM is not; the paper's 65 W sits at the edge
    # of what the thermal model allows.
    assert by[100.0].hm_completed > by[40.0].hm_completed
    assert by[65.0].thermally_safe
    assert not by[100.0].thermally_safe
    assert by[65.0].parm_completed >= by[65.0].hm_completed


def test_checkpoint_period(benchmark, once):
    rows = once(benchmark, ablations.checkpoint_period_sweep)
    ablations.print_checkpoint_sweep(rows)

    best = min(rows, key=lambda r: r.combined_cost_pct)
    assert best.period_s in (0.5e-3, 1e-3)


def test_guardband_savings(benchmark, once):
    measurements = {
        "HM-level noise": (0.4, 15.0),
        "PARM-level noise": (0.4, 4.7),
    }
    rows = once(benchmark, guardband_table, measurements)
    print_guardband(rows)

    by = {r.label: r for r in rows}
    saved = by["HM-level noise"].guardband_pct - by["PARM-level noise"].guardband_pct
    print(
        f"guardband recovered by PARM-level noise at NTC: {saved:.1f} pp; "
        f"equivalent decap factor: "
        f"{equivalent_decap_factor(15.0 / 4.7):.1f}x"
    )
    assert saved > 10.0


def test_prevention_vs_correction(benchmark, once):
    """PARM (prevention) vs an Orchestrator-style reactive-migration
    scheme (correction) vs no PSN handling at all - the paper's
    Section 2 argument, measured end to end."""
    from repro.apps.suite import ProfileLibrary
    from repro.apps.workload import WorkloadType, generate_workload
    from repro.chip import default_chip
    from repro.core import OrchestratorManager, ParmManager
    from repro.noc.routing import make_routing
    from repro.runtime import RuntimeSimulator
    from repro.runtime.migration import ReactiveMigrationPolicy

    chip = default_chip()
    library = ProfileLibrary()
    workload = generate_workload(
        WorkloadType.MIXED,
        0.1,
        n_apps=14,
        seed=1,
        library=library,
        deadline_slack_range=(30.0, 30.0),
    )

    def run_all():
        results = {}
        for name, manager, routing, reactive in (
            ("ORCH+XY (oblivious)", OrchestratorManager(), "xy", None),
            (
                "ORCH+XY (reactive)",
                OrchestratorManager(),
                "xy",
                ReactiveMigrationPolicy(),
            ),
            ("PARM+PANR", ParmManager(), "panr", None),
        ):
            sim = RuntimeSimulator(
                chip,
                manager,
                make_routing(routing),
                reactive_migration=reactive,
                seed=5,
            )
            results[name] = sim.run(workload)
        return results

    results = once(benchmark, run_all)
    print("Extension: prevention (PARM) vs correction (reactive migration)")
    print(
        f"{'scheme':>22s} {'done':>5s} {'peak %':>7s} {'avg %':>6s} "
        f"{'VEs':>6s} {'moves':>6s}"
    )
    for name, m in results.items():
        print(
            f"{name:>22s} {m.completed_count:>5d} {m.peak_psn_pct:>7.2f} "
            f"{m.avg_psn_pct:>6.2f} {m.total_ve_count:>6d} "
            f"{m.reactive_move_count:>6d}"
        )

    oblivious = results["ORCH+XY (oblivious)"]
    reactive = results["ORCH+XY (reactive)"]
    parm = results["PARM+PANR"]
    assert reactive.total_ve_count < oblivious.total_ve_count
    assert reactive.reactive_move_count > 0
    assert parm.total_ve_count < 0.2 * reactive.total_ve_count
    assert parm.avg_psn_pct < reactive.avg_psn_pct
