"""Section 4.4 overhead table: PANR's per-router hardware cost.

Regenerates the stated numbers at the 7 nm node: ~115 um^2 of added
logic (registers + two 64-bit comparators + wiring) against the
~71300 um^2 baseline router, ~413 um^2 for the PSN sensor network
against the ~4 mm^2 core, and ~1 mW / 3 % router power overhead at a
near-threshold ~1 GHz operating point.
"""

from repro.noc.overhead import panr_router_overhead


def test_overhead_table(benchmark, once):
    report = once(
        benchmark, panr_router_overhead, vdd=0.4, flits_per_cycle=0.25
    )

    print("Section 4.4: PANR per-router overhead at 7 nm")
    print(f"  registers            {report.register_area_um2:8.1f} um^2")
    print(f"  comparators (2x64b)  {report.comparator_area_um2:8.1f} um^2")
    print(f"  wiring/muxing        {report.wiring_area_um2:8.1f} um^2")
    print(
        f"  total logic          {report.logic_area_um2:8.1f} um^2 "
        f"({report.area_fraction_of_router * 100:.2f}% of router)"
    )
    print(
        f"  PSN sensor macro     {report.sensor_area_um2:8.1f} um^2 "
        f"({report.sensor_fraction_of_core * 100:.3f}% of core)"
    )
    print(
        f"  power overhead       {report.power_overhead_w * 1000:8.2f} mW "
        f"({report.power_fraction_of_router * 100:.0f}% of router)"
    )

    assert 100 < report.logic_area_um2 < 130  # paper: ~115 um^2
    assert report.sensor_area_um2 == 413.0  # paper: ~413 um^2
    assert report.area_fraction_of_router < 0.01
    assert 0.3e-3 < report.power_overhead_w < 3e-3  # paper: ~1 mW
    assert abs(report.power_fraction_of_router - 0.03) < 1e-9  # paper: 3 %
