"""Ablation: PANR's buffer-occupancy threshold B (Section 5.1).

The paper set B to 50 % "after analyzing the effects of different
occupancy levels on router throughput, with a cycle-accurate NoC
simulator"; this bench is that analysis on our cycle-level simulator.
Expected shape: the mid-range threshold is competitive on both latency
and throughput (neither extreme dominates it).
"""

from repro.exp import ablations


def test_buffer_threshold_sweep(benchmark, once):
    rows = once(benchmark, ablations.buffer_threshold_sweep)
    ablations.print_buffer_threshold(rows)

    by_b = {r.threshold: r for r in rows}
    mid = by_b[0.5]
    assert mid.throughput_flits_per_cycle > 0
    # Congestion-only routing (tiny B) ploughs through the noisy region
    # and pays in latency; the paper's 0.5 avoids both failure modes.
    assert by_b[0.1].noisy_traffic_flits_per_cycle > (
        1.5 * mid.noisy_traffic_flits_per_cycle
    )
    assert by_b[0.1].avg_latency_cycles > mid.avg_latency_cycles
    for b, row in by_b.items():
        dominated = (
            row.avg_latency_cycles < mid.avg_latency_cycles * 0.98
            and row.noisy_traffic_flits_per_cycle
            < mid.noisy_traffic_flits_per_cycle * 0.95
        )
        assert not dominated, f"B={b} strictly dominates the paper's 0.5"
