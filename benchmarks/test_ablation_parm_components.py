"""Ablation: what each PARM ingredient contributes.

Compares full PARM against two crippled variants on a mixed workload
(PANR routing, loose deadlines so every variant maps everything):

* ``PARM-noact`` - clustering ignores activity bins (communication
  order only);
* ``PARM-novdd`` - no DVS adaptation (nominal Vdd, DoP still adaptive).

Expected shape: Vdd adaptation is the dominant PSN lever; activity-aware
clustering trims the remaining interference.
"""

from repro.exp import ablations


def test_parm_component_ablation(benchmark, once):
    rows = once(benchmark, ablations.parm_component_ablation)
    ablations.print_parm_ablation(rows)

    by = {r.variant: r for r in rows}
    assert by["PARM-novdd"].peak_psn_pct > 1.3 * by["PARM"].peak_psn_pct
    assert by["PARM-novdd"].ve_count >= by["PARM"].ve_count
    assert by["PARM-noact"].avg_psn_pct >= 0.95 * by["PARM"].avg_psn_pct
