"""Execution-time (WCET) estimation across (Vdd, DoP) operating points.

The paper's ``EstimateExecutionTime(Vi, Dk, Aj)`` (Algorithm 1, line 5)
reads offline profile data.  This module is the model behind that data:

* core cycle time follows the alpha-power frequency law of the chip;
* per-thread work shrinks with DoP, but synchronisation overhead grows
  with thread count, so speed-up saturates - the paper observed most
  applications slowing down beyond DoP 32 (Section 5.1), which the
  :class:`SyncOverheadModel` reproduces;
* communication time is the NoC transfer latency of the APG edges; before
  mapping, an average hop estimate is used (the runtime refines it with
  the mapped NoC model);
* the end-to-end WCET is the makespan of the EDF schedule of the DoP-sized
  application graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.graph import ApplicationGraph
from repro.chip.power import PowerModel
from repro.sched.edf import edf_schedule


@dataclass(frozen=True)
class SyncOverheadModel:
    """Synchronisation/communication overhead growth with DoP.

    The per-thread work of a ``dop``-thread run is::

        work(dop) = total_work * (serial + (1 - serial) / dop) * s(dop)
        s(dop)    = 1 + coeff * (dop - 4) / 4

    ``s`` models barrier/lock dilation: each doubling of the thread count
    adds a fixed fraction of overhead.  With the default coefficient, the
    marginal speed-up turns negative in the mid-30s thread range,
    matching the paper's observation that DoP beyond 32 hurts.
    """

    coeff: float = 0.06

    def __post_init__(self) -> None:
        if self.coeff < 0:
            raise ValueError("coeff must be non-negative")

    def factor(self, dop: int) -> float:
        if dop < 1:
            raise ValueError("dop must be at least 1")
        return 1.0 + self.coeff * max(0, dop - 4) / 4.0


@dataclass(frozen=True)
class PerformanceModel:
    """WCET estimator for an application graph at an operating point.

    Attributes:
        power_model: Chip power model (provides the frequency law).
        sync: Synchronisation-overhead model.
        noc_bytes_per_cycle: Effective NoC payload bandwidth per link.
        default_hops: Average hop distance assumed for WCET estimation
            before the mapping is known.
        per_hop_cycles: Router pipeline latency per hop.
    """

    power_model: PowerModel
    sync: SyncOverheadModel = SyncOverheadModel()
    noc_bytes_per_cycle: float = 4.0
    default_hops: float = 2.0
    per_hop_cycles: float = 3.0

    def cycle_time_s(self, vdd: float) -> float:
        """Core clock period at ``vdd``."""
        return 1.0 / self.power_model.frequency(vdd)

    def task_time_s(self, graph: ApplicationGraph, task_id: int, vdd: float) -> float:
        """Execution time of one task, including sync dilation."""
        task = graph.task(task_id)
        factor = self.sync.factor(graph.task_count)
        return task.work_cycles * factor * self.cycle_time_s(vdd)

    def comm_delay_s(
        self,
        graph: ApplicationGraph,
        src: int,
        dst: int,
        vdd: float,
        avg_hops: float = None,
        latency_scale: float = 1.0,
    ) -> float:
        """NoC transfer delay of one APG edge.

        Args:
            graph: The application graph.
            src, dst: Edge endpoints.
            vdd: Supply voltage (NoC routers share the domain clock).
            avg_hops: Average hop count of the mapping; defaults to the
                model's pre-mapping estimate.
            latency_scale: Multiplier for congestion (>= 1), supplied by
                the NoC model at runtime.
        """
        if latency_scale < 1.0:
            raise ValueError("latency_scale must be >= 1")
        hops = self.default_hops if avg_hops is None else avg_hops
        volume = graph.volume(src, dst)
        serialisation = volume / self.noc_bytes_per_cycle
        cycles = (serialisation + hops * self.per_hop_cycles) * latency_scale
        return cycles * self.cycle_time_s(vdd)

    def estimate_wcet_s(
        self,
        graph: ApplicationGraph,
        vdd: float,
        avg_hops: float = None,
        latency_scale: float = 1.0,
    ) -> float:
        """End-to-end execution-time estimate: EDF-schedule makespan with
        one dedicated core per thread."""
        schedule = edf_schedule(
            graph,
            core_count=max(1, graph.task_count),
            task_time=lambda t: self.task_time_s(graph, t, vdd),
            comm_delay=lambda s, d: self.comm_delay_s(
                graph, s, d, vdd, avg_hops, latency_scale
            ),
        )
        return schedule.makespan
