"""Persistence for offline application profiles (JSON).

In the paper's deployment, profiling runs once offline (GEM5/McPAT) and
the runtime only reads the resulting tables.  This module gives the
reproduction the same workflow: serialise a built
:class:`~repro.apps.profiles.ApplicationProfile` - spec, per-DoP task
graphs and per-(Vdd, DoP) operating points - to a JSON document, and
reload it without re-running the performance model.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple

from repro.apps.graph import ApplicationGraph, TaskNode
from repro.apps.profiles import (
    ApplicationProfile,
    AppKind,
    BenchmarkSpec,
    OperatingPoint,
)
from repro.chip.technology import technology
from repro.pdn.waveforms import ActivityBin

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def profile_to_dict(profile: ApplicationProfile, tech_name: str) -> dict:
    """Serialise a profile to a JSON-compatible dictionary.

    Args:
        profile: The profile to serialise.
        tech_name: Name of the technology node the profile was built
            for (stored so router-rate queries work after loading).
    """
    technology(tech_name)  # validate early
    spec = profile.spec
    graphs = {}
    for dop in profile.supported_dops:
        graph = profile.graph(dop)
        graphs[str(dop)] = {
            "tasks": [
                {
                    "id": t.task_id,
                    "bin": t.activity_bin.value,
                    "work_cycles": t.work_cycles,
                    "activity_factor": t.activity_factor,
                }
                for t in graph.tasks()
            ],
            "edges": [
                {"src": s, "dst": d, "volume_bytes": v}
                for s, d, v in graph.edges()
            ],
        }
    points = [
        {
            "vdd": p.vdd,
            "dop": p.dop,
            "wcet_s": p.wcet_s,
            "power_w": p.power_w,
            "avg_router_flits_per_cycle": p.avg_router_flits_per_cycle,
        }
        for p in (
            profile.point(v, d)
            for v in profile.supported_vdds
            for d in profile.supported_dops
        )
    ]
    return {
        "format_version": FORMAT_VERSION,
        "tech": tech_name,
        "spec": {
            "name": spec.name,
            "kind": spec.kind.value,
            "work_gcycles": spec.work_gcycles,
            "serial_fraction": spec.serial_fraction,
            "high_fraction": spec.high_fraction,
            "total_comm_mb": spec.total_comm_mb,
            "seed": spec.seed,
        },
        "graphs": graphs,
        "points": points,
    }


def profile_from_dict(data: dict) -> ApplicationProfile:
    """Rebuild an :class:`ApplicationProfile` from its dictionary form."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported profile format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    spec_d = data["spec"]
    spec = BenchmarkSpec(
        name=spec_d["name"],
        kind=AppKind(spec_d["kind"]),
        work_gcycles=spec_d["work_gcycles"],
        serial_fraction=spec_d["serial_fraction"],
        high_fraction=spec_d["high_fraction"],
        total_comm_mb=spec_d["total_comm_mb"],
        seed=spec_d["seed"],
    )
    graphs: Dict[int, ApplicationGraph] = {}
    for dop_str, g in data["graphs"].items():
        graph = ApplicationGraph()
        for t in g["tasks"]:
            graph.add_task(
                TaskNode(
                    task_id=t["id"],
                    activity_bin=ActivityBin(t["bin"]),
                    work_cycles=t["work_cycles"],
                    activity_factor=t["activity_factor"],
                )
            )
        for e in g["edges"]:
            graph.add_edge(e["src"], e["dst"], e["volume_bytes"])
        graphs[int(dop_str)] = graph
    points: Dict[Tuple[float, int], OperatingPoint] = {}
    for p in data["points"]:
        point = OperatingPoint(
            vdd=p["vdd"],
            dop=p["dop"],
            wcet_s=p["wcet_s"],
            power_w=p["power_w"],
            avg_router_flits_per_cycle=p["avg_router_flits_per_cycle"],
        )
        points[(round(point.vdd, 9), point.dop)] = point
    profile = ApplicationProfile(spec, graphs, points)
    profile._tech_cache = technology(data["tech"])
    return profile


def save_profile(
    profile: ApplicationProfile, path: str, tech_name: str = "7nm"
) -> None:
    """Write a profile to a JSON file."""
    with open(path, "w") as handle:
        json.dump(profile_to_dict(profile, tech_name), handle)


def load_profile(path: str) -> ApplicationProfile:
    """Read a profile back from a JSON file."""
    with open(path) as handle:
        return profile_from_dict(json.load(handle))
