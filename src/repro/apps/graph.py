"""Application graphs (APGs): DAGs of threads with communication volumes.

Section 3.2 of the paper: ``APG = G(V, E)`` is a directed acyclic graph
where each vertex is a thread and each edge weight is the communication
volume between two threads.  The PSN-aware mapping heuristic consumes the
edges sorted by decreasing volume (Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import networkx as nx
import numpy as np

from repro.pdn.waveforms import ActivityBin


@dataclass(frozen=True)
class TaskNode:
    """One thread of an application.

    Attributes:
        task_id: Index of the thread within the application (0-based).
        activity_bin: High or Low switching-activity class.
        work_cycles: Computation demand of the thread in core cycles.
        activity_factor: Core switching-activity factor in [0, 1] used by
            the power model (High-bin tasks have larger factors).
    """

    task_id: int
    activity_bin: ActivityBin
    work_cycles: float
    activity_factor: float

    def __post_init__(self) -> None:
        if self.task_id < 0:
            raise ValueError("task_id must be non-negative")
        if self.work_cycles < 0:
            raise ValueError("work_cycles must be non-negative")
        if not 0.0 <= self.activity_factor <= 1.0:
            raise ValueError("activity_factor must be in [0, 1]")


class ApplicationGraph:
    """A validated APG with volume-sorted edge access.

    Edges carry ``volume_bytes``: the total data exchanged between the two
    threads over one execution of the application.
    """

    def __init__(self) -> None:
        self._g = nx.DiGraph()
        self._tasks: Dict[int, TaskNode] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_task(self, task: TaskNode) -> None:
        """Add a thread; task ids must be unique."""
        if task.task_id in self._tasks:
            raise ValueError(f"duplicate task id {task.task_id}")
        self._tasks[task.task_id] = task
        self._g.add_node(task.task_id)

    def replace_task(self, task: TaskNode) -> None:
        """Replace the attributes of an existing task (same id)."""
        if task.task_id not in self._tasks:
            raise ValueError(f"unknown task id {task.task_id}")
        self._tasks[task.task_id] = task

    def scale_volumes(self, factor: float) -> None:
        """Multiply every edge's communication volume by ``factor``.

        Used by the profile builder to normalise a generated graph to an
        application's total communication volume: the data a program
        moves is set by its problem size, so finer partitioning (higher
        DoP) means proportionally less volume per edge.
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        for u, v, data in self._g.edges(data=True):
            data["volume_bytes"] = data["volume_bytes"] * factor

    def add_edge(self, src: int, dst: int, volume_bytes: float) -> None:
        """Add a communication edge; both endpoints must exist."""
        if src not in self._tasks or dst not in self._tasks:
            raise ValueError(f"edge ({src}, {dst}) references unknown task")
        if src == dst:
            raise ValueError("self edges are not allowed")
        if volume_bytes < 0:
            raise ValueError("volume must be non-negative")
        self._g.add_edge(src, dst, volume_bytes=float(volume_bytes))
        if not nx.is_directed_acyclic_graph(self._g):
            self._g.remove_edge(src, dst)
            raise ValueError(f"edge ({src}, {dst}) would create a cycle")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def task_count(self) -> int:
        return len(self._tasks)

    @property
    def edge_count(self) -> int:
        return self._g.number_of_edges()

    def task(self, task_id: int) -> TaskNode:
        try:
            return self._tasks[task_id]
        except KeyError:
            raise KeyError(f"unknown task id {task_id}")

    def tasks(self) -> List[TaskNode]:
        """All tasks ordered by id."""
        return [self._tasks[i] for i in sorted(self._tasks)]

    def edges(self) -> List[Tuple[int, int, float]]:
        """All edges as ``(src, dst, volume_bytes)``."""
        return [
            (u, v, d["volume_bytes"]) for u, v, d in self._g.edges(data=True)
        ]

    def edges_by_volume(self) -> List[Tuple[int, int, float]]:
        """Edges sorted by decreasing volume (ties broken by endpoints for
        determinism) - the order consumed by Algorithm 2."""
        return sorted(self.edges(), key=lambda e: (-e[2], e[0], e[1]))

    def volume(self, src: int, dst: int) -> float:
        """Volume of one edge (0 if absent)."""
        data = self._g.get_edge_data(src, dst)
        return data["volume_bytes"] if data else 0.0

    def total_volume_bytes(self) -> float:
        return sum(v for _, _, v in self.edges())

    def predecessors(self, task_id: int) -> List[int]:
        return sorted(self._g.predecessors(task_id))

    def successors(self, task_id: int) -> List[int]:
        return sorted(self._g.successors(task_id))

    def topological_order(self) -> List[int]:
        """Deterministic topological order of task ids."""
        return list(nx.lexicographical_topological_sort(self._g))

    def sources(self) -> List[int]:
        return sorted(n for n in self._g.nodes if self._g.in_degree(n) == 0)

    def sinks(self) -> List[int]:
        return sorted(n for n in self._g.nodes if self._g.out_degree(n) == 0)

    def high_tasks(self) -> List[int]:
        return [t.task_id for t in self.tasks() if t.activity_bin.is_high]

    def low_tasks(self) -> List[int]:
        return [t.task_id for t in self.tasks() if not t.activity_bin.is_high]

    def to_dot(self, name: str = "apg") -> str:
        """Graphviz DOT representation (debugging / documentation).

        High-activity tasks render as doubled circles; edge labels are
        volumes in MB.
        """
        lines = [f'digraph {name} {{', "  rankdir=LR;"]
        for task in self.tasks():
            shape = "doublecircle" if task.activity_bin.is_high else "circle"
            lines.append(
                f'  t{task.task_id} [shape={shape}, '
                f'label="T{task.task_id}"];'
            )
        for src, dst, volume in self.edges():
            lines.append(
                f'  t{src} -> t{dst} [label="{volume / 1e6:.1f}MB"];'
            )
        lines.append("}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------

    @classmethod
    def fork_join(
        cls,
        task_count: int,
        work_cycles: Iterable[float],
        activity_bins: Iterable[ActivityBin],
        activity_factors: Iterable[float],
        volumes_bytes: Iterable[float],
    ) -> "ApplicationGraph":
        """Classic fork-join shape: task 0 forks to 1..n-2, all join at
        the last task.  ``volumes_bytes`` gives fork volumes then join
        volumes, ``2 * (task_count - 2)`` entries.
        """
        if task_count < 3:
            raise ValueError("fork-join needs at least 3 tasks")
        work = list(work_cycles)
        bins = list(activity_bins)
        factors = list(activity_factors)
        volumes = list(volumes_bytes)
        middle = task_count - 2
        if not (len(work) == len(bins) == len(factors) == task_count):
            raise ValueError("per-task attribute lengths must equal task_count")
        if len(volumes) != 2 * middle:
            raise ValueError(f"need {2 * middle} volumes, got {len(volumes)}")
        g = cls()
        for i in range(task_count):
            g.add_task(TaskNode(i, bins[i], work[i], factors[i]))
        last = task_count - 1
        for k, mid in enumerate(range(1, last)):
            g.add_edge(0, mid, volumes[k])
            g.add_edge(mid, last, volumes[middle + k])
        return g

    @classmethod
    def layered(
        cls,
        layer_sizes: List[int],
        rng: np.random.Generator,
        work_cycles_range: Tuple[float, float],
        high_fraction: float,
        volume_range: Tuple[float, float],
        high_activity_range: Tuple[float, float] = (0.55, 0.9),
        low_activity_range: Tuple[float, float] = (0.12, 0.35),
        fanout: int = 2,
    ) -> "ApplicationGraph":
        """Random layered DAG: edges go from each task to ``fanout``
        random tasks of the next layer (plus a connectivity guarantee that
        every task has at least one predecessor in the previous layer).
        """
        if any(s < 1 for s in layer_sizes) or not layer_sizes:
            raise ValueError("layer sizes must be positive")
        if not 0.0 <= high_fraction <= 1.0:
            raise ValueError("high_fraction must be in [0, 1]")
        g = cls()
        task_count = sum(layer_sizes)
        n_high = int(round(high_fraction * task_count))
        # Deterministic bin assignment: shuffle ids, first n_high are HIGH.
        ids = list(range(task_count))
        rng.shuffle(ids)
        high_set = set(ids[:n_high])
        for i in range(task_count):
            is_high = i in high_set
            bin_ = ActivityBin.HIGH if is_high else ActivityBin.LOW
            factor_range = high_activity_range if is_high else low_activity_range
            g.add_task(
                TaskNode(
                    i,
                    bin_,
                    float(rng.uniform(*work_cycles_range)),
                    float(rng.uniform(*factor_range)),
                )
            )
        # Layer index bounds.
        starts = np.cumsum([0] + layer_sizes).tolist()
        for layer in range(len(layer_sizes) - 1):
            cur = range(starts[layer], starts[layer + 1])
            nxt = list(range(starts[layer + 1], starts[layer + 2]))
            for u in cur:
                targets = rng.choice(
                    nxt, size=min(fanout, len(nxt)), replace=False
                )
                for v in targets:
                    if g.volume(u, int(v)) <= 0.0:
                        g.add_edge(u, int(v), float(rng.uniform(*volume_range)))
            for v in nxt:
                if not g.predecessors(v):
                    u = int(rng.choice(list(cur)))
                    g.add_edge(u, v, float(rng.uniform(*volume_range)))
        return g
