"""The 13-benchmark suite of the paper's evaluation (Section 5.1).

Communication-intensive: cholesky, fft, radix, raytrace, dedup, canneal,
vips.  Compute-intensive: swaptions, fluidanimate, streamcluster,
blackscholes, radix, bodytrack, radiosity.  ``radix`` appears in both
groups, as in the paper.

The per-benchmark parameters are synthetic (the real SPLASH-2/PARSEC
binaries and GEM5 are not available offline) but chosen to reproduce the
published aggregate behaviour: communication-intensive applications move
gigabytes over the NoC per run and put it on the critical path (~15-20 %
of chip power), compute-intensive ones have high core switching activity
and little traffic, and speed-up saturates past DoP 32.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.apps.profiles import (
    ApplicationProfile,
    AppKind,
    BenchmarkSpec,
    build_profile,
)
from repro.chip.technology import TechnologyNode


def _spec(
    name: str,
    kind: AppKind,
    work: float,
    serial: float,
    high: float,
    total_comm_mb: float,
    seed: int,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        kind=kind,
        work_gcycles=work,
        serial_fraction=serial,
        high_fraction=high,
        total_comm_mb=total_comm_mb,
        seed=seed,
    )


#: All 13 benchmark specifications, keyed by name.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in (
        # --- communication-intensive (SPLASH-2 / PARSEC) ---------------
        _spec("cholesky", AppKind.COMMUNICATION, 0.55, 0.06, 0.50, 1400, 101),
        _spec("fft", AppKind.COMMUNICATION, 0.4, 0.04, 0.45, 1900, 102),
        _spec("radix", AppKind.COMMUNICATION, 0.35, 0.05, 0.50, 1500, 103),
        _spec("raytrace", AppKind.COMMUNICATION, 0.7, 0.08, 0.55, 1200, 104),
        _spec("dedup", AppKind.COMMUNICATION, 0.5, 0.07, 0.40, 1900, 105),
        _spec("canneal", AppKind.COMMUNICATION, 0.45, 0.05, 0.35, 2100, 106),
        _spec("vips", AppKind.COMMUNICATION, 0.6, 0.06, 0.45, 1500, 107),
        # --- compute-intensive ------------------------------------------
        _spec("swaptions", AppKind.COMPUTE, 0.65, 0.03, 0.70, 40, 201),
        _spec("fluidanimate", AppKind.COMPUTE, 0.55, 0.06, 0.60, 90, 202),
        _spec("streamcluster", AppKind.COMPUTE, 0.5, 0.05, 0.55, 70, 203),
        _spec("blackscholes", AppKind.COMPUTE, 0.45, 0.02, 0.75, 30, 204),
        _spec("bodytrack", AppKind.COMPUTE, 0.6, 0.07, 0.60, 80, 205),
        _spec("radiosity", AppKind.COMPUTE, 0.7, 0.08, 0.65, 55, 206),
    )
}

#: Names in each workload group (``radix`` is in both, as in the paper).
COMMUNICATION_BENCHMARKS: Tuple[str, ...] = (
    "cholesky", "fft", "radix", "raytrace", "dedup", "canneal", "vips",
)
COMPUTE_BENCHMARKS: Tuple[str, ...] = (
    "swaptions", "fluidanimate", "streamcluster", "blackscholes",
    "radix", "bodytrack", "radiosity",
)


def benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}")


class ProfileLibrary:
    """Lazily built, cached profiles for the whole suite.

    Building a profile runs the EDF performance model over every
    (Vdd, DoP) point, so experiment harnesses share one library instance.
    """

    def __init__(
        self,
        tech: Optional[TechnologyNode] = None,
        vdds: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8),
        dops: Optional[Sequence[int]] = None,
    ):
        self._tech = tech
        self._vdds = tuple(vdds)
        self._dops = tuple(dops) if dops is not None else None
        self._cache: Dict[str, ApplicationProfile] = {}

    def get(self, name: str) -> ApplicationProfile:
        """Profile for a benchmark, building it on first use."""
        if name not in self._cache:
            kwargs = {}
            if self._dops is not None:
                kwargs["dops"] = self._dops
            self._cache[name] = build_profile(
                benchmark(name), tech=self._tech, vdds=self._vdds, **kwargs
            )
        return self._cache[name]

    def __contains__(self, name: str) -> bool:
        return name in BENCHMARKS
