"""Application model: task graphs, offline profiles, benchmark suite.

The paper's applications (Section 3.2) are multithreaded programs from
SPLASH-2 and PARSEC, each able to run with a variable degree of
parallelism (DoP, multiples of 4 up to 32).  An application is described
by its application graph (APG): a DAG whose vertices are threads and whose
edge weights are communication volumes.  Each thread is binned as High or
Low switching activity; each application has a performance deadline.

GEM5/McPAT offline profiling is replaced by a synthetic-but-calibrated
profile database (:mod:`repro.apps.suite` and :mod:`repro.apps.profiles`)
that produces, for every (Vdd, DoP) operating point, exactly the
statistics the paper's framework consumes: estimated WCET, power
consumption, per-task activity bins and APG communication volumes.
"""

from repro.apps.graph import ApplicationGraph, TaskNode
from repro.apps.io import load_profile, save_profile
from repro.apps.performance import PerformanceModel, SyncOverheadModel
from repro.apps.profiles import (
    ApplicationProfile,
    BenchmarkSpec,
    OperatingPoint,
    build_profile,
)
from repro.apps.suite import (
    BENCHMARKS,
    COMMUNICATION_BENCHMARKS,
    COMPUTE_BENCHMARKS,
    benchmark,
)
from repro.apps.workload import (
    ApplicationArrival,
    WorkloadType,
    generate_workload,
)

__all__ = [
    "ApplicationGraph",
    "TaskNode",
    "load_profile",
    "save_profile",
    "PerformanceModel",
    "SyncOverheadModel",
    "ApplicationProfile",
    "BenchmarkSpec",
    "OperatingPoint",
    "build_profile",
    "BENCHMARKS",
    "COMMUNICATION_BENCHMARKS",
    "COMPUTE_BENCHMARKS",
    "benchmark",
    "ApplicationArrival",
    "WorkloadType",
    "generate_workload",
]
