"""Workload sequence generation for the paper's experiments.

Section 5.1: three sequences of up to 20 applications, picked randomly
from the communication-intensive group, the compute-intensive group, or
both (mixed), at inter-application arrival intervals of 0.2 s, 0.1 s and
0.05 s.  Each application carries a performance deadline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.profiles import ApplicationProfile
from repro.apps.suite import (
    COMMUNICATION_BENCHMARKS,
    COMPUTE_BENCHMARKS,
    ProfileLibrary,
)


class WorkloadType(enum.Enum):
    """Which benchmark group a sequence draws from."""

    COMPUTE = "compute"
    COMMUNICATION = "communication"
    MIXED = "mixed"

    def pool(self) -> Tuple[str, ...]:
        if self is WorkloadType.COMPUTE:
            return COMPUTE_BENCHMARKS
        if self is WorkloadType.COMMUNICATION:
            return COMMUNICATION_BENCHMARKS
        return tuple(dict.fromkeys(COMPUTE_BENCHMARKS + COMMUNICATION_BENCHMARKS))


@dataclass(frozen=True)
class ApplicationArrival:
    """One application instance arriving at the CMP.

    Attributes:
        app_id: Unique index within the sequence.
        profile: The application's offline profile.
        arrival_s: Arrival time in seconds.
        deadline_s: Absolute completion deadline in seconds (relative
            deadline = ``deadline_s - arrival_s``).
    """

    app_id: int
    profile: ApplicationProfile
    arrival_s: float
    deadline_s: float

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if self.deadline_s <= self.arrival_s:
            raise ValueError("deadline must be after arrival")

    @property
    def relative_deadline_s(self) -> float:
        return self.deadline_s - self.arrival_s


def generate_workload(
    workload_type: WorkloadType,
    arrival_interval_s: float,
    n_apps: int = 20,
    seed: int = 0,
    library: Optional[ProfileLibrary] = None,
    deadline_slack_range: Tuple[float, float] = (3.0, 6.0),
    arrival_process: str = "periodic",
) -> List[ApplicationArrival]:
    """Generate one application sequence.

    Applications arrive at fixed intervals (the paper's "arrival rates" of
    0.2 s / 0.1 s / 0.05 s are inter-arrival intervals).  Each deadline is
    the fastest achievable WCET (highest Vdd, best DoP) times a slack
    factor drawn uniformly from ``deadline_slack_range`` - tight enough
    that the lowest Vdd cannot always be used, loose enough that PARM can
    usually trade Vdd for DoP.

    Args:
        workload_type: Benchmark group to draw from.
        arrival_interval_s: Mean time between consecutive arrivals.
        n_apps: Number of applications in the sequence.
        seed: RNG seed (sequences are fully deterministic).
        library: Shared profile library; built on demand if omitted.
        deadline_slack_range: Uniform range of the deadline slack factor.
        arrival_process: ``"periodic"`` (the paper's fixed intervals) or
            ``"poisson"`` (exponential inter-arrival times with the same
            mean - an extension for burstier arrival patterns).

    Returns:
        Arrivals sorted by arrival time.
    """
    if arrival_interval_s <= 0:
        raise ValueError("arrival_interval_s must be positive")
    if n_apps < 1:
        raise ValueError("n_apps must be at least 1")
    if arrival_process not in ("periodic", "poisson"):
        raise ValueError(
            f"unknown arrival process {arrival_process!r}; "
            "use 'periodic' or 'poisson'"
        )
    lo, hi = deadline_slack_range
    if not 1.0 <= lo <= hi:
        raise ValueError("deadline slack factors must be >= 1 and ordered")

    library = library or ProfileLibrary()
    rng = np.random.default_rng(seed)
    pool = workload_type.pool()
    arrivals: List[ApplicationArrival] = []
    next_arrival = 0.0
    for i in range(n_apps):
        name = str(rng.choice(pool))
        profile = library.get(name)
        if arrival_process == "periodic":
            arrival = i * arrival_interval_s
        else:
            arrival = next_arrival
            next_arrival += float(rng.exponential(arrival_interval_s))
        best_wcet = min(
            profile.wcet_s(max(profile.supported_vdds), dop)
            for dop in profile.supported_dops
        )
        slack = float(rng.uniform(lo, hi))
        arrivals.append(
            ApplicationArrival(
                app_id=i,
                profile=profile,
                arrival_s=arrival,
                deadline_s=arrival + slack * best_wcet,
            )
        )
    return arrivals
