"""Offline application profiles: the data PARM consumes at runtime.

The paper (Fig. 4) feeds PARM with offline profiling data collected on
GEM5/McPAT: per-application statistics on switching activity, power
consumption and NoC communication at every (Vdd, DoP) operating point.
:func:`build_profile` produces the same artefact from a
:class:`BenchmarkSpec`:

* a DoP-sized application graph per supported DoP (deterministic per
  benchmark seed), with per-task activity bins/factors and communication
  volumes;
* a WCET estimate per (Vdd, DoP) from the EDF-schedule performance model;
* power-consumption estimates per (Vdd, DoP) from the chip power model.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.apps.graph import ApplicationGraph
from repro.apps.performance import PerformanceModel
from repro.chip.power import PowerModel
from repro.chip.technology import TechnologyNode, technology

#: Payload bytes carried by one NoC flit (used to convert APG volumes to
#: router flit rates).
FLIT_PAYLOAD_BYTES = 4.0

#: DoP values supported by every profile (multiples of 4, up to 32 - the
#: paper saw diminishing returns beyond 32 threads).
SUPPORTED_DOPS = (4, 8, 12, 16, 20, 24, 28, 32)


class AppKind(enum.Enum):
    """Workload class of a benchmark (paper Section 5.1)."""

    COMPUTE = "compute"
    COMMUNICATION = "communication"


@dataclass(frozen=True)
class BenchmarkSpec:
    """Static description of one benchmark application.

    Attributes:
        name: Benchmark name (e.g. ``"fft"``).
        kind: Compute- or communication-intensive class.
        work_gcycles: Total computational work in giga-cycles.
        serial_fraction: Amdahl serial fraction (work of the main thread
            that does not parallelise).
        high_fraction: Fraction of threads with High switching activity.
        total_comm_mb: Total data the application moves over the NoC in
            one execution, in megabytes.  The problem size fixes this
            total; higher DoP partitions it over more edges, so per-edge
            volumes shrink with parallelism.
        seed: Seed for the benchmark's deterministic graph generation.
    """

    name: str
    kind: AppKind
    work_gcycles: float
    serial_fraction: float
    high_fraction: float
    total_comm_mb: float
    seed: int

    def __post_init__(self) -> None:
        if self.work_gcycles <= 0:
            raise ValueError("work_gcycles must be positive")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError("serial_fraction must be in [0, 1)")
        if not 0.0 <= self.high_fraction <= 1.0:
            raise ValueError("high_fraction must be in [0, 1]")
        if self.total_comm_mb <= 0:
            raise ValueError("total_comm_mb must be positive")


@dataclass(frozen=True)
class OperatingPoint:
    """Profiled statistics of one (Vdd, DoP) combination.

    Attributes:
        vdd: Supply voltage in volts.
        dop: Degree of parallelism (thread count).
        wcet_s: Estimated worst-case execution time in seconds.
        power_w: Estimated total power draw (cores + routers) in watts.
        avg_router_flits_per_cycle: Mean router injection+ejection rate
            per occupied tile.
    """

    vdd: float
    dop: int
    wcet_s: float
    power_w: float
    avg_router_flits_per_cycle: float


class ApplicationProfile:
    """Offline profile of one application across operating points."""

    def __init__(
        self,
        spec: BenchmarkSpec,
        graphs: Dict[int, ApplicationGraph],
        points: Dict[Tuple[float, int], OperatingPoint],
    ):
        self._spec = spec
        self._graphs = graphs
        self._points = points

    @property
    def spec(self) -> BenchmarkSpec:
        return self._spec

    @property
    def name(self) -> str:
        return self._spec.name

    @property
    def kind(self) -> AppKind:
        return self._spec.kind

    @property
    def supported_dops(self) -> Tuple[int, ...]:
        return tuple(sorted(self._graphs))

    @property
    def supported_vdds(self) -> Tuple[float, ...]:
        return tuple(sorted({v for v, _ in self._points}))

    def graph(self, dop: int) -> ApplicationGraph:
        """The APG for a DoP (threads = ``dop``)."""
        try:
            return self._graphs[dop]
        except KeyError:
            raise KeyError(
                f"{self.name} has no graph for DoP {dop}; "
                f"supported: {self.supported_dops}"
            )

    def point(self, vdd: float, dop: int) -> OperatingPoint:
        """Profiled statistics at one operating point."""
        key = (round(vdd, 9), dop)
        try:
            return self._points[key]
        except KeyError:
            raise KeyError(
                f"{self.name} has no profile at Vdd={vdd}, DoP={dop}"
            )

    def wcet_s(self, vdd: float, dop: int) -> float:
        return self.point(vdd, dop).wcet_s

    def power_w(self, vdd: float, dop: int) -> float:
        return self.point(vdd, dop).power_w

    def task_router_flits_per_cycle(
        self, vdd: float, dop: int, task_id: int
    ) -> float:
        """Router injection+ejection rate at a task's tile (flits/cycle)."""
        point = self.point(vdd, dop)
        graph = self.graph(dop)
        bytes_at_task = sum(
            v
            for s, d, v in graph.edges()
            if s == task_id or d == task_id
        )
        cycles = point.wcet_s * _frequency_of(vdd, self._tech_cache)
        if cycles <= 0:
            return 0.0
        return (bytes_at_task / FLIT_PAYLOAD_BYTES) / cycles

    # Set by build_profile; kept on the instance so router-rate queries
    # do not need the chip passed around.
    _tech_cache: TechnologyNode = None


def _frequency_of(vdd: float, tech: TechnologyNode) -> float:
    from repro.chip.dvfs import alpha_power_frequency

    return alpha_power_frequency(vdd, tech)


def _layer_sizes(dop: int) -> Sequence[int]:
    """Fork-join-ish layering: 1 source, parallel middle layers, 1 sink."""
    if dop < 4:
        raise ValueError("dop must be at least 4")
    middle = dop - 2
    width = max(2, dop // 4)
    layers = []
    remaining = middle
    while remaining > 0:
        take = min(width, remaining)
        layers.append(take)
        remaining -= take
    return [1] + layers + [1]


def _build_graph(spec: BenchmarkSpec, dop: int) -> ApplicationGraph:
    # Legacy pinned stream: every committed profile-derived expected
    # output was generated from this exact (seed * 1000 + dop) stream,
    # so migrating it to derive_seed would invalidate all of them;
    # dop < 1000 keeps the streams collision-free within a spec.
    # parmlint: ok[seed-provenance] - legacy pinned profile stream
    rng = np.random.default_rng(spec.seed * 1000 + dop)
    total_cycles = spec.work_gcycles * 1e9
    serial_cycles = spec.serial_fraction * total_cycles
    parallel_cycles = total_cycles - serial_cycles
    per_task = parallel_cycles / dop
    graph = ApplicationGraph.layered(
        layer_sizes=list(_layer_sizes(dop)),
        rng=rng,
        work_cycles_range=(per_task * 0.8, per_task * 1.2),
        high_fraction=spec.high_fraction,
        volume_range=(0.7, 1.3),  # relative weights, normalised below
    )
    # Normalise edge volumes so the whole-application total matches the
    # problem-size-fixed communication volume.
    total = graph.total_volume_bytes()
    if total > 0:
        graph.scale_volumes(spec.total_comm_mb * 1e6 / total)
    # The source task additionally carries the serial work.
    source = graph.sources()[0]
    node = graph.task(source)
    graph.replace_task(
        dataclasses.replace(node, work_cycles=node.work_cycles + serial_cycles)
    )
    return graph


def build_profile(
    spec: BenchmarkSpec,
    tech: Optional[TechnologyNode] = None,
    vdds: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8),
    dops: Sequence[int] = SUPPORTED_DOPS,
    performance: Optional[PerformanceModel] = None,
) -> ApplicationProfile:
    """Run "offline profiling" for a benchmark.

    Args:
        spec: The benchmark description.
        tech: Technology node (default 7 nm).
        vdds: Supply voltages to profile.
        dops: DoP values to profile (must be multiples of 4, the power
            domain size).
        performance: WCET model; defaults to one over the node's power
            model.

    Returns:
        The populated :class:`ApplicationProfile`.
    """
    tech = tech or technology("7nm")
    power_model = PowerModel(tech)
    performance = performance or PerformanceModel(power_model)
    if any(d % 4 or d < 4 for d in dops):
        raise ValueError("DoP values must be positive multiples of 4")

    graphs = {dop: _build_graph(spec, dop) for dop in dops}
    points: Dict[Tuple[float, int], OperatingPoint] = {}
    for dop, graph in graphs.items():
        for vdd in vdds:
            wcet = performance.estimate_wcet_s(graph, vdd)
            freq = power_model.frequency(vdd)
            cycles = wcet * freq
            total_power = 0.0
            total_flits = 0.0
            for task in graph.tasks():
                bytes_at_task = sum(
                    v
                    for s, d, v in graph.edges()
                    if s == task.task_id or d == task.task_id
                )
                # Injection/ejection plus through-traffic: flits visit
                # ~default_hops routers on their way across the region.
                flits = (
                    (bytes_at_task / FLIT_PAYLOAD_BYTES)
                    * performance.default_hops
                    / cycles
                    if cycles > 0
                    else 0.0
                )
                tile = power_model.tile_power(task.activity_factor, flits, vdd)
                total_power += tile.total
                total_flits += flits
            points[(round(vdd, 9), dop)] = OperatingPoint(
                vdd=vdd,
                dop=dop,
                wcet_s=wcet,
                power_w=total_power,
                avg_router_flits_per_cycle=total_flits / dop,
            )
    profile = ApplicationProfile(spec, graphs, points)
    profile._tech_cache = tech
    return profile
