"""Content-hashed on-disk cache for calibration artifacts.

Fitting the fast-PSN :class:`~repro.pdn.fast.KernelLadder` pair against
the MNA transient solver (:func:`repro.pdn.calibrate.fit_kernels`) runs
hundreds of transient solves and dominates any workflow that
recalibrates - sweeps over technology nodes, solver comparisons, CI
validation.  This module memoises the *fit result* on disk, keyed by a
SHA-256 over everything that can change it:

* the full technology-node parameter set (every electrical field);
* :data:`repro.pdn.circuit.SOLVER_VERSION` - bumped whenever the MNA
  solver's numerics change, so stale fits can never survive a solver
  change;
* the sampling configuration (``vdds``, ``n_random``, ``seed``,
  ``window_s``, ``dt_s``) and the ``kappa2`` grid;
* this cache's own schema version.

A hit deserialises the fitted ladders and skips the transient solves
entirely; the restored :class:`~repro.pdn.calibrate.CalibrationResult`
carries ``samples=()`` (the corpus is deliberately not persisted - it
is large and only the fit is reused).  Cache files are written through
:func:`repro.runtime.checkpoint.save_payload` (checksummed, atomically
replaced), and an unreadable or corrupt entry is treated as a miss and
refitted, never trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, Optional, Sequence

from repro.chip.technology import TechnologyNode, technology
from repro.harness.errors import CheckpointCorrupt
from repro.pdn.circuit import SOLVER_VERSION
from repro.pdn.fast import KernelLadder, PsnKernel
from repro.pdn.waveforms import ActivityBin
from repro.runtime.checkpoint import load_payload, save_payload

#: Schema name / version of one cached calibration entry.
CACHE_SCHEMA = "parm-calibration-cache"
CACHE_VERSION = 1

#: Default cache directory (override per call or with REPRO_CACHE_DIR).
DEFAULT_CACHE_DIR = os.path.join(".parm-cache", "calibration")

#: ``generate_samples`` defaults, frozen into the key so that calling
#: with explicit defaults and calling with no overrides hash the same.
_SAMPLE_DEFAULTS: Dict[str, Any] = {
    "vdds": (0.4, 0.6, 0.8),
    "n_random": 8,
    "seed": 2018,
    "window_s": 200e-9,
    "dt_s": 50e-12,
}

_BIN_TAG = {ActivityBin.HIGH: "high", ActivityBin.LOW: "low"}
_TAG_BIN = {tag: bin_ for bin_, tag in _BIN_TAG.items()}


def calibration_key(
    tech: TechnologyNode,
    kappa2_grid: Sequence[float],
    sample_kwargs: Optional[Dict[str, Any]] = None,
) -> str:
    """Content hash identifying one calibration configuration."""
    resolved = dict(_SAMPLE_DEFAULTS)
    resolved.update(sample_kwargs or {})
    unknown = set(resolved) - set(_SAMPLE_DEFAULTS)
    if unknown:
        raise ValueError(
            f"unknown sample kwargs for calibration key: {sorted(unknown)}"
        )
    spec = {
        "schema": CACHE_SCHEMA,
        "cache_version": CACHE_VERSION,
        "solver_version": SOLVER_VERSION,
        "tech": {
            k: (v if isinstance(v, str) else float(v))
            for k, v in dataclasses.asdict(tech).items()
        },
        "kappa2_grid": [float(k) for k in kappa2_grid],
        "samples": {
            "vdds": [float(v) for v in resolved["vdds"]],
            "n_random": int(resolved["n_random"]),
            "seed": int(resolved["seed"]),
            "window_s": float(resolved["window_s"]),
            "dt_s": float(resolved["dt_s"]),
        },
    }
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


def _kernel_to_json(kernel: PsnKernel) -> Dict[str, Any]:
    return {
        "z_own": {_BIN_TAG[b]: float(z) for b, z in kernel.z_own.items()},
        "z_cross": {
            f"{_BIN_TAG[a]}-{_BIN_TAG[b]}": float(z)
            for (a, b), z in kernel.z_cross.items()
        },
        "z_own_router": float(kernel.z_own_router),
        "z_cross_router": float(kernel.z_cross_router),
        "kappa2": float(kernel.kappa2),
    }


def _kernel_from_json(record: Dict[str, Any]) -> PsnKernel:
    z_cross = {}
    for pair, z in record["z_cross"].items():
        a, b = pair.split("-")
        z_cross[(_TAG_BIN[a], _TAG_BIN[b])] = float(z)
    return PsnKernel(
        z_own={_TAG_BIN[t]: float(z) for t, z in record["z_own"].items()},
        z_cross=z_cross,
        z_own_router=float(record["z_own_router"]),
        z_cross_router=float(record["z_cross_router"]),
        kappa2=float(record["kappa2"]),
    )


def _ladder_to_json(ladder: KernelLadder) -> Dict[str, Any]:
    # JSON keys must be strings; repr() round-trips floats exactly.
    return {
        repr(float(vdd)): _kernel_to_json(kernel)
        for vdd, kernel in ladder.kernels.items()
    }


def _ladder_from_json(record: Dict[str, Any]) -> Dict[float, PsnKernel]:
    return {
        float(vdd): _kernel_from_json(kernel)
        for vdd, kernel in record.items()
    }


def cache_path(cache_dir: str, key: str) -> str:
    return os.path.join(cache_dir, f"fit_{key}.json")


def cached_fit_kernels(
    tech: Optional[TechnologyNode] = None,
    cache_dir: Optional[str] = None,
    kappa2_grid: Sequence[float] = (0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 1.0),
    **sample_kwargs: Any,
):
    """:func:`~repro.pdn.calibrate.fit_kernels`, memoised on disk.

    Args:
        tech: Technology node (defaults to 7 nm, like ``fit_kernels``).
        cache_dir: Cache directory; defaults to ``$REPRO_CACHE_DIR`` or
            :data:`DEFAULT_CACHE_DIR`.
        kappa2_grid: 2-hop coupling grid, part of the cache key.
        **sample_kwargs: Forwarded to
            :func:`~repro.pdn.calibrate.generate_samples`; part of the
            cache key.

    Returns:
        A :class:`~repro.pdn.calibrate.CalibrationResult`.  On a hit
        ``result.samples`` is empty (the corpus is not persisted); the
        fitted ladders and RMS diagnostics are bit-identical to the
        stored fit.
    """
    from repro.pdn.calibrate import CalibrationResult, fit_kernels

    tech = tech or technology("7nm")
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    key = calibration_key(tech, kappa2_grid, sample_kwargs)
    path = cache_path(cache_dir, key)

    if os.path.exists(path):
        try:
            payload = load_payload(
                path, schema=CACHE_SCHEMA, version=CACHE_VERSION
            )
            ladders = KernelLadder(
                _ladder_from_json(payload["peak_kernels"])
            ), KernelLadder(_ladder_from_json(payload["avg_kernels"]))
            return CalibrationResult(
                peak_kernels=ladders[0],
                avg_kernels=ladders[1],
                peak_rms_error_pct=float(payload["peak_rms_error_pct"]),
                avg_rms_error_pct=float(payload["avg_rms_error_pct"]),
                samples=(),
            )
        except (  # parmlint: ok[silent-except] - corrupt entry == miss
            CheckpointCorrupt, KeyError, TypeError, ValueError,
        ):
            # A damaged or stale entry is a miss, never an error: fall
            # through to a fresh fit which overwrites it atomically.
            pass

    result = fit_kernels(
        tech=tech, kappa2_grid=kappa2_grid, **sample_kwargs
    )
    os.makedirs(cache_dir, exist_ok=True)
    save_payload(
        path,
        {
            "key": key,
            "solver_version": SOLVER_VERSION,
            "tech": tech.name,
            "peak_kernels": _ladder_to_json(result.peak_kernels),
            "avg_kernels": _ladder_to_json(result.avg_kernels),
            "peak_rms_error_pct": float(result.peak_rms_error_pct),
            "avg_rms_error_pct": float(result.avg_rms_error_pct),
        },
        schema=CACHE_SCHEMA,
        version=CACHE_VERSION,
    )
    return result
