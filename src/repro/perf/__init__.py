"""Performance layer: parallel execution, solve caching, benchmarks.

Three pillars, all built so that *faster never changes the answer*:

* :mod:`repro.perf.parallel` - a deterministic spawn-context process
  pool that fans :class:`~repro.harness.supervisor.CampaignCell` runs
  across workers.  Cell outcomes depend only on the cell spec and
  policy, so results merged in campaign order are byte-identical to a
  serial run.
* :mod:`repro.perf.cache` - a content-hashed on-disk cache for
  calibration artifacts (fitted :class:`~repro.pdn.fast.KernelLadder`
  pairs), keyed by technology parameters, solver version and sampling
  configuration so any input change invalidates naturally.
* :mod:`repro.perf.bench` - the pinned microbenchmark suite behind
  ``python -m repro bench`` (see ``docs/performance.md``).

Everything in this package is opt-in: the default serial code paths do
not import it, and it imports the rest of the code base one-way.
"""

__all__ = ["bench", "cache", "parallel"]
