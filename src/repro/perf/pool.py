"""Process-lifetime warm worker pool with shared read-only numpy state.

:mod:`repro.perf.parallel` used to build a throwaway spawn-context pool
per ``run_cells``/``map_tasks`` call, so every batch re-paid interpreter
spawn, imports, and the chip / profile-library / route-table / solver
construction in every worker - the measured "parallel" paths lost to
serial.  This module makes worker warm-up a *process-lifetime* cost:

* **One long-lived pool.**  :func:`lease_pool` lazily creates a single
  ``spawn``-context ``ProcessPoolExecutor`` and hands out leases to it.
  The pool is rebuilt only when the configuration fingerprint -
  ``(workers, warm spec, policy, cell_runner)`` - changes, or after a
  ``BrokenProcessPool`` (a lease calls :meth:`_PoolLease.mark_broken`).
  A caller that needs a different fingerprint while other leases are
  still active gets a private *ephemeral* pool instead, so no call can
  reconfigure (and thereby cancel) another call's workers.
* **One warm-up per worker.**  :func:`_warm_worker_init` runs once per
  worker process and builds the expensive read-only world exactly once:
  chip description, ``ProfileLibrary``, fast-PSN kernel tables,
  per-destination route tables, mesh topology lookups, and the primed
  (LU-factorised) PDN transient plan.  Tasks then ship only small cell
  descriptors.
* **Shared read-only arrays.**  The large lookup tables are published
  by the parent into ``multiprocessing.shared_memory`` segments
  (:func:`publish_arrays`) and attached read-only by every worker
  (:func:`attach_arrays`): one physical copy serves all workers.  The
  adopting classes declare the arrays ``__shared_readonly__`` so
  parmlint's shared-readonly rule enforces the no-write contract.

Cleanup is owned by the parent: :func:`shutdown_pool` (also registered
``atexit``) shuts the executor down and unlinks every published
segment, and the process tree's shared
``multiprocessing.resource_tracker`` reaps the segments even if the
parent is SIGKILLed mid-batch (``tests/perf/test_pool.py`` asserts
both no-leak properties).

Determinism is unchanged by any of this: the shared arrays hold exactly
the values each worker would have computed locally, the warm runner is
byte-equivalent to the lazily built default runner, and merge order is
still owned by the callers in :mod:`repro.perf.parallel`.
"""

from __future__ import annotations

import atexit
import hashlib
import importlib
import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.harness.errors import ConfigError, WorkerCrash

#: Start method of the warm pool - same contract as
#: :data:`repro.perf.parallel.START_METHOD` (fresh interpreters, no
#: inherited heap), restated here because this module must not import
#: :mod:`repro.perf.parallel` at module level (it imports us).
_START_METHOD = "spawn"

#: Prefix of every shared-memory segment this module publishes; the
#: leak tests glob ``/dev/shm`` for it.
SEGMENT_PREFIX = "parm"

#: Consecutive pool rebuilds :mod:`repro.perf.parallel` tolerates per
#: ``run_cells`` call before classifying the failure (see its use).
MAX_POOL_REBUILDS = 2


# ---------------------------------------------------------------------------
# Shared-memory publish / attach
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedArraySpec:
    """Address of one published array: everything a worker needs to attach."""

    key: str
    segment: str
    shape: Tuple[int, ...]
    dtype: str


class SharedArrayBundle:
    """Parent-side owner of a set of published shared-memory segments.

    Holds the ``SharedMemory`` handles open (closing them would
    invalidate the parent's own views) until :meth:`unlink`, which is
    idempotent and tolerates segments already removed by the resource
    tracker.
    """

    def __init__(
        self,
        entries: List[Tuple[SharedArraySpec, shared_memory.SharedMemory]],
    ) -> None:
        self._entries = entries
        self._unlinked = False

    def specs(self) -> Tuple[SharedArraySpec, ...]:
        return tuple(spec for spec, _ in self._entries)

    @property
    def segments(self) -> Tuple[str, ...]:
        return tuple(spec.segment for spec, _ in self._entries)

    def unlink(self) -> None:
        """Close and remove every segment (idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        for _, shm in self._entries:
            try:
                shm.close()
                shm.unlink()
            # Already reaped (e.g. by the resource tracker after a
            # worker-side crash); gone is the goal state.
            except FileNotFoundError:  # parmlint: ok[silent-except]
                pass


#: Monotonic counter making segment names unique within this process.
#: Guarded by its own lock: publishers may run while the pool lock is
#: held (default_warm_spec publishes under _LOCK).
_SEGMENT_SEQ = 0
_SEGMENT_LOCK = threading.Lock()



def publish_arrays(
    arrays: Mapping[str, np.ndarray], prefix: str = SEGMENT_PREFIX
) -> SharedArrayBundle:
    """Copy ``arrays`` into shared-memory segments (parent side).

    Args:
        arrays: Key -> array.  Arrays must be non-empty; each is copied
            once into a fresh segment (C-contiguous).
        prefix: Segment-name prefix (tests use a private one so leak
            assertions cannot collide with a concurrently warm pool).

    Returns:
        A :class:`SharedArrayBundle` owning the segments; ship its
        :meth:`~SharedArrayBundle.specs` to workers and call
        :meth:`~SharedArrayBundle.unlink` (or :func:`shutdown_pool`)
        when done.
    """
    global _SEGMENT_SEQ
    entries: List[Tuple[SharedArraySpec, shared_memory.SharedMemory]] = []
    try:
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            if array.nbytes == 0:
                raise ConfigError(
                    "cannot publish an empty array", key=key
                )
            with _SEGMENT_LOCK:
                _SEGMENT_SEQ += 1
                seq = _SEGMENT_SEQ
            digest = hashlib.sha256(key.encode()).hexdigest()[:8]
            name = f"{prefix}-{os.getpid()}-{seq}-{digest}"
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=array.nbytes
            )
            view = np.ndarray(array.shape, array.dtype, buffer=shm.buf)
            view[...] = array
            entries.append(
                (
                    SharedArraySpec(
                        key=key,
                        segment=name,
                        shape=tuple(array.shape),
                        dtype=str(array.dtype),
                    ),
                    shm,
                )
            )
    # Publish-or-nothing: a failure mid-publish unlinks the segments
    # created so far, then re-raises unchanged.
    except BaseException:  # parmlint: ok[broad-except]
        SharedArrayBundle(entries).unlink()
        raise
    return SharedArrayBundle(entries)


class AttachedArrays:
    """Worker-side view of published arrays: read-only, handles held open."""

    def __init__(
        self,
        arrays: Dict[str, np.ndarray],
        handles: List[shared_memory.SharedMemory],
    ) -> None:
        self.arrays = arrays
        self._handles = handles

    def close(self) -> None:
        """Drop the mappings (views become invalid; parent keeps the files)."""
        self.arrays = {}
        for shm in self._handles:
            shm.close()
        self._handles = []


def attach_arrays(specs: Tuple[SharedArraySpec, ...]) -> AttachedArrays:
    """Attach published segments read-only (worker side).

    A vanished segment (unlinked before the worker attached) surfaces
    as a taxonomy :class:`~repro.harness.errors.WorkerCrash` naming the
    segment and key, never a bare ``FileNotFoundError``.
    """
    arrays: Dict[str, np.ndarray] = {}
    handles: List[shared_memory.SharedMemory] = []
    for spec in specs:
        try:
            shm = shared_memory.SharedMemory(name=spec.segment)
        except FileNotFoundError as exc:
            for held in handles:
                held.close()
            raise WorkerCrash(
                "shared-memory segment vanished before the worker could "
                "attach (published world unlinked too early?)",
                segment=spec.segment,
                key=spec.key,
                error_type=type(exc).__name__,
                error=str(exc),
            ) from exc
        # Python 3.x registers *attachments* with the resource tracker
        # too.  Spawn workers inherit the parent's tracker process, and
        # the tracker deduplicates names, so the extra registration is
        # a no-op there - and deliberately left in place: it is what
        # lets the tracker reap the segments of a SIGKILLed parent.
        handles.append(shm)
        view = np.ndarray(spec.shape, np.dtype(spec.dtype), buffer=shm.buf)
        view.flags.writeable = False
        arrays[spec.key] = view
    return AttachedArrays(arrays, handles)


# ---------------------------------------------------------------------------
# The warm spec: what the parent publishes, what workers rebuild
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WarmSpec:
    """Picklable description of the warm per-worker world.

    Everything here is either a small literal or a
    :class:`SharedArraySpec` address, so shipping the spec to a spawn
    worker costs bytes, not rebuild time.
    """

    meshes: Tuple[Tuple[int, int], ...]
    route_policies: Tuple[str, ...]
    tech_name: str
    window_s: float
    dt_s: float
    array_specs: Tuple[SharedArraySpec, ...]


#: Meshes whose topology tables are published by default: the routing
#: sweep's 8x8 and the paper evaluation platform's 10x6.
_DEFAULT_MESHES: Tuple[Tuple[int, int], ...] = ((8, 8), (10, 6))

#: Context-free policies whose full route tables are published (the
#: adaptive policies - PANR, ICON - have no table by construction).
_DEFAULT_ROUTE_POLICIES: Tuple[str, ...] = ("xy", "odd-even")

_DEFAULT_TECH = "7nm"


def _topology_keys(width: int, height: int) -> Tuple[str, str]:
    base = f"topology/{width}x{height}"
    return f"{base}/hops", f"{base}/neighbor_codes"


def _route_key(width: int, height: int, policy: str) -> str:
    return f"route/{width}x{height}/{policy}"


def _kernel_key(ladder: str, level: float, field_name: str) -> str:
    return f"kernel/{ladder}/{level!r}/{field_name}"


def _kernel_ladders():
    from repro.pdn.fast import _DEFAULT_AVG, _DEFAULT_PEAK

    return (("peak", _DEFAULT_PEAK), ("avg", _DEFAULT_AVG))


def _build_shared_arrays(
    meshes: Tuple[Tuple[int, int], ...],
    route_policies: Tuple[str, ...],
) -> Dict[str, np.ndarray]:
    """Compute every array the default warm world shares (parent side)."""
    from repro.chip.mesh import MeshGeometry
    from repro.noc.engine import build_route_table
    from repro.noc.routing import make_routing
    from repro.noc.topology import MeshTopology

    arrays: Dict[str, np.ndarray] = {}
    for width, height in meshes:
        mesh = MeshGeometry(width, height)
        topo = MeshTopology(mesh)
        hops_key, codes_key = _topology_keys(width, height)
        arrays[hops_key] = topo.hops_table()
        arrays[codes_key] = topo.neighbor_codes()
        for policy in route_policies:
            arrays[_route_key(width, height, policy)] = build_route_table(
                mesh, make_routing(policy), topology=topo
            )
    for tag, ladder in _kernel_ladders():
        for level, kernel in ladder.kernels.items():
            tables = kernel.tables()
            arrays[_kernel_key(tag, level, "z_own")] = tables.z_own
            arrays[_kernel_key(tag, level, "z_cross")] = tables.z_cross
            arrays[_kernel_key(tag, level, "kappa")] = tables.kappa
    return arrays


_DEFAULT_SPEC: Optional[WarmSpec] = None
_DEFAULT_BUNDLE: Optional[SharedArrayBundle] = None


def default_warm_spec() -> WarmSpec:
    """The default warm spec, publishing its shared world on first use."""
    global _DEFAULT_SPEC, _DEFAULT_BUNDLE
    with _LOCK:
        if _DEFAULT_SPEC is not None:
            return _DEFAULT_SPEC
    arrays = _build_shared_arrays(_DEFAULT_MESHES, _DEFAULT_ROUTE_POLICIES)
    with _LOCK:
        if _DEFAULT_SPEC is None:
            bundle = publish_arrays(arrays)
            _DEFAULT_BUNDLE = bundle
            _DEFAULT_SPEC = WarmSpec(
                meshes=_DEFAULT_MESHES,
                route_policies=_DEFAULT_ROUTE_POLICIES,
                tech_name=_DEFAULT_TECH,
                window_s=300e-9,
                dt_s=50e-12,
                array_specs=bundle.specs(),
            )
        return _DEFAULT_SPEC


class _WarmWorld:
    """Per-worker warm state, built once by :func:`_warm_worker_init`.

    Everything expensive and read-only lives here: shared-memory-backed
    topology / route / kernel tables, the primed transient analyser,
    and the chip + profile library the default cell runner shares.
    """

    def __init__(self, spec: WarmSpec, attached: AttachedArrays) -> None:
        from repro.apps.suite import ProfileLibrary
        from repro.chip.cmp import default_chip
        from repro.chip.mesh import MeshGeometry
        from repro.chip.technology import technology
        from repro.noc.topology import MeshTopology, TopologyTables
        from repro.pdn.fast import _KernelTables
        from repro.pdn.transient import PsnTransientAnalysis

        self.spec = spec
        self.attached = attached
        self.init_seconds = 0.0
        arrays = attached.arrays
        self._topologies: Dict[Tuple[int, int], Any] = {}
        self._route_tables: Dict[Tuple[int, int, str], np.ndarray] = {}
        for width, height in spec.meshes:
            hops_key, codes_key = _topology_keys(width, height)
            self._topologies[(width, height)] = MeshTopology(
                MeshGeometry(width, height),
                shared_tables=TopologyTables(
                    hops=arrays[hops_key],
                    neighbor_codes=arrays[codes_key],
                ),
            )
            for policy in spec.route_policies:
                self._route_tables[(width, height, policy)] = arrays[
                    _route_key(width, height, policy)
                ]
        # Install the shared kernel matrices into the default ladders'
        # lazy table slot: the values are identical to what tables()
        # would compute, only the backing storage is shared.
        for tag, ladder in _kernel_ladders():
            for level, kernel in ladder.kernels.items():
                tables = _KernelTables(
                    z_own=arrays[_kernel_key(tag, level, "z_own")],
                    z_cross=arrays[_kernel_key(tag, level, "z_cross")],
                    kappa=arrays[_kernel_key(tag, level, "kappa")],
                )
                object.__setattr__(kernel, "_tables", tables)
        self.transient = PsnTransientAnalysis(
            technology(spec.tech_name),
            window_s=spec.window_s,
            dt_s=spec.dt_s,
        )
        self.transient.prime()
        self.chip = default_chip()
        self.library = ProfileLibrary()

    def topology(self, width: int, height: int):
        """Shared-table topology for a mesh size, or None if unpublished."""
        return self._topologies.get((width, height))

    def route_table(
        self, width: int, height: int, policy: str
    ) -> Optional[np.ndarray]:
        """Prebuilt route table for a context-free policy, or None."""
        return self._route_tables.get((width, height, policy))

    def cell_runner(self):
        """A default cell runner over this world's shared chip/library."""
        from repro.harness.supervisor import default_cell_runner

        return default_cell_runner(chip=self.chip, library=self.library)


#: This worker's warm world; None in the parent (and in workers whose
#: initializer has not run, which the pool guarantees never happens).
_WORLD: Optional[_WarmWorld] = None


def warm_world() -> Optional[_WarmWorld]:
    """The calling process's warm world (None outside warm pool workers)."""
    return _WORLD


def _warm_worker_init(
    spec: WarmSpec,
    policy: Any = None,
    cell_runner: Any = None,
) -> None:
    """Pool initializer: build the read-only world once per worker.

    With a ``policy`` the worker additionally gets the
    :class:`~repro.harness.supervisor.CellExecutor` that ``run_cells``
    tasks use, pre-warmed with a runner over the world's shared chip and
    profile library (byte-equivalent to the lazily built default).
    """
    global _WORLD
    # Wall-clock reads here time the once-per-worker initialisation for
    # the bench suite's init_seconds entry; no task result depends on
    # them.
    # parmlint: ok[wall-clock, worker-safety]
    start = time.perf_counter()
    attached = attach_arrays(spec.array_specs)
    world = _WarmWorld(spec, attached)
    if policy is not None:
        # importlib indirection: repro.perf.parallel imports this
        # module at top level, so the reverse edge lives only inside
        # the worker initializer.
        parallel = importlib.import_module("repro.perf.parallel")
        parallel._worker_init(policy, cell_runner)
        if parallel._EXECUTOR is not None and cell_runner is None:
            parallel._EXECUTOR.prewarm(world.cell_runner())
    # parmlint: ok[wall-clock, worker-safety]
    world.init_seconds = time.perf_counter() - start
    # Once-per-worker slot, written before any task runs.
    _WORLD = world  # parmlint: ok[worker-safety]


def _probe_worker(token: int) -> Tuple[int, float]:
    """Bench/warm-up task: (worker id, init seconds) of this process.

    ``token`` distinguishes the submissions so a round of probes cannot
    be deduplicated; the returned id is only used to group probe
    results per worker, never recorded in outputs.
    """
    world = _WORLD
    return os.getpid(), world.init_seconds if world is not None else -1.0


# ---------------------------------------------------------------------------
# The persistent pool
# ---------------------------------------------------------------------------


class _PoolState:
    """The one persistent executor plus its bookkeeping."""

    __slots__ = ("pool", "fingerprint", "leases", "broken")

    def __init__(
        self, pool: ProcessPoolExecutor, fingerprint: str
    ) -> None:
        self.pool = pool
        self.fingerprint = fingerprint
        self.leases = 0
        self.broken = False


_LOCK = threading.Lock()
_STATE: Optional[_PoolState] = None
_STATS = {"created": 0, "reused": 0, "broken_rebuilds": 0, "ephemeral": 0}


class _PoolLease:
    """One caller's handle on the pool for the duration of one call.

    Callers submit through :attr:`pool`, cancel *their own* futures on
    exit, call :meth:`mark_broken` when they observe a
    ``BrokenProcessPool``, and :meth:`release` in a ``finally``.  They
    never shut the executor down - it outlives the call by design.
    """

    def __init__(self, pool: ProcessPoolExecutor, persistent: bool) -> None:
        self.pool = pool
        self._persistent = persistent
        self._released = False

    def mark_broken(self) -> None:
        """Flag the pool so the next lease rebuilds it."""
        if not self._persistent:
            return
        with _LOCK:
            if _STATE is not None and _STATE.pool is self.pool:
                _STATE.broken = True

    def release(self) -> None:
        """Return the lease (idempotent); ephemeral pools shut down here."""
        if self._released:
            return
        self._released = True
        if not self._persistent:
            self.pool.shutdown(wait=False, cancel_futures=True)
            return
        with _LOCK:
            if _STATE is not None and _STATE.pool is self.pool:
                _STATE.leases -= 1


def _fingerprint(
    workers: int, spec: WarmSpec, policy: Any, cell_runner: Any
) -> str:
    """Content hash of everything that shapes a worker's behaviour."""
    try:
        payload = pickle.dumps(
            (workers, spec, policy, cell_runner), protocol=4
        )
    except Exception as exc:
        raise ConfigError(
            "pool configuration is not picklable",
            error=str(exc),
        ) from exc
    return hashlib.sha256(payload).hexdigest()


def _make_pool(
    workers: int, spec: WarmSpec, policy: Any, cell_runner: Any
) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(  # parmlint: ok[process-pool]
        max_workers=workers,
        mp_context=get_context(_START_METHOD),
        initializer=_warm_worker_init,
        initargs=(spec, policy, cell_runner),
    )


def lease_pool(
    workers: int,
    policy: Any = None,
    cell_runner: Any = None,
) -> _PoolLease:
    """Lease the persistent warm pool (creating/rebuilding as needed).

    Args:
        workers: Worker process count (part of the fingerprint: a
            different count is a different pool).
        policy: Optional :class:`SupervisorPolicy` for ``run_cells``
            pools; workers then build their cell executor at init.
        cell_runner: Optional runner override shipped to workers.

    Returns:
        A :class:`_PoolLease`.  The caller must ``release()`` it in a
        ``finally`` and must not shut the executor down.
    """
    global _STATE
    spec = default_warm_spec()
    fingerprint = _fingerprint(workers, spec, policy, cell_runner)
    with _LOCK:
        state = _STATE
        if (
            state is not None
            and not state.broken
            and state.fingerprint == fingerprint
        ):
            state.leases += 1
            _STATS["reused"] += 1
            return _PoolLease(state.pool, persistent=True)
        if state is not None and state.leases > 0:
            # Another call is mid-flight on a different fingerprint:
            # give this caller a private pool rather than yanking the
            # shared one out from under the active leases.
            _STATS["ephemeral"] += 1
            return _PoolLease(
                _make_pool(workers, spec, policy, cell_runner),
                persistent=False,
            )
        if state is not None:
            state.pool.shutdown(wait=False, cancel_futures=True)
            if state.broken and state.fingerprint == fingerprint:
                _STATS["broken_rebuilds"] += 1
            else:
                _STATS["created"] += 1
        else:
            _STATS["created"] += 1
        _STATE = _PoolState(
            _make_pool(workers, spec, policy, cell_runner), fingerprint
        )
        _STATE.leases = 1
        return _PoolLease(_STATE.pool, persistent=True)


def pool_stats() -> Dict[str, int]:
    """Copy of the lifetime pool counters (created/reused/...)."""
    with _LOCK:
        return dict(_STATS)


def shutdown_pool(unlink_segments: bool = True) -> None:
    """Shut the persistent pool down and (by default) unlink segments.

    Safe to call at any time (registered ``atexit``); the next
    :func:`lease_pool` simply starts fresh.  With ``unlink_segments``
    the default published world is removed from ``/dev/shm`` and will
    be re-published on next use.
    """
    global _STATE, _DEFAULT_SPEC, _DEFAULT_BUNDLE
    with _LOCK:
        state = _STATE
        _STATE = None
        bundle = None
        if unlink_segments:
            bundle = _DEFAULT_BUNDLE
            _DEFAULT_BUNDLE = None
            _DEFAULT_SPEC = None
    if state is not None:
        state.pool.shutdown(wait=True, cancel_futures=True)
    if bundle is not None:
        bundle.unlink()


atexit.register(shutdown_pool)
