# parmlint: ok-file[wall-clock] - this module exists to measure wall time
"""``python -m repro bench`` - the pinned microbenchmark suite.

Times the hot paths this performance layer optimises and writes the
results as ``BENCH_<rev>.json`` so regressions are caught by diffing
against a committed baseline (see ``docs/performance.md``):

* ``kernel_eval_scalar`` / ``kernel_eval_batch`` - the per-domain fast
  PSN kernel, scalar loop vs the vectorised batch path;
* ``transient_solve_cold`` / ``transient_solve_warm`` - one MNA
  transient solve with a fresh factorisation vs the cached plan;
* ``pool_warmup`` / ``pool_reuse`` / ``pool_init_seconds`` - first
  lease of the persistent warm worker pool (spawn + per-worker world
  build) vs a later lease of the already-warm pool, plus the mean
  once-per-worker initializer time (``repro.perf.pool``);
* ``campaign_cell`` - one supervised campaign cell end to end;
* ``e2e_sweep_serial`` / ``e2e_sweep_parallel`` - a small campaign
  sweep run serially and with worker processes (plus the derived
  speedup); the parallel leg runs against a pre-warmed pool so it
  times steady-state task throughput, not spawn cost;
* ``noc_engine_legacy`` / ``noc_engine_array`` - the flit-level cycle
  model at 8x8 saturation: object-per-flit reference vs the
  structure-of-arrays engine (plus ``noc_engine_array_adaptive`` for
  the PANR context-assembly path);
* ``lint_deep`` - one cold-cache interprocedural parmlint run over
  ``src/repro`` (call-graph build plus every rule);
* ``routing_sweep_serial`` / ``routing_sweep_parallel`` - the
  routing-policy sweep run in-process and fanned across pre-warmed
  workers (the results are asserted identical before timings are
  recorded);
* ``verify_sequential`` / ``verify_splitting`` - the stop-when-confident
  sequential estimator and the rare-event importance-splitting run on
  the PDN emergency estimand (see ``docs/verification.md``);
* ``service_stream`` - one overload epoch of the streaming service
  engine (~100k arrivals quick, >= 1M full); before the time is
  recorded the run must hold the O(1)-state guarantee - same stats
  scalar count as a light epoch and a bounded serialised state.

Benchmark workloads are pinned (fixed seeds, sizes and cell specs), so
two runs on the same machine measure the same work; only the wall time
varies.  The regression gate compares per-benchmark times against a
baseline JSON and fails on more than ``--gate-pct`` percent slowdown.
In full (non ``--quick``) mode on a multi-core machine the derived
``e2e_parallel_speedup`` and ``routing_sweep_parallel_speedup`` must
additionally exceed 1.0x - ``--workers N`` has to actually beat
serial; quick runs and single-core machines log the values instead.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

#: Schema name / version of the benchmark result payload.
BENCH_SCHEMA = "parm-bench"
BENCH_VERSION = 1

#: Regression gate: fail when a benchmark is this much slower than the
#: baseline (percent).  Generous because CI machines are noisy.
DEFAULT_GATE_PCT = 25.0


def _rev() -> str:
    """Short git revision for the output file name, or ``local``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        return out.stdout.strip() or "local"
    except Exception:  # parmlint: ok[broad-except] - any git failure means "local"
        return "local"


def _time_best(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _domain_batch(n_domains: int, seed: int = 7):
    """Pinned random inputs for the kernel benchmarks."""
    rng = np.random.default_rng(seed)
    vdds = rng.choice([0.4, 0.5, 0.6, 0.7, 0.8], size=n_domains)
    i_core = rng.uniform(0.0, 2.0, size=(n_domains, 4))
    i_router = rng.uniform(0.0, 0.5, size=(n_domains, 4))
    bins = rng.integers(0, 2, size=(n_domains, 4))
    return vdds, i_core, i_router, bins


def bench_kernel(quick: bool) -> Dict[str, Dict[str, Any]]:
    from repro.pdn.fast import _BIN_ORDER, FastPsnModel
    from repro.pdn.waveforms import TileLoad

    model = FastPsnModel()
    n_domains = 64 if quick else 256
    repeats = 3 if quick else 10
    vdds, i_core, i_router, bins = _domain_batch(n_domains)
    load_rows = [
        [
            TileLoad(
                float(i_core[m, k] * vdds[m]),
                float(i_router[m, k] * vdds[m]),
                _BIN_ORDER[bins[m, k]],
            )
            for k in range(4)
        ]
        for m in range(n_domains)
    ]

    def scalar() -> None:
        for m in range(n_domains):
            model.domain_psn(float(vdds[m]), load_rows[m])

    def batch() -> None:
        model.chip_psn(vdds, i_core, i_router, bins)

    return {
        "kernel_eval_scalar": {
            "seconds": _time_best(scalar, repeats),
            "meta": {"domains": n_domains},
        },
        "kernel_eval_batch": {
            "seconds": _time_best(batch, repeats),
            "meta": {"domains": n_domains},
        },
    }


def bench_transient(quick: bool) -> Dict[str, Dict[str, Any]]:
    from repro.chip.power import PowerModel
    from repro.chip.technology import technology
    from repro.pdn.transient import PsnTransientAnalysis
    from repro.pdn.waveforms import ActivityBin, TileLoad

    tech = technology("7nm")
    power = PowerModel(tech)
    # Short windows keep the one-off factorisation (what cold pays and
    # warm amortises) a visible fraction of each solve; long windows
    # are step-dominated and would measure the same loop twice.
    window_s = 10e-9 if quick else 20e-9
    repeats = 3 if quick else 5
    vdd = 0.6
    core = power.core_dynamic(0.7, vdd) + power.core_leakage(vdd)
    router = power.router_dynamic(1.5, vdd) + power.router_leakage(vdd)
    loads = [TileLoad(core, router, ActivityBin.HIGH) for _ in range(4)]

    def cold() -> None:
        PsnTransientAnalysis(tech, window_s=window_s).analyze(vdd, loads)

    warm_analysis = PsnTransientAnalysis(tech, window_s=window_s)
    warm_analysis.analyze(vdd, loads)  # prime the factorisation plan

    def warm() -> None:
        warm_analysis.analyze(vdd, loads)

    meta = {"window_s": window_s}
    return {
        "transient_solve_cold": {
            "seconds": _time_best(cold, repeats),
            "meta": meta,
        },
        "transient_solve_warm": {
            "seconds": _time_best(warm, repeats),
            "meta": meta,
        },
    }


def _probe_pool(lease: Any, workers: int) -> Dict[int, float]:
    """Run probe rounds until every worker has initialised (bounded).

    Returns ``{worker pid: init_seconds}``.  A fast worker can win every
    probe of a round, so rounds repeat until ``workers`` distinct pids
    answered or the probe budget runs out (best effort - a straggler
    still finishes its one-time init before its first real task).
    """
    from repro.perf import pool

    inits: Dict[int, float] = {}
    token = 0
    while len(inits) < workers and token < workers * 8:
        futures = [
            lease.pool.submit(pool._probe_worker, token + i)
            for i in range(workers)
        ]
        token += workers
        for future in futures:
            pid, init_s = future.result()
            inits[pid] = init_s
    return inits


def _prewarm_pool(
    workers: int, policy: Any = None, cell_runner: Any = None
) -> None:
    """Spawn + initialise the warm pool matching ``(workers, policy)``.

    Called before the timed parallel regions so they measure
    steady-state task throughput against serial, not process spawn and
    world build (the costs ``pool_warmup`` times explicitly).
    """
    from repro.perf import pool

    lease = pool.lease_pool(workers, policy=policy, cell_runner=cell_runner)
    try:
        _probe_pool(lease, workers)
    finally:
        lease.release()


def bench_pool(quick: bool, workers: int) -> Dict[str, Dict[str, Any]]:
    from repro.perf import pool

    # Cold start: drop any pool and shared segments earlier suites (or
    # a previous bench run in-process) left warm.
    pool.shutdown_pool()

    start = time.perf_counter()
    lease = pool.lease_pool(workers)
    inits = _probe_pool(lease, workers)
    warmup_s = time.perf_counter() - start
    lease.release()

    start = time.perf_counter()
    lease = pool.lease_pool(workers)
    for future in [
        lease.pool.submit(pool._probe_worker, 10_000 + i)
        for i in range(workers)
    ]:
        future.result()
    reuse_s = time.perf_counter() - start
    lease.release()

    init_values = sorted(inits.values())
    mean_init = sum(init_values) / len(init_values) if init_values else 0.0
    meta = {"workers": workers, "segments": len(pool.default_warm_spec().array_specs)}
    return {
        "pool_warmup": {
            "seconds": warmup_s,
            "meta": {**meta, "note": "first lease: spawn + init + probes"},
        },
        "pool_reuse": {
            "seconds": reuse_s,
            "meta": {**meta, "note": "later lease of the warm pool"},
        },
        "pool_init_seconds": {
            "seconds": mean_init,
            "meta": {**meta, "per_worker": init_values},
        },
    }


def _bench_cells(quick: bool) -> List[Any]:
    from repro.harness.supervisor import CampaignCell

    # Sized so the full sweep carries enough per-cell work (~1 s) for
    # worker parallelism to beat the spawn overhead on CI hardware.
    n_apps = 2 if quick else 16
    seeds = (1,) if quick else (1, 2)
    intervals = (0.2, 0.1) if quick else (0.2, 0.15, 0.1, 0.05)
    return [
        CampaignCell(
            framework=fw,
            workload="mixed",
            arrival_interval_s=interval,
            n_apps=n_apps,
            seeds=seeds,
        )
        for fw in ("HM+XY", "PARM+PANR")
        for interval in intervals
    ]


def bench_campaign_cell(quick: bool) -> Dict[str, Dict[str, Any]]:
    from repro.harness.supervisor import CellExecutor, SupervisorPolicy

    cell = _bench_cells(quick)[0]
    executor = CellExecutor(SupervisorPolicy())

    def run() -> None:
        outcome = executor.run_cell(cell)
        if not outcome.completed:
            raise RuntimeError(f"benchmark cell failed: {outcome.attempts}")

    return {
        "campaign_cell": {
            "seconds": _time_best(run, 1 if quick else 2),
            "meta": {"cell": cell.label, "n_apps": cell.n_apps},
        }
    }


def bench_e2e_sweep(quick: bool, workers: int, tmp_dir: str) -> Dict[str, Dict[str, Any]]:
    import os

    from repro.harness.supervisor import CampaignSupervisor, SupervisorPolicy

    cells = _bench_cells(quick)
    times: Dict[str, float] = {}
    for tag, n_workers in (("serial", 1), ("parallel", workers)):
        if n_workers > 1:
            # Same fingerprint the supervisor's run_cells leases
            # (default policy, in-worker default runner), so the timed
            # run reuses these already-initialised workers.
            _prewarm_pool(n_workers, policy=SupervisorPolicy())
        checkpoint = os.path.join(tmp_dir, f"bench_{tag}.json")
        supervisor = CampaignSupervisor(
            cells, checkpoint, workers=n_workers
        )
        start = time.perf_counter()
        outcome = supervisor.run()
        times[tag] = time.perf_counter() - start
        if outcome.failed_cells:
            raise RuntimeError(
                f"benchmark sweep had failed cells: "
                f"{[o.cell.label for o in outcome.failed_cells]}"
            )
    return {
        "e2e_sweep_serial": {
            "seconds": times["serial"],
            "meta": {"cells": len(cells), "workers": 1},
        },
        "e2e_sweep_parallel": {
            "seconds": times["parallel"],
            "meta": {"cells": len(cells), "workers": workers},
        },
    }


def bench_noc_engine(quick: bool) -> Dict[str, Dict[str, Any]]:
    from repro.chip.mesh import MeshGeometry
    from repro.exp.routing_sweep import hotspot_psn, uniform_random_flows
    from repro.noc.batch import BatchedNocEngine
    from repro.noc.cycle import CycleNocSimulator
    from repro.noc.engine import ArrayNocEngine
    from repro.noc.routing import make_routing

    mesh = MeshGeometry(8, 8)
    rate = 0.35  # past XY saturation on 8x8 uniform-random traffic
    flows = uniform_random_flows(mesh, rate, seed=7, packet_size_flits=4)
    psn = hotspot_psn(mesh)
    cycles = 1000 if quick else 2000
    repeats = 3 if quick else 5

    def legacy() -> None:
        CycleNocSimulator(
            mesh, make_routing("xy"), psn_pct=psn, seed=3
        ).run(flows, cycles)

    def array() -> None:
        ArrayNocEngine(
            mesh, make_routing("xy"), psn_pct=psn, seed=3
        ).run(flows, cycles)

    def adaptive() -> None:
        ArrayNocEngine(
            mesh, make_routing("panr"), psn_pct=psn, seed=3
        ).run(flows, cycles)

    # The batched pair: a context-free sweep (rates x seeds) run as a
    # loop of fresh scalar engines - exactly what a serial sweep did
    # before batching - vs one BatchedNocEngine advancing every lane in
    # lock-step.  Full mode is the acceptance workload: 32 lanes on the
    # 8x8 mesh.
    batch_rates = (0.05, 0.15, 0.25, 0.35)
    batch_seeds = tuple(range(101, 103 if quick else 109))
    batch_cycles = 500 if quick else 1000
    batch_lanes = [
        uniform_random_flows(mesh, r, seed=s, packet_size_flits=4)
        for r in batch_rates
        for s in batch_seeds
    ]
    lane_seeds = [s for _ in batch_rates for s in batch_seeds]

    def batch_loop() -> List[Any]:
        return [
            ArrayNocEngine(
                mesh, make_routing("xy"), psn_pct=psn, seed=seed
            ).run(lane_flows, batch_cycles)
            for lane_flows, seed in zip(batch_lanes, lane_seeds)
        ]

    def batched() -> List[Any]:
        return BatchedNocEngine(
            mesh,
            make_routing("xy"),
            n_lanes=len(batch_lanes),
            psn_pct=psn,
            seeds=lane_seeds,
        ).run(batch_lanes, batch_cycles)

    # Identity before timing: every batch lane must be flit-for-flit
    # identical to its scalar run (stats equality covers injected /
    # delivered counts, every latency sample and per-router activity).
    for lane, (scalar_stats, batch_stats) in enumerate(
        zip(batch_loop(), batched())
    ):
        if (
            scalar_stats.packets_injected != batch_stats.packets_injected
            or scalar_stats.packets_delivered
            != batch_stats.packets_delivered
            or scalar_stats.flits_delivered != batch_stats.flits_delivered
            or scalar_stats.packet_latencies
            != batch_stats.packet_latencies
            or not np.array_equal(
                scalar_stats.router_flits_per_cycle,
                batch_stats.router_flits_per_cycle,
            )
        ):
            raise RuntimeError(
                f"batched NoC engine diverged from scalar on lane {lane}"
            )

    meta = {"mesh": "8x8", "rate_flits_per_cycle": rate, "cycles": cycles}
    batch_meta = {
        "mesh": "8x8",
        "routing": "xy",
        "lanes": len(batch_lanes),
        "rates": list(batch_rates),
        "cycles": batch_cycles,
    }
    return {
        "noc_engine_legacy": {
            "seconds": _time_best(legacy, repeats),
            "meta": {**meta, "routing": "xy"},
        },
        "noc_engine_array": {
            "seconds": _time_best(array, repeats),
            "meta": {**meta, "routing": "xy"},
        },
        "noc_engine_array_adaptive": {
            "seconds": _time_best(adaptive, repeats),
            "meta": {**meta, "routing": "panr"},
        },
        "noc_engine_batch_loop": {
            "seconds": _time_best(batch_loop, repeats),
            "meta": {**batch_meta, "note": "fresh scalar engine per lane"},
        },
        "noc_engine_batched": {
            "seconds": _time_best(batched, repeats),
            "meta": {**batch_meta, "note": "one lock-step batched engine"},
        },
    }


def bench_routing_sweep(quick: bool, workers: int) -> Dict[str, Dict[str, Any]]:
    from repro.exp.routing_sweep import (
        SweepPoint,
        routing_sweep,
        run_batch,
        run_point,
    )

    kwargs: Dict[str, Any] = dict(
        rates=(0.15, 0.35) if quick else (0.05, 0.15, 0.25, 0.35),
        policies=("xy", "panr")
        if quick
        else ("xy", "odd-even", "icon", "panr"),
        seeds=(1,) if quick else (1, 2),
        cycles=800 if quick else 2000,
    )
    # Batched-lane identity: the sweep's context-free grid runs as
    # BatchedNocEngine lanes, so pin the whole xy group against the
    # historical per-point scalar path before anything is timed.
    xy_points = [
        SweepPoint(
            policy="xy",
            injection_rate_flits=rate,
            seed=seed,
            cycles=kwargs["cycles"],
        )
        for rate in kwargs["rates"]
        for seed in kwargs["seeds"]
    ]
    if run_batch(xy_points) != [run_point(p) for p in xy_points]:
        raise RuntimeError(
            "batched routing-sweep lanes diverged from scalar points"
        )
    start = time.perf_counter()
    serial_rows = routing_sweep(workers=1, **kwargs)
    serial_s = time.perf_counter() - start
    _prewarm_pool(workers)  # map_tasks leases the bare-worker pool
    start = time.perf_counter()
    parallel_rows = routing_sweep(workers=workers, **kwargs)
    parallel_s = time.perf_counter() - start
    if serial_rows != parallel_rows:
        raise RuntimeError(
            "routing sweep produced different rows serial vs parallel"
        )
    points = len(kwargs["rates"]) * len(kwargs["policies"]) * len(
        kwargs["seeds"]
    )
    return {
        "routing_sweep_serial": {
            "seconds": serial_s,
            "meta": {"points": points, "workers": 1},
        },
        "routing_sweep_parallel": {
            "seconds": parallel_s,
            "meta": {"points": points, "workers": workers},
        },
    }


def bench_verify(quick: bool) -> Dict[str, Dict[str, Any]]:
    from repro.exp.verify.estimands import PdnEmergencyEstimand
    from repro.exp.verify.sequential import SequentialEstimator, StopRule
    from repro.exp.verify.splitting import SplittingConfig, run_splitting

    estimand = PdnEmergencyEstimand()
    budget = 512 if quick else 2048
    half_width = 0.04 if quick else 0.02
    rule = StopRule(
        confidence=0.95,
        half_width=half_width,
        budget=budget,
        batch_size=64,
    )
    repeats = 2 if quick else 3

    def sequential() -> None:
        result = SequentialEstimator(estimand, rule=rule, root_seed=0).run()
        if result.n_replicas < rule.min_replicas:
            raise RuntimeError("sequential benchmark underran its floor")

    rare = PdnEmergencyEstimand(threshold_pct=19.5)
    config = SplittingConfig(
        n_per_level=400 if quick else 1000, mcmc_moves=3
    )

    def splitting() -> None:
        result = run_splitting(rare, config=config, root_seed=0)
        if result.probability <= 0.0:
            raise RuntimeError("splitting benchmark lost all mass")

    return {
        "verify_sequential": {
            "seconds": _time_best(sequential, repeats),
            "meta": {"budget": budget, "half_width": half_width},
        },
        "verify_splitting": {
            "seconds": _time_best(splitting, repeats),
            "meta": {
                "threshold_pct": rare.threshold_pct,
                "n_per_level": config.n_per_level,
            },
        },
    }


def bench_lint(quick: bool) -> Dict[str, Dict[str, Any]]:
    from pathlib import Path

    import repro
    from repro.analysis.engine import LintEngine
    from repro.analysis.rules import default_rules

    package_root = Path(repro.__file__).resolve().parent

    def deep() -> None:
        # cache_dir=None forces a cold call-graph build every pass, so
        # this times the full interprocedural run (the CI cold-start
        # cost; warm runs only re-run the rules).
        LintEngine(default_rules()).run(package_root, cache_dir=None)

    return {
        "lint_deep": {
            "seconds": _time_best(deep, 1 if quick else 2),
            "meta": {"root": "src/repro", "cache": "cold"},
        }
    }


def bench_service(quick: bool) -> Dict[str, Dict[str, Any]]:
    from repro.apps.suite import ProfileLibrary
    from repro.chip import default_chip
    from repro.runtime.service.arrivals import PoissonProcess
    from repro.runtime.service.config import ServiceConfig
    from repro.runtime.service.engine import ServiceEngine, ServiceState
    from repro.runtime.simulator import SimulatorContext

    chip = default_chip()
    library = ProfileLibrary()
    context = SimulatorContext.for_chip(chip)
    epoch_s = 0.25
    rate_hz = 420_000.0 if quick else 4_200_000.0
    arrival_floor = 100_000 if quick else 1_000_000

    def epoch_state(rate: float) -> ServiceState:
        config = ServiceConfig(
            arrival=PoissonProcess(rate_hz=rate),
            epochs=1,
            epoch_duration_s=epoch_s,
            root_seed=7,
        )
        engine = ServiceEngine(
            config, chip=chip, library=library, context=context
        )
        state = ServiceState(config)
        engine.run_epoch(state)
        return state

    # A light epoch first: warms the profile/WCET caches out of the
    # timed region and pins the scalar-count yardstick the overload run
    # is checked against.
    light = epoch_state(2_000.0)

    captured: Dict[str, ServiceState] = {}

    def stream() -> None:
        captured["state"] = epoch_state(rate_hz)

    seconds = _time_best(stream, 2 if quick else 1)

    heavy = captured["state"]
    arrivals = heavy.stats.total("arrived")
    if arrivals < arrival_floor:
        raise RuntimeError(
            f"service benchmark underran its arrival floor: "
            f"{arrivals} < {arrival_floor}"
        )
    if heavy.stats.scalar_count() != light.stats.scalar_count():
        raise RuntimeError("service stats state grew with arrival count")
    state_b = len(json.dumps(heavy.to_json(), sort_keys=True))
    if state_b > 150_000:
        raise RuntimeError(
            f"service state is not O(1) under overload: {state_b} bytes"
        )
    return {
        "service_stream": {
            "seconds": seconds,
            "meta": {
                "arrivals": int(arrivals),
                "epoch_s": epoch_s,
                "rate_hz": rate_hz,
                "state_b": state_b,
            },
        }
    }


def run_suite(
    quick: bool = False,
    workers: int = 4,
    skip: Sequence[str] = (),
) -> Dict[str, Any]:
    """Run every benchmark and assemble the result payload."""
    import tempfile

    benchmarks: Dict[str, Dict[str, Any]] = {}
    benchmarks.update(bench_kernel(quick))
    benchmarks.update(bench_transient(quick))
    benchmarks.update(bench_noc_engine(quick))
    benchmarks.update(bench_lint(quick))
    if "pool" not in skip:
        # Before the e2e/routing suites: those pre-warm the pool, and
        # pool_warmup must observe a cold one.
        benchmarks.update(bench_pool(quick, workers))
    if "campaign" not in skip:
        benchmarks.update(bench_campaign_cell(quick))
    if "e2e" not in skip:
        with tempfile.TemporaryDirectory() as tmp_dir:
            benchmarks.update(bench_e2e_sweep(quick, workers, tmp_dir))
    if "routing" not in skip:
        benchmarks.update(bench_routing_sweep(quick, workers))
    if "verify" not in skip:
        benchmarks.update(bench_verify(quick))
    if "service" not in skip:
        benchmarks.update(bench_service(quick))

    derived: Dict[str, float] = {}
    pairs = (
        ("kernel_batch_speedup", "kernel_eval_scalar", "kernel_eval_batch"),
        ("transient_warm_speedup", "transient_solve_cold", "transient_solve_warm"),
        ("e2e_parallel_speedup", "e2e_sweep_serial", "e2e_sweep_parallel"),
        ("pool_reuse_speedup", "pool_warmup", "pool_reuse"),
        ("noc_engine_speedup", "noc_engine_legacy", "noc_engine_array"),
        (
            "noc_engine_batch_speedup",
            "noc_engine_batch_loop",
            "noc_engine_batched",
        ),
        (
            "routing_sweep_parallel_speedup",
            "routing_sweep_serial",
            "routing_sweep_parallel",
        ),
    )
    for name, slow, fast in pairs:
        if slow in benchmarks and fast in benchmarks:
            denom = benchmarks[fast]["seconds"]
            if denom > 0:
                derived[name] = benchmarks[slow]["seconds"] / denom
    return {
        "schema": BENCH_SCHEMA,
        "version": BENCH_VERSION,
        "rev": _rev(),
        "quick": quick,
        "workers": workers,
        "benchmarks": benchmarks,
        "derived": derived,
    }


#: Derived speedups that must exceed 1.0x in full mode (``--workers N``
#: has to actually beat serial once the pool is warm).
PARALLEL_SPEEDUP_GATES = (
    "e2e_parallel_speedup",
    "routing_sweep_parallel_speedup",
)

#: Derived speedups that must exceed 1.0x in full mode regardless of
#: core count: batching wins by cutting python dispatch overhead inside
#: one process, so a single-core host has no excuse.
BATCH_SPEEDUP_GATES = ("noc_engine_batch_speedup",)


def parallel_speedup_failures(result: Dict[str, Any]) -> List[str]:
    """Full-mode gate: warm-pool parallel runs must beat serial.

    Quick runs log the speedups without gating (their workloads are too
    small to amortise anything), and a single-core machine cannot beat
    serial throughput no matter how warm the pool is, so the
    multi-process gates only apply when ``os.cpu_count() >= 2`` and the
    missing check is reported as a skip instead.  The batched-engine
    gates (:data:`BATCH_SPEEDUP_GATES`) are in-process vectorisation
    wins and are enforced on any core count.
    """
    import os

    if result.get("quick"):
        return []
    failures = []
    for name in BATCH_SPEEDUP_GATES:
        value = result.get("derived", {}).get(name)
        if value is not None and value <= 1.0:
            failures.append(
                f"{name}: {value:.2f}x <= 1.00x "
                "(the batched engine must beat a scalar-engine loop)"
            )
    if (os.cpu_count() or 1) < 2:
        return failures
    for name in PARALLEL_SPEEDUP_GATES:
        value = result.get("derived", {}).get(name)
        if value is not None and value <= 1.0:
            failures.append(
                f"{name}: {value:.2f}x <= 1.00x "
                "(parallel must beat serial on a warm pool)"
            )
    return failures


def gate_against_baseline(
    result: Dict[str, Any],
    baseline: Dict[str, Any],
    gate_pct: float = DEFAULT_GATE_PCT,
) -> List[str]:
    """Names of benchmarks more than ``gate_pct`` % slower than baseline.

    Benchmarks absent from either side are skipped (adding a benchmark
    must not fail the gate), as are baselines recorded at a different
    ``quick`` setting - the workloads would not be comparable.
    """
    if bool(baseline.get("quick")) != bool(result.get("quick")):
        return []
    failures = []
    factor = 1.0 + gate_pct / 100.0
    for name, entry in sorted(result["benchmarks"].items()):
        base = baseline.get("benchmarks", {}).get(name)
        if base is None or base.get("seconds", 0) <= 0:
            continue
        if entry["seconds"] > base["seconds"] * factor:
            failures.append(
                f"{name}: {entry['seconds']:.4f}s vs baseline "
                f"{base['seconds']:.4f}s (> {gate_pct:.0f}% slower)"
            )
    return failures


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Run the pinned microbenchmark suite "
            "(see docs/performance.md)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller pinned workloads (CI smoke; ~1 min)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="worker processes for the parallel sweep (default: 4)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="result file (default: BENCH_<rev>.json in the cwd)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline BENCH_*.json to gate against (exit 1 on regression)",
    )
    parser.add_argument(
        "--gate-pct",
        type=float,
        default=DEFAULT_GATE_PCT,
        metavar="PCT",
        help="regression threshold in percent (default: %(default)s)",
    )
    parser.add_argument(
        "--skip",
        nargs="+",
        default=[],
        choices=["campaign", "e2e", "pool", "routing", "verify", "service"],
        metavar="SUITE",
        help=(
            "skip the slow suites "
            "(campaign, e2e, pool, routing, verify, service)"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers < 1:
        print("bench error: --workers must be >= 1", file=sys.stderr)
        return 2
    result = run_suite(
        quick=args.quick, workers=args.workers, skip=tuple(args.skip)
    )
    output = args.output or f"BENCH_{result['rev']}.json"
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    for name, entry in sorted(result["benchmarks"].items()):
        print(f"  {name:<24} {entry['seconds']:.4f} s")
    for name, value in sorted(result["derived"].items()):
        print(f"  {name:<24} {value:.2f}x")

    import os as _os

    speedup_failures = parallel_speedup_failures(result)
    if speedup_failures:
        print("parallel speedup gate failed:", file=sys.stderr)
        for failure in speedup_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    gated = not result["quick"] and (_os.cpu_count() or 1) >= 2
    for name in PARALLEL_SPEEDUP_GATES:
        value = result["derived"].get(name)
        if value is not None:
            state = "gated > 1.0x" if gated else "logged, gate skipped"
            reason = "" if gated else (
                " (quick run)" if result["quick"] else " (single-core host)"
            )
            print(f"  {name}: {value:.2f}x [{state}{reason}]")
    for name in BATCH_SPEEDUP_GATES:
        value = result["derived"].get(name)
        if value is not None:
            state = (
                "logged, gate skipped (quick run)"
                if result["quick"]
                else "gated > 1.0x on any core count"
            )
            print(f"  {name}: {value:.2f}x [{state}]")

    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = gate_against_baseline(
            result, baseline, gate_pct=args.gate_pct
        )
        if failures:
            print("benchmark regressions:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"gate passed vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
