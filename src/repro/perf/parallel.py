"""Deterministic process-pool execution of campaign cells.

Fans pending :class:`~repro.harness.supervisor.CampaignCell` runs across
``spawn``-context worker processes while preserving every guarantee of
the serial :class:`~repro.harness.supervisor.CampaignSupervisor` loop:

* **determinism** - a cell's outcome depends only on
  ``(cell, policy, cell_runner)``: the retry backoff schedule is seeded
  from the cell's content hash and no wall-clock data is recorded, so
  the same cell produces the same outcome in any worker, in any order.
  Results are returned merged back into the caller's cell order.
* **watchdog / retry / taxonomy semantics** - each worker process owns
  one :class:`~repro.harness.supervisor.CellExecutor`, the exact unit
  the serial loop runs, so deadlines, retries and error classification
  behave identically.  The default runner's shared chip /
  profile-library cache is built once per worker and rebuilt after a
  timeout, mirroring the serial discard-on-timeout rule per process.
* **crash safety** - the parent invokes ``on_outcome`` as each cell
  completes, so the supervisor checkpoints progress continuously; a
  kill loses at most the cells in flight, and the checkpoint payload is
  key-sorted, so the final bytes match a serial run's exactly.

The ``spawn`` start method is mandatory (see :data:`START_METHOD`): it
gives every worker a fresh interpreter with no inherited locks, RNG
state or solver caches, which both avoids fork-after-thread hazards
(the supervisor's watchdog uses threads) and keeps workers identical to
a fresh serial process.  parmlint's ``process-pool`` rule enforces that
no other module spawns workers behind the supervisor's back.

Worker processes are *persistent*: both entry points lease the
process-lifetime warm pool of :mod:`repro.perf.pool`, whose workers
build the expensive read-only world (chip, profile library, kernel and
route tables in shared memory, primed transient plan) once at
initialisation and are reused across calls.  Each call cancels only its
own futures on exit and flags - never shuts down - a broken pool, so
interleaved batches cannot cancel each other's queued work.
"""

from __future__ import annotations

import pickle
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.faults.recovery import RecoveryPolicy
from repro.perf import pool as warm_pool
from repro.harness.errors import ConfigError, ReproError, WorkerCrash
from repro.harness.seeding import derive_seed
from repro.harness.supervisor import (
    SupervisedCell,
    CellExecutor,
    CellOutcome,
    CellRunner,
    SupervisorPolicy,
)

#: Multiprocessing start method.  ``spawn`` starts each worker from a
#: fresh interpreter - deterministic, thread-safe, and identical across
#: platforms - where ``fork`` would inherit the parent's entire heap
#: (solver caches, RNG state, held locks) into every worker.
START_METHOD = "spawn"

#: Every callable shipped into a worker process, by dotted name.  This
#: is the root set of parmlint's interprocedural ``worker-safety``
#: analysis: the transitive closure of these callables must not mutate
#: module globals, read the wall clock/environment, or capture
#: unpicklable state (see docs/lint.md).  The linter parses this tuple
#: statically and flags both unresolvable entries and pool shipments
#: whose target is missing from it, so the registry cannot silently go
#: stale as new fan-outs appear; tests/perf/test_worker_roots.py pins
#: that each entry resolves to a real callable.
WORKER_ROOTS = (
    "repro.exp.routing_sweep.run_batch",
    "repro.exp.routing_sweep.run_point",
    "repro.exp.verify.sequential.run_replica_cell",
    "repro.harness.supervisor.CellExecutor.run_cell",
    "repro.harness.supervisor.default_cell_runner",
    "repro.perf.parallel._chunk_runner",
    "repro.perf.parallel._pool_run_cell",
    "repro.perf.parallel._worker_init",
    "repro.perf.pool._probe_worker",
    "repro.perf.pool._warm_worker_init",
    "repro.runtime.service.campaign.run_service_epoch",
)

#: Per-process cell executor, built once by :func:`_worker_init` when
#: the pool starts and reused for every cell the worker receives.
_EXECUTOR: Optional[CellExecutor] = None


def _worker_init(
    policy: SupervisorPolicy, cell_runner: Optional[CellRunner]
) -> None:
    """Build this worker process's cell executor (pool initializer)."""
    global _EXECUTOR
    # Per-process executor slot: written exactly once by the pool
    # initializer before any task runs, never shared across processes,
    # so serial/parallel bytes cannot diverge.
    # parmlint: ok[worker-safety] - once-per-worker initializer write
    _EXECUTOR = CellExecutor(policy, cell_runner=cell_runner)


def _pool_run_cell(cell: SupervisedCell) -> CellOutcome:
    """Run one cell on this worker's executor (the pool task)."""
    if _EXECUTOR is None:  # pragma: no cover - initializer always runs
        raise RuntimeError("worker pool was not initialised")
    return _EXECUTOR.run_cell(cell)


def _require_picklable(cell_runner: CellRunner) -> None:
    try:
        pickle.dumps(cell_runner)
    except Exception as exc:
        raise ConfigError(
            "cell_runner is not picklable; parallel campaigns need a "
            "module-level callable (or None for the default runner)",
            runner=repr(cell_runner),
            error=str(exc),
        ) from exc


class _ChunkTaskError(Exception):
    """One task inside a shipped chunk raised (picklable carrier).

    Carries the failing task's in-chunk index and the original
    exception, so the parent can charge the right *global* task index
    and report the original error type - not the chunk wrapper.  The
    ``(index, cause)`` args round-trip through ``Exception.__reduce__``,
    so the error survives the pool's pickling like any worker exception.
    """

    def __init__(self, index: int, cause: BaseException) -> None:
        super().__init__(index, cause)
        self.index = index
        self.cause = cause


def _chunk_runner(chunk: Any) -> List[Any]:
    """Run one ``(fn, tasks)`` chunk in a worker (the chunked pool task).

    Batching many small task descriptors into one pickle/queue round
    trip is what makes fine-grained sweeps scale; results come back as
    one list in task order.  Taxonomy errors propagate unchanged (they
    already carry provenance); any other failure is wrapped in
    :class:`_ChunkTaskError` with its in-chunk index.
    """
    fn, chunk_tasks = chunk
    results = []
    for index, task in enumerate(chunk_tasks):
        try:
            results.append(fn(task))
        except ReproError:
            raise
        except Exception as exc:  # parmlint: ok[broad-except]
            raise _ChunkTaskError(index, exc) from exc
    return results


def _auto_chunk_size(n_tasks: int, workers: int) -> int:
    """Heuristic chunk size: ~4 chunks per worker once tasks are many.

    Small task counts stay unchunked (one descriptor per round trip
    costs little and keeps failure attribution trivial); beyond 4 tasks
    per worker, consecutive tasks are grouped so each worker sees a
    handful of queue round trips instead of hundreds, while 4 chunks
    per worker preserve load balancing against uneven task costs.
    """
    if n_tasks <= 4 * workers:
        return 1
    return -(-n_tasks // (4 * workers))


def _task_context(index: int, task: Any, exc: BaseException) -> Dict[str, Any]:
    """Provenance context of one failed map task (for WorkerCrash)."""
    return {
        "task_index": index,
        "task": repr(task),
        "error_type": type(exc).__name__,
        "error": str(exc),
    }


class _MapRetryBudget:
    """Per-task attempt accounting for :func:`map_tasks` retries.

    Each task index owns an independent retry budget.  The backoff
    before attempt ``k`` of task ``i`` is the supervisor's jittered
    exponential schedule seeded by ``derive_seed(retry_seed,
    "perf/map-retry/attempt<k>", i)`` - a pure function of ``(seed,
    index, attempt)``, so the recorded delays are identical however the
    failures interleave across workers and rounds.
    """

    def __init__(
        self,
        retries: int,
        retry_seed: int,
        sleep_fn: Optional[Callable[[float], None]],
    ) -> None:
        self._retries = retries
        self._retry_seed = retry_seed
        self._sleep_fn = sleep_fn
        self._attempts: Dict[int, int] = {}

    def charge(
        self, index: int, task: Any, exc: BaseException, reason: str
    ) -> None:
        """Record one failed attempt; raise when the budget is spent."""
        used = self._attempts.get(index, 0) + 1
        self._attempts[index] = used
        if used > self._retries:
            raise WorkerCrash(
                reason,
                attempts=used,
                **_task_context(index, task, exc),
            ) from exc
        rng = np.random.default_rng(
            derive_seed(
                self._retry_seed, f"perf/map-retry/attempt{used - 1}", index
            )
        )
        backoff_s = RecoveryPolicy().jittered_backoff_s(used - 1, rng)
        if self._sleep_fn is not None:
            self._sleep_fn(backoff_s)


def map_tasks(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int,
    retries: int = 0,
    retry_seed: int = 0,
    sleep_fn: Optional[Callable[[float], None]] = None,
    chunk_size: Optional[int] = None,
) -> List[Any]:
    """Map a pure, module-level ``fn`` over ``tasks``; results in order.

    The generic sibling of :func:`run_cells` for work that is not a
    campaign cell (e.g. the routing-sweep points of
    :mod:`repro.exp.routing_sweep`).  The same determinism contract
    applies: ``fn`` must be a pure function of its task (no wall clock,
    no shared RNG), so the result list is identical for any ``workers``
    value - parallelism changes wall-clock time only, never bytes.
    Results are merged by task index, so retries reorder nothing.

    Failures are classified like :func:`run_cells` outcomes are: a task
    raising a non-taxonomy exception, or a worker process dying outright
    (``BrokenProcessPool`` from an OOM kill or hard crash), surfaces as
    :class:`~repro.harness.errors.WorkerCrash` carrying the task index
    and repr - never a bare traceback with no hint of which input died.
    Taxonomy errors raised by ``fn`` itself propagate unchanged.

    Many small tasks are *chunked*: consecutive task descriptors are
    grouped into one pickle/queue round trip per chunk (the per-task
    dispatch overhead otherwise dominates fine-grained sweeps).
    ``chunk_size=None`` picks the size automatically - unchunked until
    tasks exceed four per worker, then ~4 chunks per worker (see
    :func:`_auto_chunk_size`); pass an explicit size to override.
    Chunking never changes results: merges stay keyed by the global
    task index, so the returned list is byte-identical for any chunk
    size, and a failing task is still reported under its own index and
    original error type (a failed chunk re-runs whole, which is safe
    because ``fn`` is pure).

    With ``retries > 0`` each task additionally owns a bounded retry
    budget: a crashed or raising task is resubmitted (to a rebuilt pool
    when the previous one broke) after a jittered exponential backoff
    seeded from ``(retry_seed, task index, attempt)`` - see
    :class:`_MapRetryBudget`.  A worker death charges one attempt to
    *every* task that was submitted and unfinished at the time, since
    the pool cannot tell which input killed the process.

    Args:
        fn: Module-level callable (must be picklable for ``spawn``
            workers) mapping one task to one result.
        tasks: Task values; must themselves be picklable when
            ``workers > 1``.
        workers: Worker process count (a warm-pool fingerprint
            component, so repeated calls with the same count reuse the
            same workers).  ``1`` runs in-process with identical
            semantics.
        retries: Extra attempts per task beyond the first (default 0:
            fail fast, the historical behaviour).
        retry_seed: Root seed of the backoff jitter streams.
        sleep_fn: Receives each backoff delay in seconds; ``None`` (the
            default) records no delay and retries immediately, which
            keeps tests and deterministic replays instant.
        chunk_size: Tasks per pickle/queue round trip; ``None`` (the
            default) chooses automatically, ``1`` disables chunking.

    Returns:
        ``[fn(t) for t in tasks]`` in task order, regardless of
        completion order.

    Raises:
        ConfigError: on ``workers < 1``, ``retries < 0``,
            ``chunk_size < 1``, or an unpicklable ``fn``.
        WorkerCrash: when a task exhausts its attempts raising
            non-taxonomy exceptions or losing worker processes; context
            identifies the task and attempt count.
    """
    tasks = list(tasks)
    if workers < 1:
        raise ConfigError("workers must be >= 1", workers=workers)
    if retries < 0:
        raise ConfigError("retries must be >= 0", retries=retries)
    if chunk_size is not None and chunk_size < 1:
        raise ConfigError("chunk_size must be >= 1", chunk_size=chunk_size)
    budget = _MapRetryBudget(retries, retry_seed, sleep_fn)
    if workers == 1 or len(tasks) <= 1:
        results = []
        for index, task in enumerate(tasks):
            while True:
                try:
                    results.append(fn(task))
                    break
                except ReproError:
                    raise
                # Charged to the retry budget, re-raised as a
                # WorkerCrash when it runs out.
                except Exception as exc:  # parmlint: ok[broad-except]
                    budget.charge(
                        index, task, exc, "task raised inside its worker"
                    )
        return results
    try:
        pickle.dumps(fn)
    except Exception as exc:
        raise ConfigError(
            "fn is not picklable; parallel map needs a module-level "
            "callable",
            fn=repr(fn),
            error=str(exc),
        ) from exc

    if chunk_size is None:
        chunk_size = _auto_chunk_size(len(tasks), workers)

    results_by_index: Dict[int, Any] = {}
    unfinished = list(range(len(tasks)))
    while unfinished:
        # One submission unit is a chunk of consecutive task indices
        # (singleton chunks when unchunked); merges stay keyed by the
        # global index, so chunking cannot reorder results.
        chunks = [
            unfinished[start:start + chunk_size]
            for start in range(0, len(unfinished), chunk_size)
        ]
        # Lease the persistent warm pool; a broken pool is flagged via
        # the lease and rebuilt by the next round's lease_pool call.
        lease = warm_pool.lease_pool(workers)
        retry_indices: List[int] = []
        futures: Dict[int, Future] = {}
        try:
            submit_failure: Optional[BaseException] = None
            for position, chunk in enumerate(chunks):
                try:
                    futures[position] = lease.pool.submit(
                        _chunk_runner,
                        (fn, [tasks[index] for index in chunk]),
                    )
                except BrokenProcessPool as exc:
                    # The pool died between calls (e.g. an idle worker
                    # was OOM-killed); charge the unsubmitted tasks and
                    # let the next round rebuild.
                    lease.mark_broken()
                    submit_failure = exc
                    break
            for position, chunk in enumerate(chunks):
                future = futures.get(position)
                if future is None:
                    for index in chunk:
                        budget.charge(
                            index,
                            tasks[index],
                            submit_failure,
                            "worker process died before completing its task",
                        )
                        retry_indices.append(index)
                    continue
                try:
                    chunk_results = future.result()
                except ReproError:
                    raise
                except BrokenProcessPool as exc:
                    # The worker *process* died before returning (OOM
                    # kill, segfault, interpreter abort); every future
                    # still in flight fails with it.
                    lease.mark_broken()
                    for index in chunk:
                        budget.charge(
                            index,
                            tasks[index],
                            exc,
                            "worker process died before completing its task",
                        )
                        retry_indices.append(index)
                except _ChunkTaskError as exc:
                    # Charge the failing task under its global index
                    # and original error; the whole chunk re-runs (fn
                    # is pure, so recomputed siblings cannot diverge).
                    budget.charge(
                        chunk[exc.index],
                        tasks[chunk[exc.index]],
                        exc.cause,
                        "task raised inside its worker",
                    )
                    retry_indices.extend(chunk)
                # Charged to the retry budget, re-raised as a
                # WorkerCrash when it runs out.
                except Exception as exc:  # parmlint: ok[broad-except]
                    budget.charge(
                        chunk[0],
                        tasks[chunk[0]],
                        exc,
                        "task raised inside its worker",
                    )
                    retry_indices.extend(chunk)
                else:
                    for index, value in zip(chunk, chunk_results):
                        results_by_index[index] = value
        finally:
            # Cancel only *this call's* futures - the pool is shared
            # with concurrent callers and must keep draining their
            # queued work (a completed future's cancel() is a no-op).
            for future in futures.values():
                future.cancel()
            lease.release()
        unfinished = retry_indices
    return [results_by_index[index] for index in range(len(tasks))]


def run_cells(
    cells: Sequence[SupervisedCell],
    policy: SupervisorPolicy,
    workers: int,
    cell_runner: Optional[CellRunner] = None,
    on_outcome: Optional[Callable[[CellOutcome], None]] = None,
) -> List[CellOutcome]:
    """Run ``cells`` across ``workers`` processes; results in cell order.

    Args:
        cells: Cells to execute (keys must be unique).
        policy: Retry/backoff/watchdog limits, applied inside each
            worker exactly as in a serial run.
        workers: Worker process count (a warm-pool fingerprint
            component).  ``1`` runs in-process (no pool) with identical
            semantics.
        cell_runner: Optional runner override.  Must be picklable (a
            module-level callable) because it is shipped to spawned
            workers; ``None`` builds the default runner lazily in each
            worker.
        on_outcome: Invoked in the parent as each cell completes -
            *completion* order, which is nondeterministic; callers that
            need determinism (checkpoints, tables) must key by
            ``outcome.cell.key``, which the supervisor's sorted-key
            serialisation already does.

    Returns:
        One :class:`CellOutcome` per cell, in the input cell order
        regardless of completion order.

    Raises:
        ConfigError: on ``workers < 1`` or an unpicklable runner.
        WorkerCrash: when the pool keeps breaking (a worker death is
            otherwise survived: the rebuilt pool re-runs the lost
            cells, which is safe because outcomes are deterministic).
    """
    cells = list(cells)
    if workers < 1:
        raise ConfigError("workers must be >= 1", workers=workers)
    if workers == 1 or len(cells) <= 1:
        executor = CellExecutor(policy, cell_runner=cell_runner)
        outcomes = []
        for cell in cells:
            outcome = executor.run_cell(cell)
            if on_outcome is not None:
                on_outcome(outcome)
            outcomes.append(outcome)
        return outcomes
    if cell_runner is not None:
        _require_picklable(cell_runner)

    by_key: Dict[str, CellOutcome] = {}
    remaining: Dict[str, SupervisedCell] = {cell.key: cell for cell in cells}
    rebuilds = 0
    while remaining:
        # Lease the persistent warm pool keyed by (workers, policy,
        # runner); workers build their CellExecutor once, at pool init.
        lease = warm_pool.lease_pool(
            workers, policy=policy, cell_runner=cell_runner
        )
        futures: Dict[Future, str] = {}
        broken: Optional[BaseException] = None
        try:
            for key, cell in remaining.items():
                try:
                    futures[lease.pool.submit(_pool_run_cell, cell)] = key
                except BrokenProcessPool as exc:
                    broken = exc
                    break
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    try:
                        outcome = future.result()
                    except BrokenProcessPool as exc:
                        # Cell outcomes are deterministic, so the cells
                        # lost with the dead worker can simply be re-run
                        # on a rebuilt pool - bytes cannot diverge.
                        broken = exc
                        continue
                    by_key[futures[future]] = outcome
                    del remaining[futures[future]]
                    if on_outcome is not None:
                        on_outcome(outcome)
            if broken is not None:
                lease.mark_broken()
        finally:
            # Cancel only *this call's* futures - the pool is shared
            # with concurrent callers and must keep draining their
            # queued work (a completed future's cancel() is a no-op).
            for future in futures:
                future.cancel()
            lease.release()
        if remaining:
            rebuilds += 1
            if rebuilds > warm_pool.MAX_POOL_REBUILDS:
                raise WorkerCrash(
                    "worker pool kept dying while running cells",
                    rebuilds=rebuilds,
                    pending_cells=sorted(remaining),
                    error_type=(
                        type(broken).__name__ if broken else "unknown"
                    ),
                    error=str(broken) if broken else "",
                ) from broken
    return [by_key[cell.key] for cell in cells]
