"""Runtime system: chip occupancy state and the discrete-event simulator.

Models the OS/middleware layer the paper assumes PARM lives in
(Section 5.1): applications arrive in a FCFS service queue, the manager
assigns Vdd/DoP/mapping, tiles are occupied for the application's
lifetime, PSN is sampled periodically, voltage emergencies trigger
checkpoint rollbacks, and completed/dropped applications are accounted.
"""

from repro.runtime.state import ChipState, TileOccupant
from repro.runtime.checkpoint import CheckpointPolicy
from repro.runtime.metrics import AppRecord, RunMetrics
from repro.runtime.simulator import RuntimeSimulator

__all__ = [
    "ChipState",
    "TileOccupant",
    "CheckpointPolicy",
    "AppRecord",
    "RunMetrics",
    "RuntimeSimulator",
]
