"""Metrics collected by the runtime simulator for the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class AppRecord:
    """Lifecycle of one application in a run.

    Times in seconds; ``None`` while the stage has not happened.
    """

    app_id: int
    name: str
    arrival_s: float
    deadline_s: float
    mapped_s: Optional[float] = None
    finished_s: Optional[float] = None
    dropped_s: Optional[float] = None
    #: Set when fault recovery exhausted its re-mapping retries: the
    #: application was abandoned because the degraded chip could no
    #: longer host it (distinct from a deadline-driven drop).
    failed_s: Optional[float] = None
    vdd: Optional[float] = None
    dop: Optional[int] = None
    ve_count: int = 0
    migrated_tasks: int = 0
    #: Fault-triggered re-mappings this application survived.
    remap_count: int = 0

    @property
    def completed(self) -> bool:
        return self.finished_s is not None

    @property
    def dropped(self) -> bool:
        return self.dropped_s is not None

    @property
    def failed(self) -> bool:
        """Abandoned after fault-recovery retries were exhausted."""
        return self.failed_s is not None

    @property
    def degraded(self) -> bool:
        """Completed, but only after fault-triggered re-mapping."""
        return self.completed and self.remap_count > 0

    @property
    def met_deadline(self) -> bool:
        return self.completed and self.finished_s <= self.deadline_s + 1e-9


@dataclass
class RunMetrics:
    """Aggregate results of one runtime simulation.

    Attributes:
        apps: Per-application lifecycle records keyed by app id.
        total_time_s: Completion time of the last finished application -
            the paper's Fig. 6 metric ("total time taken to execute the
            applications").
        peak_psn_pct: Worst per-tile peak PSN observed - Fig. 7.
        avg_psn_pct: Time- and tile-weighted mean PSN over occupied
            tiles - Fig. 7.
        total_ve_count: Voltage emergencies across the run.
        compaction_count: Migration-based defragmentation events (only
            when a :class:`~repro.runtime.migration.MigrationPolicy` is
            active).
        reactive_move_count: Hotspot-triggered thread migrations (only
            when a :class:`~repro.runtime.migration.ReactiveMigrationPolicy`
            is active).
        fault_count: Fault events injected over the run (only when a
            :class:`~repro.faults.campaign.FaultCampaign` is active).
        remap_count: Successful fault-triggered re-mappings.
        remap_retry_count: Re-mapping retry attempts (beyond each
            recovery's immediate attempt).
        streaming: Opt-in bounded-memory mode (see
            ``RuntimeSimulator(streaming_stats=True)``).  Terminal
            records are folded into O(1) counters by :meth:`retire` and
            dropped from :attr:`apps`, so a long open-ended run does not
            accumulate one record per arrival.  The counting properties
            (``completed_count`` etc.) combine the folded counters with
            whatever records are still live, so they read identically in
            both modes; only the per-app detail (:mod:`repro.runtime.export`
            CSVs) requires the legacy default.
    """

    apps: Dict[int, AppRecord] = field(default_factory=dict)
    total_time_s: float = 0.0
    peak_psn_pct: float = 0.0
    avg_psn_pct: float = 0.0
    total_ve_count: int = 0
    compaction_count: int = 0
    reactive_move_count: int = 0
    fault_count: int = 0
    remap_count: int = 0
    remap_retry_count: int = 0
    #: Optional time series of ``(time_s, chip_peak_psn_pct,
    #: occupied_tiles)`` snapshots, filled when the simulator runs with
    #: ``record_trace=True``.
    trace: List[Tuple[float, float, int]] = field(default_factory=list)
    streaming: bool = False
    # Internal accumulators for the time-weighted average.
    _psn_weight: float = 0.0
    _psn_accum: float = 0.0
    # Folded counters of retired records (streaming mode only).
    _retired: Dict[str, int] = field(default_factory=dict)

    def retire(self, app_id: int) -> None:
        """Fold one *terminal* record into O(1) counters and drop it.

        A no-op outside streaming mode (and for unknown or already
        retired ids), so the simulator can call it unconditionally at
        every terminal transition.
        """
        if not self.streaming:
            return
        record = self.apps.pop(app_id, None)
        if record is None:
            return
        if not (record.completed or record.dropped or record.failed):
            raise ValueError(
                f"app {app_id} is not terminal; only finished, dropped or "
                "failed records can be retired"
            )
        folded = self._retired
        for name, hit in (
            ("completed", record.completed),
            ("dropped", record.dropped),
            ("failed", record.failed),
            ("degraded", record.degraded),
            ("deadline_met", record.met_deadline),
        ):
            if hit:
                folded[name] = folded.get(name, 0) + 1
        folded["migrated_tasks"] = (
            folded.get("migrated_tasks", 0) + record.migrated_tasks
        )

    @property
    def retired_count(self) -> int:
        """Records folded away by streaming mode (0 in legacy mode)."""
        return self._retired.get("completed", 0) + self._retired.get(
            "dropped", 0
        ) + self._retired.get("failed", 0)

    @property
    def completed_count(self) -> int:
        return self._retired.get("completed", 0) + sum(
            1 for a in self.apps.values() if a.completed
        )

    @property
    def dropped_count(self) -> int:
        return self._retired.get("dropped", 0) + sum(
            1 for a in self.apps.values() if a.dropped
        )

    @property
    def failed_count(self) -> int:
        """Applications abandoned after fault-recovery retries ran out."""
        return self._retired.get("failed", 0) + sum(
            1 for a in self.apps.values() if a.failed
        )

    @property
    def degraded_count(self) -> int:
        """Applications that completed despite fault-triggered re-maps."""
        return self._retired.get("degraded", 0) + sum(
            1 for a in self.apps.values() if a.degraded
        )

    @property
    def deadline_met_count(self) -> int:
        return self._retired.get("deadline_met", 0) + sum(
            1 for a in self.apps.values() if a.met_deadline
        )

    @property
    def total_migrated_tasks(self) -> int:
        return self._retired.get("migrated_tasks", 0) + sum(
            a.migrated_tasks for a in self.apps.values()
        )

    def record_psn_interval(
        self, duration_s: float, occupied_avg_psn: List[float], peak_pct: float
    ) -> None:
        """Fold one inter-event interval into the PSN statistics."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        self.peak_psn_pct = max(self.peak_psn_pct, peak_pct)
        if occupied_avg_psn and duration_s > 0:
            weight = duration_s * len(occupied_avg_psn)
            self._psn_accum += duration_s * sum(occupied_avg_psn)
            self._psn_weight += weight
            self.avg_psn_pct = self._psn_accum / self._psn_weight
