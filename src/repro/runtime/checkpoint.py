"""Checkpointing: the in-model cost model and on-disk campaign payloads.

Two related concerns live here:

* :class:`CheckpointPolicy` - the paper's checkpoint/rollback *cost
  model* (Sections 4.5, 5.1).  Applications are checkpointed
  periodically so that a voltage emergency (VE) can be corrected by
  rolling back to the last checkpoint.  The paper assumes a 1 ms
  checkpoint period with ~256 cycles of checkpointing overhead, and
  ~10000 cycles to restore state after an error.  A rollback
  additionally re-executes the work done since the last checkpoint -
  half a period in expectation.

* :func:`save_payload` / :func:`load_payload` - versioned, checksummed
  JSON envelopes for *our own* crash-safe state (campaign progress in
  :mod:`repro.harness.supervisor`).  Every payload is wrapped in an
  envelope carrying a schema name, an integer schema version, and a
  SHA-256 digest of the canonical payload encoding; loading a file that
  is unreadable, truncated, tampered with, or written by a different
  schema/version raises
  :class:`~repro.harness.errors.CheckpointCorrupt` instead of returning
  garbage.  Writes are atomic (temp file + ``os.replace``) so a SIGKILL
  mid-write never leaves a half-written checkpoint behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any

from repro.harness.errors import CheckpointCorrupt


@dataclass(frozen=True)
class CheckpointPolicy:
    """Costs of periodic checkpointing and VE-triggered rollbacks.

    Attributes:
        period_s: Checkpoint interval in seconds.
        checkpoint_cycles: Overhead of taking one checkpoint.
        rollback_cycles: Overhead of restoring state after an error.
    """

    period_s: float = 1e-3
    checkpoint_cycles: float = 256.0
    rollback_cycles: float = 10000.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.checkpoint_cycles < 0 or self.rollback_cycles < 0:
            raise ValueError("overheads must be non-negative")

    def execution_dilation(self, frequency_hz: float) -> float:
        """Multiplier on execution time from periodic checkpointing.

        One checkpoint of ``checkpoint_cycles`` is taken every period.
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        overhead_s = self.checkpoint_cycles / frequency_hz
        return 1.0 + overhead_s / self.period_s

    def rollback_penalty_s(self, frequency_hz: float) -> float:
        """Wall-clock time lost to one voltage emergency.

        Restore overhead plus the expected half checkpoint period of
        re-executed work.
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.rollback_cycles / frequency_hz + 0.5 * self.period_s


# ----------------------------------------------------------------------
# Versioned on-disk payloads
# ----------------------------------------------------------------------

#: Keys every checkpoint envelope must carry.
_ENVELOPE_KEYS = ("digest", "payload", "schema", "version")


def payload_digest(payload: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``.

    Canonical means sorted keys and minimal separators, so the digest is
    independent of formatting and insertion order.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def dump_payload(payload: Any, schema: str, version: int) -> str:
    """Serialise ``payload`` into its versioned, checksummed envelope."""
    envelope = {
        "digest": payload_digest(payload),
        "payload": payload,
        "schema": schema,
        "version": int(version),
    }
    return json.dumps(envelope, sort_keys=True, indent=2) + "\n"


def save_payload(path: str, payload: Any, schema: str, version: int) -> None:
    """Atomically write a versioned, checksummed payload to ``path``.

    The envelope is written to ``<path>.tmp`` first and moved into place
    with ``os.replace``, so readers only ever see a complete file.
    """
    text = dump_payload(payload, schema, version)
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_payload(path: str, schema: str, version: int) -> Any:
    """Load and validate a payload written by :func:`save_payload`.

    Raises:
        CheckpointCorrupt: when the file is missing or unreadable, is
            not a JSON envelope, was written by a different schema or
            version, or its content digest does not match the payload.
    """

    def corrupt(reason: str, **context: Any) -> CheckpointCorrupt:
        return CheckpointCorrupt(
            f"checkpoint rejected: {reason}", path=path, **context
        )

    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise corrupt("file unreadable", error=str(exc)) from exc
    if not text:
        raise corrupt("file is empty", size_b=0)
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        # A decode error at the end of the buffer is the signature of a
        # torn write (truncated envelope); one mid-file is tampering or
        # an overwrite.  An unterminated string also means the parser
        # consumed to EOF hunting for the closing quote - the reported
        # position is the string's *start*, so check the message too.
        truncated = exc.pos >= len(text.rstrip()) or exc.msg.startswith(
            "Unterminated string"
        )
        reason = "envelope truncated" if truncated else "not valid JSON"
        raise corrupt(
            reason,
            error=exc.msg,
            offset=exc.pos,
            line=exc.lineno,
            column=exc.colno,
            size_b=len(text.encode("utf-8")),
        ) from exc
    if not isinstance(envelope, dict):
        raise corrupt("envelope is not an object")
    missing = [key for key in _ENVELOPE_KEYS if key not in envelope]
    if missing:
        raise corrupt("envelope keys missing", missing=tuple(missing))
    if envelope["schema"] != schema:
        raise corrupt(
            "schema mismatch", expected=schema, found=envelope["schema"]
        )
    if envelope["version"] != int(version):
        raise corrupt(
            "version mismatch", expected=int(version),
            found=envelope["version"],
        )
    payload = envelope["payload"]
    digest = payload_digest(payload)
    if digest != envelope["digest"]:
        raise corrupt(
            "content digest mismatch", expected=envelope["digest"],
            computed=digest,
        )
    return payload
