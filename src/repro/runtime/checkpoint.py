"""Checkpoint/rollback fault-handling cost model (paper Sections 4.5, 5.1).

Applications are checkpointed periodically so that a voltage emergency
(VE) can be corrected by rolling back to the last checkpoint.  The paper
assumes a 1 ms checkpoint period with ~256 cycles of checkpointing
overhead, and ~10000 cycles to restore state after an error.  A rollback
additionally re-executes the work done since the last checkpoint - half
a period in expectation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckpointPolicy:
    """Costs of periodic checkpointing and VE-triggered rollbacks.

    Attributes:
        period_s: Checkpoint interval in seconds.
        checkpoint_cycles: Overhead of taking one checkpoint.
        rollback_cycles: Overhead of restoring state after an error.
    """

    period_s: float = 1e-3
    checkpoint_cycles: float = 256.0
    rollback_cycles: float = 10000.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.checkpoint_cycles < 0 or self.rollback_cycles < 0:
            raise ValueError("overheads must be non-negative")

    def execution_dilation(self, frequency_hz: float) -> float:
        """Multiplier on execution time from periodic checkpointing.

        One checkpoint of ``checkpoint_cycles`` is taken every period.
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        overhead_s = self.checkpoint_cycles / frequency_hz
        return 1.0 + overhead_s / self.period_s

    def rollback_penalty_s(self, frequency_hz: float) -> float:
        """Wall-clock time lost to one voltage emergency.

        Restore overhead plus the expected half checkpoint period of
        re-executed work.
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        return self.rollback_cycles / frequency_hz + 0.5 * self.period_s
