"""``python -m repro service`` - overload-resilient service campaigns.

Usage::

    python -m repro service --checkpoint svc.json               # run
    python -m repro service --checkpoint svc.json --resume      # resume
    python -m repro service --checkpoint svc.json --status      # inspect
    python -m repro service --checkpoint svc.json \\
        --framework PARM+PANR --arrival mmpp --rate 6 \\
        --burst-rate 24 --epochs 8 --epoch-s 2.0 --seed 7 \\
        --json-out traffic.json

Exit codes: ``0`` - the campaign ran (or resumed) to completion;
``1`` - an epoch exhausted its retry budget; ``2`` - configuration or
checkpoint error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.faults.recovery import RecoveryPolicy
from repro.harness.errors import CheckpointCorrupt, ConfigError, ReproError
from repro.harness.supervisor import SupervisorPolicy
from repro.runtime.service.arrivals import (
    ArrivalProcess,
    DiurnalProcess,
    MmppProcess,
    PoissonProcess,
)
from repro.runtime.service.campaign import ServiceCampaign, traffic_json
from repro.runtime.service.config import ServiceConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro service",
        description=(
            "Run a long-running service campaign with open-ended "
            "arrivals, admission control and load shedding "
            "(see docs/robustness.md)"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        required=True,
        metavar="PATH",
        help="epoch checkpoint file (written after every epoch)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore checkpointed epochs instead of re-executing them",
    )
    parser.add_argument(
        "--status",
        action="store_true",
        help="print checkpoint progress and exit without running",
    )
    parser.add_argument(
        "--framework",
        default="PARM+PANR",
        metavar="NAME",
        help="evaluation framework (default: %(default)s)",
    )
    parser.add_argument(
        "--workload",
        default="mixed",
        choices=("compute", "communication", "mixed"),
        help="benchmark pool (default: %(default)s)",
    )
    parser.add_argument(
        "--arrival",
        default="poisson",
        choices=("poisson", "mmpp", "diurnal"),
        help="arrival process shape (default: %(default)s)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=4.0,
        metavar="HZ",
        help="arrival rate: Poisson rate, MMPP calm rate, or diurnal "
        "base rate (default: %(default)s)",
    )
    parser.add_argument(
        "--burst-rate",
        type=float,
        default=None,
        metavar="HZ",
        help="MMPP burst-phase rate (default: 4x --rate)",
    )
    parser.add_argument(
        "--epochs",
        type=int,
        default=4,
        metavar="N",
        help="supervised epochs (default: %(default)s)",
    )
    parser.add_argument(
        "--epoch-s",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="simulated seconds per epoch (default: %(default)s)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="SEED",
        help="root seed of every derived stream (default: %(default)s)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retry budget per epoch beyond the first attempt "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        help="write the traffic payload as canonical JSON",
    )
    return parser


def build_arrival(args: argparse.Namespace) -> ArrivalProcess:
    if args.arrival == "poisson":
        return PoissonProcess(rate_hz=args.rate)
    if args.arrival == "mmpp":
        burst = args.burst_rate if args.burst_rate else 4.0 * args.rate
        return MmppProcess(
            calm_rate_hz=args.rate,
            burst_rate_hz=burst,
            calm_dwell_s=2.0,
            burst_dwell_s=0.5,
        )
    return DiurnalProcess(base_rate_hz=args.rate, period_s=8.0)


def build_config(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        framework=args.framework,
        workload=args.workload,
        arrival=build_arrival(args),
        epoch_duration_s=args.epoch_s,
        epochs=args.epochs,
        root_seed=args.seed,
    )


def _print_summary(payload: dict) -> None:
    totals = payload["totals"]
    print(
        f"service finished: {totals['arrived']} arrived, "
        f"{totals['completed']} completed, "
        f"drop {totals['drop_fraction']:.3f}, "
        f"shed {totals['shed_fraction']:.3f}, "
        f"util {totals['utilization_fraction']:.3f}, "
        f"peak PSN {totals['peak_psn_pct']:.2f}%"
    )
    for name, row in payload["classes"].items():
        print(
            f"  {name}: completed {row['counters']['completed']}, "
            f"SLA miss {row['sla_miss_fraction']:.3f}, "
            f"wait p95 {row['wait_p95_s']:.3f}s"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        campaign = ServiceCampaign(
            build_config(args),
            args.checkpoint,
            policy=SupervisorPolicy(
                recovery=RecoveryPolicy(max_remap_retries=args.retries)
            ),
        )
    except (ConfigError, ValueError) as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2

    if args.status:
        try:
            status = campaign.status()
        except CheckpointCorrupt as exc:
            print(f"checkpoint error: {exc}", file=sys.stderr)
            return 2
        print(f"checkpoint: {status['checkpoint']}")
        if not status["exists"]:
            print("no checkpoint on disk; every epoch is pending")
        print(
            f"epochs: {status['epochs']}  completed: {status['completed']}  "
            f"failed: {status['failed']}"
        )
        return 0

    try:
        payload = campaign.run(resume=args.resume)
    except ConfigError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2
    except CheckpointCorrupt as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"service campaign failed: {exc}", file=sys.stderr)
        return 1

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(traffic_json(payload))
        print(f"wrote {args.json_out}")
    _print_summary(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())
