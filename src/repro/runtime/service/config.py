"""Service configuration: priority classes and the robustness control plane.

A :class:`ServiceConfig` is the complete, JSON-serialisable description
of one service run: which (mapper, router) framework serves the
traffic, the arrival process, the priority classes (SLA slack, queue
share, best-effort flag), the admission/shedding policies, the
re-admission backoff (riding :class:`~repro.faults.recovery.
RecoveryPolicy`), and an optional scheduled fault script.  Its
:meth:`~ServiceConfig.spec` is canonical (sorted keys) and is hashed
into every epoch cell's identity, so two runs with the same config and
seed are the same run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.faults.recovery import RecoveryPolicy
from repro.harness.errors import ConfigError
from repro.runtime.service.arrivals import (
    ArrivalProcess,
    arrival_process_from_spec,
)

#: Fault kinds the service's scheduled fault script understands.
SERVICE_FAULT_KINDS = (
    "tile_fail",
    "router_fail",
    "sensor_dead",
    "sensor_stuck",
)


@dataclass(frozen=True)
class ServiceClass:
    """One priority class of the service.

    Attributes:
        name: Class label (also the stats key).
        share_fraction: Probability an arrival belongs to this class;
            shares must sum to 1 across the configured classes.
        slack_scale: Mean deadline slack as a multiple of the profile's
            fastest WCET (the per-arrival slack jitters +-25 % around
            it).  Smaller means a tighter SLA.
        best_effort: Best-effort work has no SLA protection: it is the
            first to be shed under saturation or PSN emergencies and
            may be preempted so an SLA-class head can map.
        queue_cap: Admission bound on this class's waiting queue.
    """

    name: str
    share_fraction: float
    slack_scale: float
    best_effort: bool = False
    queue_cap: int = 32

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("class name must be non-empty")
        if not 0.0 < self.share_fraction <= 1.0:
            raise ConfigError(
                "share_fraction must lie in (0, 1]",
                cls=self.name,
                share_fraction=self.share_fraction,
            )
        if not self.slack_scale >= 1.0:
            raise ConfigError(
                "slack_scale must be >= 1",
                cls=self.name,
                slack_scale=self.slack_scale,
            )
        if self.queue_cap < 1:
            raise ConfigError(
                "queue_cap must be positive",
                cls=self.name,
                queue_cap=self.queue_cap,
            )

    def spec(self) -> Dict[str, Any]:
        return {
            "best_effort": bool(self.best_effort),
            "name": self.name,
            "queue_cap": int(self.queue_cap),
            "share_fraction": float(self.share_fraction),
            "slack_scale": float(self.slack_scale),
        }


#: Default three-tier class mix: latency-critical, standard, batch.
DEFAULT_CLASSES = (
    ServiceClass("gold", share_fraction=0.2, slack_scale=2.5, queue_cap=16),
    ServiceClass("silver", share_fraction=0.5, slack_scale=5.0, queue_cap=32),
    ServiceClass(
        "batch",
        share_fraction=0.3,
        slack_scale=10.0,
        best_effort=True,
        queue_cap=64,
    ),
)


@dataclass(frozen=True)
class AdmissionPolicy:
    """When an arriving application is admitted to its class queue.

    Attributes:
        reject_infeasible: Reject on arrival when no operating point
            can meet the deadline even on an idle chip (the queued app
            would only be dropped later).
        max_total_queue: Chip-wide backlog bound across all classes;
            arrivals beyond it are rejected regardless of class caps.
        max_readmit: Bound on applications awaiting re-admission
            (preempted, shed, or fault-evicted).  Evictions past the
            bound fail the application immediately instead of queueing
            it - without this, sustained overload grows the re-admission
            set without limit and the state stops being O(1).
    """

    reject_infeasible: bool = True
    max_total_queue: int = 96
    max_readmit: int = 64

    def __post_init__(self) -> None:
        if self.max_total_queue < 1:
            raise ConfigError(
                "max_total_queue must be positive",
                max_total_queue=self.max_total_queue,
            )
        if self.max_readmit < 1:
            raise ConfigError(
                "max_readmit must be positive", max_readmit=self.max_readmit
            )

    def spec(self) -> Dict[str, Any]:
        return {
            "max_readmit": int(self.max_readmit),
            "max_total_queue": int(self.max_total_queue),
            "reject_infeasible": bool(self.reject_infeasible),
        }


@dataclass(frozen=True)
class SheddingPolicy:
    """When the service sheds best-effort load to protect SLA classes.

    Attributes:
        backlog_fraction: Shed queued best-effort work when the total
            backlog exceeds this fraction of ``max_total_queue``.
        psn_threshold_pct: Shed *running* best-effort work while the
            worst trusted sensor reading exceeds this PSN level (a
            voltage-emergency guard above the paper's 5 % margin).
        max_shed_per_event: Bound on running apps shed per refresh, so
            one noisy interval cannot flush the chip.
    """

    backlog_fraction: float = 0.75
    psn_threshold_pct: float = 6.5
    max_shed_per_event: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.backlog_fraction <= 1.0:
            raise ConfigError(
                "backlog_fraction must lie in (0, 1]",
                backlog_fraction=self.backlog_fraction,
            )
        if self.psn_threshold_pct <= 0:
            raise ConfigError(
                "psn_threshold_pct must be positive",
                psn_threshold_pct=self.psn_threshold_pct,
            )
        if self.max_shed_per_event < 1:
            raise ConfigError(
                "max_shed_per_event must be positive",
                max_shed_per_event=self.max_shed_per_event,
            )

    def spec(self) -> Dict[str, Any]:
        return {
            "backlog_fraction": float(self.backlog_fraction),
            "max_shed_per_event": int(self.max_shed_per_event),
            "psn_threshold_pct": float(self.psn_threshold_pct),
        }


@dataclass(frozen=True)
class ServiceFault:
    """One scheduled fault in the service's fault script."""

    time_s: float
    kind: str
    target: int
    value_pct: float = 0.0

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigError("fault time must be non-negative")
        if self.kind not in SERVICE_FAULT_KINDS:
            raise ConfigError(
                "unknown service fault kind",
                kind=self.kind,
                known=SERVICE_FAULT_KINDS,
            )
        if self.target < 0:
            raise ConfigError("fault target must be a tile id")

    def spec(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "target": int(self.target),
            "time_s": float(self.time_s),
            "value_pct": float(self.value_pct),
        }


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one service run depends on (seed included).

    Attributes:
        framework: Evaluation framework name (e.g. ``"PARM+PANR"``).
        workload: Benchmark pool (``compute``/``communication``/
            ``mixed``).
        arrival: Open-ended arrival process.
        classes: Priority classes; shares must sum to 1.
        admission: Admission-control policy.
        shedding: Load-shedding policy.
        recovery: Re-admission retry/backoff budget for preempted,
            shed, and fault-evicted applications.
        epoch_duration_s: Simulated seconds per supervised epoch (the
            checkpoint granularity).
        epochs: Number of epochs in the campaign.
        root_seed: Root of every derived seed stream.
        contention_scale: NoC-contention proxy strength: execution
            estimates scale by ``1 + contention_scale *
            occupied_fraction`` (the service loop trades the per-flow
            analytical NoC for this calibrated occupancy proxy).
        faults: Scheduled fault script (sorted by time).
    """

    framework: str = "PARM+PANR"
    workload: str = "mixed"
    arrival: ArrivalProcess = None  # type: ignore[assignment]
    classes: Tuple[ServiceClass, ...] = DEFAULT_CLASSES
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    shedding: SheddingPolicy = field(default_factory=SheddingPolicy)
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    epoch_duration_s: float = 2.0
    epochs: int = 4
    root_seed: int = 0
    contention_scale: float = 0.5
    faults: Tuple[ServiceFault, ...] = ()

    def __post_init__(self) -> None:
        from repro.exp.frameworks import framework as lookup_framework

        try:
            lookup_framework(self.framework)  # validates the name
        except KeyError as exc:
            raise ConfigError(
                "unknown framework", framework=self.framework, error=str(exc)
            ) from exc
        if self.workload not in ("compute", "communication", "mixed"):
            raise ConfigError("unknown workload", workload=self.workload)
        if self.arrival is None:
            raise ConfigError("an arrival process is required")
        if not self.classes:
            raise ConfigError("at least one priority class is required")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ConfigError("class names must be unique", names=names)
        share = sum(c.share_fraction for c in self.classes)
        if abs(share - 1.0) > 1e-9:
            raise ConfigError(
                "class shares must sum to 1", share_sum=share
            )
        if not self.epoch_duration_s > 0:
            raise ConfigError(
                "epoch_duration_s must be positive",
                epoch_duration_s=self.epoch_duration_s,
            )
        if self.epochs < 1:
            raise ConfigError("epochs must be positive", epochs=self.epochs)
        if self.contention_scale < 0:
            raise ConfigError(
                "contention_scale must be non-negative",
                contention_scale=self.contention_scale,
            )
        if any(
            self.faults[i].time_s > self.faults[i + 1].time_s
            for i in range(len(self.faults) - 1)
        ):
            raise ConfigError("fault script must be sorted by time")

    # ------------------------------------------------------------------

    @property
    def class_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.classes)

    def cls(self, name: str) -> ServiceClass:
        for c in self.classes:
            if c.name == name:
                return c
        raise ConfigError("unknown class", cls=name)

    @property
    def horizon_s(self) -> float:
        return self.epoch_duration_s * self.epochs

    def spec(self) -> Dict[str, Any]:
        """Canonical JSON description (hashed into epoch cell keys)."""
        return {
            "admission": self.admission.spec(),
            "arrival": self.arrival.spec(),
            "classes": [c.spec() for c in self.classes],
            "contention_scale": float(self.contention_scale),
            "epoch_duration_s": float(self.epoch_duration_s),
            "epochs": int(self.epochs),
            "faults": [f.spec() for f in self.faults],
            "framework": self.framework,
            "recovery": {
                "backoff_factor": float(self.recovery.backoff_factor),
                "backoff_initial_s": float(self.recovery.backoff_initial_s),
                "max_remap_retries": int(self.recovery.max_remap_retries),
                "max_total_remaps": int(self.recovery.max_total_remaps),
                "per_task_restart_cost_s": float(
                    self.recovery.per_task_restart_cost_s
                ),
            },
            "root_seed": int(self.root_seed),
            "shedding": self.shedding.spec(),
            "workload": self.workload,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "ServiceConfig":
        """Rebuild a config from its :meth:`spec` dictionary."""
        return cls(
            framework=spec["framework"],
            workload=spec["workload"],
            arrival=arrival_process_from_spec(spec["arrival"]),
            classes=tuple(
                ServiceClass(
                    name=c["name"],
                    share_fraction=c["share_fraction"],
                    slack_scale=c["slack_scale"],
                    best_effort=c["best_effort"],
                    queue_cap=c["queue_cap"],
                )
                for c in spec["classes"]
            ),
            admission=AdmissionPolicy(**spec["admission"]),
            shedding=SheddingPolicy(**spec["shedding"]),
            recovery=RecoveryPolicy(**spec["recovery"]),
            epoch_duration_s=spec["epoch_duration_s"],
            epochs=spec["epochs"],
            root_seed=spec["root_seed"],
            contention_scale=spec["contention_scale"],
            faults=tuple(
                ServiceFault(**f) for f in spec.get("faults", ())
            ),
        )
