"""Epoch-chunked, crash-safe execution of a service run.

A service run is an open-ended simulation; checkpointing it as one
giant cell would lose everything to a SIGKILL near the end.  Instead
the run is chunked into epochs: each :class:`ServiceEpochCell` is a
*pure function* ``(config, entry state) -> exit state`` whose identity
content-hashes both inputs, executed under
:class:`~repro.harness.supervisor.CampaignSupervisor` against one
shared checkpoint file.  Because epoch N's cell key embeds epoch N-1's
exit state, a resumed campaign restores the exact chain of states and
emits traffic JSON byte-identical to an uninterrupted run - the
property the ``service-smoke`` CI job kills a run mid-flight to assert.

The supervisor keeps every record it loads and re-saves all of them on
each commit, so the one-cell-per-epoch pattern accumulates all epochs
in a single file (the same pattern the sequential verifier uses for
its replica batches).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.harness.errors import ConfigError, ReproError
from repro.harness.supervisor import CampaignSupervisor, SupervisorPolicy
from repro.runtime.checkpoint import load_payload
from repro.runtime.service.config import ServiceConfig
from repro.runtime.service.engine import ServiceEngine, ServiceState

#: Schema name / version of the service checkpoint and traffic payloads.
SERVICE_SCHEMA = "parm-service"
SERVICE_VERSION = 1

#: Hex digits of the cell content hash kept as the cell key.
_KEY_HEX_DIGITS = 16


def _canonical(data: Dict[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ServiceEpochCell:
    """One supervised epoch: ``(config, entry state) -> exit state``.

    Attributes:
        config_json: Canonical :meth:`ServiceConfig.spec` JSON.
        epoch: Index of the epoch this cell advances past.
        entry_state_json: Canonical entry :meth:`ServiceState.to_json`
            JSON; hashing it into the key chains the cells, so a resume
            can only reuse an epoch whose entire history matches.
    """

    config_json: str
    epoch: int
    entry_state_json: str

    def spec(self) -> Dict[str, Any]:
        return {
            "config": json.loads(self.config_json),
            "entry_state": json.loads(self.entry_state_json),
            "epoch": int(self.epoch),
        }

    @property
    def key(self) -> str:
        canonical = _canonical(
            {"schema": SERVICE_SCHEMA, "spec": self.spec()}
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[
            :_KEY_HEX_DIGITS
        ]

    @property
    def label(self) -> str:
        framework = json.loads(self.config_json).get("framework", "?")
        return f"service/{framework}@epoch{self.epoch}"

    def validate(self) -> None:
        config = ServiceConfig.from_spec(json.loads(self.config_json))
        if not 0 <= self.epoch < config.epochs:
            raise ConfigError(
                "epoch index outside the campaign",
                epoch=self.epoch,
                epochs=config.epochs,
            )
        entry = json.loads(self.entry_state_json)
        if int(entry["epoch"]) != self.epoch:
            raise ConfigError(
                "entry state does not match the cell's epoch",
                epoch=self.epoch,
                state_epoch=entry["epoch"],
            )


#: Per-process engine memo keyed by the config's canonical JSON.  An
#: engine is a deterministic pure function of its config (plus chip
#: immutables built from constants), so reusing one per process is safe
#: and skips the profile-library warm-up on every epoch.
_ENGINE_CACHE: Dict[str, ServiceEngine] = {}  # parmlint: ok[worker-safety] - deterministic per-process memo


def run_service_epoch(cell: ServiceEpochCell) -> Dict[str, Any]:
    """Cell runner: advance the service by one epoch.

    Module-level (and registered in
    :data:`repro.perf.parallel.WORKER_ROOTS`) so the supervisor can ship
    it to worker processes.
    """
    engine = _ENGINE_CACHE.get(cell.config_json)
    if engine is None:
        config = ServiceConfig.from_spec(json.loads(cell.config_json))
        engine = ServiceEngine(config)
        # Deterministic per-process memo: the engine is a pure function
        # of the config JSON (content-hashed into the cell key), so
        # every worker computes the identical entry and epoch results
        # cannot depend on which worker ran which epoch.
        # parmlint: ok[worker-safety] - deterministic per-process memo
        _ENGINE_CACHE[cell.config_json] = engine
    else:
        config = engine.config
    state = ServiceState.from_json(
        json.loads(cell.entry_state_json), config
    )
    engine.run_epoch(state)
    return {
        "epoch": int(cell.epoch),
        "exit_state": state.to_json(),
        "key": cell.key,
    }


class ServiceCampaign:
    """Runs a :class:`ServiceConfig` epoch-by-epoch under supervision.

    Args:
        config: The service description.
        checkpoint_path: Shared checkpoint file; every completed epoch
            is committed here, so a SIGKILL loses at most the in-flight
            epoch and ``run(resume=True)`` replays nothing finished.
        policy: Supervisor retry/backoff/watchdog limits.
        sleep_fn: Backoff sleep hook (``None`` records without
            sleeping).
    """

    def __init__(
        self,
        config: ServiceConfig,
        checkpoint_path: str,
        policy: Optional[SupervisorPolicy] = None,
        sleep_fn: Optional[Callable[[float], None]] = None,
    ) -> None:
        self._config = config
        self._checkpoint_path = checkpoint_path
        self._policy = policy or SupervisorPolicy()
        self._sleep_fn = sleep_fn
        self._config_json = _canonical(config.spec())

    @property
    def config(self) -> ServiceConfig:
        return self._config

    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Checkpoint progress without running anything."""
        summary: Dict[str, Any] = {
            "checkpoint": self._checkpoint_path,
            "exists": os.path.exists(self._checkpoint_path),
            "epochs": int(self._config.epochs),
            "completed": 0,
            "failed": 0,
        }
        if not summary["exists"]:
            return summary
        payload = load_payload(
            self._checkpoint_path,
            schema="parm-campaign",
            version=1,
        )
        for record in payload.get("cells", {}).values():
            status = record.get("status")
            if status in summary:
                summary[status] += 1
        return summary

    def run(self, resume: bool = False) -> Dict[str, Any]:
        """Execute (or resume) every epoch; return the traffic payload.

        Raises:
            ReproError: when an epoch exhausts its retry budget (with
                the supervisor's full attempt provenance in context).
        """
        state = ServiceState(self._config)
        for epoch in range(self._config.epochs):
            cell = ServiceEpochCell(
                config_json=self._config_json,
                epoch=epoch,
                entry_state_json=_canonical(state.to_json()),
            )
            supervisor = CampaignSupervisor(
                [cell],
                self._checkpoint_path,
                policy=self._policy,
                cell_runner=run_service_epoch,
                sleep_fn=self._sleep_fn,
            )
            # Epochs after the first must re-read the shared checkpoint
            # (it now holds their predecessors), hence resume=True.
            outcome = supervisor.run(
                resume=resume or epoch > 0, retry_failed=True
            ).outcomes[0]
            if not outcome.completed:
                attempts = [a.to_json() for a in outcome.attempts]
                raise ReproError(
                    "service epoch failed after exhausting its retries",
                    epoch=epoch,
                    cell=cell.label,
                    key=cell.key,
                    attempts=attempts,
                )
            state = ServiceState.from_json(
                outcome.result["exit_state"], self._config
            )
        return self.traffic_payload(state)

    # ------------------------------------------------------------------

    def traffic_payload(self, state: ServiceState) -> Dict[str, Any]:
        """The run's deterministic traffic report payload.

        Contains the full final state, so byte-comparing two payloads
        compares the entire visible history of the service.
        """
        stats = state.stats
        classes: Dict[str, Any] = {}
        for name in self._config.class_names:
            c = stats.cls(name)
            arrived = c.counters["arrived"]
            classes[name] = {
                "counters": {
                    k: int(v) for k, v in sorted(c.counters.items())
                },
                "drop_fraction": (
                    (c.counters["rejected"] + c.counters["dropped"])
                    / arrived
                    if arrived
                    else 0.0
                ),
                "shed_fraction": (
                    c.counters["shed"] / arrived if arrived else 0.0
                ),
                "sla_miss_fraction": (
                    c.counters["sla_missed"]
                    / (c.counters["sla_met"] + c.counters["sla_missed"])
                    if (c.counters["sla_met"] + c.counters["sla_missed"])
                    else 0.0
                ),
                "wait_mean_s": c.wait.moments.mean_s,
                "wait_p95_s": c.wait.quantile_s(0.95),
                "sojourn_mean_s": c.sojourn.moments.mean_s,
                "sojourn_p99_s": c.sojourn.quantile_s(0.99),
            }
        return {
            "classes": classes,
            "config": json.loads(self._config_json),
            "final_state": state.to_json(),
            "schema": SERVICE_SCHEMA,
            "totals": {
                "arrived": stats.total("arrived"),
                "avg_psn_pct": stats.avg_psn_pct,
                "completed": stats.total("completed"),
                "drop_fraction": stats.rate_fraction("rejected")
                + stats.rate_fraction("dropped"),
                "fault_count": int(stats.fault_count),
                "peak_psn_pct": stats.peak_psn_pct,
                "shed_events": int(stats.shed_events),
                "shed_fraction": stats.rate_fraction("shed"),
                "utilization_fraction": stats.utilization_fraction,
                "ve_count": int(stats.ve_count),
            },
            "version": SERVICE_VERSION,
        }


def traffic_json(payload: Dict[str, Any]) -> str:
    """Canonical byte-stable serialisation of a traffic payload."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"
