"""Seeded open-ended arrival processes for the service runtime.

Three load shapes, all driven by one shared :class:`UniformStream` so
every draw is a deterministic function of (seed, draw index):

* :class:`PoissonProcess` - memoryless arrivals at a fixed rate;
* :class:`MmppProcess` - a 2-state Markov-modulated Poisson process
  (calm/burst phases with exponential dwell times), the standard
  bursty-traffic model;
* :class:`DiurnalProcess` - a sinusoidal rate curve sampled by
  thinning against the peak rate (Lewis & Shedler), the classic
  day/night load shape compressed to simulation seconds.

A process object is immutable configuration plus a tiny mutable phase
(:meth:`state_json` / :meth:`load_state`), so an epoch boundary can
freeze it into the service state and the next epoch resumes the exact
stochastic path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.harness.errors import ConfigError

#: Uniform draws fetched per vectorised RNG call.
_BLOCK = 4096


class UniformStream:
    """Blocked uniform [0, 1) stream over one seeded generator.

    Scalar ``Generator`` calls cost ~1 us each; at a million arrivals
    (several draws per arrival) that overhead dominates the event loop.
    Drawing blocks of :data:`_BLOCK` keeps the stream's value sequence
    identical to repeated scalar ``rng.random()`` calls while amortising
    the call cost ~1000x.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._block = np.empty(0)
        self._cursor = 0

    def next(self) -> float:
        if self._cursor >= self._block.shape[0]:
            self._block = self._rng.random(_BLOCK)
            self._cursor = 0
        value = float(self._block[self._cursor])
        self._cursor += 1
        return value

    def exponential(self, mean_s: float) -> float:
        """Inverse-CDF exponential draw (one uniform consumed)."""
        return -math.log(1.0 - self.next()) * mean_s


class ArrivalProcess:
    """Interface shared by all arrival processes."""

    kind = "abstract"

    def spec(self) -> Dict[str, Any]:
        raise NotImplementedError

    @property
    def peak_rate_hz(self) -> float:
        """Largest instantaneous arrival rate the process can reach."""
        raise NotImplementedError

    def next_gap_s(self, now_s: float, stream: UniformStream) -> float:
        """Draw the gap to the next arrival after ``now_s``."""
        raise NotImplementedError

    # Mutable-phase hooks; stateless processes keep the default.

    def state_json(self) -> Dict[str, Any]:
        return {}

    def load_state(self, state: Dict[str, Any]) -> None:
        pass


@dataclass
class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at a constant ``rate_hz``."""

    rate_hz: float
    kind = "poisson"

    def __post_init__(self) -> None:
        if not self.rate_hz > 0:
            raise ConfigError(
                "arrival rate must be positive", rate_hz=self.rate_hz
            )

    def spec(self) -> Dict[str, Any]:
        return {"kind": self.kind, "rate_hz": float(self.rate_hz)}

    @property
    def peak_rate_hz(self) -> float:
        return self.rate_hz

    def next_gap_s(self, now_s: float, stream: UniformStream) -> float:
        return stream.exponential(1.0 / self.rate_hz)


@dataclass
class MmppProcess(ArrivalProcess):
    """2-state Markov-modulated Poisson process (calm and burst).

    While in phase ``i`` arrivals are Poisson at ``rate{i}_hz`` and the
    phase persists for an exponential dwell with mean ``dwell{i}_s``.
    Both clocks are memoryless, so the competing-exponentials sampler
    below is exact: whichever of (next arrival, phase switch) fires
    first wins, and the loser is simply redrawn.
    """

    calm_rate_hz: float
    burst_rate_hz: float
    calm_dwell_s: float
    burst_dwell_s: float
    kind = "mmpp"

    def __post_init__(self) -> None:
        if self.calm_rate_hz < 0 or not self.burst_rate_hz > 0:
            raise ConfigError(
                "MMPP rates must be non-negative with a positive burst",
                calm_rate_hz=self.calm_rate_hz,
                burst_rate_hz=self.burst_rate_hz,
            )
        if not self.calm_dwell_s > 0 or not self.burst_dwell_s > 0:
            raise ConfigError(
                "MMPP dwell times must be positive",
                calm_dwell_s=self.calm_dwell_s,
                burst_dwell_s=self.burst_dwell_s,
            )
        self._phase = 0  # 0 = calm, 1 = burst

    def spec(self) -> Dict[str, Any]:
        return {
            "burst_dwell_s": float(self.burst_dwell_s),
            "burst_rate_hz": float(self.burst_rate_hz),
            "calm_dwell_s": float(self.calm_dwell_s),
            "calm_rate_hz": float(self.calm_rate_hz),
            "kind": self.kind,
        }

    @property
    def peak_rate_hz(self) -> float:
        return max(self.calm_rate_hz, self.burst_rate_hz)

    def next_gap_s(self, now_s: float, stream: UniformStream) -> float:
        rates = (self.calm_rate_hz, self.burst_rate_hz)
        dwells = (self.calm_dwell_s, self.burst_dwell_s)
        gap = 0.0
        while True:
            rate = rates[self._phase]
            to_switch = stream.exponential(dwells[self._phase])
            if rate > 0:
                to_arrival = stream.exponential(1.0 / rate)
                if to_arrival < to_switch:
                    return gap + to_arrival
            gap += to_switch
            self._phase = 1 - self._phase

    def state_json(self) -> Dict[str, Any]:
        return {"phase": int(self._phase)}

    def load_state(self, state: Dict[str, Any]) -> None:
        self._phase = int(state.get("phase", 0))


@dataclass
class DiurnalProcess(ArrivalProcess):
    """Sinusoidal rate curve sampled by thinning.

    ``rate(t) = base_rate_hz * (1 + amplitude_fraction *
    sin(2*pi*t/period_s))``.  Candidates are drawn at the peak rate and
    accepted with probability ``rate(t)/peak``; rejected candidates
    consume draws but not simulated arrivals, keeping the sampler exact
    for any bounded rate curve.
    """

    base_rate_hz: float
    period_s: float
    amplitude_fraction: float = 0.5
    kind = "diurnal"

    def __post_init__(self) -> None:
        if not self.base_rate_hz > 0 or not self.period_s > 0:
            raise ConfigError(
                "diurnal base rate and period must be positive",
                base_rate_hz=self.base_rate_hz,
                period_s=self.period_s,
            )
        if not 0.0 <= self.amplitude_fraction <= 1.0:
            raise ConfigError(
                "amplitude_fraction must lie in [0, 1]",
                amplitude_fraction=self.amplitude_fraction,
            )

    def spec(self) -> Dict[str, Any]:
        return {
            "amplitude_fraction": float(self.amplitude_fraction),
            "base_rate_hz": float(self.base_rate_hz),
            "kind": self.kind,
            "period_s": float(self.period_s),
        }

    @property
    def peak_rate_hz(self) -> float:
        return self.base_rate_hz * (1.0 + self.amplitude_fraction)

    def rate_hz_at(self, t_s: float) -> float:
        phase = 2.0 * math.pi * (t_s / self.period_s)
        return self.base_rate_hz * (
            1.0 + self.amplitude_fraction * math.sin(phase)
        )

    def next_gap_s(self, now_s: float, stream: UniformStream) -> float:
        peak = self.peak_rate_hz
        t = now_s
        while True:
            t += stream.exponential(1.0 / peak)
            if stream.next() * peak <= self.rate_hz_at(t):
                return t - now_s


def arrival_process_from_spec(spec: Dict[str, Any]) -> ArrivalProcess:
    """Rebuild an arrival process from its :meth:`spec` dictionary."""
    kind = spec.get("kind")
    fields = {k: v for k, v in spec.items() if k != "kind"}
    if kind == "poisson":
        return PoissonProcess(**fields)
    if kind == "mmpp":
        return MmppProcess(**fields)
    if kind == "diurnal":
        return DiurnalProcess(**fields)
    raise ConfigError("unknown arrival process kind", kind=kind)
