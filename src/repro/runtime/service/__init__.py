"""Long-running service runtime: open-ended arrivals at O(1) state.

The package grows :mod:`repro.runtime` from a fixed-sequence replay
(the paper's 20-app Fig. 6-8 traces) into a long-running discrete-event
*service*:

* :mod:`repro.runtime.service.arrivals` - seeded open-ended arrival
  processes (Poisson, bursty MMPP, diurnal load curves);
* :mod:`repro.runtime.service.stats` - bounded-memory incremental
  statistics (P-square streaming percentiles, per-class counters) so a
  campaign can absorb millions of arrivals at constant state;
* :mod:`repro.runtime.service.config` - priority classes with SLA
  deadlines plus the robustness control plane (admission control, load
  shedding, preemption, bounded-backoff re-admission);
* :mod:`repro.runtime.service.engine` - the event loop serving one
  epoch from an explicit, JSON-serialisable :class:`ServiceState`;
* :mod:`repro.runtime.service.campaign` - epoch-chunked execution on
  :class:`~repro.harness.supervisor.CampaignSupervisor` so SIGKILL +
  ``--resume`` is byte-identical, surfaced as ``python -m repro
  service`` (:mod:`repro.runtime.service.cli`).

See docs/robustness.md ("Service mode") for the model and its
determinism contract.
"""

from repro.runtime.service.arrivals import (
    ArrivalProcess,
    arrival_process_from_spec,
)
from repro.runtime.service.config import (
    AdmissionPolicy,
    ServiceClass,
    ServiceConfig,
    SheddingPolicy,
)
from repro.runtime.service.engine import ServiceEngine, ServiceState
from repro.runtime.service.campaign import (
    ServiceCampaign,
    ServiceEpochCell,
    run_service_epoch,
    traffic_json,
)
from repro.runtime.service.stats import ClassStats, P2Quantile, TrafficStats

__all__ = [
    "AdmissionPolicy",
    "ArrivalProcess",
    "ClassStats",
    "P2Quantile",
    "ServiceCampaign",
    "ServiceClass",
    "ServiceConfig",
    "ServiceEngine",
    "ServiceEpochCell",
    "ServiceState",
    "SheddingPolicy",
    "TrafficStats",
    "arrival_process_from_spec",
    "run_service_epoch",
    "traffic_json",
]
