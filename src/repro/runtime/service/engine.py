"""The service event loop: one epoch at a time, O(1) state.

:class:`ServiceEngine` serves an open-ended arrival stream through the
paper's resource managers (PARM or HM) on the real
:class:`~repro.runtime.state.ChipState`, with the robustness control
plane of :mod:`repro.runtime.service.config`: admission control, load
shedding under backlog pressure and PSN emergencies, preemption of
best-effort work, and bounded-backoff re-admission.

Model notes (where the service loop differs from
:class:`~repro.runtime.simulator.RuntimeSimulator`):

* **NoC contention proxy.**  The fixed-sequence simulator re-runs the
  flow-based analytical NoC model on every occupancy change; at
  millions of arrivals that is the dominant cost.  The service loop
  instead scales execution estimates by ``1 + contention_scale *
  occupied_fraction`` and uses the placement's true mean hop distance -
  a calibrated occupancy proxy that keeps mapper effects (PARM's
  placement and Vdd/DoP choices) while staying O(tiles) per refresh.
* **Deferred VE sampling.**  Instead of Poisson-sampling every tile on
  every event, each running app accrues *expected* VE exposure
  (``expected_rate_hz`` at its noisiest tile, integrated over time) and
  one Poisson draw at its exit converts the exposure into emergencies
  and a rollback penalty.  Same distribution, one draw per app.
* **PSN** is evaluated with the calibrated
  :class:`~repro.pdn.fast.FastPsnModel` batch path exactly as the
  simulator does, on every occupancy change.

Determinism: every draw comes from two per-epoch streams derived with
:func:`~repro.harness.seeding.derive_seed` (``service/arrivals`` and
``service/ve``), consumed in event order; the event heap is keyed by
``(time, kind, app_id)`` with no wall clock anywhere.  An epoch is a
pure function of ``(config, entry state)`` - the property the
epoch-chunked campaign checkpointing rides on.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.apps.profiles import FLIT_PAYLOAD_BYTES
from repro.apps.suite import ProfileLibrary
from repro.apps.workload import WorkloadType
from repro.chip.cmp import ChipDescription, default_chip
from repro.harness.errors import ConfigError
from repro.harness.seeding import derive_seed
from repro.pdn.emergencies import MAX_POISSON_MEAN, VoltageEmergencyPolicy
from repro.pdn.fast import BIN_INDEX
from repro.pdn.sensors import SensorFault, SensorNetwork
from repro.pdn.waveforms import ActivityBin
from repro.runtime.checkpoint import CheckpointPolicy
from repro.runtime.service.arrivals import UniformStream
from repro.runtime.service.config import ServiceConfig
from repro.runtime.service.stats import TrafficStats
from repro.runtime.simulator import SimulatorContext
from repro.runtime.state import ChipState

# Event kinds, in same-instant processing order: faults reshape the
# chip first, exits free capacity, retries re-admit, arrivals join last.
_FAULT = 0
_EXIT = 1
_RETRY = 2
_ARRIVAL = 3

#: Physical switching bound of a 5-port router, flits per cycle.
_MAX_ROUTER_RATE = 4.0


class ServiceState:
    """Mutable, JSON-serialisable state of the service between epochs.

    Everything the next epoch needs and nothing that grows with the
    arrival count: the bounded queues, the running set (at most one app
    per tile), the re-admission list, the arrival process phase, and
    the streaming :class:`~repro.runtime.service.stats.TrafficStats`.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.epoch = 0
        self.now_s = 0.0
        self.next_app_id = 0
        self.next_arrival_s = 0.0
        self.arrival_state: Dict[str, Any] = {}
        #: Per class name, FIFO of queued app entries.
        self.queues: Dict[str, List[Dict[str, Any]]] = {
            name: [] for name in config.class_names
        }
        #: Running app entries keyed by app id.
        self.running: Dict[int, Dict[str, Any]] = {}
        #: Re-admission entries keyed by app id.
        self.readmit: Dict[int, Dict[str, Any]] = {}
        self.failed_tiles: List[int] = []
        self.applied_faults = 0
        self.stats = TrafficStats(config.class_names)

    # ------------------------------------------------------------------

    def backlog(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def to_json(self) -> Dict[str, Any]:
        return {
            "applied_faults": int(self.applied_faults),
            "arrival_state": self.arrival_state,
            "epoch": int(self.epoch),
            "failed_tiles": sorted(int(t) for t in self.failed_tiles),
            "next_app_id": int(self.next_app_id),
            "next_arrival_s": float(self.next_arrival_s),
            "now_s": float(self.now_s),
            "queues": {
                name: list(entries) for name, entries in self.queues.items()
            },
            "readmit": [
                self.readmit[aid] for aid in sorted(self.readmit)
            ],
            "running": [
                self.running[aid] for aid in sorted(self.running)
            ],
            "stats": self.stats.to_json(),
        }

    @classmethod
    def from_json(
        cls, data: Dict[str, Any], config: ServiceConfig
    ) -> "ServiceState":
        state = cls(config)
        state.epoch = int(data["epoch"])
        state.now_s = float(data["now_s"])
        state.next_app_id = int(data["next_app_id"])
        state.next_arrival_s = float(data["next_arrival_s"])
        state.arrival_state = dict(data["arrival_state"])
        state.queues = {
            name: [dict(e) for e in data["queues"].get(name, [])]
            for name in config.class_names
        }
        state.running = {
            int(e["app_id"]): dict(e) for e in data["running"]
        }
        state.readmit = {
            int(e["app_id"]): dict(e) for e in data["readmit"]
        }
        state.failed_tiles = [int(t) for t in data["failed_tiles"]]
        state.applied_faults = int(data["applied_faults"])
        state.stats = TrafficStats.from_json(data["stats"])
        return state


class ServiceEngine:
    """Runs service epochs for one :class:`ServiceConfig`.

    Args:
        config: The service description (framework, traffic, policies).
        chip: Platform; defaults to the paper's 60-tile 7 nm CMP.
        library: Shared profile library.
        context: Pre-built chip immutables (shared across engines).
        sensors: PSN sensor network (injected by fault tests).
        ve_policy: Voltage-emergency rate model.
        checkpoints: Checkpoint/rollback cost model.
    """

    def __init__(
        self,
        config: ServiceConfig,
        chip: Optional[ChipDescription] = None,
        library: Optional[ProfileLibrary] = None,
        context: Optional[SimulatorContext] = None,
        sensors: Optional[SensorNetwork] = None,
        ve_policy: Optional[VoltageEmergencyPolicy] = None,
        checkpoints: Optional[CheckpointPolicy] = None,
    ) -> None:
        from repro.exp.frameworks import framework as lookup_framework

        self._config = config
        self._chip = chip or default_chip()
        self._library = library or ProfileLibrary()
        self._context = context or SimulatorContext.for_chip(self._chip)
        self._sensors = sensors or SensorNetwork()
        self._ve_policy = ve_policy or VoltageEmergencyPolicy()
        self._checkpoints = checkpoints or CheckpointPolicy()
        self._manager = lookup_framework(config.framework).make_manager()
        self._pool = WorkloadType(config.workload).pool()
        self._performance = self._context.performance
        self._topology = self._context.topology
        #: Per-profile fastest WCET (feasibility checks); bounded by the
        #: benchmark suite size, not the traffic.
        self._best_wcet_s: Dict[str, float] = {}
        #: Per-(profile, vdd, dop) mean task injection rate in flits per
        #: cycle (router-activity proxy); bounded by the operating-point
        #: grid.
        self._inject_rate: Dict[Tuple[str, float, int], float] = {}
        # Cached inter-refresh scalars for O(1) interval accounting.
        self._occupied_tiles = 0
        self._mean_occ_psn_pct = 0.0
        self._chip_peak_psn_pct = 0.0

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def sensors(self) -> SensorNetwork:
        return self._sensors

    # ------------------------------------------------------------------
    # Profile helpers (memoised; keys bounded by the benchmark suite)
    # ------------------------------------------------------------------

    def _best_wcet(self, profile_name: str) -> float:
        best = self._best_wcet_s.get(profile_name)
        if best is None:
            profile = self._library.get(profile_name)
            best = min(
                profile.wcet_s(v, d)
                for v in profile.supported_vdds
                for d in profile.supported_dops
            )
            self._best_wcet_s[profile_name] = best
        return best

    def _task_inject_rate(
        self, profile_name: str, vdd: float, dop: int
    ) -> float:
        """Mean flits/cycle one task of the app pushes at its router.

        Total communication volume spread over the execution, divided
        evenly over the app's tasks - the same volume/WCET rate the
        analytical NoC derives per flow, collapsed to a per-router
        activity proxy.
        """
        key = (profile_name, vdd, dop)
        rate = self._inject_rate.get(key)
        if rate is None:
            profile = self._library.get(profile_name)
            graph = profile.graph(dop)
            volume = sum(v for _, _, v in graph.edges())
            freq = self._chip.power_model.frequency(vdd)
            base_cycles = profile.wcet_s(vdd, dop) * freq
            rate = (
                (volume / FLIT_PAYLOAD_BYTES) / base_cycles / max(1, dop)
                if base_cycles > 0
                else 0.0
            )
            self._inject_rate[key] = rate
        return rate

    # ------------------------------------------------------------------

    def run_epoch(self, state: ServiceState) -> ServiceState:
        """Advance ``state`` by one epoch (mutates and returns it).

        The epoch is a pure function of ``(config, entry state)``: all
        randomness comes from per-epoch derived streams consumed in
        event order.
        """
        cfg = self._config
        epoch = state.epoch
        t_end = (epoch + 1) * cfg.epoch_duration_s
        if state.now_s > t_end:
            raise ConfigError(
                "state is ahead of the epoch boundary",
                now_s=state.now_s,
                epoch=epoch,
            )
        stream = UniformStream(
            np.random.default_rng(
                derive_seed(cfg.root_seed, "service/arrivals", epoch)
            )
        )
        rng_ve = np.random.default_rng(
            derive_seed(cfg.root_seed, "service/ve", epoch)
        )
        arrival = cfg.arrival
        arrival.load_state(state.arrival_state)

        chip_state = ChipState(
            self._chip, failed_tiles=set(state.failed_tiles)
        )
        for aid in sorted(state.running):
            entry = state.running[aid]
            chip_state.occupy(
                aid,
                {int(t): tile for t, tile in entry["task_to_tile"].items()},
                entry["vdd"],
                entry["power_w"],
            )

        heap: List[Tuple[float, int, int, int]] = []
        for aid in sorted(state.running):
            entry = state.running[aid]
            heapq.heappush(
                heap, (entry["exit_s"], _EXIT, aid, entry["exit_version"])
            )
        for aid in sorted(state.readmit):
            entry = state.readmit[aid]
            heapq.heappush(
                heap, (entry["retry_at_s"], _RETRY, aid, entry["attempts"])
            )
        heapq.heappush(
            heap, (state.next_arrival_s, _ARRIVAL, state.next_app_id, 0)
        )
        for idx in range(state.applied_faults, len(cfg.faults)):
            fault = cfg.faults[idx]
            if fault.time_s < t_end:
                heapq.heappush(heap, (fault.time_s, _FAULT, idx, 0))

        now = state.now_s
        #: Classes whose head failed to map since the last occupancy
        #: change; arrivals into them enqueue without another try_map.
        blocked: set = set()
        self._refresh(state, chip_state, now)

        def settle_interval(t: float) -> None:
            nonlocal now
            if t > now:
                state.stats.record_interval(
                    t - now,
                    self._chip.tile_count,
                    self._occupied_tiles,
                    self._mean_occ_psn_pct,
                    self._chip_peak_psn_pct,
                )
                now = t

        while heap and heap[0][0] < t_end:
            t, kind, ident, version = heapq.heappop(heap)
            settle_interval(t)
            occupancy_changed = False

            if kind == _ARRIVAL:
                self._handle_arrival(state, chip_state, stream, now, heap, t_end)
                # An arrival only changes occupancy via the serve step
                # below; admission itself never touches the chip.
            elif kind == _EXIT:
                occupancy_changed = self._handle_exit(
                    state, chip_state, ident, version, rng_ve, now, heap
                )
            elif kind == _RETRY:
                occupancy_changed = self._handle_retry(
                    state, chip_state, ident, version, now, heap
                )
            elif kind == _FAULT:
                occupancy_changed = self._handle_fault(
                    state, chip_state, ident, now, heap
                )

            if occupancy_changed:
                blocked.clear()
            served = self._serve_queues(
                state, chip_state, now, heap, blocked
            )
            if occupancy_changed or served:
                self._refresh_and_shed(state, chip_state, now, heap, blocked)

        settle_interval(t_end)
        self._settle_ve_exposure(state, t_end)
        state.now_s = t_end
        state.epoch = epoch + 1
        state.arrival_state = arrival.state_json()
        state.failed_tiles = sorted(chip_state.failed_tiles())
        return state

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _handle_arrival(
        self,
        state: ServiceState,
        chip_state: ChipState,
        stream: UniformStream,
        now: float,
        heap: List,
        t_end: float,
    ) -> None:
        cfg = self._config
        app_id = state.next_app_id
        # Class, profile and deadline slack: three uniforms, always
        # consumed in this order so the stream stays aligned whatever
        # admission decides.
        u_cls = stream.next()
        u_profile = stream.next()
        u_slack = stream.next()
        acc = 0.0
        service_cls = cfg.classes[-1]
        for c in cfg.classes:
            acc += c.share_fraction
            if u_cls < acc:
                service_cls = c
                break
        profile_name = self._pool[
            min(int(u_profile * len(self._pool)), len(self._pool) - 1)
        ]
        best_wcet = self._best_wcet(profile_name)
        slack = service_cls.slack_scale * (0.75 + 0.5 * u_slack)
        deadline_s = now + slack * best_wcet
        stats = state.stats.cls(service_cls.name)
        stats.bump("arrived")

        rejected = False
        if cfg.admission.reject_infeasible and best_wcet >= deadline_s - now:
            rejected = True
        elif len(state.queues[service_cls.name]) >= service_cls.queue_cap:
            rejected = True
        elif state.backlog() >= cfg.admission.max_total_queue:
            rejected = True
        if rejected:
            stats.bump("rejected")
        else:
            stats.bump("admitted")
            state.queues[service_cls.name].append(
                {
                    "app_id": app_id,
                    "arrival_s": now,
                    "cls": service_cls.name,
                    "deadline_s": deadline_s,
                    "profile": profile_name,
                }
            )
            self._shed_backlog(state, now)

        # Schedule the next arrival (draws ride the same stream).
        state.next_app_id = app_id + 1
        gap = cfg.arrival.next_gap_s(now, stream)
        state.next_arrival_s = now + gap
        if state.next_arrival_s < t_end:
            heapq.heappush(
                heap, (state.next_arrival_s, _ARRIVAL, state.next_app_id, 0)
            )

    def _shed_backlog(self, state: ServiceState, now: float) -> None:
        """Queue-pressure shedding: drop queued best-effort work."""
        cfg = self._config
        limit = cfg.shedding.backlog_fraction * cfg.admission.max_total_queue
        if state.backlog() <= limit:
            return
        for c in reversed(cfg.classes):
            if not c.best_effort:
                continue
            queue = state.queues[c.name]
            while queue and state.backlog() > limit:
                queue.pop()  # newest best-effort work goes first
                state.stats.cls(c.name).bump("shed")
                state.stats.shed_events += 1

    def _handle_exit(
        self,
        state: ServiceState,
        chip_state: ChipState,
        app_id: int,
        version: int,
        rng_ve: np.random.Generator,
        now: float,
        heap: List,
    ) -> bool:
        entry = state.running.get(app_id)
        if entry is None or entry["exit_version"] != version:
            return False  # stale exit (app shed/preempted/penalised)
        self._settle_app_ve(entry, now)
        if not entry["penalized"]:
            entry["penalized"] = True
            count = self._sample_ve_count(entry, rng_ve)
            if count > 0:
                stats = state.stats.cls(entry["cls"])
                stats.bump("ve_count", count)
                state.stats.ve_count += count
                freq = self._chip.power_model.frequency(entry["vdd"])
                penalty = count * self._checkpoints.rollback_penalty_s(freq)
                entry["exit_s"] = now + penalty
                entry["exit_version"] = version + 1
                heapq.heappush(
                    heap, (entry["exit_s"], _EXIT, app_id, version + 1)
                )
                return False
        # Completion.
        chip_state.release(app_id)
        stats = state.stats.cls(entry["cls"])
        stats.bump("completed")
        stats.busy_tile_s += len(entry["task_to_tile"]) * (
            now - entry["mapped_s"]
        )
        sojourn = now - entry["arrival_s"]
        stats.sojourn.add(sojourn)
        if now <= entry["deadline_s"] + 1e-9:
            stats.bump("sla_met")
        else:
            stats.bump("sla_missed")
        del state.running[app_id]
        return True

    def _sample_ve_count(
        self, entry: Dict[str, Any], rng_ve: np.random.Generator
    ) -> int:
        mean = entry["ve_mean"]
        if mean <= 0:
            return 0
        return int(rng_ve.poisson(min(mean, MAX_POISSON_MEAN)))

    def _handle_retry(
        self,
        state: ServiceState,
        chip_state: ChipState,
        app_id: int,
        version: int,
        now: float,
        heap: List,
    ) -> bool:
        cfg = self._config
        entry = state.readmit.get(app_id)
        if entry is None or entry["attempts"] != version:
            return False  # stale retry
        stats = state.stats.cls(entry["cls"])
        profile_name = entry["profile"]
        if self._best_wcet(profile_name) >= entry["deadline_s"] - now:
            stats.bump("dropped")
            del state.readmit[app_id]
            return False
        profile = self._library.get(profile_name)
        decision = self._manager.try_map(
            profile, entry["deadline_s"] - now, chip_state
        )
        if decision is not None:
            del state.readmit[app_id]
            stats.bump("readmitted")
            self._start_app(
                state,
                chip_state,
                entry,
                decision,
                now,
                heap,
                resume_fraction=entry["resume_fraction"],
                penalty_s=entry["penalty_s"]
                + cfg.recovery.per_task_restart_cost_s * decision.dop,
            )
            return True
        entry["attempts"] += 1
        if entry["attempts"] > cfg.recovery.max_remap_retries:
            stats.bump("failed")
            del state.readmit[app_id]
            return False
        entry["retry_at_s"] = now + cfg.recovery.backoff_s(
            entry["attempts"] - 1
        )
        heapq.heappush(
            heap, (entry["retry_at_s"], _RETRY, app_id, entry["attempts"])
        )
        return False

    def _handle_fault(
        self,
        state: ServiceState,
        chip_state: ChipState,
        index: int,
        now: float,
        heap: List,
    ) -> bool:
        fault = self._config.faults[index]
        state.applied_faults = max(state.applied_faults, index + 1)
        state.stats.fault_count += 1
        if fault.kind in ("tile_fail", "router_fail"):
            tile = fault.target
            occ = chip_state.occupant(tile)
            if occ is not None:
                self._evict(
                    state, chip_state, occ.app_id, now, heap,
                    counter="preempted",
                )
            if not chip_state.is_failed(tile):
                chip_state.fail_tile(tile)
            return True
        if fault.kind == "sensor_dead":
            self._sensors.set_fault(
                fault.target, SensorFault(kind="dead", since_s=fault.time_s)
            )
        else:  # sensor_stuck
            self._sensors.set_fault(
                fault.target,
                SensorFault(
                    kind="stuck",
                    value_pct=fault.value_pct,
                    since_s=fault.time_s,
                ),
            )
        return False

    # ------------------------------------------------------------------
    # Serving, preemption, eviction
    # ------------------------------------------------------------------

    def _serve_queues(
        self,
        state: ServiceState,
        chip_state: ChipState,
        now: float,
        heap: List,
        blocked: set,
    ) -> bool:
        """Map queue heads in class-priority order; True when any mapped."""
        cfg = self._config
        served = False
        for c in cfg.classes:
            queue = state.queues[c.name]
            stats = state.stats.cls(c.name)
            while queue:
                head = queue[0]
                if self._best_wcet(head["profile"]) >= (
                    head["deadline_s"] - now
                ):
                    stats.bump("dropped")
                    queue.pop(0)
                    continue
                if c.name in blocked:
                    break
                profile = self._library.get(head["profile"])
                decision = self._manager.try_map(
                    profile, head["deadline_s"] - now, chip_state
                )
                if decision is None and not c.best_effort:
                    if self._preempt_best_effort(state, chip_state, now, heap):
                        blocked.clear()
                        decision = self._manager.try_map(
                            profile, head["deadline_s"] - now, chip_state
                        )
                if decision is None:
                    blocked.add(c.name)
                    break
                queue.pop(0)
                stats.wait.add(now - head["arrival_s"])
                self._start_app(state, chip_state, head, decision, now, heap)
                served = True
        return served

    def _preempt_best_effort(
        self, state: ServiceState, chip_state: ChipState, now: float, heap: List
    ) -> bool:
        """Evict one running best-effort app to free capacity.

        The victim is the best-effort app holding the most tiles (ties
        to the lowest app id), so one preemption frees the most room.
        """
        best_effort = {c.name for c in self._config.classes if c.best_effort}
        victim = None
        victim_tiles = 0
        for aid in sorted(state.running):
            entry = state.running[aid]
            if entry["cls"] not in best_effort:
                continue
            tiles = len(entry["task_to_tile"])
            if tiles > victim_tiles:
                victim, victim_tiles = aid, tiles
        if victim is None:
            return False
        self._evict(state, chip_state, victim, now, heap, counter="preempted")
        return True

    def _evict(
        self,
        state: ServiceState,
        chip_state: ChipState,
        app_id: int,
        now: float,
        heap: List,
        counter: str,
    ) -> None:
        """Checkpoint-rollback eviction into the re-admission queue."""
        entry = state.running.pop(app_id)
        self._settle_app_ve(entry, now)
        chip_state.release(app_id)
        stats = state.stats.cls(entry["cls"])
        stats.bump(counter)
        stats.busy_tile_s += len(entry["task_to_tile"]) * (
            now - entry["mapped_s"]
        )
        retry_at = now + self._config.recovery.backoff_s(0)
        if self._best_wcet(entry["profile"]) >= entry["deadline_s"] - retry_at:
            # Hopeless by the earliest possible retry: drop now instead
            # of parking a doomed entry in the re-admission set.
            stats.bump("dropped")
            return
        if len(state.readmit) >= self._config.admission.max_readmit:
            # Bounded re-admission: overflow is an immediate terminal
            # failure, keeping the service state O(1) under overload.
            stats.bump("failed")
            return
        work = entry["work_s"]
        remaining = max(0.0, entry["exit_s"] - now)
        fraction = min(1.0, remaining / work) if work > 0 else 1.0
        freq = self._chip.power_model.frequency(entry["vdd"])
        state.readmit[app_id] = {
            "app_id": app_id,
            "arrival_s": entry["arrival_s"],
            "attempts": 0,
            "cls": entry["cls"],
            "deadline_s": entry["deadline_s"],
            "penalty_s": self._checkpoints.rollback_penalty_s(freq),
            "profile": entry["profile"],
            "resume_fraction": fraction,
            "retry_at_s": retry_at,
        }
        heapq.heappush(heap, (retry_at, _RETRY, app_id, 0))

    def _start_app(
        self,
        state: ServiceState,
        chip_state: ChipState,
        entry: Dict[str, Any],
        decision,
        now: float,
        heap: List,
        resume_fraction: float = 1.0,
        penalty_s: float = 0.0,
    ) -> None:
        """Occupy tiles and schedule the exit of one mapped app."""
        app_id = entry["app_id"]
        chip_state.occupy(
            app_id, decision.task_to_tile, decision.vdd, decision.power_w
        )
        exec_s = self._estimate_exec_s(
            entry["profile"], decision, chip_state
        )
        work = exec_s * resume_fraction + penalty_s
        state.running[app_id] = {
            "app_id": app_id,
            "arrival_s": entry["arrival_s"],
            "cls": entry["cls"],
            "deadline_s": entry["deadline_s"],
            "dop": int(decision.dop),
            "exit_s": now + work,
            "exit_version": 0,
            "mapped_s": now,
            "penalized": False,
            "power_w": float(decision.power_w),
            "profile": entry["profile"],
            "settled_s": now,
            "task_to_tile": {
                str(t): int(tile)
                for t, tile in sorted(decision.task_to_tile.items())
            },
            "vdd": float(decision.vdd),
            "ve_mean": 0.0,
            "ve_rate_hz": 0.0,
            "work_s": work,
        }
        heapq.heappush(heap, (now + work, _EXIT, app_id, 0))

    def _estimate_exec_s(
        self, profile_name: str, decision, chip_state: ChipState
    ) -> float:
        """Execution estimate: WCET x contention proxy x checkpointing."""
        profile = self._library.get(profile_name)
        tiles = list(decision.task_to_tile.values())
        if len(tiles) > 1:
            hops = [
                self._topology.hops(a, b)
                for i, a in enumerate(tiles)
                for b in tiles[i + 1 :]
            ]
            avg_hops = max(1.0, sum(hops) / len(hops))
        else:
            avg_hops = 1.0
        occupied_fraction = (
            1.0 - len(chip_state.free_tiles()) / self._chip.tile_count
        )
        latency_scale = 1.0 + self._config.contention_scale * occupied_fraction
        freq = self._chip.power_model.frequency(decision.vdd)
        return self._performance.estimate_wcet_s(
            profile.graph(decision.dop),
            decision.vdd,
            avg_hops=avg_hops,
            latency_scale=latency_scale,
        ) * self._checkpoints.execution_dilation(freq)

    # ------------------------------------------------------------------
    # PSN refresh, VE exposure, PSN shedding
    # ------------------------------------------------------------------

    def _settle_app_ve(self, entry: Dict[str, Any], now: float) -> None:
        dt = now - entry["settled_s"]
        if dt > 0:
            entry["ve_mean"] += entry["ve_rate_hz"] * dt
            entry["settled_s"] = now

    def _settle_ve_exposure(self, state: ServiceState, now: float) -> None:
        for entry in state.running.values():
            self._settle_app_ve(entry, now)

    def _refresh_and_shed(
        self,
        state: ServiceState,
        chip_state: ChipState,
        now: float,
        heap: List,
        blocked: set,
    ) -> None:
        """Refresh PSN, then shed running best-effort work while the
        worst trusted sensor reading stays above the PSN threshold."""
        cfg = self._config
        best_effort = {c.name for c in cfg.classes if c.best_effort}
        shed_budget = cfg.shedding.max_shed_per_event
        guard = 0
        while True:
            sensor_worst = self._refresh(state, chip_state, now)
            guard += 1
            if (
                shed_budget <= 0
                or guard > 4
                or sensor_worst <= cfg.shedding.psn_threshold_pct
            ):
                return
            # Shed the best-effort app with the highest VE exposure
            # rate (it sits on the noisiest tiles); ties to lowest id.
            victim = None
            victim_rate = -1.0
            for aid in sorted(state.running):
                entry = state.running[aid]
                if entry["cls"] not in best_effort:
                    continue
                if entry["ve_rate_hz"] > victim_rate:
                    victim, victim_rate = aid, entry["ve_rate_hz"]
            if victim is None:
                return
            self._evict(state, chip_state, victim, now, heap, counter="shed")
            state.stats.shed_events += 1
            shed_budget -= 1
            blocked.clear()

    def _refresh(
        self, state: ServiceState, chip_state: ChipState, now: float
    ) -> float:
        """Re-evaluate per-tile PSN; update cached interval scalars.

        Returns the worst *trusted* sensor reading (tiles with detected
        sensor faults or stale readings fall back to the true level, so
        the shedding trigger degrades conservatively rather than going
        blind).
        """
        peak, avg = self._evaluate_psn(state, chip_state)
        occupied = [
            t for t in self._chip.mesh.tiles()
            if chip_state.occupant(t) is not None
        ]
        self._occupied_tiles = len(occupied)
        self._chip_peak_psn_pct = float(np.max(peak)) if occupied else 0.0
        self._mean_occ_psn_pct = (
            float(np.mean([avg[t] for t in occupied])) if occupied else 0.0
        )
        readings, valid = self._sensors.read_tiles(peak, now)
        trusted = np.where(valid, readings, peak)
        sensor_worst = float(np.max(trusted)) if trusted.size else 0.0

        # Per-app VE exposure rates from the new noise field.
        self._settle_ve_exposure(state, now)
        for entry in state.running.values():
            worst = max(
                float(peak[tile]) for tile in entry["task_to_tile"].values()
            )
            entry["ve_rate_hz"] = self._ve_policy.expected_rate_hz(worst)
        return sensor_worst

    def _evaluate_psn(
        self, state: ServiceState, chip_state: ChipState
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched per-domain PSN (the simulator's fast path, with the
        router-activity proxy instead of the analytical NoC report)."""
        chip = self._chip
        power_model = chip.power_model
        n = chip.tile_count
        peak = np.zeros(n)
        avg = np.zeros(n)
        # Router-activity proxy: each mapped task injects its profiled
        # flit rate at its own router.
        router_rate = np.zeros(n)
        task_bin: Dict[int, int] = {}
        task_activity: Dict[int, float] = {}
        graphs: Dict[int, Any] = {}
        for aid, entry in state.running.items():
            rate = self._task_inject_rate(
                entry["profile"], entry["vdd"], entry["dop"]
            )
            graph = graphs.get(aid)
            if graph is None:
                graph = self._library.get(entry["profile"]).graph(
                    entry["dop"]
                )
                graphs[aid] = graph
            for task, tile in entry["task_to_tile"].items():
                router_rate[tile] += rate
                node = graph.task(int(task))
                task_bin[tile] = BIN_INDEX[node.activity_bin]
                task_activity[tile] = node.activity_factor
        np.clip(router_rate, 0.0, _MAX_ROUTER_RATE, out=router_rate)

        low_bin = BIN_INDEX[ActivityBin.LOW]
        dom_vdds: List[float] = []
        dom_tiles: List[Tuple[int, ...]] = []
        core_w: List[List[float]] = []
        router_w: List[List[float]] = []
        bin_rows: List[List[int]] = []
        for domain in range(chip.domain_count):
            tiles = self._context.domain_tiles[domain]
            vdd = chip_state.domain_vdd(domain)
            rates = [float(router_rate[t]) for t in tiles]
            if vdd is None:
                if all(r <= 0.0 for r in rates):
                    continue  # fully dark and quiet
                vdd = chip.vdd_ladder.lowest
            cores = [0.0] * len(tiles)
            routers = [0.0] * len(tiles)
            bins = [low_bin] * len(tiles)
            for i, (tile, r_rate) in enumerate(zip(tiles, rates)):
                occ = chip_state.occupant(tile)
                router_power = (
                    power_model.router_dynamic(r_rate, vdd)
                    + power_model.router_leakage(vdd)
                )
                if occ is None:
                    if r_rate > 0:
                        routers[i] = router_power
                    continue
                app = state.running[occ.app_id]
                cores[i] = power_model.core_dynamic(
                    task_activity[tile], app["vdd"]
                ) + power_model.core_leakage(app["vdd"])
                routers[i] = router_power
                bins[i] = task_bin[tile]
            dom_vdds.append(vdd)
            dom_tiles.append(tiles)
            core_w.append(cores)
            router_w.append(routers)
            bin_rows.append(bins)
        if not dom_vdds:
            return peak, avg
        vdd_arr = np.array(dom_vdds)
        i_core = np.array(core_w) / vdd_arr[:, None]
        i_router = np.array(router_w) / vdd_arr[:, None]
        d_peak, d_avg = self._context.psn_model.chip_psn(
            vdd_arr, i_core, i_router, np.array(bin_rows)
        )
        tiles_arr = np.array(dom_tiles)
        peak[tiles_arr] = d_peak
        avg[tiles_arr] = d_avg
        return peak, avg
