"""Bounded-memory streaming statistics for the service runtime.

The fixed-sequence simulator keeps one :class:`~repro.runtime.metrics.
AppRecord` per application, which is exactly right for 20-app paper
figures and exactly wrong for an open-ended service: a campaign that
absorbs millions of arrivals must not grow state with the arrival
count.  This module provides the replacement:

* :class:`P2Quantile` - the P-square (P^2) streaming quantile estimator
  of Jain & Chlamtac (CACM 1985).  Five markers, O(1) state, fully
  deterministic (no sampling), and JSON-serialisable so a checkpointed
  epoch resumes to byte-identical estimates.
* :class:`ClassStats` - per-priority-class lifecycle counters plus
  streaming wait/sojourn summaries (mean and p50/p95/p99).
* :class:`TrafficStats` - the service-wide aggregate: per-class stats,
  time-weighted utilization and PSN accumulators, shed/VE counters.

Every structure serialises with sorted keys and a fixed leaf count:
:meth:`TrafficStats.scalar_count` is pinned by the O(1)-state test,
which asserts the count is independent of how many arrivals were
folded in.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Quantiles tracked per latency metric (wait and sojourn).
TRACKED_QUANTILES = (0.5, 0.95, 0.99)

#: Lifecycle counters every class tracks, in serialisation order.
CLASS_COUNTERS = (
    "arrived",
    "admitted",
    "rejected",
    "dropped",
    "shed",
    "preempted",
    "readmitted",
    "failed",
    "completed",
    "sla_met",
    "sla_missed",
    "ve_count",
)


class P2Quantile:
    """P-square streaming estimate of one quantile.

    The estimator keeps five markers (heights and integer positions)
    that track the q-quantile of everything ever :meth:`add`-ed, using
    piecewise-parabolic interpolation to nudge the middle markers as
    counts grow.  Until five observations arrive it stores them
    verbatim, so small streams are exact.

    State is O(1) and a pure function of the observation sequence - no
    randomness, no clock - which is what makes checkpointed epochs
    resumable to identical bytes.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must lie strictly inside (0, 1)")
        self.q = float(q)
        #: Marker heights (sorted observations until warm).
        self._heights: List[float] = []
        #: 1-based marker positions; empty until 5 observations.
        self._positions: List[float] = []
        #: Desired (real-valued) marker positions.
        self._desired: List[float] = []
        self.count = 0

    # ------------------------------------------------------------------

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        x = float(x)
        self.count += 1
        if self.count <= 5:
            self._heights.append(x)
            self._heights.sort()
            if self.count == 5:
                q = self.q
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * q,
                    1.0 + 4.0 * q,
                    3.0 + 2.0 * q,
                    5.0,
                ]
            return
        h, n, d = self._heights, self._positions, self._desired
        # Find the marker cell containing x and clamp the extremes.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        q = self.q
        d[1] += q / 2.0
        d[2] += q
        d[3] += (1.0 + q) / 2.0
        d[4] += 1.0
        # Nudge the three middle markers toward their desired positions.
        for i in (1, 2, 3):
            delta = d[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    # ------------------------------------------------------------------

    @property
    def value(self) -> float:
        """Current quantile estimate (0.0 before any observation)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            # Exact small-sample quantile (nearest-rank interpolation).
            idx = self.q * (self.count - 1)
            lo = int(idx)
            hi = min(lo + 1, self.count - 1)
            frac = idx - lo
            return self._heights[lo] * (1.0 - frac) + self._heights[hi] * frac
        return self._heights[2]

    def to_json(self) -> Dict[str, Any]:
        """Serialise; leaf count is fixed once five observations exist."""
        heights = list(self._heights)
        # Pad the warm-up buffer so the serialised leaf count never
        # depends on how many observations were folded in.
        while len(heights) < 5:
            heights.append(0.0)
        positions = self._positions or [0.0] * 5
        desired = self._desired or [0.0] * 5
        return {
            "count": int(self.count),
            "desired": [float(v) for v in desired],
            "heights": [float(v) for v in heights],
            "positions": [float(v) for v in positions],
            "q": float(self.q),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "P2Quantile":
        est = cls(float(data["q"]))
        est.count = int(data["count"])
        warm = est.count >= 5
        est._heights = [float(v) for v in data["heights"]]
        if not warm:
            est._heights = est._heights[: est.count]
            est._positions = []
            est._desired = []
        else:
            est._positions = [float(v) for v in data["positions"]]
            est._desired = [float(v) for v in data["desired"]]
        return est


class StreamingMoments:
    """Count/mean/max accumulator for one latency metric."""

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        self.total_s += float(x)
        self.max_s = max(self.max_s, float(x))

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "count": int(self.count),
            "max_s": float(self.max_s),
            "total_s": float(self.total_s),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "StreamingMoments":
        m = cls()
        m.count = int(data["count"])
        m.total_s = float(data["total_s"])
        m.max_s = float(data["max_s"])
        return m


class LatencySummary:
    """Streaming mean + tracked percentiles of one latency metric."""

    def __init__(self) -> None:
        self.moments = StreamingMoments()
        self.quantiles: Tuple[P2Quantile, ...] = tuple(
            P2Quantile(q) for q in TRACKED_QUANTILES
        )

    def add(self, x: float) -> None:
        self.moments.add(x)
        for est in self.quantiles:
            est.add(x)

    def quantile_s(self, q: float) -> float:
        for est in self.quantiles:
            # Tracked quantiles are fixed constants, so identity-style
            # exact comparison is safe here.
            if est.q == q:  # parmlint: ok[float-eq] - fixed grid lookup
                return est.value
        raise KeyError(f"quantile {q} is not tracked")

    def to_json(self) -> Dict[str, Any]:
        return {
            "moments": self.moments.to_json(),
            "quantiles": [est.to_json() for est in self.quantiles],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "LatencySummary":
        summary = cls()
        summary.moments = StreamingMoments.from_json(data["moments"])
        summary.quantiles = tuple(
            P2Quantile.from_json(q) for q in data["quantiles"]
        )
        return summary


class ClassStats:
    """Lifecycle counters + latency summaries of one priority class."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {name: 0 for name in CLASS_COUNTERS}
        self.wait = LatencySummary()
        self.sojourn = LatencySummary()
        #: Tile-seconds of busy capacity consumed by this class.
        self.busy_tile_s = 0.0

    def bump(self, counter: str, by: int = 1) -> None:
        if counter not in self.counters:
            raise KeyError(f"unknown counter {counter!r}")
        self.counters[counter] += by

    def to_json(self) -> Dict[str, Any]:
        return {
            "busy_tile_s": float(self.busy_tile_s),
            "counters": {k: int(v) for k, v in sorted(self.counters.items())},
            "sojourn": self.sojourn.to_json(),
            "wait": self.wait.to_json(),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "ClassStats":
        stats = cls()
        stats.busy_tile_s = float(data["busy_tile_s"])
        for name in CLASS_COUNTERS:
            stats.counters[name] = int(data["counters"][name])
        stats.wait = LatencySummary.from_json(data["wait"])
        stats.sojourn = LatencySummary.from_json(data["sojourn"])
        return stats


class TrafficStats:
    """Service-wide streaming aggregate: O(1) in the arrival count.

    Args:
        class_names: Priority classes, in configuration order.  The
            per-class map is created eagerly so the serialised leaf
            count is fixed from the first byte.
    """

    def __init__(self, class_names: Tuple[str, ...]) -> None:
        if not class_names:
            raise ValueError("at least one priority class is required")
        self.classes: Dict[str, ClassStats] = {
            name: ClassStats() for name in class_names
        }
        self.peak_psn_pct = 0.0
        #: Time-weighted accumulators for average PSN over occupied tiles.
        self.psn_weight_tile_s = 0.0
        self.psn_accum_pct_tile_s = 0.0
        #: Tile-seconds observed (occupied or not) for utilization.
        self.capacity_tile_s = 0.0
        self.busy_tile_s = 0.0
        self.shed_events = 0
        self.ve_count = 0
        self.fault_count = 0

    # ------------------------------------------------------------------

    def cls(self, name: str) -> ClassStats:
        return self.classes[name]

    def record_interval(
        self,
        duration_s: float,
        tile_count: int,
        occupied_tiles: int,
        mean_occupied_psn_pct: float,
        peak_psn_pct: float,
    ) -> None:
        """Fold one inter-event interval into utilization/PSN stats."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        self.peak_psn_pct = max(self.peak_psn_pct, peak_psn_pct)
        self.capacity_tile_s += duration_s * tile_count
        self.busy_tile_s += duration_s * occupied_tiles
        if occupied_tiles > 0 and duration_s > 0:
            weight = duration_s * occupied_tiles
            self.psn_weight_tile_s += weight
            self.psn_accum_pct_tile_s += weight * mean_occupied_psn_pct

    # ------------------------------------------------------------------

    @property
    def utilization_fraction(self) -> float:
        if self.capacity_tile_s <= 0:
            return 0.0
        return self.busy_tile_s / self.capacity_tile_s

    @property
    def avg_psn_pct(self) -> float:
        if self.psn_weight_tile_s <= 0:
            return 0.0
        return self.psn_accum_pct_tile_s / self.psn_weight_tile_s

    def total(self, counter: str) -> int:
        return sum(c.counters[counter] for c in self.classes.values())

    def rate_fraction(self, counter: str, base: str = "arrived") -> float:
        """Counter total as a fraction of the ``base`` total."""
        denom = self.total(base)
        return self.total(counter) / denom if denom else 0.0

    # ------------------------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "busy_tile_s": float(self.busy_tile_s),
            "capacity_tile_s": float(self.capacity_tile_s),
            "classes": {
                name: stats.to_json()
                for name, stats in sorted(self.classes.items())
            },
            "fault_count": int(self.fault_count),
            "peak_psn_pct": float(self.peak_psn_pct),
            "psn_accum_pct_tile_s": float(self.psn_accum_pct_tile_s),
            "psn_weight_tile_s": float(self.psn_weight_tile_s),
            "shed_events": int(self.shed_events),
            "ve_count": int(self.ve_count),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "TrafficStats":
        names = tuple(data["classes"])
        stats = cls(names)
        stats.classes = {
            name: ClassStats.from_json(payload)
            for name, payload in data["classes"].items()
        }
        stats.peak_psn_pct = float(data["peak_psn_pct"])
        stats.psn_weight_tile_s = float(data["psn_weight_tile_s"])
        stats.psn_accum_pct_tile_s = float(data["psn_accum_pct_tile_s"])
        stats.capacity_tile_s = float(data["capacity_tile_s"])
        stats.busy_tile_s = float(data["busy_tile_s"])
        stats.shed_events = int(data["shed_events"])
        stats.ve_count = int(data["ve_count"])
        stats.fault_count = int(data["fault_count"])
        return stats

    def scalar_count(self) -> int:
        """Number of scalar leaves in :meth:`to_json`.

        The O(1)-state test pins this value against runs folding vastly
        different arrival counts: it must depend only on the class list,
        never on the traffic.
        """
        return _count_leaves(self.to_json())


def _count_leaves(node: Any) -> int:
    if isinstance(node, dict):
        return sum(_count_leaves(v) for v in node.values())
    if isinstance(node, (list, tuple)):
        return sum(_count_leaves(v) for v in node)
    return 1
