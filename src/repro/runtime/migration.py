"""Thread-migration / defragmentation extension for the runtime.

The paper's conclusion positions PARM against "schemes such as thread
migration employed to keep the tile switching activity in check",
arguing PARM avoids their software overhead.  This module implements
that alternative so the claim can be measured: when an arriving
application cannot be mapped because the free domains are fragmented,
the runtime may *compact* the chip - re-place every running application
with the PSN-aware mapping heuristic on an empty chip image, freeing a
contiguous region - and charge each moved thread a migration penalty
(checkpoint, state transfer over the NoC, restart).

Compaction preserves each application's operating point (Vdd, DoP); only
placements change.  It is intended for PARM-style whole-domain mappings.

A finding worth stating up front: with PARM's own mapping heuristic the
trigger is rare to non-existent, because Algorithm 2 does not require
*contiguous* domains - any set of free domains admits a mapping, so
"fragmentation" cannot block the queue head; only the free-domain count
can, and compaction preserves that count.  Measured over the Fig. 8
workloads, zero compactions fire.  This quantifies the paper's closing
claim that PARM "minimize[s] the software overhead due to schemes such
as thread migration": the PSN-aware allocator removes the conditions
that make migration necessary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.runtime.state import ChipState

if TYPE_CHECKING:  # avoid a circular import with repro.core
    from repro.core.base import MappingDecision


@dataclass(frozen=True)
class MigrationPolicy:
    """Costs and limits of runtime thread migration.

    Attributes:
        per_task_cost_s: Wall-clock penalty per *moved* thread: taking a
            checkpoint, draining in-flight packets, shipping
            architectural + dirty cache state across the NoC and
            restarting.  The 100 us default corresponds to ~64 KB of
            state at NoC bandwidth plus the paper's checkpoint/restore
            cycle counts.
        max_compactions: Upper bound on compaction events per run (keeps
            a pathological workload from thrashing).
    """

    per_task_cost_s: float = 100e-6
    max_compactions: int = 50

    def __post_init__(self) -> None:
        if self.per_task_cost_s < 0:
            raise ValueError("per_task_cost_s must be non-negative")
        if self.max_compactions < 1:
            raise ValueError("max_compactions must be at least 1")


def plan_compaction(
    state: ChipState,
    running_decisions: Dict[int, Tuple],
) -> Optional[Dict[int, MappingDecision]]:
    """Re-place all running applications on an empty chip image.

    Args:
        state: Current chip state (only read; provides the platform).
        running_decisions: Mapping of app id to ``(profile, decision)``
            for every running application.

    Returns:
        New decisions per app id (same Vdd and DoP, new tiles), or
        ``None`` when some application cannot be re-placed - which means
        compaction cannot help.
    """

    from repro.core.mapping import psn_aware_mapping

    # The trial image must inherit permanently failed tiles, or the plan
    # would place threads on hardware that no longer exists.
    trial = ChipState(state.chip, failed_tiles=state.failed_tiles())
    replacements: Dict[int, "MappingDecision"] = {}
    # Place the largest applications first: they are the hardest to fit.
    order = sorted(
        running_decisions,
        key=lambda aid: (-running_decisions[aid][1].dop, aid),
    )
    for aid in order:
        profile, old = running_decisions[aid]
        new = psn_aware_mapping(profile, old.vdd, old.dop, trial)
        if new is None:
            return None
        trial.occupy(aid, new.task_to_tile, new.vdd, new.power_w)
        replacements[aid] = new
    return replacements


def moved_task_count(old: "MappingDecision", new: "MappingDecision") -> int:
    """How many threads actually change tiles between two placements."""
    return sum(
        1
        for task, tile in new.task_to_tile.items()
        if old.task_to_tile.get(task) != tile
    )


@dataclass(frozen=True)
class ReactiveMigrationPolicy:
    """Reactive hotspot migration (the Orchestrator-style back end).

    When a tile's PSN *sensor* reading crosses the trigger threshold, the
    runtime moves that tile's thread to the free tile predicted to be
    quietest (an idle domain when one exists), paying the per-task
    migration cost.  At most one thread moves per scheduling event, and
    each application gets a cooldown so a hopeless hotspot does not
    thrash.

    Attributes:
        trigger_pct: Sensor PSN level (percent of Vdd) that triggers a
            migration - the voltage-emergency margin by default.
        per_task_cost_s: Wall-clock penalty of one thread move.
        cooldown_s: Minimum time between two migrations of one app.
        max_moves: Total moves allowed per run (thrash guard).
    """

    trigger_pct: float = 5.0
    per_task_cost_s: float = 100e-6
    cooldown_s: float = 5e-3
    max_moves: int = 200

    def __post_init__(self) -> None:
        if self.trigger_pct <= 0:
            raise ValueError("trigger_pct must be positive")
        if self.per_task_cost_s < 0:
            raise ValueError("per_task_cost_s must be non-negative")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if self.max_moves < 1:
            raise ValueError("max_moves must be at least 1")


def pick_migration_target(
    state: ChipState,
    hot_tile: int,
    vdd: float,
) -> Optional[int]:
    """Quietest feasible destination for a thread fleeing ``hot_tile``.

    Prefers tiles in fully idle domains (no interference at all), then
    tiles far from the hotspot; the domain must be idle or already at
    the thread's Vdd.
    """
    domains = state.chip.domains
    mesh = state.chip.mesh
    candidates = [
        t
        for t in state.free_tiles()
        if state.domain_vdd(domains.domain_of(t)) in (None, vdd)
    ]
    if not candidates:
        return None

    def occupancy_of_domain(tile: int) -> int:
        return sum(
            1
            for other in domains.tiles_of(domains.domain_of(tile))
            if state.occupant(other) is not None
        )

    best = min(
        candidates,
        key=lambda t: (occupancy_of_domain(t), -mesh.manhattan(t, hot_tile), t),
    )
    if best == hot_tile:
        return None
    return best
