"""Tabular export of runtime results (CSV) for downstream analysis.

The experiment harness prints paper-style tables; this module gives
users machine-readable output: one row per application with its full
lifecycle, plus a one-row run summary.
"""

from __future__ import annotations

import csv
import io
from typing import List, Sequence

from repro.runtime.metrics import RunMetrics

#: Columns of the per-application table, in order.
APP_COLUMNS = (
    "app_id",
    "benchmark",
    "arrival_s",
    "deadline_s",
    "mapped_s",
    "vdd",
    "dop",
    "ve_count",
    "remap_count",
    "finished_s",
    "dropped_s",
    "failed_s",
    "status",
)


def app_records_rows(metrics: RunMetrics) -> List[List]:
    """Per-application rows (header excluded), ordered by app id."""
    rows: List[List] = []
    for app_id in sorted(metrics.apps):
        rec = metrics.apps[app_id]
        if rec.completed:
            status = "completed" if rec.met_deadline else "late"
        elif rec.dropped:
            status = "dropped"
        elif rec.failed:
            status = "failed"
        else:
            status = "unfinished"
        rows.append(
            [
                rec.app_id,
                rec.name,
                rec.arrival_s,
                rec.deadline_s,
                rec.mapped_s,
                rec.vdd,
                rec.dop,
                rec.ve_count,
                rec.remap_count,
                rec.finished_s,
                rec.dropped_s,
                rec.failed_s,
                status,
            ]
        )
    return rows


def app_records_csv(metrics: RunMetrics) -> str:
    """The per-application table as a CSV string (with header)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(APP_COLUMNS)
    writer.writerows(app_records_rows(metrics))
    return buffer.getvalue()


def write_app_records_csv(metrics: RunMetrics, path: str) -> None:
    """Write :func:`app_records_csv` to a file."""
    with open(path, "w", newline="") as handle:
        handle.write(app_records_csv(metrics))


def run_summary_csv(results: Sequence, header: bool = True) -> str:
    """Summaries of several :class:`~repro.exp.runner.FrameworkResult`
    objects as CSV (framework, workload, arrival, totals)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    if header:
        writer.writerow(
            [
                "framework",
                "workload",
                "arrival_interval_s",
                "total_time_s",
                "peak_psn_pct",
                "avg_psn_pct",
                "completed",
                "dropped",
                "ve_count",
            ]
        )
    for r in results:
        writer.writerow(
            [
                r.framework,
                r.workload,
                r.arrival_interval_s,
                r.total_time_s,
                r.peak_psn_pct,
                r.avg_psn_pct,
                r.completed,
                r.dropped,
                r.ve_count,
            ]
        )
    return buffer.getvalue()
