"""Chip occupancy state shared by resource managers and the runtime.

Tracks which tiles run which task of which application, the supply
voltage of every power domain, and the power headroom against the dark
silicon power budget (DsPB).

Two granularities coexist because the compared managers differ:

* PARM occupies whole 2x2 domains (applications never share a domain,
  Section 3.3);
* the HM baseline scatters tasks over individual tiles across the chip.

The state enforces the one invariant the hardware imposes: all occupied
tiles of one domain run at the domain's single Vdd.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.chip.cmp import ChipDescription


@dataclass(frozen=True)
class TileOccupant:
    """What a tile is currently running."""

    app_id: int
    task_id: int
    vdd: float


class ChipState:
    """Mutable occupancy/power state of the CMP.

    Args:
        chip: The platform description.
        failed_tiles: Tiles that are permanently unusable (fault
            injection); they are excluded from every free-tile/domain
            query and can never be occupied.  Trial states built for
            what-if planning (compaction, re-mapping) must carry the
            source state's failed set so plans stay executable.
    """

    def __init__(
        self,
        chip: ChipDescription,
        failed_tiles: Optional[Iterable[int]] = None,
    ):
        self._chip = chip
        self._occupants: Dict[int, TileOccupant] = {}
        self._domain_vdd: Dict[int, float] = {}
        self._app_power_w: Dict[int, float] = {}
        self._failed: Set[int] = set(failed_tiles or ())
        for tile in self._failed:
            chip.mesh._check_tile(tile)

    @property
    def chip(self) -> ChipDescription:
        return self._chip

    # ------------------------------------------------------------------
    # Queries used by the mapping algorithms
    # ------------------------------------------------------------------

    def free_tiles(self) -> List[int]:
        """Tiles with no occupant and no permanent fault, ascending id."""
        return [
            t
            for t in self._chip.mesh.tiles()
            if t not in self._occupants and t not in self._failed
        ]

    def free_domains(self) -> List[int]:
        """Domains with all four tiles free and healthy, ascending id."""
        domains = self._chip.domains
        return [
            d
            for d in range(domains.domain_count)
            if all(
                t not in self._occupants and t not in self._failed
                for t in domains.tiles_of(d)
            )
        ]

    def failed_tiles(self) -> Set[int]:
        """Copy of the permanently failed tile set."""
        return set(self._failed)

    def is_failed(self, tile: int) -> bool:
        return tile in self._failed

    def used_power_w(self) -> float:
        """Estimated power of all running applications."""
        return sum(self._app_power_w.values())

    def available_power_w(self) -> float:
        """Headroom under the dark silicon power budget."""
        return self._chip.dark_silicon_budget_w - self.used_power_w()

    def occupant(self, tile: int) -> Optional[TileOccupant]:
        return self._occupants.get(tile)

    def domain_vdd(self, domain: int) -> Optional[float]:
        """Current supply voltage of a domain (None when idle)."""
        return self._domain_vdd.get(domain)

    def running_apps(self) -> List[int]:
        return sorted(self._app_power_w)

    def tiles_of_app(self, app_id: int) -> Dict[int, int]:
        """Mapping of task id to tile for one running application."""
        return {
            occ.task_id: tile
            for tile, occ in self._occupants.items()
            if occ.app_id == app_id
        }

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def occupy(
        self,
        app_id: int,
        task_to_tile: Dict[int, int],
        vdd: float,
        power_w: float,
    ) -> None:
        """Place an application.

        Raises:
            ValueError: if a tile is already occupied, the app is already
                placed, a domain would end up with two voltages, or the
                placement exceeds the DsPB headroom.
        """
        if app_id in self._app_power_w:
            raise ValueError(f"app {app_id} is already placed")
        if power_w > self.available_power_w() + 1e-9:
            raise ValueError(
                f"placing app {app_id} ({power_w:.2f} W) exceeds the "
                f"available budget ({self.available_power_w():.2f} W)"
            )
        tiles = list(task_to_tile.values())
        if len(set(tiles)) != len(tiles):
            raise ValueError("two tasks mapped to one tile")
        domains = self._chip.domains
        for tile in tiles:
            if tile in self._occupants:
                raise ValueError(f"tile {tile} already occupied")
            if tile in self._failed:
                raise ValueError(f"tile {tile} has failed permanently")
            current = self._domain_vdd.get(domains.domain_of(tile))
            if current is not None and abs(current - vdd) > 1e-9:
                raise ValueError(
                    f"tile {tile} is in a domain running at {current} V, "
                    f"cannot place a {vdd} V task"
                )
        for task, tile in task_to_tile.items():
            self._occupants[tile] = TileOccupant(app_id, task, vdd)
            self._domain_vdd[domains.domain_of(tile)] = vdd
        self._app_power_w[app_id] = power_w

    def move_task(self, app_id: int, task_id: int, new_tile: int) -> None:
        """Migrate one task of a running application to a free tile.

        Used by reactive thread-migration schemes (e.g. the
        Orchestrator-style baseline).  The destination must be free and
        its domain must be idle or already running at the app's Vdd.

        Raises:
            ValueError: if the task is not placed, the destination is
                occupied, or the domain voltage would conflict.
        """
        current = self.tiles_of_app(app_id)
        if task_id not in current:
            raise ValueError(
                f"app {app_id} has no task {task_id} placed"
            )
        old_tile = current[task_id]
        if new_tile == old_tile:
            return
        if new_tile in self._occupants:
            raise ValueError(f"tile {new_tile} already occupied")
        if new_tile in self._failed:
            raise ValueError(f"tile {new_tile} has failed permanently")
        vdd = self._occupants[old_tile].vdd
        domains = self._chip.domains
        new_domain = domains.domain_of(new_tile)
        current_vdd = self._domain_vdd.get(new_domain)
        if current_vdd is not None and abs(current_vdd - vdd) > 1e-9:
            raise ValueError(
                f"tile {new_tile} is in a domain running at {current_vdd} V"
            )
        del self._occupants[old_tile]
        self._occupants[new_tile] = TileOccupant(app_id, task_id, vdd)
        self._domain_vdd[new_domain] = vdd
        old_domain = domains.domain_of(old_tile)
        if all(
            t not in self._occupants for t in domains.tiles_of(old_domain)
        ):
            self._domain_vdd.pop(old_domain, None)

    def fail_tile(self, tile: int) -> None:
        """Permanently retire a tile (fault injection).

        The tile must be vacant: a faulting occupant is recovered
        (checkpoint rollback + re-mapping) by the runtime *before* the
        tile is retired, so state transitions stay explicit.

        Raises:
            ValueError: if the tile id is invalid or still occupied.
        """
        self._chip.mesh._check_tile(tile)
        if tile in self._occupants:
            raise ValueError(
                f"tile {tile} is occupied; recover its application "
                "before retiring it"
            )
        self._failed.add(tile)

    def release(self, app_id: int) -> None:
        """Remove an application's tasks and free idle domains."""
        if app_id not in self._app_power_w:
            raise ValueError(f"app {app_id} is not placed")
        domains = self._chip.domains
        freed = [
            tile
            for tile, occ in self._occupants.items()
            if occ.app_id == app_id
        ]
        for tile in freed:
            del self._occupants[tile]
        for d in sorted({domains.domain_of(t) for t in freed}):
            if all(t not in self._occupants for t in domains.tiles_of(d)):
                self._domain_vdd.pop(d, None)
        del self._app_power_w[app_id]
