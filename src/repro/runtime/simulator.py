"""Discrete-event runtime simulator: the paper's experiment loop.

Drives one workload sequence through one (mapper, router) framework
combination and produces the Fig. 6/7/8 metrics:

* applications arrive into a FCFS service queue; the resource manager
  assigns Vdd, DoP and a task-to-tile mapping (PARM Algorithm 1+2, or
  the HM baseline);
* mapped applications execute for an estimated time that accounts for
  parallelism, frequency at the chosen Vdd, NoC contention under the
  chosen routing scheme (flow-based analytical model) and periodic
  checkpointing overhead;
* power-supply noise is evaluated per power domain with the calibrated
  fast PSN model whenever the chip's occupancy or traffic changes; tiles
  whose peak PSN exceeds the 5 % margin suffer voltage emergencies at a
  rate growing with the exceedance, each costing a rollback penalty;
* an application whose deadline can no longer be met by any operating
  point is dropped (the paper's stagnation-avoidance rule).

All randomness (VE sampling) comes from one seeded generator, so runs
are reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.performance import PerformanceModel
from repro.apps.profiles import FLIT_PAYLOAD_BYTES
from repro.apps.workload import ApplicationArrival
from repro.chip.cmp import ChipDescription
from repro.noc.analytical import AnalyticalNocModel, Flow
from repro.noc.routing.base import RoutingAlgorithm
from repro.noc.topology import MeshTopology
from repro.pdn.emergencies import VoltageEmergencyPolicy
from repro.pdn.fast import FastPsnModel
from repro.pdn.sensors import SensorNetwork
from repro.pdn.waveforms import ActivityBin, TileLoad
from repro.runtime.checkpoint import CheckpointPolicy
from repro.runtime.metrics import AppRecord, RunMetrics
from repro.runtime.migration import (
    MigrationPolicy,
    ReactiveMigrationPolicy,
    moved_task_count,
    pick_migration_target,
    plan_compaction,
)
from repro.runtime.state import ChipState

if TYPE_CHECKING:  # avoid a circular import with repro.core
    from repro.core.base import MappingDecision, ResourceManager

_ARRIVAL = 0
_EXIT = 1


@dataclass
class _RunningApp:
    arrival: ApplicationArrival
    decision: MappingDecision
    record: AppRecord
    exec_time_s: float
    remaining_s: float
    exit_version: int = 0


class RuntimeSimulator:
    """Simulates one framework combination over one workload sequence.

    Args:
        chip: Platform description.
        manager: Resource manager (PARM or HM).
        routing: NoC routing algorithm (XY, ICON or PANR).
        ve_policy: Voltage-emergency rate model.
        checkpoints: Checkpoint/rollback cost model.
        sensors: PSN sensor quantisation (routing and the manager see
            sensor values; VE sampling uses the true noise).
        migration: When set, fragmentation that blocks the queue head
            triggers migration-based compaction (an extension; see
            :mod:`repro.runtime.migration`).
        reactive_migration: When set, a sensor reading over the trigger
            threshold migrates the offending thread to a quieter tile
            (the Orchestrator-style baseline's back end).
        record_trace: When true, the returned metrics carry a
            ``(time, chip peak PSN, occupied tiles)`` snapshot per
            scheduling event (for time-series analysis and plotting).
        seed: RNG seed for VE sampling.
        max_sim_time_s: Safety horizon; the run aborts past it.
    """

    def __init__(
        self,
        chip: ChipDescription,
        manager: ResourceManager,
        routing: RoutingAlgorithm,
        ve_policy: Optional[VoltageEmergencyPolicy] = None,
        checkpoints: Optional[CheckpointPolicy] = None,
        sensors: Optional[SensorNetwork] = None,
        migration: Optional[MigrationPolicy] = None,
        reactive_migration: Optional[ReactiveMigrationPolicy] = None,
        seed: int = 0,
        max_sim_time_s: float = 600.0,
        record_trace: bool = False,
    ):
        self._chip = chip
        self._manager = manager
        self._routing = routing
        self._ve_policy = ve_policy or VoltageEmergencyPolicy()
        self._checkpoints = checkpoints or CheckpointPolicy()
        self._sensors = sensors or SensorNetwork()
        self._migration = migration
        self._reactive = reactive_migration
        self._record_trace = record_trace
        self._rng = np.random.default_rng(seed)
        self._max_time = max_sim_time_s
        self._noc = AnalyticalNocModel(MeshTopology(chip.mesh), routing)
        self._psn_model = FastPsnModel()
        self._performance = PerformanceModel(chip.power_model)

    # ------------------------------------------------------------------

    def run(self, arrivals: Sequence[ApplicationArrival]) -> RunMetrics:
        """Execute one workload sequence to completion."""
        state = ChipState(self._chip)
        metrics = RunMetrics()
        running: Dict[int, _RunningApp] = {}
        queue: List[ApplicationArrival] = []

        heap: List[Tuple[float, int, int, int, int]] = []
        seq = 0
        for a in arrivals:
            metrics.apps[a.app_id] = AppRecord(
                app_id=a.app_id,
                name=a.profile.name,
                arrival_s=a.arrival_s,
                deadline_s=a.deadline_s,
            )
            heapq.heappush(heap, (a.arrival_s, seq, _ARRIVAL, a.app_id, 0))
            seq += 1
        arrivals_by_id = {a.app_id: a for a in arrivals}

        # Current chip-wide PSN view (true and sensor-quantised).
        peak_psn = np.zeros(self._chip.tile_count)
        avg_psn = np.zeros(self._chip.tile_count)
        sensor_psn = np.zeros(self._chip.tile_count)

        move_cooldown: Dict[int, float] = {}
        now = 0.0
        while heap:
            t, _, kind, app_id, version = heapq.heappop(heap)
            if t > self._max_time:
                break
            dt = t - now

            # ---- account the elapsed interval -------------------------
            occupied = [
                tile for tile in self._chip.mesh.tiles() if state.occupant(tile)
            ]
            metrics.record_psn_interval(
                dt,
                [float(avg_psn[tile]) for tile in occupied],
                float(np.max(peak_psn)) if occupied else 0.0,
            )
            if self._record_trace:
                metrics.trace.append(
                    (now, float(np.max(peak_psn)), len(occupied))
                )
            ve_hit = self._sample_emergencies(
                dt, state, running, peak_psn, metrics
            )
            for app in running.values():
                app.remaining_s = max(0.0, app.remaining_s - dt)
            now = t

            # ---- handle the event --------------------------------------
            occupancy_changed = False
            if kind == _ARRIVAL:
                queue.append(arrivals_by_id[app_id])
            elif kind == _EXIT:
                app = running.get(app_id)
                if app is None or app.exit_version != version:
                    pass  # stale exit
                elif app.remaining_s <= 1e-9:
                    state.release(app_id)
                    app.record.finished_s = now
                    metrics.total_time_s = max(metrics.total_time_s, now)
                    del running[app_id]
                    occupancy_changed = True
                # Otherwise a VE pushed the finish out; rescheduled below.

            # ---- serve the FCFS queue ----------------------------------
            while queue:
                head = queue[0]
                record = metrics.apps[head.app_id]
                if not self._still_feasible(head, now):
                    record.dropped_s = now
                    queue.pop(0)
                    continue
                decision = self._manager.try_map(
                    head.profile, head.deadline_s - now, state
                )
                if decision is None and self._migration is not None:
                    decision = self._try_compaction(
                        state, running, head, now, metrics
                    )
                if decision is None:
                    break  # FCFS: the head blocks until resources free up
                state.occupy(
                    head.app_id,
                    decision.task_to_tile,
                    decision.vdd,
                    decision.power_w,
                )
                record.mapped_s = now
                record.vdd = decision.vdd
                record.dop = decision.dop
                running[head.app_id] = _RunningApp(
                    arrival=head,
                    decision=decision,
                    record=record,
                    exec_time_s=0.0,  # set by the refresh below
                    remaining_s=0.0,
                )
                queue.pop(0)
                occupancy_changed = True

            # ---- refresh NoC + PSN + execution estimates ----------------
            if occupancy_changed:
                peak_psn, avg_psn, sensor_psn = self._refresh(
                    state, running, sensor_psn
                )
                reschedule = set(running)
            else:
                reschedule = ve_hit

            # ---- reactive hotspot migration (extension) ----------------
            if self._reactive is not None and running:
                moved = self._reactive_move(
                    state, running, sensor_psn, now, metrics, move_cooldown
                )
                if moved:
                    peak_psn, avg_psn, sensor_psn = self._refresh(
                        state, running, sensor_psn
                    )
                    reschedule = set(running)

            for aid in reschedule:
                app = running.get(aid)
                if app is None:
                    continue
                app.exit_version += 1
                heapq.heappush(
                    heap,
                    (now + app.remaining_s, seq, _EXIT, aid, app.exit_version),
                )
                seq += 1

        return metrics

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _reactive_move(
        self,
        state: ChipState,
        running: Dict[int, _RunningApp],
        sensor_psn: np.ndarray,
        now: float,
        metrics: RunMetrics,
        cooldown: Dict[int, float],
    ) -> bool:
        """Move the thread on the noisiest over-threshold tile.

        Returns True when a migration happened.
        """
        policy = self._reactive
        if metrics.reactive_move_count >= policy.max_moves:
            return False
        # Noisiest occupied tile above the trigger whose app is off
        # cooldown.
        best_tile, best_level = None, policy.trigger_pct
        for tile in self._chip.mesh.tiles():
            occ = state.occupant(tile)
            if occ is None:
                continue
            level = float(sensor_psn[tile])
            if level <= best_level:
                continue
            last = cooldown.get(occ.app_id)
            if last is not None and now - last < policy.cooldown_s:
                continue
            best_tile, best_level = tile, level
        if best_tile is None:
            return False
        occ = state.occupant(best_tile)
        app = running.get(occ.app_id)
        if app is None:
            return False
        target = pick_migration_target(state, best_tile, occ.vdd)
        if target is None:
            return False
        state.move_task(occ.app_id, occ.task_id, target)
        new_map = dict(app.decision.task_to_tile)
        new_map[occ.task_id] = target
        import dataclasses as _dc

        app.decision = _dc.replace(app.decision, task_to_tile=new_map)
        app.remaining_s += policy.per_task_cost_s
        app.record.migrated_tasks += 1
        metrics.reactive_move_count += 1
        cooldown[occ.app_id] = now
        return True

    def _try_compaction(
        self,
        state: ChipState,
        running: Dict[int, _RunningApp],
        head: ApplicationArrival,
        now: float,
        metrics: RunMetrics,
    ):
        """Defragment via migration so the queue head can map.

        Returns the head's mapping decision when compaction succeeds
        (with the chip state already rewritten and migration penalties
        charged), else ``None``.
        """
        if not running:
            return None
        if metrics.compaction_count >= self._migration.max_compactions:
            return None
        replacements = plan_compaction(
            state,
            {
                aid: (app.arrival.profile, app.decision)
                for aid, app in running.items()
            },
        )
        if replacements is None:
            return None
        trial = ChipState(self._chip)
        for aid, new in replacements.items():
            trial.occupy(aid, new.task_to_tile, new.vdd, new.power_w)
        head_decision = self._manager.try_map(
            head.profile, head.deadline_s - now, trial
        )
        if head_decision is None:
            return None  # fragmentation was not the blocker

        # Commit: rewrite the real occupancy and charge moved threads.
        for aid in list(running):
            state.release(aid)
        for aid, new in replacements.items():
            state.occupy(aid, new.task_to_tile, new.vdd, new.power_w)
            app = running[aid]
            moved = moved_task_count(app.decision, new)
            app.decision = new
            app.remaining_s += moved * self._migration.per_task_cost_s
            app.record.migrated_tasks += moved
        metrics.compaction_count += 1
        return head_decision

    def _still_feasible(self, arrival: ApplicationArrival, now: float) -> bool:
        """Whether any operating point can still meet the deadline."""
        profile = arrival.profile
        slack = arrival.deadline_s - now
        best = min(
            profile.wcet_s(v, d)
            for v in profile.supported_vdds
            for d in profile.supported_dops
        )
        return best < slack

    def _sample_emergencies(
        self,
        dt: float,
        state: ChipState,
        running: Dict[int, _RunningApp],
        peak_psn: np.ndarray,
        metrics: RunMetrics,
    ) -> set:
        """Poisson-sample VEs over the elapsed interval; charge rollbacks."""
        hit = set()
        if dt <= 0:
            return hit
        penalties: Dict[int, float] = {}
        for tile in self._chip.mesh.tiles():
            occ = state.occupant(tile)
            if occ is None:
                continue
            count = self._ve_policy.sample_emergencies(
                float(peak_psn[tile]), dt, self._rng
            )
            if count == 0:
                continue
            app = running.get(occ.app_id)
            if app is None:
                continue
            freq = self._chip.power_model.frequency(app.decision.vdd)
            penalties[occ.app_id] = penalties.get(occ.app_id, 0.0) + (
                count * self._checkpoints.rollback_penalty_s(freq)
            )
            app.record.ve_count += count
            metrics.total_ve_count += count
            hit.add(occ.app_id)
        for aid, penalty in penalties.items():
            # Rollbacks cannot erase more than the elapsed interval:
            # checkpointing guarantees some forward progress, so at worst
            # 90 % of the interval is lost to re-execution.
            running[aid].remaining_s += min(penalty, 0.9 * dt)
        return hit

    def _refresh(
        self,
        state: ChipState,
        running: Dict[int, _RunningApp],
        prev_sensor_psn: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Recompute NoC load, PSN and per-app execution estimates."""
        # --- flows from every running application ----------------------
        flows: List[Flow] = []
        flow_app: List[Tuple[int, float]] = []  # (app_id, volume)
        for aid, app in running.items():
            d = app.decision
            graph = app.arrival.profile.graph(d.dop)
            freq = self._chip.power_model.frequency(d.vdd)
            base_cycles = app.arrival.profile.wcet_s(d.vdd, d.dop) * freq
            for src, dst, volume in graph.edges():
                rate = (volume / FLIT_PAYLOAD_BYTES) / base_cycles
                flows.append(
                    Flow(d.task_to_tile[src], d.task_to_tile[dst], rate)
                )
                flow_app.append((aid, volume))
        report = self._noc.evaluate(flows, psn_pct=prev_sensor_psn)

        # --- per-app NoC aggregates -> execution estimates --------------
        hop_acc: Dict[int, float] = {}
        scale_max: Dict[int, float] = {}
        vol_acc: Dict[int, float] = {}
        for (aid, volume), stats in zip(flow_app, report.flows):
            hop_acc[aid] = hop_acc.get(aid, 0.0) + volume * stats.avg_hops
            # The application's makespan follows its *bottleneck* edge:
            # congestion on any critical-path link stalls the whole
            # pipeline, so the worst per-flow scale applies.
            scale_max[aid] = max(scale_max.get(aid, 1.0), stats.latency_scale)
            vol_acc[aid] = vol_acc.get(aid, 0.0) + volume

        for aid, app in running.items():
            d = app.decision
            profile = app.arrival.profile
            vol = vol_acc.get(aid, 0.0)
            if vol > 0:
                avg_hops = max(1.0, hop_acc[aid] / vol)
                latency_scale = scale_max.get(aid, 1.0)
            else:
                avg_hops, latency_scale = 1.0, 1.0
            freq = self._chip.power_model.frequency(d.vdd)
            exec_time = self._performance.estimate_wcet_s(
                profile.graph(d.dop),
                d.vdd,
                avg_hops=avg_hops,
                latency_scale=latency_scale,
            ) * self._checkpoints.execution_dilation(freq)
            if app.exec_time_s == 0.0:
                app.remaining_s = exec_time  # freshly mapped
            elif exec_time != app.exec_time_s:
                app.remaining_s *= exec_time / app.exec_time_s
            app.exec_time_s = exec_time

        # --- PSN per power domain ----------------------------------------
        peak, avg = self._evaluate_psn(state, running, report)
        sensor = self._sensors.read_array(peak)
        return peak, avg, sensor

    def _evaluate_psn(
        self,
        state: ChipState,
        running: Dict[int, _RunningApp],
        report,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-tile peak/avg PSN from occupancy + router activity."""
        chip = self._chip
        power_model = chip.power_model
        n = chip.tile_count
        peak = np.zeros(n)
        avg = np.zeros(n)
        graphs = {
            aid: app.arrival.profile.graph(app.decision.dop)
            for aid, app in running.items()
        }
        for domain in range(chip.domain_count):
            tiles = chip.domains.tiles_of(domain)
            vdd = state.domain_vdd(domain)
            # A 5-port router physically switches at most ~4 flits per
            # cycle; clamp the analytical load before converting to power.
            router_rates = [
                min(float(report.router_flits_per_cycle[t]), 4.0)
                for t in tiles
            ]
            if vdd is None:
                if all(r == 0.0 for r in router_rates):
                    continue  # fully dark and quiet
                # Idle domain carrying through-traffic: the NoC keeps its
                # routers powered at the lowest DVS step.
                vdd = chip.vdd_ladder.lowest
            loads = []
            for tile, r_rate in zip(tiles, router_rates):
                occ = state.occupant(tile)
                router_power = (
                    power_model.router_dynamic(r_rate, vdd)
                    + power_model.router_leakage(vdd)
                )
                if occ is None:
                    loads.append(
                        TileLoad(0.0, router_power if r_rate > 0 else 0.0,
                                 ActivityBin.LOW)
                    )
                    continue
                app = running[occ.app_id]
                task = graphs[occ.app_id].task(occ.task_id)
                core_power = power_model.core_dynamic(
                    task.activity_factor, app.decision.vdd
                ) + power_model.core_leakage(app.decision.vdd)
                loads.append(
                    TileLoad(core_power, router_power, task.activity_bin)
                )
            d_peak, d_avg = self._psn_model.domain_psn(vdd, loads)
            for i, tile in enumerate(tiles):
                peak[tile] = d_peak[i]
                avg[tile] = d_avg[i]
        return peak, avg
