"""Discrete-event runtime simulator: the paper's experiment loop.

Drives one workload sequence through one (mapper, router) framework
combination and produces the Fig. 6/7/8 metrics:

* applications arrive into a FCFS service queue; the resource manager
  assigns Vdd, DoP and a task-to-tile mapping (PARM Algorithm 1+2, or
  the HM baseline);
* mapped applications execute for an estimated time that accounts for
  parallelism, frequency at the chosen Vdd, NoC contention under the
  chosen routing scheme (flow-based analytical model) and periodic
  checkpointing overhead;
* power-supply noise is evaluated per power domain with the calibrated
  fast PSN model whenever the chip's occupancy or traffic changes; tiles
  whose peak PSN exceeds the 5 % margin suffer voltage emergencies at a
  rate growing with the exceedance, each costing a rollback penalty;
* an application whose deadline can no longer be met by any operating
  point is dropped (the paper's stagnation-avoidance rule);
* optionally, a seeded :class:`~repro.faults.campaign.FaultCampaign`
  injects component faults: sensors lie or die (PANR degrades toward
  deterministic XY), links and routers fail (flows are re-routed or the
  application re-mapped), VRM droop raises a domain's PSN floor, and a
  permanent tile failure triggers checkpoint rollback plus bounded-retry
  re-mapping with exponential backoff - exhausting the retries fails the
  application cleanly instead of raising.

All randomness (VE sampling) comes from one seeded generator, so runs
are reproducible; fault campaigns carry their own pre-sampled schedule,
so a run without faults is bit-identical to the fault-free simulator.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.apps.performance import PerformanceModel
from repro.apps.profiles import FLIT_PAYLOAD_BYTES
from repro.apps.workload import ApplicationArrival
from repro.chip.cmp import ChipDescription
from repro.faults.campaign import FaultCampaign
from repro.faults.events import FaultKind
from repro.faults.recovery import RecoveryPolicy
from repro.faults.state import FaultState
from repro.noc.analytical import AnalyticalNocModel, Flow
from repro.noc.routing.base import RoutingAlgorithm
from repro.noc.topology import MeshTopology
from repro.pdn.emergencies import VoltageEmergencyPolicy
from repro.pdn.fast import BIN_INDEX, FastPsnModel
from repro.pdn.sensors import SensorNetwork
from repro.pdn.waveforms import ActivityBin
from repro.runtime.checkpoint import CheckpointPolicy
from repro.runtime.metrics import AppRecord, RunMetrics
from repro.runtime.migration import (
    MigrationPolicy,
    ReactiveMigrationPolicy,
    moved_task_count,
    pick_migration_target,
    plan_compaction,
)
from repro.runtime.state import ChipState

if TYPE_CHECKING:  # avoid a circular import with repro.core
    from repro.core.base import MappingDecision, ResourceManager

_ARRIVAL = 0
_EXIT = 1
_FAULT = 2
_FAULT_END = 3
_RETRY = 4


@dataclass
class _RunningApp:
    arrival: ApplicationArrival
    decision: MappingDecision
    record: AppRecord
    exec_time_s: float
    remaining_s: float
    exit_version: int = 0
    #: Work fraction still owed when (re-)entering execution: 1.0 for a
    #: fresh mapping, the checkpointed progress for a fault recovery.
    resume_fraction: float = 1.0
    #: One-off penalty (rollback + restart transfer) folded into the
    #: next execution estimate.
    pending_penalty_s: float = 0.0


@dataclass(frozen=True)
class SimulatorContext:
    """Chip-derived immutables shared across simulators.

    Building a :class:`RuntimeSimulator` touches several structures that
    depend only on the chip description - the mesh topology (and its
    hop-distance tables), the fitted PSN kernel ladders, the performance
    model and the domain->tiles map.  A sweep that runs many seeds (or
    many framework combinations) over the same chip used to rebuild all
    of them per simulator; constructing the context once and passing it
    to every simulator hoists that warm-up out of the per-seed loop.

    The context is immutable and holds no per-run state, so sharing one
    instance across sequential or concurrent simulations of the same
    chip is safe.
    """

    chip: ChipDescription
    topology: MeshTopology
    psn_model: FastPsnModel
    performance: PerformanceModel
    #: Per power domain, the tuple of member tile ids (row-major).
    domain_tiles: Tuple[Tuple[int, ...], ...]

    @classmethod
    def for_chip(
        cls,
        chip: ChipDescription,
        psn_model: Optional[FastPsnModel] = None,
    ) -> "SimulatorContext":
        """Build the shared immutables for one chip description."""
        return cls(
            chip=chip,
            topology=MeshTopology(chip.mesh),
            psn_model=psn_model if psn_model is not None else FastPsnModel(),
            performance=PerformanceModel(chip.power_model),
            domain_tiles=tuple(
                tuple(chip.domains.tiles_of(d))
                for d in range(chip.domain_count)
            ),
        )


@dataclass
class _RecoveringApp:
    """An application evicted by a fault, awaiting re-mapping."""

    arrival: ApplicationArrival
    record: AppRecord
    resume_fraction: float
    pending_penalty_s: float
    exit_version: int
    #: Re-map attempts made during this recovery episode (resets on
    #: every eviction; the retry budget is per episode).
    attempts: int = 0


class RuntimeSimulator:
    """Simulates one framework combination over one workload sequence.

    Args:
        chip: Platform description.
        manager: Resource manager (PARM or HM).
        routing: NoC routing algorithm (XY, ICON or PANR).
        ve_policy: Voltage-emergency rate model.
        checkpoints: Checkpoint/rollback cost model.
        sensors: PSN sensor quantisation (routing and the manager see
            sensor values; VE sampling uses the true noise).
        migration: When set, fragmentation that blocks the queue head
            triggers migration-based compaction (an extension; see
            :mod:`repro.runtime.migration`).
        reactive_migration: When set, a sensor reading over the trigger
            threshold migrates the offending thread to a quieter tile
            (the Orchestrator-style baseline's back end).
        faults: Optional pre-sampled fault campaign to replay during the
            run.  ``None`` or an empty campaign leaves every code path
            bit-identical to the fault-free simulator.
        recovery: Retry/backoff policy for fault recovery; defaults to
            :class:`~repro.faults.recovery.RecoveryPolicy`.
        record_trace: When true, the returned metrics carry a
            ``(time, chip peak PSN, occupied tiles)`` snapshot per
            scheduling event (for time-series analysis and plotting).
        streaming_stats: When true, terminal application records are
            folded into the metrics' O(1) counters and dropped as they
            finish (see :meth:`~repro.runtime.metrics.RunMetrics.retire`),
            bounding memory for long arrival sequences.  The default
            keeps every record - required by the per-app CSV export.
        seed: RNG seed for VE sampling.
        max_sim_time_s: Safety horizon; the run aborts past it.
        context: Pre-built chip-derived immutables
            (:class:`SimulatorContext`); pass one context to many
            simulators of the same chip to skip per-instance warm-up.
            Built on the fly when omitted.
    """

    def __init__(
        self,
        chip: ChipDescription,
        manager: ResourceManager,
        routing: RoutingAlgorithm,
        ve_policy: Optional[VoltageEmergencyPolicy] = None,
        checkpoints: Optional[CheckpointPolicy] = None,
        sensors: Optional[SensorNetwork] = None,
        migration: Optional[MigrationPolicy] = None,
        reactive_migration: Optional[ReactiveMigrationPolicy] = None,
        faults: Optional[FaultCampaign] = None,
        recovery: Optional[RecoveryPolicy] = None,
        seed: int = 0,
        max_sim_time_s: float = 600.0,
        record_trace: bool = False,
        streaming_stats: bool = False,
        context: Optional[SimulatorContext] = None,
    ):
        self._chip = chip
        self._manager = manager
        self._routing = routing
        self._ve_policy = ve_policy or VoltageEmergencyPolicy()
        self._checkpoints = checkpoints or CheckpointPolicy()
        self._sensors = sensors or SensorNetwork()
        self._migration = migration
        self._reactive = reactive_migration
        # An empty campaign is exactly "no faults": keep every fault hook
        # disabled so fault-free runs stay bit-identical to the seed.
        self._faults = faults if faults is not None and faults.events else None
        self._recovery = recovery or RecoveryPolicy()
        self._record_trace = record_trace
        self._streaming_stats = streaming_stats
        self._rng = np.random.default_rng(seed)
        self._max_time = max_sim_time_s
        if context is None:
            context = SimulatorContext.for_chip(chip)
        elif context.chip is not chip:
            raise ValueError(
                "SimulatorContext was built for a different chip description"
            )
        self._context = context
        self._noc = AnalyticalNocModel(context.topology, routing)
        self._psn_model = context.psn_model
        self._performance = context.performance
        self._domain_tiles = context.domain_tiles

    # ------------------------------------------------------------------

    def run(self, arrivals: Sequence[ApplicationArrival]) -> RunMetrics:
        """Execute one workload sequence to completion."""
        state = ChipState(self._chip)
        metrics = RunMetrics(streaming=self._streaming_stats)
        running: Dict[int, _RunningApp] = {}
        queue: List[ApplicationArrival] = []

        heap: List[Tuple[float, int, int, int, int]] = []
        counter = itertools.count()
        for a in arrivals:
            metrics.apps[a.app_id] = AppRecord(
                app_id=a.app_id,
                name=a.profile.name,
                arrival_s=a.arrival_s,
                deadline_s=a.deadline_s,
            )
            heapq.heappush(
                heap, (a.arrival_s, next(counter), _ARRIVAL, a.app_id, 0)
            )
        arrivals_by_id = {a.app_id: a for a in arrivals}

        # ---- fault-campaign replay state (inert when no faults) --------
        fstate = FaultState(self._chip) if self._faults is not None else None
        recovering: Dict[int, _RecoveringApp] = {}
        if fstate is not None:
            for idx, ev in enumerate(self._faults.events):
                heapq.heappush(
                    heap, (ev.time_s, next(counter), _FAULT, idx, 0)
                )
                if not ev.permanent:
                    heapq.heappush(
                        heap, (ev.end_s, next(counter), _FAULT_END, idx, 0)
                    )

        # Current chip-wide PSN view (true and sensor-quantised).
        peak_psn = np.zeros(self._chip.tile_count)
        avg_psn = np.zeros(self._chip.tile_count)
        sensor_psn = np.zeros(self._chip.tile_count)
        sensor_valid: Optional[np.ndarray] = None
        move_cooldown: Dict[int, float] = {}
        now = 0.0

        # ---- fault-recovery helpers (closures over the run state) ------
        def evict_app(aid: int) -> None:
            """Checkpoint-rollback eviction: release tiles, remember
            progress, charge the rollback penalty to the restart."""
            app = running.pop(aid, None)
            if app is None:
                return
            frac = (
                app.remaining_s / app.exec_time_s
                if app.exec_time_s > 0
                else 1.0
            )
            freq = self._chip.power_model.frequency(app.decision.vdd)
            state.release(aid)
            recovering[aid] = _RecoveringApp(
                arrival=app.arrival,
                record=app.record,
                resume_fraction=min(1.0, max(0.0, frac)),
                pending_penalty_s=app.pending_penalty_s
                + self._checkpoints.rollback_penalty_s(freq),
                exit_version=app.exit_version,
            )

        def attempt_remap(aid: int) -> bool:
            """One re-mapping attempt; schedules a backoff retry on
            failure and fails the app cleanly when retries run out."""
            rec = recovering.get(aid)
            if rec is None:
                return False
            if not self._still_feasible(rec.arrival, now):
                rec.record.dropped_s = now
                del recovering[aid]
                metrics.retire(aid)
                return False
            if rec.record.remap_count >= self._recovery.max_total_remaps:
                # Lifetime re-map budget spent (the app keeps landing in
                # fault-broken spots): terminal failure, not churn.
                rec.record.failed_s = now
                del recovering[aid]
                metrics.retire(aid)
                return False
            rec.attempts += 1
            decision = self._manager.try_remap(
                rec.arrival.profile, rec.arrival.deadline_s - now, state
            )
            if decision is not None:
                state.occupy(
                    aid, decision.task_to_tile, decision.vdd, decision.power_w
                )
                rec.record.vdd = decision.vdd
                rec.record.dop = decision.dop
                rec.record.remap_count += 1
                metrics.remap_count += 1
                restart = self._recovery.per_task_restart_cost_s * decision.dop
                running[aid] = _RunningApp(
                    arrival=rec.arrival,
                    decision=decision,
                    record=rec.record,
                    exec_time_s=0.0,  # set by the next refresh
                    remaining_s=0.0,
                    exit_version=rec.exit_version,
                    resume_fraction=rec.resume_fraction,
                    pending_penalty_s=rec.pending_penalty_s + restart,
                )
                del recovering[aid]
                return True
            if rec.attempts >= 1 + self._recovery.max_remap_retries:
                # This episode's retry budget is exhausted: abandon the
                # application as a clean outcome, not an exception.
                rec.record.failed_s = now
                del recovering[aid]
                metrics.retire(aid)
                return False
            delay = self._recovery.backoff_s(rec.attempts - 1)
            heapq.heappush(
                heap, (now + delay, next(counter), _RETRY, aid, rec.attempts)
            )
            metrics.remap_retry_count += 1
            return False

        while heap:
            t, _, kind, app_id, version = heapq.heappop(heap)
            if t > self._max_time:
                break
            dt = t - now

            # ---- account the elapsed interval -------------------------
            occupied = [
                tile for tile in self._chip.mesh.tiles() if state.occupant(tile)
            ]
            metrics.record_psn_interval(
                dt,
                [float(avg_psn[tile]) for tile in occupied],
                float(np.max(peak_psn)) if occupied else 0.0,
            )
            if self._record_trace:
                metrics.trace.append(
                    (now, float(np.max(peak_psn)), len(occupied))
                )
            ve_hit = self._sample_emergencies(
                dt, state, running, peak_psn, metrics
            )
            for app in running.values():
                app.remaining_s = max(0.0, app.remaining_s - dt)
            now = t

            # ---- handle the event --------------------------------------
            occupancy_changed = False
            if kind == _ARRIVAL:
                queue.append(arrivals_by_id[app_id])
            elif kind == _EXIT:
                app = running.get(app_id)
                if app is None or app.exit_version != version:
                    pass  # stale exit
                elif app.remaining_s <= 1e-9:
                    state.release(app_id)
                    app.record.finished_s = now
                    metrics.total_time_s = max(metrics.total_time_s, now)
                    del running[app_id]
                    metrics.retire(app_id)
                    occupancy_changed = True
                # Otherwise a VE pushed the finish out; rescheduled below.
            elif kind == _FAULT:
                ev = self._faults.events[app_id]
                fstate.apply(ev, self._sensors)
                metrics.fault_count += 1
                if ev.kind in (FaultKind.TILE_FAIL, FaultKind.ROUTER_FAIL):
                    tile = int(ev.target)
                    occ = state.occupant(tile)
                    evicted = occ.app_id if occ is not None else None
                    if evicted is not None:
                        evict_app(evicted)
                    # Mark the tile dead *before* re-mapping so the
                    # recovery placement cannot land on it again.
                    if not state.is_failed(tile):
                        state.fail_tile(tile)
                    if evicted is not None:
                        attempt_remap(evicted)
                occupancy_changed = True
            elif kind == _FAULT_END:
                ev = self._faults.events[app_id]
                fstate.expire(ev, self._sensors)
                occupancy_changed = True
            elif kind == _RETRY:
                # Stale when the app already re-mapped, failed, dropped,
                # or entered a newer recovery episode (version carries
                # the episode attempt count that scheduled the retry).
                rec = recovering.get(app_id)
                if rec is not None and rec.attempts == version:
                    if attempt_remap(app_id):
                        occupancy_changed = True

            # ---- serve the FCFS queue ----------------------------------
            while queue:
                head = queue[0]
                record = metrics.apps[head.app_id]
                if not self._still_feasible(head, now):
                    record.dropped_s = now
                    queue.pop(0)
                    metrics.retire(head.app_id)
                    continue
                decision = self._manager.try_map(
                    head.profile, head.deadline_s - now, state
                )
                if decision is None and self._migration is not None:
                    decision = self._try_compaction(
                        state, running, head, now, metrics
                    )
                if decision is None:
                    break  # FCFS: the head blocks until resources free up
                state.occupy(
                    head.app_id,
                    decision.task_to_tile,
                    decision.vdd,
                    decision.power_w,
                )
                record.mapped_s = now
                record.vdd = decision.vdd
                record.dop = decision.dop
                running[head.app_id] = _RunningApp(
                    arrival=head,
                    decision=decision,
                    record=record,
                    exec_time_s=0.0,  # set by the refresh below
                    remaining_s=0.0,
                )
                queue.pop(0)
                occupancy_changed = True

            # ---- refresh NoC + PSN + execution estimates ----------------
            if occupancy_changed:
                peak_psn, avg_psn, sensor_psn, sensor_valid, unroutable = (
                    self._refresh(
                        state, running, sensor_psn, sensor_valid, fstate, now
                    )
                )
                # Dead links/routers can leave a placed app's flows
                # unroutable: recover those apps (eviction first so the
                # re-maps see every freed tile).  Each pass either
                # re-places or retires an app, so the loop is bounded;
                # the guard caps pathological churn.
                guard = 0
                while unroutable and guard < 8:
                    for aid in sorted(unroutable):
                        evict_app(aid)
                    for aid in sorted(unroutable):
                        attempt_remap(aid)
                    (
                        peak_psn,
                        avg_psn,
                        sensor_psn,
                        sensor_valid,
                        unroutable,
                    ) = self._refresh(
                        state, running, sensor_psn, sensor_valid, fstate, now
                    )
                    guard += 1
                reschedule = set(running)
            else:
                reschedule = ve_hit

            # ---- reactive hotspot migration (extension) ----------------
            if self._reactive is not None and running:
                moved = self._reactive_move(
                    state, running, sensor_psn, now, metrics, move_cooldown
                )
                if moved:
                    peak_psn, avg_psn, sensor_psn, sensor_valid, _ = (
                        self._refresh(
                            state, running, sensor_psn, sensor_valid,
                            fstate, now,
                        )
                    )
                    reschedule = set(running)

            for aid in reschedule:
                app = running.get(aid)
                if app is None:
                    continue
                app.exit_version += 1
                heapq.heappush(
                    heap,
                    (
                        now + app.remaining_s,
                        next(counter),
                        _EXIT,
                        aid,
                        app.exit_version,
                    ),
                )

        return metrics

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _reactive_move(
        self,
        state: ChipState,
        running: Dict[int, _RunningApp],
        sensor_psn: np.ndarray,
        now: float,
        metrics: RunMetrics,
        cooldown: Dict[int, float],
    ) -> bool:
        """Move the thread on the noisiest over-threshold tile.

        Returns True when a migration happened.
        """
        policy = self._reactive
        if metrics.reactive_move_count >= policy.max_moves:
            return False
        # Noisiest occupied tile above the trigger whose app is off
        # cooldown.
        best_tile, best_level = None, policy.trigger_pct
        for tile in self._chip.mesh.tiles():
            occ = state.occupant(tile)
            if occ is None:
                continue
            level = float(sensor_psn[tile])
            if level <= best_level:
                continue
            last = cooldown.get(occ.app_id)
            if last is not None and now - last < policy.cooldown_s:
                continue
            best_tile, best_level = tile, level
        if best_tile is None:
            return False
        occ = state.occupant(best_tile)
        app = running.get(occ.app_id)
        if app is None:
            return False
        target = pick_migration_target(state, best_tile, occ.vdd)
        if target is None:
            return False
        state.move_task(occ.app_id, occ.task_id, target)
        new_map = dict(app.decision.task_to_tile)
        new_map[occ.task_id] = target
        import dataclasses as _dc

        app.decision = _dc.replace(app.decision, task_to_tile=new_map)
        app.remaining_s += policy.per_task_cost_s
        app.record.migrated_tasks += 1
        metrics.reactive_move_count += 1
        cooldown[occ.app_id] = now
        return True

    def _try_compaction(
        self,
        state: ChipState,
        running: Dict[int, _RunningApp],
        head: ApplicationArrival,
        now: float,
        metrics: RunMetrics,
    ):
        """Defragment via migration so the queue head can map.

        Returns the head's mapping decision when compaction succeeds
        (with the chip state already rewritten and migration penalties
        charged), else ``None``.
        """
        if not running:
            return None
        if metrics.compaction_count >= self._migration.max_compactions:
            return None
        replacements = plan_compaction(
            state,
            {
                aid: (app.arrival.profile, app.decision)
                for aid, app in running.items()
            },
        )
        if replacements is None:
            return None
        trial = ChipState(self._chip, failed_tiles=state.failed_tiles())
        for aid, new in replacements.items():
            trial.occupy(aid, new.task_to_tile, new.vdd, new.power_w)
        head_decision = self._manager.try_map(
            head.profile, head.deadline_s - now, trial
        )
        if head_decision is None:
            return None  # fragmentation was not the blocker

        # Commit: rewrite the real occupancy and charge moved threads.
        for aid in list(running):
            state.release(aid)
        for aid, new in replacements.items():
            state.occupy(aid, new.task_to_tile, new.vdd, new.power_w)
            app = running[aid]
            moved = moved_task_count(app.decision, new)
            app.decision = new
            app.remaining_s += moved * self._migration.per_task_cost_s
            app.record.migrated_tasks += moved
        metrics.compaction_count += 1
        return head_decision

    def _still_feasible(self, arrival: ApplicationArrival, now: float) -> bool:
        """Whether any operating point can still meet the deadline."""
        profile = arrival.profile
        slack = arrival.deadline_s - now
        best = min(
            profile.wcet_s(v, d)
            for v in profile.supported_vdds
            for d in profile.supported_dops
        )
        return best < slack

    def _sample_emergencies(
        self,
        dt: float,
        state: ChipState,
        running: Dict[int, _RunningApp],
        peak_psn: np.ndarray,
        metrics: RunMetrics,
    ) -> set:
        """Poisson-sample VEs over the elapsed interval; charge rollbacks."""
        hit = set()
        if dt <= 0:
            return hit
        penalties: Dict[int, float] = {}
        for tile in self._chip.mesh.tiles():
            occ = state.occupant(tile)
            if occ is None:
                continue
            count = self._ve_policy.sample_emergencies(
                float(peak_psn[tile]), dt, self._rng
            )
            if count == 0:
                continue
            app = running.get(occ.app_id)
            if app is None:
                continue
            freq = self._chip.power_model.frequency(app.decision.vdd)
            penalties[occ.app_id] = penalties.get(occ.app_id, 0.0) + (
                count * self._checkpoints.rollback_penalty_s(freq)
            )
            app.record.ve_count += count
            metrics.total_ve_count += count
            hit.add(occ.app_id)
        for aid, penalty in penalties.items():
            # Rollbacks cannot erase more than the elapsed interval:
            # checkpointing guarantees some forward progress, so at worst
            # 90 % of the interval is lost to re-execution.
            running[aid].remaining_s += min(penalty, 0.9 * dt)
        return hit

    def _refresh(
        self,
        state: ChipState,
        running: Dict[int, _RunningApp],
        prev_sensor_psn: np.ndarray,
        prev_sensor_valid: Optional[np.ndarray] = None,
        fstate: Optional[FaultState] = None,
        now: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray], Set[int]]:
        """Recompute NoC load, PSN and per-app execution estimates.

        Returns ``(peak, avg, sensor, sensor_valid, unroutable_app_ids)``;
        the last two stay ``None`` / empty on fault-free runs.
        """
        # --- flows from every running application ----------------------
        flows: List[Flow] = []
        flow_app: List[Tuple[int, float]] = []  # (app_id, volume)
        for aid, app in running.items():
            d = app.decision
            graph = app.arrival.profile.graph(d.dop)
            freq = self._chip.power_model.frequency(d.vdd)
            base_cycles = app.arrival.profile.wcet_s(d.vdd, d.dop) * freq
            for src, dst, volume in graph.edges():
                rate = (volume / FLIT_PAYLOAD_BYTES) / base_cycles
                flows.append(
                    Flow(d.task_to_tile[src], d.task_to_tile[dst], rate)
                )
                flow_app.append((aid, volume))
        noc_faulty = fstate is not None and fstate.any_noc_faults
        report = self._noc.evaluate(
            flows,
            psn_pct=prev_sensor_psn,
            psn_valid=prev_sensor_valid,
            dead_links=fstate.dead_links if noc_faulty else None,
            dead_routers=fstate.dead_routers if noc_faulty else None,
        )
        unroutable: Set[int] = set()
        if noc_faulty:
            unroutable = {
                flow_app[i][0] for i in report.unroutable_flow_indices
            }

        # --- per-app NoC aggregates -> execution estimates --------------
        hop_acc: Dict[int, float] = {}
        scale_max: Dict[int, float] = {}
        vol_acc: Dict[int, float] = {}
        for (aid, volume), stats in zip(flow_app, report.flows):
            hop_acc[aid] = hop_acc.get(aid, 0.0) + volume * stats.avg_hops
            # The application's makespan follows its *bottleneck* edge:
            # congestion on any critical-path link stalls the whole
            # pipeline, so the worst per-flow scale applies.
            scale_max[aid] = max(scale_max.get(aid, 1.0), stats.latency_scale)
            vol_acc[aid] = vol_acc.get(aid, 0.0) + volume

        for aid, app in running.items():
            d = app.decision
            profile = app.arrival.profile
            vol = vol_acc.get(aid, 0.0)
            if vol > 0:
                avg_hops = max(1.0, hop_acc[aid] / vol)
                latency_scale = scale_max.get(aid, 1.0)
            else:
                avg_hops, latency_scale = 1.0, 1.0
            freq = self._chip.power_model.frequency(d.vdd)
            exec_time = self._performance.estimate_wcet_s(
                profile.graph(d.dop),
                d.vdd,
                avg_hops=avg_hops,
                latency_scale=latency_scale,
            ) * self._checkpoints.execution_dilation(freq)
            if app.exec_time_s <= 0.0:
                # Freshly (re-)mapped: owe the resume fraction of the new
                # estimate plus any rollback/restart penalty.  For a fresh
                # mapping this is exactly ``exec_time * 1.0 + 0.0``.
                app.remaining_s = (
                    exec_time * app.resume_fraction + app.pending_penalty_s
                )
                app.pending_penalty_s = 0.0
            else:
                # Rescale to the new estimate; the ratio is exactly 1.0
                # when the estimate is unchanged, so this is a no-op then.
                app.remaining_s *= exec_time / app.exec_time_s
            app.exec_time_s = exec_time

        # --- PSN per power domain ----------------------------------------
        peak, avg = self._evaluate_psn(state, running, report)
        if fstate is not None:
            if fstate.droop_pct.any():
                # VRM droop raises the domain's noise floor for true PSN
                # (VE sampling) and for what the sensors observe.
                peak = peak + fstate.droop_pct
                avg = avg + fstate.droop_pct
            sensor, valid = self._sensors.read_tiles(peak, now)
            return peak, avg, sensor, valid, unroutable
        sensor = self._sensors.read_array(peak)
        return peak, avg, sensor, None, unroutable

    def _evaluate_psn(
        self,
        state: ChipState,
        running: Dict[int, _RunningApp],
        report,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-tile peak/avg PSN from occupancy + router activity.

        Tile loads are gathered per domain into flat arrays and the
        kernel ladders are evaluated for *all* active domains with one
        batched matvec (:meth:`FastPsnModel.chip_psn`) instead of a
        Python loop per domain and tile.
        """
        chip = self._chip
        power_model = chip.power_model
        n = chip.tile_count
        peak = np.zeros(n)
        avg = np.zeros(n)
        graphs = {
            aid: app.arrival.profile.graph(app.decision.dop)
            for aid, app in running.items()
        }
        low_bin = BIN_INDEX[ActivityBin.LOW]
        dom_vdds: List[float] = []
        dom_tiles: List[Tuple[int, ...]] = []
        core_w: List[List[float]] = []
        router_w: List[List[float]] = []
        bin_rows: List[List[int]] = []
        for domain in range(chip.domain_count):
            tiles = self._domain_tiles[domain]
            vdd = state.domain_vdd(domain)
            # A 5-port router physically switches at most ~4 flits per
            # cycle; clamp the analytical load before converting to power.
            router_rates = [
                min(float(report.router_flits_per_cycle[t]), 4.0)
                for t in tiles
            ]
            if vdd is None:
                if all(r <= 0.0 for r in router_rates):
                    continue  # fully dark and quiet
                # Idle domain carrying through-traffic: the NoC keeps its
                # routers powered at the lowest DVS step.
                vdd = chip.vdd_ladder.lowest
            cores = [0.0, 0.0, 0.0, 0.0]
            routers = [0.0, 0.0, 0.0, 0.0]
            bins = [low_bin, low_bin, low_bin, low_bin]
            for i, (tile, r_rate) in enumerate(zip(tiles, router_rates)):
                occ = state.occupant(tile)
                router_power = (
                    power_model.router_dynamic(r_rate, vdd)
                    + power_model.router_leakage(vdd)
                )
                if occ is None:
                    if r_rate > 0:
                        routers[i] = router_power
                    continue
                app = running[occ.app_id]
                task = graphs[occ.app_id].task(occ.task_id)
                cores[i] = power_model.core_dynamic(
                    task.activity_factor, app.decision.vdd
                ) + power_model.core_leakage(app.decision.vdd)
                routers[i] = router_power
                bins[i] = BIN_INDEX[task.activity_bin]
            dom_vdds.append(vdd)
            dom_tiles.append(tiles)
            core_w.append(cores)
            router_w.append(routers)
            bin_rows.append(bins)
        if not dom_vdds:
            return peak, avg
        vdd_arr = np.array(dom_vdds)
        # Kernel inputs are mean currents: power / Vdd (what the scalar
        # path computes inside PsnKernel.evaluate from each TileLoad).
        i_core = np.array(core_w) / vdd_arr[:, None]
        i_router = np.array(router_w) / vdd_arr[:, None]
        d_peak, d_avg = self._psn_model.chip_psn(
            vdd_arr, i_core, i_router, np.array(bin_rows)
        )
        tiles_arr = np.array(dom_tiles)
        peak[tiles_arr] = d_peak
        avg[tiles_arr] = d_avg
        return peak, avg
