"""Steady-state thermal model of the tiled CMP (extension).

The paper treats the dark-silicon power budget (DsPB, 65 W) as "the
thermally safe power limit that the cooling system of the chip can
operate effectively within" (Section 3.1) and never models temperature
explicitly.  This module closes that loop: a standard steady-state
thermal resistance network over the tile grid, so the 65 W figure can be
validated against a junction-temperature limit and mappings can be
checked for hotspots.

Model: one thermal node per tile.  Each node couples

* vertically to the heat spreader/ambient through ``r_vertical``
  (K/W, the per-tile share of the heatsink stack), and
* laterally to its mesh neighbours through ``r_lateral`` (silicon
  conduction between adjacent tiles).

Steady state solves ``G @ T = P`` with ``T`` the temperature rise over
ambient - the thermal analogue of the PDN's DC analysis, reusing the
same sparse-linear-algebra approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.chip.mesh import MeshGeometry

#: Junction temperature limit for consumer silicon, deg C.
T_JUNCTION_MAX_C = 95.0


@dataclass(frozen=True)
class ThermalModel:
    """Per-tile steady-state temperature from a power map.

    Attributes:
        mesh: Tile grid.
        r_vertical_k_per_w: Tile-to-ambient thermal resistance (K/W).
            The default corresponds to a mobile-class passive cooling
            solution: a uniform 65 W over 60 tiles heats the chip by
            ~55 K, right at the edge of a 95 degC junction limit from a
            40 degC ambient - i.e. the paper's DsPB.
        r_lateral_k_per_w: Tile-to-tile lateral resistance (K/W).
        ambient_c: Ambient temperature in deg C.
    """

    mesh: MeshGeometry
    r_vertical_k_per_w: float = 50.5
    r_lateral_k_per_w: float = 8.0
    ambient_c: float = 40.0

    def __post_init__(self) -> None:
        if self.r_vertical_k_per_w <= 0 or self.r_lateral_k_per_w <= 0:
            raise ValueError("thermal resistances must be positive")

    def temperatures_c(self, tile_power_w: Sequence[float]) -> np.ndarray:
        """Steady-state tile temperatures in deg C.

        Args:
            tile_power_w: Power dissipated per tile (one entry per tile).
        """
        power = np.asarray(list(tile_power_w), dtype=float)
        n = self.mesh.tile_count
        if power.shape != (n,):
            raise ValueError(f"need {n} tile powers, got {power.shape}")
        if np.any(power < 0):
            raise ValueError("tile powers must be non-negative")

        g_v = 1.0 / self.r_vertical_k_per_w
        g_l = 1.0 / self.r_lateral_k_per_w
        rows, cols, vals = [], [], []
        for tile in self.mesh.tiles():
            diag = g_v
            for neighbor in self.mesh.neighbors(tile):
                diag += g_l
                rows.append(tile)
                cols.append(neighbor)
                vals.append(-g_l)
            rows.append(tile)
            cols.append(tile)
            vals.append(diag)
        conductance = sp.csc_matrix((vals, (rows, cols)), shape=(n, n))
        rise = spla.spsolve(conductance, power)
        return self.ambient_c + rise

    def peak_temperature_c(self, tile_power_w: Sequence[float]) -> float:
        """Hottest tile temperature in deg C."""
        return float(np.max(self.temperatures_c(tile_power_w)))

    def is_thermally_safe(
        self,
        tile_power_w: Sequence[float],
        limit_c: float = T_JUNCTION_MAX_C,
    ) -> bool:
        """Whether every tile stays below the junction limit."""
        return self.peak_temperature_c(tile_power_w) <= limit_c

    def safe_uniform_budget_w(
        self, limit_c: float = T_JUNCTION_MAX_C
    ) -> float:
        """Chip power budget that keeps a *uniform* power map below the
        junction limit - the DsPB this cooling solution supports.

        With uniform power the lateral terms cancel, so the limit is
        ``n_tiles * (limit - ambient) / r_vertical``.
        """
        per_tile = (limit_c - self.ambient_c) / self.r_vertical_k_per_w
        return per_tile * self.mesh.tile_count
