"""Top-level chip description tying mesh, domains, technology and DVS.

The paper's platform (Section 5.1): 60 ARM Cortex A-73 class tiles in a
10x6 mesh at a 7 nm FinFET node, 2x2-tile power domains, per-domain Vdd
between 0.4 V and 0.8 V in 0.1 V steps, and a dark-silicon power budget
(DsPB) of 65 W.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chip.domains import DomainMap
from repro.chip.dvfs import VddLadder
from repro.chip.mesh import MeshGeometry
from repro.chip.power import PowerModel
from repro.chip.technology import TechnologyNode, technology


@dataclass(frozen=True)
class ChipDescription:
    """Immutable description of a CMP platform.

    Attributes:
        mesh: Tile mesh geometry.
        tech: Fabrication technology node.
        vdd_ladder: Permissible per-domain supply voltages.
        dark_silicon_budget_w: Thermally safe chip power limit (DsPB).
    """

    mesh: MeshGeometry
    tech: TechnologyNode
    vdd_ladder: VddLadder
    dark_silicon_budget_w: float
    domains: DomainMap = field(init=False, repr=False, compare=False)
    power_model: PowerModel = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.dark_silicon_budget_w <= 0:
            raise ValueError("dark silicon power budget must be positive")
        if self.vdd_ladder.lowest <= self.tech.vth:
            raise ValueError(
                f"lowest Vdd {self.vdd_ladder.lowest} V must exceed the "
                f"threshold voltage {self.tech.vth} V of {self.tech.name}"
            )
        # Frozen dataclass: set derived members via object.__setattr__.
        object.__setattr__(self, "domains", DomainMap(self.mesh))
        object.__setattr__(self, "power_model", PowerModel(self.tech))

    @property
    def tile_count(self) -> int:
        return self.mesh.tile_count

    @property
    def domain_count(self) -> int:
        return self.domains.domain_count


def default_chip(
    width: int = 10,
    height: int = 6,
    tech_name: str = "7nm",
    dark_silicon_budget_w: float = 65.0,
) -> ChipDescription:
    """The paper's evaluation platform (10x6 mesh, 7 nm, DsPB 65 W)."""
    return ChipDescription(
        mesh=MeshGeometry(width, height),
        tech=technology(tech_name),
        vdd_ladder=VddLadder.paper_default(),
        dark_silicon_budget_w=dark_silicon_budget_w,
    )
