"""Power-supply domains: 2x2 tile blocks with independent VRMs.

Section 3.3 of the paper: a domain is a group of four tiles with its own
voltage regulator module; domains are physically separated so there is no
PDN interference *between* domains; all tiles of a domain share the same
Vdd; tasks of different applications are never mapped into one domain
(guaranteed by restricting application DoP to multiples of four).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.chip.mesh import MeshGeometry

#: Number of tiles in one power-supply domain.
DOMAIN_SIZE = 4


class DomainMap:
    """Partition of a mesh into 2x2 power-supply domains.

    The mesh dimensions must both be even so that the chip tiles exactly
    into 2x2 blocks.  Domains are indexed row-major over the domain grid
    (which is ``width // 2`` by ``height // 2``).
    """

    def __init__(self, mesh: MeshGeometry):
        if mesh.width % 2 or mesh.height % 2:
            raise ValueError(
                f"mesh dimensions must be even to form 2x2 domains, "
                f"got {mesh.width}x{mesh.height}"
            )
        self._mesh = mesh
        self._grid_w = mesh.width // 2
        self._grid_h = mesh.height // 2
        self._domain_of: Dict[int, int] = {}
        self._tiles_of: Dict[int, List[int]] = {}
        for tile in mesh.tiles():
            x, y = mesh.coord_of(tile)
            domain = (y // 2) * self._grid_w + (x // 2)
            self._domain_of[tile] = domain
            self._tiles_of.setdefault(domain, []).append(tile)

    @property
    def mesh(self) -> MeshGeometry:
        """The underlying tile mesh."""
        return self._mesh

    @property
    def domain_count(self) -> int:
        """Number of power-supply domains on the chip."""
        return self._grid_w * self._grid_h

    @property
    def grid_shape(self) -> Tuple[int, int]:
        """Shape ``(width, height)`` of the domain grid."""
        return self._grid_w, self._grid_h

    def domain_of(self, tile: int) -> int:
        """Domain id that a tile belongs to."""
        try:
            return self._domain_of[tile]
        except KeyError:
            raise ValueError(f"tile id {tile} not in mesh")

    def tiles_of(self, domain: int) -> List[int]:
        """The four tile ids of a domain (row-major order)."""
        try:
            return list(self._tiles_of[domain])
        except KeyError:
            raise ValueError(f"domain id {domain} outside [0, {self.domain_count})")

    def domain_coord(self, domain: int) -> Tuple[int, int]:
        """Coordinate of a domain in the domain grid."""
        if not 0 <= domain < self.domain_count:
            raise ValueError(f"domain id {domain} outside [0, {self.domain_count})")
        return domain % self._grid_w, domain // self._grid_w

    def domain_at(self, coord: Tuple[int, int]) -> int:
        """Domain id at a domain-grid coordinate."""
        x, y = coord
        if not (0 <= x < self._grid_w and 0 <= y < self._grid_h):
            raise ValueError(f"domain coordinate {coord} outside grid {self.grid_shape}")
        return y * self._grid_w + x

    def domain_distance(self, a: int, b: int) -> int:
        """Manhattan distance between two domains in the domain grid."""
        ax, ay = self.domain_coord(a)
        bx, by = self.domain_coord(b)
        return abs(ax - bx) + abs(ay - by)

    def neighbor_domains(self, domain: int) -> List[int]:
        """Domains adjacent (distance 1) to ``domain`` in the domain grid."""
        x, y = self.domain_coord(domain)
        candidates = ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1))
        return [
            self.domain_at(c)
            for c in candidates
            if 0 <= c[0] < self._grid_w and 0 <= c[1] < self._grid_h
        ]
