"""McPAT-style power model for cores and NoC routers.

The paper estimates per-benchmark power at each (Vdd, frequency, DoP)
operating point with McPAT + ITRS data.  This module provides the same
interface from first principles:

* core dynamic power  ``P_dyn = a * C_core * V^2 * f``  where ``a`` is the
  benchmark's switching-activity factor (0..1),
* core leakage power scales with voltage and an exponential DIBL-like term,
* router power scales with the router's flit activity (flits per cycle
  through the crossbar), reproducing the paper's observation that the NoC
  consumes roughly 18-20 % of chip power for communication-intensive
  workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.chip.dvfs import alpha_power_frequency
from repro.chip.technology import TechnologyNode


@dataclass(frozen=True)
class TilePower:
    """Power breakdown of one tile in watts."""

    core_dynamic: float
    core_leakage: float
    router_dynamic: float
    router_leakage: float

    @property
    def core(self) -> float:
        return self.core_dynamic + self.core_leakage

    @property
    def router(self) -> float:
        return self.router_dynamic + self.router_leakage

    @property
    def total(self) -> float:
        return self.core + self.router


class PowerModel:
    """Computes core and router power at an operating point.

    Args:
        tech: Technology node supplying capacitances and leakage constants.
    """

    #: Fraction of router switched capacitance that toggles per flit
    #: traversal (buffer write + crossbar + link driver).
    _ROUTER_ACTIVITY_PER_FLIT = 0.6
    #: Router static (clock tree + idle buffer) activity floor.
    _ROUTER_IDLE_ACTIVITY = 0.08
    #: Leakage voltage sensitivity (per volt, exponential).
    _LEAK_SENSITIVITY = 2.2
    #: Router leakage as a fraction of core leakage.
    _ROUTER_LEAK_FRACTION = 0.08

    def __init__(self, tech: TechnologyNode):
        self._tech = tech

    @property
    def tech(self) -> TechnologyNode:
        return self._tech

    def frequency(self, vdd: float) -> float:
        """Clock frequency in Hz at ``vdd`` (alpha-power law)."""
        return alpha_power_frequency(vdd, self._tech)

    def core_dynamic(self, activity: float, vdd: float) -> float:
        """Core dynamic power in watts.

        Args:
            activity: Switching-activity factor in [0, 1].
            vdd: Supply voltage in volts.
        """
        self._check_activity(activity)
        f = self.frequency(vdd)
        return activity * self._tech.switched_cap_core_f * vdd * vdd * f

    def core_leakage(self, vdd: float) -> float:
        """Core leakage power in watts at ``vdd``."""
        tech = self._tech
        scale = (vdd / tech.vdd_nominal) * math.exp(
            self._LEAK_SENSITIVITY * (vdd - tech.vdd_nominal)
        )
        return tech.leakage_power_core_w * scale

    def router_dynamic(self, flits_per_cycle: float, vdd: float) -> float:
        """Router dynamic power in watts.

        Args:
            flits_per_cycle: Average flits traversing the router per cycle
                (0 for an idle router; a 5-port router saturates near 5).
            vdd: Supply voltage in volts.
        """
        if flits_per_cycle < 0:
            raise ValueError("flits_per_cycle must be non-negative")
        f = self.frequency(vdd)
        activity = self._ROUTER_IDLE_ACTIVITY + (
            self._ROUTER_ACTIVITY_PER_FLIT * flits_per_cycle
        )
        return activity * self._tech.switched_cap_router_f * vdd * vdd * f

    def router_leakage(self, vdd: float) -> float:
        """Router leakage power in watts at ``vdd``."""
        return self.core_leakage(vdd) * self._ROUTER_LEAK_FRACTION

    def tile_power(
        self, core_activity: float, flits_per_cycle: float, vdd: float
    ) -> TilePower:
        """Full power breakdown for one occupied tile."""
        return TilePower(
            core_dynamic=self.core_dynamic(core_activity, vdd),
            core_leakage=self.core_leakage(vdd),
            router_dynamic=self.router_dynamic(flits_per_cycle, vdd),
            router_leakage=self.router_leakage(vdd),
        )

    def idle_tile_power(self, vdd: float) -> TilePower:
        """Power of a powered-but-idle tile (dark tiles are power gated)."""
        return self.tile_power(0.0, 0.0, vdd)

    @staticmethod
    def _check_activity(activity: float) -> None:
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity factor must be in [0, 1], got {activity}")
