"""Fabrication technology nodes and their electrical parameters.

The paper evaluates a 7 nm FinFET CMP and motivates the problem with a
scaling study (Fig. 1): peak power-supply noise, relative to the nominal
near-threshold supply voltage, grows across process nodes and crosses the
5 % voltage-emergency margin below 14 nm.

The authors drew their numbers from ITRS projections and McPAT.  Neither is
usable offline, so this module provides a self-contained scaling table with
the same qualitative behaviour:

* switched capacitance per core shrinks with feature size, but switching
  frequency and current density grow faster, so the *di/dt* demand per tile
  rises with scaling;
* power-grid wires get thinner, so their resistance per segment rises;
* on-die decoupling capacitance per tile falls (decap area competes with
  logic);
* near-threshold supply voltage falls with the threshold voltage.

All values are per *tile* (one core + one NoC router + L1 caches) of the
paper's mobile-class CMP (ARM Cortex A-73 at 7 nm) and are chosen so that a
transient analysis of the power-delivery network reproduces the paper's
reported noise magnitudes (a few percent of Vdd, exceeding 5 % at 7 nm
near-threshold operation under a high-activity workload).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyNode:
    """Electrical parameters of one fabrication process node.

    Attributes:
        name: Human-readable node name, e.g. ``"7nm"``.
        feature_nm: Feature size in nanometres.
        vdd_nominal: Nominal (super-threshold) supply voltage in volts.
        vdd_ntc: Near-threshold supply voltage in volts (lowest DVS step).
        vth: Transistor threshold voltage in volts.
        alpha: Velocity-saturation exponent of the alpha-power frequency law.
        freq_at_nominal_hz: Core clock frequency at ``vdd_nominal``.
        switched_cap_core_f: Effective switched capacitance of a fully
            active core, in farads (dynamic power = a * C * V^2 * f).
        switched_cap_router_f: Effective switched capacitance of a NoC
            router at full injection, in farads.
        leakage_power_core_w: Core leakage power at ``vdd_nominal``, watts.
        r_bump_ohm: Resistance of a tile's bump/VRM branch, ohms.
        l_bump_h: Inductance of a tile's bump/VRM branch, henries.
        r_grid_ohm: Resistance of one on-chip power-grid segment between
            adjacent tiles, ohms.
        l_grid_h: Inductance of one on-chip grid segment, henries.
        c_decap_f: On-die decoupling capacitance per tile, farads.
        core_area_mm2: Core area in square millimetres.
        router_area_um2: Router area in square micrometres.
    """

    name: str
    feature_nm: float
    vdd_nominal: float
    vdd_ntc: float
    vth: float
    alpha: float
    freq_at_nominal_hz: float
    switched_cap_core_f: float
    switched_cap_router_f: float
    leakage_power_core_w: float
    r_bump_ohm: float
    l_bump_h: float
    r_grid_ohm: float
    l_grid_h: float
    c_decap_f: float
    core_area_mm2: float
    router_area_um2: float

    def __post_init__(self) -> None:
        if not 0.0 < self.vth < self.vdd_ntc <= self.vdd_nominal:
            raise ValueError(
                f"require 0 < vth < vdd_ntc <= vdd_nominal, got "
                f"vth={self.vth}, vdd_ntc={self.vdd_ntc}, "
                f"vdd_nominal={self.vdd_nominal}"
            )
        for field in (
            "feature_nm",
            "alpha",
            "freq_at_nominal_hz",
            "switched_cap_core_f",
            "switched_cap_router_f",
            "leakage_power_core_w",
            "r_bump_ohm",
            "l_bump_h",
            "r_grid_ohm",
            "l_grid_h",
            "c_decap_f",
            "core_area_mm2",
            "router_area_um2",
        ):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")


def _node(
    name: str,
    feature_nm: float,
    vdd_nominal: float,
    vdd_ntc: float,
    vth: float,
    freq_ghz: float,
    cap_core_nf: float,
    leak_core_w: float,
    r_bump_mohm: float,
    l_bump_ph: float,
    r_grid_mohm: float,
    l_grid_ph: float,
    c_decap_nf: float,
    core_area_mm2: float,
    router_area_um2: float,
) -> TechnologyNode:
    """Build a node from engineering units (GHz, nF, pH, milliohm)."""
    return TechnologyNode(
        name=name,
        feature_nm=feature_nm,
        vdd_nominal=vdd_nominal,
        vdd_ntc=vdd_ntc,
        vth=vth,
        alpha=1.3,
        freq_at_nominal_hz=freq_ghz * 1e9,
        switched_cap_core_f=cap_core_nf * 1e-9,
        switched_cap_router_f=cap_core_nf * 1e-9 * 0.5,
        leakage_power_core_w=leak_core_w,
        r_bump_ohm=r_bump_mohm * 1e-3,
        l_bump_h=l_bump_ph * 1e-12,
        r_grid_ohm=r_grid_mohm * 1e-3,
        l_grid_h=l_grid_ph * 1e-12,
        c_decap_f=c_decap_nf * 1e-9,
        core_area_mm2=core_area_mm2,
        router_area_um2=router_area_um2,
    )


# Scaling story across nodes (oldest -> newest): frequency and current
# density rise, per-tile decap and grid-wire cross-section fall, threshold
# and near-threshold voltages fall.  The 7 nm row matches the paper's
# stated figures where it gives any (core area ~4 mm^2, router ~71300 um^2,
# NTC Vdd range 0.4-0.8 V).
TECHNOLOGY_LIBRARY: dict = {
    "45nm": _node(
        "45nm", 45.0, 1.10, 0.60, 0.38, 1.0,
        cap_core_nf=1.6, leak_core_w=0.45,
        r_bump_mohm=2.28, l_bump_ph=14.0,
        r_grid_mohm=3, l_grid_ph=6, c_decap_nf=42.0,
        core_area_mm2=14.0, router_area_um2=420000.0,
    ),
    "32nm": _node(
        "32nm", 32.0, 1.00, 0.55, 0.35, 1.3,
        cap_core_nf=1.8, leak_core_w=0.42,
        r_bump_mohm=2.66, l_bump_ph=15.0,
        r_grid_mohm=4.8, l_grid_ph=6.5, c_decap_nf=34.0,
        core_area_mm2=10.5, router_area_um2=290000.0,
    ),
    "22nm": _node(
        "22nm", 22.0, 0.95, 0.52, 0.33, 1.6,
        cap_core_nf=2.0, leak_core_w=0.40,
        r_bump_mohm=3.23, l_bump_ph=16.0,
        r_grid_mohm=7.2, l_grid_ph=7.5, c_decap_nf=26.0,
        core_area_mm2=8.0, router_area_um2=210000.0,
    ),
    "14nm": _node(
        "14nm", 14.0, 0.90, 0.48, 0.31, 1.8,
        cap_core_nf=2.3, leak_core_w=0.37,
        r_bump_mohm=3.99, l_bump_ph=17.0,
        r_grid_mohm=10.8, l_grid_ph=8.5, c_decap_nf=19.0,
        core_area_mm2=6.2, router_area_um2=140000.0,
    ),
    "10nm": _node(
        "10nm", 10.0, 0.85, 0.44, 0.28, 1.9,
        cap_core_nf=2.6, leak_core_w=0.34,
        r_bump_mohm=4.94, l_bump_ph=18.0,
        r_grid_mohm=15.6, l_grid_ph=10, c_decap_nf=12.0,
        core_area_mm2=5.0, router_area_um2=98000.0,
    ),
    "7nm": _node(
        "7nm", 7.0, 0.80, 0.40, 0.25, 2.0,
        cap_core_nf=2.9, leak_core_w=0.30,
        r_bump_mohm=6.08, l_bump_ph=20.0,
        r_grid_mohm=21.6, l_grid_ph=12, c_decap_nf=8.5,
        core_area_mm2=4.0, router_area_um2=71300.0,
    ),
}

#: Nodes ordered from oldest to newest, as plotted in Fig. 1.
TECHNOLOGY_ORDER = ("45nm", "32nm", "22nm", "14nm", "10nm", "7nm")


def technology(name: str) -> TechnologyNode:
    """Look up a technology node by name.

    Raises:
        KeyError: if the node is not in :data:`TECHNOLOGY_LIBRARY`.
    """
    try:
        return TECHNOLOGY_LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGY_LIBRARY))
        raise KeyError(f"unknown technology node {name!r}; known nodes: {known}")
