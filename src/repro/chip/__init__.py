"""Chip platform model: technology nodes, mesh floorplan, power domains, DVFS.

This package models the hardware substrate of the paper's 60-core CMP
(Section 3 of the paper): a 10x6 mesh of tiles, each tile holding a core,
a NoC router and private L1 caches; tiles grouped into 2x2 power-supply
domains with independent voltage regulators; per-domain dynamic voltage
scaling between 0.4 V (near-threshold) and 0.8 V.
"""

from repro.chip.technology import TechnologyNode, TECHNOLOGY_LIBRARY, technology
from repro.chip.mesh import MeshGeometry, Coordinate
from repro.chip.domains import DomainMap
from repro.chip.dvfs import VddLadder, alpha_power_frequency
from repro.chip.power import PowerModel, TilePower
from repro.chip.cmp import ChipDescription, default_chip
from repro.chip.thermal import ThermalModel, T_JUNCTION_MAX_C

__all__ = [
    "TechnologyNode",
    "TECHNOLOGY_LIBRARY",
    "technology",
    "MeshGeometry",
    "Coordinate",
    "DomainMap",
    "VddLadder",
    "alpha_power_frequency",
    "PowerModel",
    "TilePower",
    "ChipDescription",
    "default_chip",
    "ThermalModel",
    "T_JUNCTION_MAX_C",
]
