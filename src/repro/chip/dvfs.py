"""Dynamic voltage scaling: the Vdd ladder and the frequency-voltage law.

The paper's CMP supports per-domain supply voltages from 0.4 V (near
threshold) to 0.8 V in 0.1 V steps.  Clock frequency follows the classic
alpha-power law for velocity-saturated devices:

    f(V) = k * (V - Vth)^alpha / V

normalised so that ``f(vdd_nominal) == freq_at_nominal_hz`` for the
technology node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.chip.technology import TechnologyNode


def alpha_power_frequency(vdd: float, tech: TechnologyNode) -> float:
    """Core/router clock frequency in Hz at supply voltage ``vdd``.

    Uses the alpha-power law normalised to the node's nominal operating
    point.  ``vdd`` must be strictly above the threshold voltage.
    """
    if vdd <= tech.vth:
        raise ValueError(
            f"vdd={vdd} V is not above threshold vth={tech.vth} V for {tech.name}"
        )
    def shape(v: float) -> float:
        return (v - tech.vth) ** tech.alpha / v

    return tech.freq_at_nominal_hz * shape(vdd) / shape(tech.vdd_nominal)


@dataclass(frozen=True)
class VddLadder:
    """The discrete set of supply voltages a domain may run at.

    Voltages are stored sorted in increasing order, as consumed by the
    Vdd/DoP selection algorithm (Algorithm 1 iterates from the lowest Vdd
    upward).
    """

    levels: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("Vdd ladder must have at least one level")
        if any(v <= 0 for v in self.levels):
            raise ValueError("Vdd levels must be positive")
        if list(self.levels) != sorted(set(self.levels)):
            raise ValueError("Vdd levels must be strictly increasing and unique")

    @classmethod
    def from_range(cls, low: float, high: float, step: float) -> "VddLadder":
        """Build a ladder ``low, low+step, ..., high`` (inclusive)."""
        if step <= 0:
            raise ValueError("step must be positive")
        if high < low:
            raise ValueError("high must be >= low")
        levels = []
        v = low
        # Tolerate floating-point drift when stepping.
        while v <= high + step * 1e-6:
            levels.append(round(v, 9))
            v += step
        return cls(tuple(levels))

    @classmethod
    def paper_default(cls) -> "VddLadder":
        """The paper's ladder: 0.4 V to 0.8 V in 0.1 V steps."""
        return cls.from_range(0.4, 0.8, 0.1)

    @property
    def lowest(self) -> float:
        return self.levels[0]

    @property
    def highest(self) -> float:
        return self.levels[-1]

    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self):
        return iter(self.levels)

    def __contains__(self, vdd: float) -> bool:
        return any(abs(v - vdd) < 1e-9 for v in self.levels)

    def at_least(self, vdd: float) -> Sequence[float]:
        """Levels greater than or equal to ``vdd``."""
        return tuple(v for v in self.levels if v >= vdd - 1e-9)

    def nearest(self, vdd: float) -> float:
        """The ladder level closest to ``vdd``."""
        return min(self.levels, key=lambda v: abs(v - vdd))
