"""2D mesh floorplan of the CMP.

Tiles are indexed row-major: tile id ``y * width + x`` sits at coordinate
``(x, y)``.  The paper's evaluation platform is a 10x6 mesh (60 tiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

Coordinate = Tuple[int, int]


@dataclass(frozen=True)
class MeshGeometry:
    """Rectangular mesh of tiles.

    Attributes:
        width: Number of tile columns (x extent).
        height: Number of tile rows (y extent).
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError(f"mesh must be at least 1x1, got {self.width}x{self.height}")

    @property
    def tile_count(self) -> int:
        """Total number of tiles in the mesh."""
        return self.width * self.height

    def contains(self, coord: Coordinate) -> bool:
        """Whether ``coord`` lies inside the mesh."""
        x, y = coord
        return 0 <= x < self.width and 0 <= y < self.height

    def coord_of(self, tile: int) -> Coordinate:
        """Coordinate ``(x, y)`` of a tile id."""
        self._check_tile(tile)
        return tile % self.width, tile // self.width

    def tile_at(self, coord: Coordinate) -> int:
        """Tile id at a coordinate."""
        if not self.contains(coord):
            raise ValueError(f"coordinate {coord} outside {self.width}x{self.height} mesh")
        x, y = coord
        return y * self.width + x

    def tiles(self) -> Iterator[int]:
        """Iterate over all tile ids in row-major order."""
        return iter(range(self.tile_count))

    def manhattan(self, a: int, b: int) -> int:
        """Manhattan (hop) distance between two tiles."""
        ax, ay = self.coord_of(a)
        bx, by = self.coord_of(b)
        return abs(ax - bx) + abs(ay - by)

    def neighbors(self, tile: int) -> List[int]:
        """Tiles at Manhattan distance 1 (2 to 4 of them)."""
        x, y = self.coord_of(tile)
        candidates = ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1))
        return [self.tile_at(c) for c in candidates if self.contains(c)]

    def tiles_within(self, tile: int, radius: int) -> List[int]:
        """All tiles within ``radius`` hops of ``tile`` (excluding itself)."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        return [
            other
            for other in self.tiles()
            if other != tile and self.manhattan(tile, other) <= radius
        ]

    def _check_tile(self, tile: int) -> None:
        if not 0 <= tile < self.tile_count:
            raise ValueError(
                f"tile id {tile} outside [0, {self.tile_count}) for "
                f"{self.width}x{self.height} mesh"
            )
