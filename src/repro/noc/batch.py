"""Batched structure-of-arrays cycle engine: S meshes in lock-step.

:class:`BatchedNocEngine` advances ``S`` *independent* mesh simulations
through the same vectorised injection/route/arbitration/commit phases
that :class:`repro.noc.engine.ArrayNocEngine` runs for one mesh.  The
key observation is that a batch of S independent ``n``-tile meshes is
exactly one *disconnected* mesh of ``S * n`` tiles: lane ``k`` owns the
tile block ``[k*n, (k+1)*n)``, the downstream-lookup tables are the
block-diagonal tiling of the single-mesh tables (``neighbor + k*n``),
and no array operation ever couples tiles of different blocks.  The
scalar engine's cycle phases therefore generalise *unchanged* over the
flat ``(S*n, ports)`` state - same expressions, same dtypes, same
``np.nonzero`` scan order (lane-major, then tile-ascending, which
within each lane is exactly the scalar engine's tile order).  Every
lane is flit-for-flit identical to a scalar run with the same flows,
which ``tests/noc/test_batch_engine.py`` pins against the legacy
:class:`~repro.noc.cycle.CycleNocSimulator` oracle.

What batching buys (measured in ``python -m repro bench``,
``noc_engine_batch_speedup``): the scalar engine's per-cycle python
overhead - ~20 numpy call dispatches plus the backlog/injection python
loops - is paid *once per batch cycle* instead of once per lane cycle,
and the per-engine route-table build is paid once instead of S times.
At 32 lanes the fixed costs amortise to ~3% each, so the batch runs
the whole sweep in roughly the wall-time of its busiest lane.

Scope: **context-free routing only** (XY, west-first, odd-even).
Adaptive policies (PANR, ICON) make per-decision choices from local
congestion context, which the batched route phase does not assemble;
:func:`simulate_lanes` transparently falls back to one
:class:`ArrayNocEngine` per lane for those.  Per-lane PSN fields are
carried for API parity (and :meth:`set_psn` updates one lane without
touching its siblings) but, as in the scalar engine, context-free
policies never read them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.chip.mesh import MeshGeometry
from repro.noc.cycle.simulator import NocSimStats, TrafficFlow
from repro.noc.engine import ArrayNocEngine
from repro.noc.routing.base import RoutingAlgorithm, RoutingContext
from repro.noc.topology import (
    Direction,
    MeshTopology,
    OPPOSITE_CODES,
    PORT_CODES,
    PORT_DIRECTIONS,
)

#: Port code of the LOCAL (injection/ejection) port.
_LOCAL = PORT_CODES[Direction.LOCAL]

_N_PORTS = len(PORT_DIRECTIONS)

#: Arbitration key for non-candidates; larger than any round-robin
#: distance ``(port - pointer) % 5``.
_NO_CANDIDATE = _N_PORTS + 1
# Arbitration packs (round-robin key, input port) into key * 8 + port so
# a single scatter-min selects both at once; 63 exceeds any real packed
# value (max 4 * 8 + 4) and its low bits are harmless if ever masked.
_PACKED_NONE = 63

#: Initial capacity of the per-packet metadata arrays.
_MIN_PACKET_CAPACITY = 1024


class BatchedNocEngine:
    """S independent mesh simulations as one flat lock-step engine.

    Each lane is a full, isolated copy of the mesh: its own traffic
    flows, injection accumulators, FIFOs, wormhole state and stats.
    :meth:`run` advances every lane the same number of cycles and
    returns one :class:`NocSimStats` per lane, each byte-identical to
    what ``ArrayNocEngine(mesh, routing, ...).run(lane_flows, cycles)``
    (and hence the legacy oracle) produces for that lane's traffic.

    Args:
        mesh: Tile mesh (shared by every lane).
        routing: A **context-free** routing policy
            (``routing.context_free`` must be true); adaptive policies
            must run per-lane - see :func:`simulate_lanes`.
        n_lanes: Number of independent simulations ``S``.
        buffer_depth: Input FIFO depth in flits.
        psn_pct: Optional PSN sensor readings: ``(n,)`` applies the
            same field to every lane, ``(S, n)`` gives each lane its
            own.  Context-free policies never read PSN (API parity
            with the scalar engine); update mid-run via
            :meth:`set_psn`.
        rate_window: Kept for API parity with the scalar engine; the
            data-rate measurement feeds only adaptive routing context,
            which this engine never assembles.
        seeds: Optional per-lane injection seeds (API parity; the
            accumulator injection process is deterministic).
        topology: Optional pre-built :class:`MeshTopology` to adopt
            (never mutated); must match ``mesh``.
        route_table: Optional complete ``(n, n)`` int8 route table for
            ``routing`` (see :func:`repro.noc.engine.build_route_table`).
            Adopted as-is - including read-only shared-memory views -
            and shared by every lane, so one warm-pool table serves
            the whole batch.
    """

    #: Topology-derived lookup tables, read-only once built: the same
    #: contract (and mostly the same names) as ArrayNocEngine, so the
    #: parmlint shared-readonly rule covers both engines with one
    #: declaration set.  _tile_lane/_tile_local are the batch-specific
    #: flat-index decompositions (flat tile -> lane, flat tile ->
    #: in-mesh tile).
    __shared_readonly__ = (
        "_down_tile",
        "_down_port",
        "_down_flat",
        "_edge_ok",
        "_flat_slot_base",
        "_is_local_row",
        "_packed_rr",
        "_route_table",
        "_table_built",
        "_tile_lane",
        "_tile_local",
    )
    #: _route_table/_table_built columns are filled lazily, one
    #: destination at a time, by this builder.
    __shared_readonly_init__ = ("_build_route_columns",)

    def __init__(
        self,
        mesh: MeshGeometry,
        routing: RoutingAlgorithm,
        n_lanes: int,
        buffer_depth: int = 8,
        psn_pct: Optional[np.ndarray] = None,
        rate_window: int = 64,
        seeds: Optional[Sequence[int]] = None,
        topology: Optional[MeshTopology] = None,
        route_table: Optional[np.ndarray] = None,
    ):
        if n_lanes < 1:
            raise ValueError("n_lanes must be at least 1")
        if buffer_depth < 1:
            raise ValueError("buffer_depth must be at least 1")
        if not routing.context_free:
            raise ValueError(
                "BatchedNocEngine batches context-free policies only; "
                "run adaptive policies one lane at a time "
                "(see repro.noc.batch.simulate_lanes)"
            )
        if topology is None:
            self._topo = MeshTopology(mesh)
        else:
            if (
                topology.mesh.width != mesh.width
                or topology.mesh.height != mesh.height
            ):
                raise ValueError("adopted topology does not match the mesh")
            self._topo = topology
        self._routing = routing
        self._depth = buffer_depth
        n = mesh.tile_count
        s = n_lanes
        flat = s * n
        self._n_local = n
        self._n_lanes = s
        self._n_tiles = flat
        if psn_pct is None:
            self._psn = np.zeros((s, n))
        else:
            psn = np.asarray(psn_pct, float)
            if psn.shape == (n,):
                self._psn = np.tile(psn, (s, 1))
            elif psn.shape == (s, n):
                self._psn = psn.copy()
            else:
                raise ValueError(
                    "psn_pct must be (tiles,) shared or (lanes, tiles)"
                )
        self._rate_window = rate_window
        if seeds is not None and len(seeds) != s:
            raise ValueError("seeds must have one entry per lane")
        self._seeds = tuple(seeds) if seeds is not None else tuple([0] * s)
        self._cycle = 0
        self._next_packet_id = 0

        # --- structure-of-arrays network state -------------------------
        # Identical layout to ArrayNocEngine with `flat = S * n` tiles:
        # lane k owns rows [k*n, (k+1)*n).
        self._buf_pkt_id = np.full(
            (flat, _N_PORTS, buffer_depth), -1, np.int64
        )
        self._buf_flit_idx = np.zeros(
            (flat, _N_PORTS, buffer_depth), np.int64
        )
        self._head_slot = np.zeros((flat, _N_PORTS), np.int64)
        self._occ_flits = np.zeros((flat, _N_PORTS), np.int64)
        self._assigned_out = np.full((flat, _N_PORTS), -1, np.int64)
        self._wormhole_owner = np.full((flat, _N_PORTS), -1, np.int64)
        self._rr_next = np.zeros((flat, _N_PORTS), np.int64)
        self._fwd_flits = np.zeros(flat, np.int64)

        # Block-diagonal downstream lookup: the single-mesh table with
        # each lane's tile offset added, so forwards stay inside their
        # lane.  Off-mesh entries are clamped to the lane's tile 0 and
        # rejected at route-build time via _edge_ok, so no gather ever
        # couples lanes or leaves the mesh.
        neigh = self._topo.neighbor_codes()
        edge_ok_local = neigh >= 0
        lane_off = np.repeat(np.arange(s, dtype=np.int64) * n, n)
        self._edge_ok = np.tile(edge_ok_local, (s, 1))
        self._down_tile = (
            np.tile(np.where(edge_ok_local, neigh, 0), (s, 1))
            + lane_off[:, None]
        )
        self._down_port = np.broadcast_to(
            np.asarray(OPPOSITE_CODES, np.int64), (flat, _N_PORTS)
        ).copy()
        self._is_local_row = np.tile(
            np.arange(_N_PORTS) == _LOCAL, flat
        )
        self._down_flat = (
            self._down_tile * _N_PORTS + self._down_port
        ).ravel()
        # Packed round-robin priority lookup: entry i * 5 + r holds the
        # packed arbitration value of input port i under rotation
        # pointer r, i.e. ((i - r) % 5) * 8 + i.
        ii = np.repeat(np.arange(_N_PORTS, dtype=np.int64), _N_PORTS)
        rr = np.tile(np.arange(_N_PORTS, dtype=np.int64), _N_PORTS)
        self._packed_rr = ((ii - rr) % _N_PORTS) * 8 + ii
        self._flat_slot_base = np.arange(
            flat * _N_PORTS, dtype=np.int64
        ) * buffer_depth
        # Flat tile -> (lane, in-mesh tile) decompositions, for
        # per-lane stats splits and local route-table gathers.
        self._tile_lane = np.repeat(np.arange(s, dtype=np.int64), n)
        self._tile_local = np.tile(np.arange(n, dtype=np.int64), s)

        # Per-packet metadata, grown by doubling.  Destinations are
        # stored as *in-mesh* tile ids (packets never change lanes, so
        # the lane is implied by the packet's position).
        self._pkt_dst = np.zeros(_MIN_PACKET_CAPACITY, np.int64)
        self._pkt_size_flits = np.zeros(_MIN_PACKET_CAPACITY, np.int64)
        self._pkt_inject_cycle = np.zeros(_MIN_PACKET_CAPACITY, np.int64)

        # Route table: one (n, n) local table shared by every lane.
        if route_table is not None:
            if route_table.shape != (n, n):
                raise ValueError("adopted route table has the wrong shape")
            if route_table.dtype != np.int8:
                raise ValueError("adopted route table must be int8")
            self._route_table = route_table
            self._table_built = np.ones(n, bool)
        else:
            self._route_table = np.full((n, n), -1, np.int8)
            self._table_built = np.zeros(n, bool)
        self._empty_ctx = RoutingContext()

    @property
    def topology(self) -> MeshTopology:
        return self._topo

    @property
    def n_lanes(self) -> int:
        return self._n_lanes

    def set_psn(
        self, psn_pct: np.ndarray, lane: Optional[int] = None
    ) -> None:
        """Replace PSN sensor readings mid-run.

        With ``lane`` given, only that lane's ``(n,)`` field changes -
        sibling lanes are untouched.  Without it, a ``(S, n)`` array
        replaces every lane's field and a ``(n,)`` array is applied to
        all lanes (2-D input is always read as per-lane).
        """
        psn = np.asarray(psn_pct, float)
        n = self._n_local
        if lane is not None:
            if not 0 <= lane < self._n_lanes:
                raise ValueError("lane out of range")
            if psn.shape != (n,):
                raise ValueError("psn_pct must have one entry per tile")
            self._psn[lane] = psn
        elif psn.shape == (self._n_lanes, n):
            self._psn[:] = psn
        elif psn.shape == (n,):
            self._psn[:] = psn[None, :]
        else:
            raise ValueError(
                "psn_pct must be (tiles,) shared or (lanes, tiles)"
            )

    # ------------------------------------------------------------------

    def run(
        self,
        flows: Sequence[Sequence[TrafficFlow]],
        cycles: int,
    ) -> List[NocSimStats]:
        """Advance every lane ``cycles`` cycles; one stats per lane.

        ``flows[k]`` is lane ``k``'s offered traffic, exactly as the
        scalar engine's :meth:`ArrayNocEngine.run` takes it.
        """
        if cycles < 1:
            raise ValueError("cycles must be at least 1")
        if len(flows) != self._n_lanes:
            raise ValueError("flows must have one sequence per lane")
        n = self._n_local
        s = self._n_lanes
        flow_rate_l: List[float] = []
        flow_size_l: List[int] = []
        flow_src_l: List[int] = []  # flat (lane-offset) source tiles
        flow_dst_l: List[int] = []  # in-mesh destination tiles
        flow_lane_l: List[int] = []
        for lane, lane_flows in enumerate(flows):
            off = lane * n
            for f in lane_flows:
                self._topo.mesh._check_tile(f.src)
                self._topo.mesh._check_tile(f.dst)
                if f.src == f.dst:
                    raise ValueError(
                        "flows must cross the network (src != dst)"
                    )
                flow_rate_l.append(f.rate)
                flow_size_l.append(f.packet_size)
                flow_src_l.append(f.src + off)
                flow_dst_l.append(f.dst)
                flow_lane_l.append(lane)

        n_flows = len(flow_src_l)
        acc = np.zeros(n_flows)
        flow_rate = np.array(flow_rate_l, float)
        flow_size = np.array(flow_size_l, np.int64)
        flow_src = np.array(flow_src_l, np.int64)
        flow_dst = np.array(flow_dst_l, np.int64)
        flow_lane = np.array(flow_lane_l, np.int64)
        if flow_dst_l:
            # Pre-build the route-table columns this run can need, so
            # the per-cycle fast path is a single gather.
            self._build_route_columns(np.unique(flow_dst))
        # Per-source backlog of injected-but-not-yet-buffered flits, as
        # ring buffers over flat sources: (pkt id, flit index) per
        # queued flit, with absolute read/write cursors (slot =
        # cursor % capacity).  Functionally the scalar engine's
        # per-source deque + `pushed` partial-packet counter, but
        # drained with repeat/cumsum index arithmetic instead of a
        # per-flit python loop.  Like the scalar engine's, the backlog
        # is run-local: flits still queued when the run ends are
        # dropped.
        bl_cap = 64
        bl_pkt = np.zeros((self._n_tiles, bl_cap), np.int64)
        bl_fidx = np.zeros((self._n_tiles, bl_cap), np.int64)
        bl_rd = np.zeros(self._n_tiles, np.int64)
        bl_wr = np.zeros(self._n_tiles, np.int64)
        injected = np.zeros(s, np.int64)
        flits_del = np.zeros(s, np.int64)
        pk_del = np.zeros(s, np.int64)
        lat_lanes: List[np.ndarray] = []
        lat_vals: List[np.ndarray] = []
        depth = self._depth
        flat = self._n_tiles
        occ = self._occ_flits
        head_slot = self._head_slot
        assigned = self._assigned_out
        owner = self._wormhole_owner
        rows5 = np.arange(flat) * _N_PORTS
        in_col = np.arange(_N_PORTS, dtype=np.int64)[:, None]
        in_col5 = in_col * _N_PORTS

        for _ in range(cycles):
            self._cycle += 1
            # --- injection (vectorised flow accumulators) --------------
            # One vector add covers every lane's accumulators.  The
            # scalar engine then emits packets per triggered flow with
            # a repeated-subtraction loop (`while acc >= size: acc -=
            # size`); every one of those subtractions is *exact* in
            # float64 (the subtrahend is a small integer and the
            # result's ulp can only shrink), so the loop's packet count
            # is the true floor(acc / size) and its final accumulator
            # is acc - count * size.  Computing both directly - with a
            # +-1 correction for the division's last-ulp rounding -
            # reproduces the scalar emission bit-for-bit without the
            # python loop.
            if n_flows:
                np.add(acc, flow_rate, out=acc)
                trig = np.nonzero(acc >= flow_size)[0]
                if len(trig):
                    tr_size = flow_size[trig]
                    tr_acc = acc[trig]
                    k = np.floor_divide(tr_acc, tr_size).astype(np.int64)
                    rem = tr_acc - k * tr_size
                    under = rem < 0
                    if under.any():
                        k[under] -= 1
                        rem[under] += tr_size[under]
                    over = rem >= tr_size
                    if over.any():
                        k[over] += 1
                        rem[over] -= tr_size[over]
                    acc[trig] = rem
                    np.add.at(injected, flow_lane[trig], k)
                    # Packet ids are allocated in ascending flow order
                    # (np.nonzero order == the scalar loop's order),
                    # then expanded to one backlog entry per flit.
                    pkt_src = np.repeat(flow_src[trig], k)
                    pkt_sizes = np.repeat(tr_size, k)
                    pids = self._new_packets(
                        np.repeat(flow_dst[trig], k), pkt_sizes
                    )
                    n_new = int(pkt_sizes.sum())
                    fstart = np.cumsum(pkt_sizes) - pkt_sizes
                    fidx_new = np.arange(n_new) - np.repeat(
                        fstart, pkt_sizes
                    )
                    f_src = np.repeat(pkt_src, pkt_sizes)
                    f_pkt = np.repeat(pids, pkt_sizes)
                    # Ring-append in emission order: each flit lands at
                    # its source's write cursor plus the number of
                    # earlier same-source flits this cycle (stable sort
                    # keeps the in-cycle order; sources are usually
                    # unique per cycle, making this a no-op shuffle).
                    order = np.argsort(f_src, kind="stable")
                    inv = np.empty_like(order)
                    inv[order] = np.arange(n_new)
                    sorted_src = f_src[order]
                    grp_start = np.empty(n_new, bool)
                    grp_start[0] = True
                    np.not_equal(
                        sorted_src[1:], sorted_src[:-1],
                        out=grp_start[1:],
                    )
                    pos_sorted = np.arange(n_new)
                    cumoff = (
                        pos_sorted
                        - np.maximum.accumulate(
                            np.where(grp_start, pos_sorted, 0)
                        )
                    )[inv]
                    counts = np.bincount(f_src, minlength=flat)
                    needed = int((bl_wr + counts - bl_rd).max())
                    while needed > bl_cap:
                        bl_cap, bl_pkt, bl_fidx = self._grow_backlog(
                            bl_cap, bl_pkt, bl_fidx, bl_rd, bl_wr
                        )
                    wpos = (bl_wr[f_src] + cumoff) % bl_cap
                    bl_pkt[f_src, wpos] = f_pkt
                    bl_fidx[f_src, wpos] = fidx_new
                    bl_wr += counts
            # Stream backlog flits into the LOCAL ports as space
            # permits, in strict per-source FIFO order (a packet may
            # straddle cycles; the ring's flit indices carry the
            # partial-packet position the scalar engine tracks in
            # `pushed`).  One repeat/cumsum expansion plans every push
            # in the batch; one scatter commits them.
            pend = bl_wr - bl_rd
            if pend.any():
                act = np.nonzero(pend)[0]
                occ_l = occ[act, _LOCAL]
                cnt = np.minimum(depth - occ_l, pend[act])
                pushable = cnt > 0
                if pushable.any():
                    act = act[pushable]
                    cnt = cnt[pushable]
                    occ_l = occ_l[pushable]
                    total = int(cnt.sum())
                    rep = np.repeat(act, cnt)
                    off = np.arange(total) - np.repeat(
                        np.cumsum(cnt) - cnt, cnt
                    )
                    rpos = (bl_rd[rep] + off) % bl_cap
                    slot = (
                        np.repeat(head_slot[act, _LOCAL] + occ_l, cnt)
                        + off
                    ) % depth
                    self._buf_pkt_id[rep, _LOCAL, slot] = bl_pkt[
                        rep, rpos
                    ]
                    self._buf_flit_idx[rep, _LOCAL, slot] = bl_fidx[
                        rep, rpos
                    ]
                    occ[act, _LOCAL] += cnt
                    bl_rd[act] += cnt

            # --- route computation + switch traversal ------------------
            nonempty = occ > 0
            if nonempty.any():
                flat_heads = self._flat_slot_base + head_slot.ravel()
                head_pkt = self._buf_pkt_id.take(flat_heads).reshape(
                    flat, _N_PORTS
                )
                head_idx = self._buf_flit_idx.take(flat_heads).reshape(
                    flat, _N_PORTS
                )
                need = nonempty & (assigned < 0)
                t_idx, p_idx = np.nonzero(need)
                if len(t_idx):
                    if (head_idx[t_idx, p_idx] != 0).any():
                        raise RuntimeError(
                            "body flit without wormhole route"
                        )
                    dsts = self._pkt_dst[head_pkt[t_idx, p_idx]]
                    # One (n, n) table serves every lane: row = the
                    # tile's in-mesh id, column = in-mesh destination.
                    assigned[t_idx, p_idx] = self._route_table[
                        self._tile_local.take(t_idx), dsts
                    ]

                # Arbitration without the (tiles, out, in) tensor: an
                # input port requests exactly one output (its wormhole
                # assignment), so each tile has at most 5 request
                # edges.  The per-edge gate/key computations run as
                # single (ports, tiles) transposed ops, then each in-
                # port scatter-minimises a *packed* (rr key, in port)
                # value into a flat (tile, out) grid - the minimum of
                # key * 8 + port selects the winning key and port
                # together.  Keys (i - ptr) % 5 are distinct per input
                # port, so there are never ties, and min reproduces
                # argmin's first-index tie-break regardless.
                down_free = occ.take(self._down_flat) < depth
                can_move = down_free | self._is_local_row
                head_ready = nonempty & (head_idx == 0)
                # Flat (tile, out) index of each (in-port, tile)
                # request; unrouted ports are clamped to out 0 and
                # masked by valid.
                gidx = rows5[None, :] + np.maximum(assigned.T, 0)
                own = owner.take(gidx)
                # Wormhole gating: an owned output only admits its
                # owner; a free output only admits head flits.
                gate = np.where(own >= 0, own == in_col, head_ready.T)
                valid = nonempty.T & gate & can_move.take(gidx)
                packed = np.where(
                    valid,
                    self._packed_rr.take(
                        in_col5 + self._rr_next.take(gidx)
                    ),
                    _PACKED_NONE,
                )
                best = np.full(flat * _N_PORTS, _PACKED_NONE, np.int64)
                for i in range(_N_PORTS):
                    gi = gidx[i]
                    best.put(gi, np.minimum(best.take(gi), packed[i]))
                mvs = np.nonzero(best < _PACKED_NONE)[0]
                if len(mvs):
                    # mvs is the winners' flat (tile, out) index, in
                    # flat-tile-ascending order.
                    mt = mvs // _N_PORTS
                    mo = mvs % _N_PORTS
                    mi = best.take(mvs) & 7
                    idx_mv = mt * _N_PORTS + mi
                    self._rr_next.put(mvs, (mi + 1) % _N_PORTS)
                    # Gather per-move data before mutating anything; an
                    # input port wins at most one output per cycle, so
                    # the pre-move head entries stay valid.
                    slots = head_slot.take(idx_mv)
                    pkts = head_pkt.take(idx_mv)
                    fidx = head_idx.take(idx_mv)
                    is_tail = fidx == self._pkt_size_flits[pkts] - 1
                    # Pops ((tile, in port) pairs are unique).
                    head_slot.put(idx_mv, (slots + 1) % depth)
                    occ.put(idx_mv, occ.take(idx_mv) - 1)
                    self._fwd_flits += np.bincount(mt, minlength=flat)
                    # Wormhole bookkeeping: tails release the output,
                    # heads of multi-flit packets claim it.
                    assigned.put(idx_mv[is_tail], -1)
                    owner.put(mvs[is_tail], -1)
                    claim = (fidx == 0) & ~is_tail
                    owner.put(mvs[claim], mi[claim])
                    # Ejections: winners come out flat-tile ascending =
                    # lane-major, so each lane's latencies append in
                    # its own scalar-engine order.
                    local = mo == _LOCAL
                    done = local & is_tail
                    if local.any():
                        flits_del += np.bincount(
                            self._tile_lane[mt[local]], minlength=s
                        )
                    if done.any():
                        done_lanes = self._tile_lane[mt[done]]
                        pk_del += np.bincount(done_lanes, minlength=s)
                        lat_lanes.append(done_lanes)
                        lat_vals.append(
                            self._cycle
                            - self._pkt_inject_cycle[pkts[done]]
                        )
                    # Forwards: push into the downstream FIFO.  Each
                    # downstream port has exactly one upstream (tile,
                    # output), so pushes never collide, and the append
                    # slot head+occupancy is invariant under the
                    # port's own pop this cycle.
                    fwd = ~local
                    ds_idx = self._down_flat.take(mvs[fwd])
                    push = (
                        head_slot.take(ds_idx) + occ.take(ds_idx)
                    ) % depth
                    buf_idx = ds_idx * depth + push
                    self._buf_pkt_id.put(buf_idx, pkts[fwd])
                    self._buf_flit_idx.put(buf_idx, fidx[fwd])
                    occ.put(ds_idx, occ.take(ds_idx) + 1)
            # (No data-rate measurement window: rates feed only
            # adaptive routing context, which this engine never
            # assembles - context-free decisions cannot observe them.)

        # --- per-lane stats splits ------------------------------------
        if lat_lanes:
            lanes_all = np.concatenate(lat_lanes)
            lats_all = np.concatenate(lat_vals)
        else:
            lanes_all = np.zeros(0, np.int64)
            lats_all = np.zeros(0, np.int64)
        results: List[NocSimStats] = []
        for lane in range(s):
            stats = NocSimStats(
                cycles=cycles,
                packets_injected=injected[lane],
                packets_delivered=int(pk_del[lane]),
                flits_delivered=int(flits_del[lane]),
            )
            # Boolean masking is order-preserving, so this is the
            # lane's chronological (scalar-order) latency list.
            stats.packet_latencies.extend(
                lats_all[lanes_all == lane].tolist()
            )
            stats.router_flits_per_cycle = (
                self._fwd_flits[lane * n:(lane + 1) * n] / self._cycle
            )
            results.append(stats)
        return results

    # ------------------------------------------------------------------

    def _new_packets(
        self, dsts: np.ndarray, sizes: np.ndarray
    ) -> np.ndarray:
        """Allocate packet ids for a whole emission burst at once."""
        start = self._next_packet_id
        end = start + len(dsts)
        while end > len(self._pkt_dst):
            grow = len(self._pkt_dst)
            self._pkt_dst = np.concatenate(
                [self._pkt_dst, np.zeros(grow, np.int64)]
            )
            self._pkt_size_flits = np.concatenate(
                [self._pkt_size_flits, np.zeros(grow, np.int64)]
            )
            self._pkt_inject_cycle = np.concatenate(
                [self._pkt_inject_cycle, np.zeros(grow, np.int64)]
            )
        self._pkt_dst[start:end] = dsts
        self._pkt_size_flits[start:end] = sizes
        self._pkt_inject_cycle[start:end] = self._cycle
        self._next_packet_id = end
        return np.arange(start, end, dtype=np.int64)

    @staticmethod
    def _grow_backlog(
        cap: int,
        bl_pkt: np.ndarray,
        bl_fidx: np.ndarray,
        bl_rd: np.ndarray,
        bl_wr: np.ndarray,
    ) -> Tuple[int, np.ndarray, np.ndarray]:
        """Double the backlog rings, re-slotting pending flits.

        Cursors are absolute, so only the modulus changes: every
        pending entry moves from ``pos % cap`` to ``pos % (2 * cap)``.
        """
        new_cap = cap * 2
        new_pkt = np.zeros((len(bl_rd), new_cap), np.int64)
        new_fidx = np.zeros((len(bl_rd), new_cap), np.int64)
        pend = bl_wr - bl_rd
        act = np.nonzero(pend)[0]
        if len(act):
            total = int(pend[act].sum())
            rep = np.repeat(act, pend[act])
            off = np.arange(total) - np.repeat(
                np.cumsum(pend[act]) - pend[act], pend[act]
            )
            pos = bl_rd[rep] + off
            new_pkt[rep, pos % new_cap] = bl_pkt[rep, pos % cap]
            new_fidx[rep, pos % new_cap] = bl_fidx[rep, pos % cap]
        return new_cap, new_pkt, new_fidx

    def _build_route_columns(self, dsts: np.ndarray) -> None:
        """Fill route-table columns for the given in-mesh destinations.

        Byte-for-byte the scalar engine's builder over the single
        ``(n, n)`` table that all lanes share.
        """
        n = self._n_local
        rows = np.arange(n)
        edge_ok_local = self._edge_ok[:n]
        for dst in dsts.tolist():
            if self._table_built[dst]:
                continue
            col = np.array(
                [
                    PORT_CODES[
                        self._routing.select(
                            self._topo, cur, dst, self._empty_ctx
                        )
                    ]
                    for cur in range(n)
                ],
                np.int8,
            )
            # Reject off-mesh routes at build time so the cycle loop
            # never needs an edge guard.
            bad = ~edge_ok_local[rows, col]
            if bad.any():
                tile = int(np.nonzero(bad)[0][0])
                raise RuntimeError(f"route off mesh edge at tile {tile}")
            self._route_table[:, dst] = col
            self._table_built[dst] = True


@dataclass(frozen=True)
class LaneSpec:
    """One lane of a batched (or per-lane fallback) simulation.

    Args:
        flows: The lane's offered traffic.
        seed: Injection seed (API parity; forwarded to the engine).
        psn_pct: Optional per-tile PSN field for this lane.
    """

    flows: Tuple[TrafficFlow, ...]
    seed: int = 0
    psn_pct: Optional[Tuple[float, ...]] = None

    def psn_array(self, n_tiles: int) -> np.ndarray:
        if self.psn_pct is None:
            return np.zeros(n_tiles)
        psn = np.asarray(self.psn_pct, float)
        if psn.shape != (n_tiles,):
            raise ValueError("psn_pct must have one entry per tile")
        return psn


def simulate_lanes(
    mesh: MeshGeometry,
    routing: RoutingAlgorithm,
    lanes: Sequence[LaneSpec],
    cycles: int,
    buffer_depth: int = 8,
    rate_window: int = 64,
    topology: Optional[MeshTopology] = None,
    route_table: Optional[np.ndarray] = None,
) -> List[NocSimStats]:
    """Simulate independent lanes, batched when the policy allows it.

    Context-free policies run every lane in **one**
    :class:`BatchedNocEngine` pass; adaptive policies (which the
    batched engine rejects) fall back to a fresh
    :class:`ArrayNocEngine` per lane.  Both paths produce stats
    flit-for-flit identical to scalar runs, so callers need not care
    which path served them.

    Args:
        mesh: Tile mesh shared by every lane.
        routing: Routing policy (any; batching applies when
            ``routing.context_free``).
        lanes: Per-lane traffic/seed/PSN specs.
        cycles: Cycles to advance every lane.
        buffer_depth: Input FIFO depth in flits.
        rate_window: Data-rate window (adaptive lanes only).
        topology: Optional pre-built topology to adopt.
        route_table: Optional shared ``(n, n)`` route table
            (context-free only).
    """
    if not lanes:
        return []
    n = mesh.tile_count
    if routing.context_free:
        psn = np.stack([spec.psn_array(n) for spec in lanes])
        engine = BatchedNocEngine(
            mesh,
            routing,
            n_lanes=len(lanes),
            buffer_depth=buffer_depth,
            psn_pct=psn,
            rate_window=rate_window,
            seeds=[spec.seed for spec in lanes],
            topology=topology,
            route_table=route_table,
        )
        return engine.run([spec.flows for spec in lanes], cycles)
    results: List[NocSimStats] = []
    for spec in lanes:
        engine = ArrayNocEngine(
            mesh,
            routing,
            buffer_depth=buffer_depth,
            psn_pct=spec.psn_array(n),
            rate_window=rate_window,
            seed=spec.seed,
            topology=topology,
        )
        results.append(engine.run(list(spec.flows), cycles))
    return results
