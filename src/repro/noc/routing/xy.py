"""Dimension-ordered XY routing (deterministic baseline)."""

from __future__ import annotations

from typing import List

from repro.noc.routing.base import RoutingAlgorithm
from repro.noc.topology import Direction, MeshTopology


class XYRouting(RoutingAlgorithm):
    """Route fully in X first, then in Y.  Deadlock-free, deterministic,
    oblivious to congestion and PSN - the paper's weakest baseline."""

    name = "XY"
    context_free = True

    def permissible(
        self, topo: MeshTopology, cur: int, dst: int
    ) -> List[Direction]:
        if cur == dst:
            return []
        (cx, cy) = topo.mesh.coord_of(cur)
        (dx, dy) = topo.mesh.coord_of(dst)
        if dx > cx:
            return [Direction.EAST]
        if dx < cx:
            return [Direction.WEST]
        if dy > cy:
            return [Direction.SOUTH]
        return [Direction.NORTH]
