"""Routing algorithm interface shared by the cycle and analytical models.

A routing algorithm answers two questions at each router:

* ``permissible(cur, dst)`` - which output directions keep the route
  minimal and deadlock-free;
* ``weights(cur, dst, ctx)`` - how to distribute traffic over those
  directions given the router's local view (buffer occupancy, neighbour
  data rates, neighbour PSN sensor readings).

The cycle-level simulator picks the argmax-weight direction per packet;
the analytical model splits flows fractionally by the same weights, so
both models express one policy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List

from repro.noc.topology import Direction, MeshTopology


@dataclass
class RoutingContext:
    """Local state a router consults when selecting among directions.

    Attributes:
        buffer_occupancy: Occupancy of the input channel making the
            decision, as a fraction of buffer depth in [0, 1].
        neighbor_data_rate: Incoming data rate (flits/cycle) observed at
            the adjacent router in each direction.
        neighbor_psn_pct: PSN sensor reading (percent of Vdd) of the
            adjacent tile in each direction.
        neighbor_psn_valid: Whether the adjacent tile's PSN reading can
            be trusted (False for a detected sensor fault or a stale
            reading).  Directions absent from the map are treated as
            valid, so fault-free callers need not populate it.
        out_link_rho: Utilisation of this router's outgoing link per
            direction.  Credit-based flow control stalls flits towards a
            backed-up neighbour no matter which direction the policy
            prefers, so adaptive weights are gated by it.
    """

    buffer_occupancy: float = 0.0
    neighbor_data_rate: Dict[Direction, float] = field(default_factory=dict)
    neighbor_psn_pct: Dict[Direction, float] = field(default_factory=dict)
    neighbor_psn_valid: Dict[Direction, bool] = field(default_factory=dict)
    out_link_rho: Dict[Direction, float] = field(default_factory=dict)

    def psn_trusted(self, direction: Direction) -> bool:
        """Whether the PSN reading toward ``direction`` is trustworthy."""
        return self.neighbor_psn_valid.get(direction, True)


class RoutingAlgorithm(abc.ABC):
    """Base class for minimal mesh routing policies."""

    #: Evaluation name (e.g. ``"XY"``), used in experiment tables.
    name: str = "base"

    #: Whether :meth:`select` ignores the :class:`RoutingContext`, i.e.
    #: the chosen direction is a pure function of ``(cur, dst)``.  The
    #: array cycle engine precomputes a per-(tile, destination) route
    #: table for such policies instead of calling :meth:`select` per
    #: packet.  Defaults to False (safe); a subclass may only set it
    #: True when neither :meth:`weights` nor :meth:`select` reads the
    #: context - and must set it back to False when overriding either
    #: with a context-dependent version.
    context_free: bool = False

    @abc.abstractmethod
    def permissible(
        self, topo: MeshTopology, cur: int, dst: int
    ) -> List[Direction]:
        """Permitted output directions at ``cur`` for a packet to ``dst``.

        Returns an empty list when ``cur == dst`` (eject locally).
        """

    def weights(
        self,
        topo: MeshTopology,
        cur: int,
        dst: int,
        ctx: RoutingContext,
    ) -> Dict[Direction, float]:
        """Traffic-split weights over the permissible directions.

        The default policy is uniform; adaptive schemes override this.
        Weights are positive and need not be normalised.
        """
        dirs = self.permissible(topo, cur, dst)
        return {d: 1.0 for d in dirs}

    def select(
        self,
        topo: MeshTopology,
        cur: int,
        dst: int,
        ctx: RoutingContext,
    ) -> Direction:
        """Single-direction choice (cycle model): highest weight wins,
        ties broken by direction order for determinism."""
        weights = self.weights(topo, cur, dst, ctx)
        if not weights:
            return Direction.LOCAL
        order = list(Direction)
        return max(weights, key=lambda d: (weights[d], -order.index(d)))
