"""Odd-even turn-model routing (Chiu, 2000) - an extension baseline.

Not part of the paper's evaluation; included because it is the other
classic deadlock-free adaptive turn model, and comparing PANR's
selection policy on top of a different permissible-turn set is a
natural extension experiment.

Rules (columns counted from 0):

* east-to-north and east-to-south turns are forbidden at nodes in
  *even* columns;
* north-to-west and south-to-west turns are forbidden at nodes in
  *odd* columns.

The minimal-adaptive route function below follows the standard
formulation; without knowledge of the packet's source column it uses
the conservative variant (the ``cur == src`` allowance is dropped),
which is a subset of the permitted turns and therefore still
deadlock-free.
"""

from __future__ import annotations

from typing import List

from repro.noc.routing.base import RoutingAlgorithm
from repro.noc.topology import Direction, MeshTopology


class OddEvenRouting(RoutingAlgorithm):
    """Minimal adaptive odd-even routing (conservative variant)."""

    name = "OddEven"
    context_free = True

    def permissible(
        self, topo: MeshTopology, cur: int, dst: int
    ) -> List[Direction]:
        if cur == dst:
            return []
        cx, cy = topo.mesh.coord_of(cur)
        dx_, dy_ = topo.mesh.coord_of(dst)
        dx = dx_ - cx
        dy = dy_ - cy
        vertical = (
            Direction.SOUTH if dy > 0 else Direction.NORTH
        )  # y grows south

        if dx == 0:
            return [vertical] if dy != 0 else []
        dirs: List[Direction] = []
        if dx > 0:  # travelling east
            if dy == 0:
                return [Direction.EAST]
            # Turning off the east direction (EN/ES) is only allowed in
            # odd columns; the cur==src exception needs the source
            # column, which the conservative variant forgoes.
            if cx % 2 == 1:
                dirs.append(vertical)
            # Keep going east unless the destination column is even and
            # exactly one hop away (we must be able to turn there).
            if dx != 1 or dx_ % 2 == 1:
                dirs.append(Direction.EAST)
            if not dirs:
                # Destination column is even and adjacent, and we are in
                # an even column: go vertical here (the NW/SW turns that
                # follow are legal from even columns).
                dirs.append(vertical)
        else:  # travelling west
            dirs.append(Direction.WEST)
            # NW/SW turns are forbidden in odd columns, so vertical
            # progress while heading west is only offered in even ones.
            if dy != 0 and cx % 2 == 0:
                dirs.append(vertical)
        return dirs
