"""ICON-style routing baseline (Basu et al. [22], "IcoNoClast").

The prior work tackles voltage noise in the NoC power supply through
flow control and routing that balance *router* switching activity.  Its
defining limitation, which the paper exploits, is that it considers only
NoC router activity and is agnostic of the cores' switching activity and
of the application mapping: flits are steered toward the quietest
*routers*, even when those sit next to highly active cores.

We model it as west-first minimal routing that always selects the
direction whose adjacent router has the least incoming data rate (a
proxy for router switching activity), regardless of buffer state or core
PSN.

Under PSN-sensor faults ICON degrades trivially: it never consults the
sensor network (``ctx.neighbor_psn_pct`` / ``ctx.neighbor_psn_valid``),
so faulted sensor input is ignored by construction and the policy keeps
its data-rate behaviour.  Dead links and routers are handled one layer
up, in the analytical model's propagation step.
"""

from __future__ import annotations

from typing import Dict, List

from repro.noc.routing.base import RoutingContext
from repro.noc.routing.west_first import WestFirstRouting
from repro.noc.topology import Direction, MeshTopology

_EPS = 1e-6


class IconRouting(WestFirstRouting):
    """Router-activity-balancing adaptive routing, core-agnostic."""

    name = "ICON"
    # Reads neighbour data rates: must not inherit WestFirst's flag.
    context_free = False

    def weights(
        self,
        topo: MeshTopology,
        cur: int,
        dst: int,
        ctx: RoutingContext,
    ) -> Dict[Direction, float]:
        dirs = self.permissible(topo, cur, dst)
        if not dirs:
            return {}
        if len(dirs) == 1:
            return {dirs[0]: 1.0}
        rate = {d: ctx.neighbor_data_rate.get(d, 0.0) for d in dirs}
        # Soft argmin, mirroring PANR's hardware minimum selection.
        best = min(rate.values())
        weights = {d: 1.0 / (rate[d] - best + 0.4) ** 2 for d in dirs}
        # Same credit-stall gating as PANR (shared wormhole hardware).
        return {
            d: w * max(0.05, 1.0 - ctx.out_link_rho.get(d, 0.0))
            for d, w in weights.items()
        }
