"""Routing algorithms: XY, west-first, PANR (the paper's), ICON,
and the odd-even extension baseline."""

from repro.noc.routing.base import RoutingAlgorithm, RoutingContext
from repro.noc.routing.xy import XYRouting
from repro.noc.routing.west_first import WestFirstRouting
from repro.noc.routing.panr import PanrRouting
from repro.noc.routing.icon import IconRouting
from repro.noc.routing.odd_even import OddEvenRouting


def make_routing(name: str) -> RoutingAlgorithm:
    """Build a routing algorithm by its evaluation name.

    Accepted names (case-insensitive): ``"xy"``, ``"west-first"``,
    ``"panr"``, ``"icon"``.
    """
    table = {
        "xy": XYRouting,
        "west-first": WestFirstRouting,
        "westfirst": WestFirstRouting,
        "panr": PanrRouting,
        "icon": IconRouting,
        "odd-even": OddEvenRouting,
        "oddeven": OddEvenRouting,
    }
    try:
        return table[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(set(table)))
        raise KeyError(f"unknown routing scheme {name!r}; known: {known}")


__all__ = [
    "RoutingAlgorithm",
    "RoutingContext",
    "XYRouting",
    "WestFirstRouting",
    "PanrRouting",
    "IconRouting",
    "OddEvenRouting",
    "make_routing",
]
