"""PANR: the paper's PSN- and congestion-aware NoC routing (Algorithm 3).

PANR enhances west-first routing: among the permitted hop directions, the
router consults its voltage-noise sensor data and the incoming data rate
of adjacent routers.

* if the input channel's buffer occupancy exceeds the threshold ``B``
  (50 % in the paper, chosen by the Section 5.1 ablation), the direction
  with the **least incoming data rate** is chosen to relieve congestion;
* otherwise the direction whose adjacent tile reports the **least PSN**
  is chosen, steering flits away from noisy (highly switching) regions
  and thereby keeping router activity low around high-activity cores.

Hop selection costs one cycle, masked by running in parallel with route
computation (Section 4.4), so PANR adds no latency over west-first.

**Graceful degradation**: PANR's adaptivity rests on trustworthy sensor
input.  When any permissible direction's PSN reading is flagged invalid
(detected sensor fault or stale data - see
:class:`~repro.pdn.sensors.SensorNetwork`), the router's fail-safe
reverts the whole selection stage to deterministic XY for that hop:
routing on garbage noise data could steer *all* traffic into the noisy
region it is meant to avoid, whereas XY is always safe.  The XY
direction is by construction inside the west-first permissible set, so
the fallback preserves the turn model's deadlock freedom; with the
entire sensor network faulted, PANR's routes collapse exactly onto XY.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.noc.routing.base import RoutingContext
from repro.noc.routing.west_first import WestFirstRouting
from repro.noc.routing.xy import XYRouting
from repro.noc.topology import Direction, MeshTopology

#: Default buffer-occupancy threshold B (fraction of buffer depth).
DEFAULT_BUFFER_THRESHOLD = 0.5

#: Guard against division by zero when inverting rates/noise.
_EPS = 1e-6

#: Deterministic fallback used when sensor input cannot be trusted.
_XY_FALLBACK = XYRouting()


@dataclass
class PanrRouting(WestFirstRouting):
    """West-first + PSN/congestion-aware direction selection.

    Attributes:
        buffer_threshold: Occupancy fraction above which congestion
            (data-rate) selection replaces PSN selection.
    """

    buffer_threshold: float = DEFAULT_BUFFER_THRESHOLD
    name = "PANR"
    # Reads occupancy/rates/PSN: must not inherit WestFirst's flag.
    context_free = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.buffer_threshold <= 1.0:
            raise ValueError("buffer_threshold must be in [0, 1]")

    def weights(
        self,
        topo: MeshTopology,
        cur: int,
        dst: int,
        ctx: RoutingContext,
    ) -> Dict[Direction, float]:
        dirs = self.permissible(topo, cur, dst)
        if not dirs:
            return {}
        if any(not ctx.psn_trusted(d) for d in dirs):
            # Fail-safe: unreliable sensor input reverts this hop to
            # deterministic XY (see the module docstring).
            return {d: 1.0 for d in _XY_FALLBACK.permissible(topo, cur, dst)}
        if len(dirs) == 1:
            return {dirs[0]: 1.0}
        if ctx.buffer_occupancy > self.buffer_threshold:
            metric = {d: ctx.neighbor_data_rate.get(d, 0.0) for d in dirs}
        else:
            metric = {d: ctx.neighbor_psn_pct.get(d, 0.0) for d in dirs}
        # The hardware picks the minimum (Algorithm 3 lines 5-6); for the
        # analytical flow model the argmin is expressed as a sharply
        # peaked soft-min so nearly all flow follows the winning direction
        # while near-ties still split.
        best = min(metric.values())
        weights = {d: 1.0 / (metric[d] - best + 0.4) ** 2 for d in dirs}
        # Credit-based flow control: a backed-up output stalls flits no
        # matter what the selector prefers, so the achievable split is
        # gated by the outgoing link's remaining capacity.
        return {
            d: w * max(0.05, 1.0 - ctx.out_link_rho.get(d, 0.0))
            for d, w in weights.items()
        }
