"""West-first turn-model routing (Glass & Ni [32]).

All westward hops must be taken first; once a packet no longer needs to
go west, it may route adaptively among the remaining productive
directions (east / north / south).  Prohibiting the two turns into WEST
makes the scheme deadlock-free on a mesh with a single virtual channel.
"""

from __future__ import annotations

from typing import List

from repro.noc.routing.base import RoutingAlgorithm
from repro.noc.topology import Direction, MeshTopology


class WestFirstRouting(RoutingAlgorithm):
    """Adaptive, minimal, deadlock-free; uniform among permitted turns."""

    name = "WestFirst"
    # Uniform weights: the arg-max tie-break depends only on the
    # permissible set, so selection is a pure function of (cur, dst).
    context_free = True

    def permissible(
        self, topo: MeshTopology, cur: int, dst: int
    ) -> List[Direction]:
        if cur == dst:
            return []
        productive = topo.direction_towards(cur, dst)
        if Direction.WEST in productive:
            # West hops cannot be deferred: go west only.
            return [Direction.WEST]
        return productive
