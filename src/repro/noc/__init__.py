"""Network-on-chip: routing algorithms, cycle-level and analytical models.

The paper's CMP uses a 2D-mesh wormhole NoC.  Four routing schemes matter
to its evaluation:

* **XY** - dimension-ordered baseline;
* **west-first** - the deadlock-free turn model [32] PANR builds on;
* **PANR** - the paper's PSN- and congestion-aware adaptive scheme
  (Algorithm 3): among west-first-permissible directions, pick the least
  congested one when the input buffer is above the occupancy threshold B,
  otherwise the one whose neighbouring tile reports the least PSN;
* **ICON** - the prior-work baseline [22], adaptive on *router* activity
  only (core PSN ignored).

Two network models share these policies: a flit-level cycle simulator
(:mod:`repro.noc.cycle`) used for micro-experiments such as the buffer
threshold ablation, and a flow-based analytical model
(:mod:`repro.noc.analytical`) fast enough to sit inside the runtime loop
while preserving the routing-policy-dependent link loads and latencies.
The cycle model has two interchangeable implementations: the readable
object-per-flit :class:`~repro.noc.cycle.CycleNocSimulator` reference
and the structure-of-arrays :class:`~repro.noc.engine.ArrayNocEngine`
fast path, pinned flit-for-flit identical by the equivalence suite.
For sweeps, :class:`~repro.noc.batch.BatchedNocEngine` advances many
independent context-free simulations in one vectorised lock-step pass
(every lane equally pinned against the oracle); use
:func:`~repro.noc.batch.simulate_lanes` to batch where possible and
fall back per-lane for adaptive policies.
"""

from repro.noc.topology import Direction, MeshTopology
from repro.noc.routing import (
    IconRouting,
    PanrRouting,
    RoutingAlgorithm,
    RoutingContext,
    WestFirstRouting,
    XYRouting,
    make_routing,
)
from repro.noc.analytical import AnalyticalNocModel, Flow, NocLoadReport
from repro.noc.batch import BatchedNocEngine, LaneSpec, simulate_lanes
from repro.noc.engine import ArrayNocEngine
from repro.noc.overhead import panr_router_overhead, OverheadReport

__all__ = [
    "Direction",
    "MeshTopology",
    "RoutingAlgorithm",
    "RoutingContext",
    "XYRouting",
    "WestFirstRouting",
    "PanrRouting",
    "IconRouting",
    "make_routing",
    "AnalyticalNocModel",
    "ArrayNocEngine",
    "BatchedNocEngine",
    "LaneSpec",
    "simulate_lanes",
    "Flow",
    "NocLoadReport",
    "panr_router_overhead",
    "OverheadReport",
]
