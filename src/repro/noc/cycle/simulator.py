"""Cycle-based simulation loop for the mesh NoC.

Per cycle:

1. **Injection** - each traffic flow accumulates fractional flits at its
   offered rate; whole packets are queued and fed into the source
   router's LOCAL input port as space permits.
2. **Route computation** - head flits at the front of an input FIFO
   without an assigned output consult the routing algorithm (with the
   live :class:`RoutingContext`: this input's occupancy, neighbouring
   routers' measured incoming data rates, neighbouring tiles' PSN).
3. **Switch traversal** - one flit per output port per cycle; inputs
   compete round-robin; a flit moves only when the downstream buffer has
   a credit.  Tail flits release the wormhole reservation.
4. **Ejection** - flits routed to LOCAL at their destination leave the
   network; packet latency is recorded when the tail ejects.

Data rates are measured over a sliding window (the registers PANR's
hardware keeps per neighbour).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chip.mesh import MeshGeometry
from repro.noc.cycle.packets import Flit, Packet
from repro.noc.cycle.router import PORTS, Router
from repro.noc.routing.base import RoutingAlgorithm, RoutingContext
from repro.noc.topology import Direction, MeshTopology


@dataclass(frozen=True)
class TrafficFlow:
    """Offered traffic: packets of ``packet_size`` flits from src to dst
    at ``rate`` flits/cycle."""

    src: int
    dst: int
    rate: float
    packet_size: int = 8

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if self.packet_size < 1:
            raise ValueError("packet_size must be at least 1")


@dataclass
class NocSimStats:
    """Aggregate results of a cycle-level simulation."""

    cycles: int
    packets_injected: int
    packets_delivered: int
    flits_delivered: int
    packet_latencies: List[int] = field(default_factory=list)
    #: Per-router forwarded-flit rate; ``None`` until a run fills it in.
    router_flits_per_cycle: Optional[np.ndarray] = None

    @property
    def avg_packet_latency(self) -> float:
        if not self.packet_latencies:
            return 0.0
        return float(np.mean(self.packet_latencies))

    @property
    def p95_packet_latency(self) -> float:
        if not self.packet_latencies:
            return 0.0
        return float(np.percentile(self.packet_latencies, 95))

    @property
    def peak_router_flits_per_cycle(self) -> float:
        """Largest per-router forwarding rate (0.0 before any run)."""
        if self.router_flits_per_cycle is None:
            return 0.0
        return float(np.max(self.router_flits_per_cycle))

    @property
    def throughput_flits_per_cycle(self) -> float:
        return self.flits_delivered / self.cycles if self.cycles else 0.0


class CycleNocSimulator:
    """Flit-level mesh NoC simulator with a pluggable routing policy.

    Args:
        mesh: Tile mesh.
        routing: Routing algorithm.
        buffer_depth: Input FIFO depth in flits.
        psn_pct: Optional per-tile PSN sensor readings for PSN-aware
            policies (zeros if omitted).
        rate_window: Cycles per data-rate measurement window.
        seed: Injection-process RNG seed.
    """

    def __init__(
        self,
        mesh: MeshGeometry,
        routing: RoutingAlgorithm,
        buffer_depth: int = 8,
        psn_pct: Optional[np.ndarray] = None,
        rate_window: int = 64,
        seed: int = 0,
    ):
        self._topo = MeshTopology(mesh)
        self._routing = routing
        self._routers = [Router(t, buffer_depth) for t in mesh.tiles()]
        self._psn = (
            np.zeros(mesh.tile_count) if psn_pct is None else np.asarray(psn_pct)
        )
        if self._psn.shape != (mesh.tile_count,):
            raise ValueError("psn_pct must have one entry per tile")
        self._rate_window = rate_window
        self._rates = np.zeros(mesh.tile_count)
        self._rng = np.random.default_rng(seed)
        self._cycle = 0
        self._next_packet_id = 0

    @property
    def topology(self) -> MeshTopology:
        return self._topo

    def set_psn(self, psn_pct: np.ndarray) -> None:
        """Replace the per-tile PSN sensor readings mid-run.

        PSN-aware policies see the new readings from the next routing
        decision on, mirroring a sensor-network refresh between control
        epochs.
        """
        psn = np.asarray(psn_pct)
        if psn.shape != (self._topo.mesh.tile_count,):
            raise ValueError("psn_pct must have one entry per tile")
        self._psn = psn

    def run(self, flows: Sequence[TrafficFlow], cycles: int) -> NocSimStats:
        """Simulate ``cycles`` cycles of the given offered traffic."""
        if cycles < 1:
            raise ValueError("cycles must be at least 1")
        for f in flows:
            self._topo.mesh._check_tile(f.src)
            self._topo.mesh._check_tile(f.dst)
            if f.src == f.dst:
                raise ValueError("flows must cross the network (src != dst)")

        acc = [0.0] * len(flows)
        # Per source tile: FIFO of packets awaiting injection, plus the
        # number of flits of the head packet already pushed.  Streaming
        # whole packets in order keeps the LOCAL port free of interleaving
        # and supports packets larger than the input buffer.
        backlog: Dict[int, List[Packet]] = {}
        pushed: Dict[int, int] = {}
        stats = NocSimStats(
            cycles=cycles,
            packets_injected=0,
            packets_delivered=0,
            flits_delivered=0,
        )
        window_in = np.zeros(len(self._routers))

        for _ in range(cycles):
            self._cycle += 1
            # --- injection --------------------------------------------
            for i, flow in enumerate(flows):
                acc[i] += flow.rate
                while acc[i] >= flow.packet_size:
                    acc[i] -= flow.packet_size
                    backlog.setdefault(flow.src, []).append(
                        Packet(
                            packet_id=self._next_packet_id,
                            src=flow.src,
                            dst=flow.dst,
                            size_flits=flow.packet_size,
                            injected_cycle=self._cycle,
                        )
                    )
                    self._next_packet_id += 1
                    stats.packets_injected += 1
            for src, queue in backlog.items():
                port = self._routers[src].inputs[Direction.LOCAL]
                while queue and port.can_accept():
                    packet = queue[0]
                    k = pushed.get(src, 0)
                    port.push(Flit(packet, k))
                    if k + 1 == packet.size_flits:
                        queue.pop(0)
                        pushed[src] = 0
                    else:
                        pushed[src] = k + 1

            # --- route computation + switch traversal ------------------
            moves: List[Tuple[int, Direction, Direction]] = []
            for router in self._routers:
                requests: Dict[Direction, List[Direction]] = {}
                for in_port in PORTS:
                    port = router.inputs[in_port]
                    flit = port.head()
                    if flit is None:
                        continue
                    if port.assigned_output is None:
                        if not flit.is_head:
                            raise RuntimeError("body flit without wormhole route")
                        out = self._route(router, in_port, flit)
                        port.assigned_output = out
                    requests.setdefault(port.assigned_output, []).append(in_port)
                for out, reqs in requests.items():
                    if not self._can_move(router, out):
                        continue
                    owner = router.output_owner[out]
                    if owner is not None:
                        # A packet is mid-flight on this output: only its
                        # input port may continue (wormhole contiguity).
                        movable = [p for p in reqs if p is owner]
                    else:
                        # A new packet may claim the output; only head
                        # flits can start a wormhole.
                        movable = [
                            p for p in reqs if router.inputs[p].head().is_head
                        ]
                    winner = router.arbitrate(out, movable)
                    if winner is not None:
                        moves.append((router.tile, winner, out))

            # Apply all moves simultaneously (credits checked above; a
            # downstream buffer can momentarily receive from only one
            # upstream router per direction, so no double-booking).
            for tile, in_port, out in moves:
                router = self._routers[tile]
                port = router.inputs[in_port]
                if out is not Direction.LOCAL:
                    # Re-check credit (another move this cycle may have
                    # consumed the last slot of the same downstream port).
                    nxt = self._topo.neighbor(tile, out)
                    down = self._routers[nxt].inputs[out.opposite]
                    if not down.can_accept():
                        continue
                flit = port.pop()
                router.flits_forwarded += 1
                if flit.is_tail:
                    port.assigned_output = None
                    router.output_owner[out] = None
                elif flit.is_head:
                    router.output_owner[out] = in_port
                if out is Direction.LOCAL:
                    stats.flits_delivered += 1
                    if flit.is_tail:
                        stats.packets_delivered += 1
                        stats.packet_latencies.append(
                            self._cycle - flit.packet.injected_cycle
                        )
                else:
                    nxt = self._topo.neighbor(tile, out)
                    self._routers[nxt].inputs[out.opposite].push(flit)
                    window_in[nxt] += 1

            # --- data-rate measurement window ---------------------------
            if self._cycle % self._rate_window == 0:
                self._rates = window_in / self._rate_window
                window_in = np.zeros(len(self._routers))

        stats.router_flits_per_cycle = np.array(
            [r.flits_forwarded / self._cycle for r in self._routers]
        )
        return stats

    # ------------------------------------------------------------------

    def _route(self, router: Router, in_port: Direction, flit: Flit) -> Direction:
        if flit.dst == router.tile:
            return Direction.LOCAL
        out_dirs = self._topo.out_directions(router.tile)
        ctx = RoutingContext(
            buffer_occupancy=router.inputs[in_port].occupancy,
            neighbor_data_rate={
                d: float(self._rates[self._topo.neighbor(router.tile, d)])
                for d in out_dirs
            },
            neighbor_psn_pct={
                d: float(self._psn[self._topo.neighbor(router.tile, d)])
                for d in out_dirs
            },
            out_link_rho={
                d: self._routers[
                    self._topo.neighbor(router.tile, d)
                ].inputs[d.opposite].occupancy
                for d in out_dirs
            },
        )
        return self._routing.select(self._topo, router.tile, flit.dst, ctx)

    def _can_move(self, router: Router, out: Direction) -> bool:
        if out is Direction.LOCAL:
            return True
        nxt = self._topo.neighbor(router.tile, out)
        if nxt is None:
            raise RuntimeError(f"route off mesh edge at tile {router.tile}")
        return self._routers[nxt].inputs[out.opposite].can_accept()
