"""Packets and flits for the cycle-level NoC simulator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Packet:
    """One NoC packet.

    Attributes:
        packet_id: Unique id.
        src: Source tile.
        dst: Destination tile.
        size_flits: Number of flits (head + bodies + tail; 1 means the
            head is also the tail).
        injected_cycle: Cycle the head flit entered the source router's
            local port.
    """

    packet_id: int
    src: int
    dst: int
    size_flits: int
    injected_cycle: int

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError("packets carry at least one flit")


@dataclass(frozen=True)
class Flit:
    """One flit of a packet (wormhole unit of flow control)."""

    packet: Packet
    index: int

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        return self.index == self.packet.size_flits - 1

    @property
    def dst(self) -> int:
        return self.packet.dst
