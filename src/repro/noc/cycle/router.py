"""Input-buffered wormhole router with credit-based flow control.

Five ports (LOCAL + four mesh directions), one virtual channel.  Each
input port holds a FIFO of flits; once a head flit is assigned an output
direction, the remaining flits of the packet follow it (wormhole
switching).  One flit per output port moves per cycle; inputs compete via
a round-robin arbiter.  A flit only advances when the downstream input
buffer has a free slot (credit).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.noc.cycle.packets import Flit
from repro.noc.topology import Direction

#: All router ports.
PORTS = (
    Direction.LOCAL,
    Direction.EAST,
    Direction.WEST,
    Direction.NORTH,
    Direction.SOUTH,
)


@dataclass
class InputPort:
    """One input channel: FIFO buffer plus wormhole route state."""

    depth: int
    buffer: Deque[Flit] = field(default_factory=deque)
    assigned_output: Optional[Direction] = None

    @property
    def occupancy(self) -> float:
        """Buffer occupancy fraction in [0, 1] (PANR's decision input)."""
        return len(self.buffer) / self.depth

    @property
    def free_slots(self) -> int:
        return self.depth - len(self.buffer)

    def can_accept(self) -> bool:
        return self.free_slots > 0

    def push(self, flit: Flit) -> None:
        if not self.can_accept():
            raise OverflowError("input buffer overflow (credit violation)")
        self.buffer.append(flit)

    def head(self) -> Optional[Flit]:
        return self.buffer[0] if self.buffer else None

    def pop(self) -> Flit:
        return self.buffer.popleft()


class Router:
    """One mesh router.

    Args:
        tile: Tile id the router belongs to.
        buffer_depth: Flit capacity of each input FIFO.
    """

    def __init__(self, tile: int, buffer_depth: int = 8):
        if buffer_depth < 1:
            raise ValueError("buffer_depth must be at least 1")
        self.tile = tile
        self.inputs: Dict[Direction, InputPort] = {
            p: InputPort(buffer_depth) for p in PORTS
        }
        # Wormhole output reservation: while a multi-flit packet crosses
        # an output port, only its input port may use that output; this
        # keeps packets contiguous on every link.
        self.output_owner: Dict[Direction, Optional[Direction]] = {
            p: None for p in PORTS
        }
        # Round-robin arbiter state per output port.
        self._rr: Dict[Direction, int] = {p: 0 for p in PORTS}
        #: Flits forwarded by this router (all ports), for activity stats.
        self.flits_forwarded: int = 0
        #: Flits received this measurement window (incoming data rate).
        self.window_flits_in: int = 0

    def occupancy(self, port: Direction) -> float:
        return self.inputs[port].occupancy

    def arbitrate(
        self, output: Direction, requesting: List[Direction]
    ) -> Optional[Direction]:
        """Round-robin winner among inputs requesting ``output``."""
        if not requesting:
            return None
        start = self._rr[output]
        ordered = sorted(requesting, key=lambda p: (PORTS.index(p) - start) % len(PORTS))
        winner = ordered[0]
        self._rr[output] = (PORTS.index(winner) + 1) % len(PORTS)
        return winner
