"""Flit-level cycle-based NoC simulator.

Input-buffered wormhole routers with credit flow control and pluggable
routing.  Used for the micro-experiments (buffer-threshold ablation for
PANR's B parameter, routing-policy latency comparisons) and to validate
the analytical model; the long Fig. 6-8 sweeps use
:mod:`repro.noc.analytical` instead.
"""

from repro.noc.cycle.packets import Flit, Packet
from repro.noc.cycle.router import Router
from repro.noc.cycle.simulator import CycleNocSimulator, NocSimStats, TrafficFlow

__all__ = [
    "Flit",
    "Packet",
    "Router",
    "CycleNocSimulator",
    "NocSimStats",
    "TrafficFlow",
]
