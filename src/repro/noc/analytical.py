"""Flow-based analytical NoC model for runtime simulations.

Cycle-accurate simulation of seconds of NoC traffic is far too slow for
the Fig. 6-8 sweeps, so the runtime uses this model: every APG edge of a
mapped application becomes a *flow* (source tile, destination tile, flit
rate), flows are propagated through the mesh splitting fractionally at
each router according to the routing policy's weights, and per-link
utilisation / per-router activity / expected latency fall out.

Adaptive policies (PANR, ICON) react to congestion and PSN, which in turn
depend on the routing - so the model iterates to a fixed point: routing
weights are computed against the previous iteration's link loads, router
activities and PSN sensor values.

Latency uses an M/D/1-style queueing term per link: a link with
utilisation ``rho`` delays a flit ``rho / (2 (1 - rho))`` service slots on
average, on top of the router pipeline latency.  Utilisation is clamped
just below 1; a clamped link marks the report as saturated.

The same :class:`~repro.noc.routing.base.RoutingAlgorithm` weights drive
the cycle-level simulator, so the two models express one policy;
``tests/noc/test_cross_validation.py`` checks their rank agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.noc.routing.base import RoutingAlgorithm, RoutingContext
from repro.noc.topology import Direction, MeshTopology

#: Utilisation clamp: loads above this mark the network saturated.
RHO_MAX = 0.95


@dataclass(frozen=True)
class Flow:
    """One traffic flow (an APG edge mapped onto tiles).

    Attributes:
        src: Source tile id.
        dst: Destination tile id.
        rate: Offered load in flits per cycle.
    """

    src: int
    dst: int
    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")


@dataclass
class FlowStats:
    """Per-flow results of an analytical evaluation.

    ``unroutable`` marks a flow that cannot reach its destination under
    the active fault set (dead endpoint router, or every permissible
    direction dead somewhere along the minimal-path DAG); its other
    statistics then describe only the reachable prefix.
    """

    avg_hops: float
    header_latency_cycles: float
    max_rho: float
    unroutable: bool = False

    @property
    def latency_scale(self) -> float:
        """Congestion multiplier for the flow's serialisation time
        (>= 1; grows as the bottleneck link approaches saturation)."""
        return 1.0 / (1.0 - min(self.max_rho, RHO_MAX))


@dataclass
class NocLoadReport:
    """Chip-wide results of one analytical evaluation.

    Attributes:
        router_flits_per_cycle: Flits traversing each router per cycle
            (including injection and ejection), indexed by tile id.
        link_rho: Utilisation per unidirectional link.
        flows: Per-flow statistics, in input order.
        saturated: True when any link hit the utilisation clamp.
    """

    router_flits_per_cycle: np.ndarray
    link_rho: Dict[Tuple[int, Direction], float]
    flows: List[FlowStats]
    saturated: bool

    @property
    def unroutable_flow_indices(self) -> List[int]:
        """Input-order indices of flows the fault set made unroutable."""
        return [i for i, f in enumerate(self.flows) if f.unroutable]

    @property
    def avg_latency_cycles(self) -> float:
        """Rate-weighted mean header latency over all flows."""
        if not self.flows:
            return 0.0
        return float(np.mean([f.header_latency_cycles for f in self.flows]))

    @property
    def max_router_rate(self) -> float:
        return float(np.max(self.router_flits_per_cycle))


class AnalyticalNocModel:
    """Fixed-point flow model over one routing policy.

    Args:
        topo: The mesh topology.
        routing: Routing policy (weights drive the flow splits).
        iterations: Fixed-point iterations (2-3 suffice; deterministic
            policies converge in 1).
        link_bandwidth: Flits per cycle a link can carry (1.0 for a
            single-flit-wide link).
        router_noise_pct_per_flit: PSN a flit/cycle of router activity
            adds to the tile's sensor reading, fed back into PSN-aware
            routing decisions within the fixed point.
        burstiness: Ratio of instantaneous to average offered load used
            for link-utilisation (congestion) estimates.  Wormhole
            traffic arrives in packet bursts, so links saturate well
            below an average utilisation of 1; router *power* still uses
            the raw average activity.
    """

    def __init__(
        self,
        topo: MeshTopology,
        routing: RoutingAlgorithm,
        iterations: int = 4,
        link_bandwidth: float = 1.0,
        router_noise_pct_per_flit: float = 1.5,
        burstiness: float = 1.6,
    ):
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        if link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        if router_noise_pct_per_flit < 0:
            raise ValueError("router_noise_pct_per_flit must be non-negative")
        if burstiness < 1.0:
            raise ValueError("burstiness must be >= 1")
        self._topo = topo
        self._routing = routing
        self._iterations = iterations
        self._bw = link_bandwidth
        self._router_noise = router_noise_pct_per_flit
        self._burstiness = burstiness

    @property
    def routing(self) -> RoutingAlgorithm:
        return self._routing

    def evaluate(
        self,
        flows: Sequence[Flow],
        psn_pct: Optional[np.ndarray] = None,
        per_hop_cycles: float = 3.0,
        psn_valid: Optional[np.ndarray] = None,
        dead_links: Optional[Set[Tuple[int, Direction]]] = None,
        dead_routers: Optional[Set[int]] = None,
    ) -> NocLoadReport:
        """Evaluate the network under a set of flows.

        Args:
            flows: Offered traffic.
            psn_pct: Per-tile PSN sensor readings consumed by PSN-aware
                policies (zeros if omitted).
            per_hop_cycles: Router pipeline latency per hop.
            psn_valid: Per-tile boolean mask; False marks a sensor
                reading as untrustworthy (detected fault or stale), so
                PSN-aware policies fall back to deterministic routing at
                the affected hops.  ``None`` means all readings valid.
            dead_links: Failed unidirectional links - no flow traverses
                them; adaptive policies route around them where the
                minimal-path DAG allows.
            dead_routers: Failed routers - no flow traverses, originates
                at or terminates at them.

        A flow that cannot reach its destination under the fault set is
        flagged :attr:`FlowStats.unroutable` instead of raising, so the
        runtime can re-map the owning application.

        Returns:
            The :class:`NocLoadReport`.
        """
        n_tiles = self._topo.mesh.tile_count
        if psn_pct is None:
            psn_pct = np.zeros(n_tiles)
        psn_pct = np.asarray(psn_pct, dtype=float)
        if psn_pct.shape != (n_tiles,):
            raise ValueError(f"psn_pct must have shape ({n_tiles},)")
        if psn_valid is not None:
            psn_valid = np.asarray(psn_valid, dtype=bool)
            if psn_valid.shape != (n_tiles,):
                raise ValueError(f"psn_valid must have shape ({n_tiles},)")
        dead_links = dead_links or set()
        dead_routers = dead_routers or set()
        for f in flows:
            self._topo.mesh._check_tile(f.src)
            self._topo.mesh._check_tile(f.dst)

        link_load: Dict[Tuple[int, Direction], float] = {}
        router_load = np.zeros(n_tiles)
        # Relaxed copies fed to the routing contexts: adaptive policies
        # with sharp argmin selection can oscillate between iterations
        # (all flow flips to the quiet side, which then becomes the loud
        # side); under-relaxation damps the fixed point.
        ctx_link: Dict[Tuple[int, Direction], float] = {}
        ctx_router = np.zeros(n_tiles)
        per_flow_splits: List[Dict[int, Dict[Direction, float]]] = []

        unroutable: List[bool] = [False] * len(flows)
        for it in range(self._iterations):
            contexts = self._build_contexts(
                ctx_link, ctx_router, psn_pct, psn_valid
            )
            link_load, router_load, per_flow_splits, unroutable = (
                self._propagate(flows, contexts, dead_links, dead_routers)
            )
            blend = 0.5 if it else 1.0
            keys = set(ctx_link) | set(link_load)
            ctx_link = {
                k: (1 - blend) * ctx_link.get(k, 0.0)
                + blend * link_load.get(k, 0.0)
                for k in keys
            }
            ctx_router = (1 - blend) * ctx_router + blend * router_load

        link_rho = {
            link: min(load * self._burstiness / self._bw, RHO_MAX)
            for link, load in link_load.items()
        }
        saturated = any(
            load * self._burstiness / self._bw > RHO_MAX
            for load in link_load.values()
        )
        flow_stats = [
            self._flow_latency(f, split, link_rho, per_hop_cycles, blocked)
            for f, split, blocked in zip(flows, per_flow_splits, unroutable)
        ]
        return NocLoadReport(
            router_flits_per_cycle=router_load,
            link_rho=link_rho,
            flows=flow_stats,
            saturated=saturated,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _build_contexts(
        self,
        link_load: Dict[Tuple[int, Direction], float],
        router_load: np.ndarray,
        psn_pct: np.ndarray,
        psn_valid: Optional[np.ndarray] = None,
    ) -> List[RoutingContext]:
        """Per-router routing contexts from the previous iteration."""
        topo = self._topo
        contexts = []
        for tile in topo.mesh.tiles():
            incoming = [
                link_load.get((topo.neighbor(tile, d), d.opposite), 0.0)
                for d in topo.out_directions(tile)
            ]
            occupancy = (
                min(1.0, max(incoming) * self._burstiness / self._bw)
                if incoming
                else 0.0
            )
            rates = {}
            noise = {}
            trusted = {}
            out_rho = {}
            for d in topo.out_directions(tile):
                n = topo.neighbor(tile, d)
                rates[d] = float(router_load[n])
                if psn_valid is not None:
                    trusted[d] = bool(psn_valid[n])
                # The sensors a real PANR consults see the *current*
                # noise, which includes the router activity the routing
                # itself creates; feeding the running load estimate back
                # here lets the fixed point co-converge instead of
                # funnelling all traffic through one "quiet" corridor.
                noise[d] = float(psn_pct[n]) + self._router_noise * float(
                    router_load[n]
                )
                out_rho[d] = min(
                    link_load.get((tile, d), 0.0) * self._burstiness / self._bw,
                    1.0,
                )
            contexts.append(
                RoutingContext(
                    buffer_occupancy=occupancy,
                    neighbor_data_rate=rates,
                    neighbor_psn_pct=noise,
                    neighbor_psn_valid=trusted,
                    out_link_rho=out_rho,
                )
            )
        return contexts

    def _propagate(
        self,
        flows: Sequence[Flow],
        contexts: List[RoutingContext],
        dead_links: Set[Tuple[int, Direction]],
        dead_routers: Set[int],
    ):
        topo = self._topo
        faulty = bool(dead_links or dead_routers)
        link_load: Dict[Tuple[int, Direction], float] = {}
        router_load = np.zeros(topo.mesh.tile_count)
        per_flow_splits: List[Dict[int, Dict[Direction, float]]] = []
        unroutable: List[bool] = []

        for flow in flows:
            splits: Dict[int, Dict[Direction, float]] = {}
            blocked = False
            if flow.rate <= 0.0 or flow.src == flow.dst:
                per_flow_splits.append(splits)
                unroutable.append(False)
                continue
            if faulty and (flow.src in dead_routers or flow.dst in dead_routers):
                per_flow_splits.append(splits)
                unroutable.append(True)
                continue
            # Process nodes in decreasing distance from dst: minimal
            # routing guarantees each hop reduces the distance, so every
            # node's inflow is complete by the time it is expanded.
            pending: Dict[int, float] = {flow.src: flow.rate}
            while pending:
                node = max(
                    pending, key=lambda n: topo.hops(n, flow.dst)
                )
                rate = pending.pop(node)
                router_load[node] += rate
                if node == flow.dst:
                    continue
                weights = self._routing.weights(
                    topo, node, flow.dst, contexts[node]
                )
                if faulty:
                    # Route around dead components: drop directions over
                    # a failed link or into a failed router.  When every
                    # permissible direction is dead the flow's remaining
                    # rate dies here and the flow is declared unroutable
                    # (the runtime re-maps the owning application).
                    weights = {
                        d: w
                        for d, w in weights.items()
                        if (node, d) not in dead_links
                        and topo.neighbor(node, d) not in dead_routers
                    }
                total = sum(weights.values())
                if total <= 0:
                    blocked = True
                    continue
                node_split: Dict[Direction, float] = {}
                for d, w in weights.items():
                    share = rate * w / total
                    if share <= 0:
                        continue
                    node_split[d] = share
                    link = (node, d)
                    link_load[link] = link_load.get(link, 0.0) + share
                    nxt = topo.neighbor(node, d)
                    pending[nxt] = pending.get(nxt, 0.0) + share
                splits[node] = node_split
            per_flow_splits.append(splits)
            unroutable.append(blocked)
        return link_load, router_load, per_flow_splits, unroutable

    def _flow_latency(
        self,
        flow: Flow,
        splits: Dict[int, Dict[Direction, float]],
        link_rho: Dict[Tuple[int, Direction], float],
        per_hop_cycles: float,
        unroutable: bool = False,
    ) -> FlowStats:
        if flow.src == flow.dst or flow.rate <= 0.0 or not splits:
            return FlowStats(
                avg_hops=0.0,
                header_latency_cycles=0.0,
                max_rho=0.0,
                unroutable=unroutable,
            )
        # Dynamic programming from dst outward over the split DAG.
        hops: Dict[int, float] = {flow.dst: 0.0}
        lat: Dict[int, float] = {flow.dst: 0.0}
        worst: Dict[int, float] = {flow.dst: 0.0}
        nodes = sorted(
            splits, key=lambda n: self._topo.hops(n, flow.dst)
        )
        for node in nodes:
            node_split = splits[node]
            total = sum(node_split.values())
            if total <= 0:
                continue
            h = l = 0.0
            w_max = 0.0
            for d, share in node_split.items():
                nxt = self._topo.neighbor(node, d)
                rho = link_rho.get((node, d), 0.0)
                queue = rho / (2.0 * (1.0 - min(rho, RHO_MAX)))
                frac = share / total
                h += frac * (1.0 + hops.get(nxt, 0.0))
                l += frac * (per_hop_cycles + queue + lat.get(nxt, 0.0))
                w_max = max(w_max, rho, worst.get(nxt, 0.0))
            hops[node] = h
            lat[node] = l
            worst[node] = w_max
        return FlowStats(
            avg_hops=hops.get(flow.src, 0.0),
            header_latency_cycles=lat.get(flow.src, 0.0),
            max_rho=worst.get(flow.src, 0.0),
            unroutable=unroutable,
        )
