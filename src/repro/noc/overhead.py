"""PANR hardware overhead model (paper Section 4.4).

The routing scheme adds, per router: registers storing the voltage-noise
and traffic levels of the (up to) four adjacent tiles, wires transmitting
those values between tiles, and two 64-bit comparators finding the
minimum PSN and minimum data rate among permitted directions.  The paper
reports ~1 mW (3 %) power and ~115 um^2 (0.5 %) area overhead over the
baseline router, plus ~413 um^2 for the digital PSN sensor network [16] -
negligible against the ~4 mm^2 core and ~71300 um^2 router at 7 nm.

This module derives those numbers from per-cell constants so that the
bench for the overhead table regenerates the paper's row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.power import PowerModel
from repro.chip.technology import TechnologyNode, technology

#: Register bits: 4 neighbours x (16-bit PSN level + 16-bit data rate).
_REGISTER_BITS = 4 * (16 + 16)
#: Two 64-bit minimum comparators.
_COMPARATOR_BITS = 2 * 64
#: Area per flip-flop at 7 nm, um^2 (scaled by (feature/7)^2 elsewhere).
_FF_AREA_UM2_7NM = 0.20
#: Area per comparator bit (full comparator slice), um^2 at 7 nm.
_CMP_AREA_UM2_7NM = 0.42
#: Inter-tile wiring and muxing overhead, um^2 at 7 nm.
_WIRE_AREA_UM2_7NM = 35.0
#: PSN sensor macro area at 7 nm, um^2 (after [16]).
_SENSOR_AREA_UM2_7NM = 413.0
#: Switching energy per overhead gate-bit relative to the router's
#: switched capacitance - used to express the ~3 % power figure.
_POWER_FRACTION_OF_ROUTER = 0.03


@dataclass(frozen=True)
class OverheadReport:
    """PANR per-router overhead at one technology node.

    Areas in um^2; powers in watts.
    """

    register_area_um2: float
    comparator_area_um2: float
    wiring_area_um2: float
    sensor_area_um2: float
    router_area_um2: float
    core_area_um2: float
    power_overhead_w: float
    router_power_w: float

    @property
    def logic_area_um2(self) -> float:
        """Total per-router logic overhead (excluding the sensor)."""
        return (
            self.register_area_um2
            + self.comparator_area_um2
            + self.wiring_area_um2
        )

    @property
    def area_fraction_of_router(self) -> float:
        return self.logic_area_um2 / self.router_area_um2

    @property
    def sensor_fraction_of_core(self) -> float:
        return self.sensor_area_um2 / self.core_area_um2

    @property
    def power_fraction_of_router(self) -> float:
        return self.power_overhead_w / self.router_power_w


def panr_router_overhead(
    tech: TechnologyNode = None,
    vdd: float = 0.6,
    flits_per_cycle: float = 1.0,
) -> OverheadReport:
    """Compute the PANR overhead table row for a technology node.

    Args:
        tech: Technology node (default 7 nm).
        vdd: Operating voltage for the power estimate.
        flits_per_cycle: Router load for the baseline power estimate.
    """
    tech = tech or technology("7nm")
    scale = (tech.feature_nm / 7.0) ** 2
    register_area = _REGISTER_BITS * _FF_AREA_UM2_7NM * scale
    comparator_area = _COMPARATOR_BITS * _CMP_AREA_UM2_7NM * scale
    wiring_area = _WIRE_AREA_UM2_7NM * scale
    sensor_area = _SENSOR_AREA_UM2_7NM * scale

    power_model = PowerModel(tech)
    router_power = power_model.router_dynamic(
        flits_per_cycle, vdd
    ) + power_model.router_leakage(vdd)
    power_overhead = router_power * _POWER_FRACTION_OF_ROUTER

    return OverheadReport(
        register_area_um2=register_area,
        comparator_area_um2=comparator_area,
        wiring_area_um2=wiring_area,
        sensor_area_um2=sensor_area,
        router_area_um2=tech.router_area_um2,
        core_area_um2=tech.core_area_mm2 * 1e6,
        power_overhead_w=power_overhead,
        router_power_w=router_power,
    )
