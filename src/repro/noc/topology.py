"""Mesh NoC topology: directions, ports and neighbour lookup.

Coordinates follow :class:`repro.chip.mesh.MeshGeometry`: x grows EAST,
y grows SOUTH (row-major tile ids).
"""

from __future__ import annotations

import enum
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.chip.mesh import MeshGeometry


class Direction(enum.Enum):
    """Router port directions; LOCAL is the tile's injection/ejection port."""

    LOCAL = "local"
    EAST = "east"
    WEST = "west"
    NORTH = "north"
    SOUTH = "south"

    @property
    def offset(self) -> Tuple[int, int]:
        return _OFFSETS[self]

    @property
    def opposite(self) -> "Direction":
        return _OPPOSITES[self]


_OFFSETS = {
    Direction.LOCAL: (0, 0),
    Direction.EAST: (1, 0),
    Direction.WEST: (-1, 0),
    Direction.NORTH: (0, -1),
    Direction.SOUTH: (0, 1),
}

_OPPOSITES = {
    Direction.LOCAL: Direction.LOCAL,
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
}

#: The four mesh directions (excluding LOCAL).
MESH_DIRECTIONS = (
    Direction.EAST,
    Direction.WEST,
    Direction.NORTH,
    Direction.SOUTH,
)

#: Canonical router-port order shared by the cycle models and the array
#: engine; index into this tuple is the integer *port code*.
PORT_DIRECTIONS = (
    Direction.LOCAL,
    Direction.EAST,
    Direction.WEST,
    Direction.NORTH,
    Direction.SOUTH,
)

#: Direction -> integer port code (position in :data:`PORT_DIRECTIONS`).
PORT_CODES: Dict[Direction, int] = {
    d: i for i, d in enumerate(PORT_DIRECTIONS)
}

#: ``OPPOSITE_CODES[code]`` is the port code of the opposite direction.
OPPOSITE_CODES = tuple(
    PORT_CODES[d.opposite] for d in PORT_DIRECTIONS
)


class TopologyTables(NamedTuple):
    """Shared-memory-backed lookup tables a :class:`MeshTopology` can adopt.

    Published by :mod:`repro.perf.pool` from the parent process and
    attached read-only in warm workers; the values are exactly what the
    constructor would compute, only the backing storage is shared.
    """

    hops: np.ndarray  # (n, n) int64 Manhattan distances
    neighbor_codes: np.ndarray  # (n, 5) int64, -1 at mesh edges


class MeshTopology:
    """Port-level view of a tile mesh for NoC models.

    Args:
        mesh: Tile mesh.
        shared_tables: Optional pre-computed hop / neighbour-code
            tables (typically shared-memory views from the warm worker
            pool).  Values must equal what the constructor computes;
            shapes are validated, contents are trusted.
    """

    #: Precomputed all-pairs lookup tables, read-only once built: the
    #: warm-worker-pool plan shares them across workers, and parmlint's
    #: shared-readonly rule flags any write outside __init__ / the lazy
    #: neighbor-code builder (see docs/lint.md).
    __shared_readonly__ = ("_hops", "_towards", "_neighbor_codes")
    __shared_readonly_init__ = ("neighbor_codes",)

    def __init__(
        self,
        mesh: MeshGeometry,
        shared_tables: Optional[TopologyTables] = None,
    ):
        self._mesh = mesh
        n = mesh.tile_count
        if shared_tables is not None:
            if shared_tables.hops.shape != (n, n):
                raise ValueError("shared hops table has the wrong shape")
            if shared_tables.neighbor_codes.shape != (
                n,
                len(PORT_DIRECTIONS),
            ):
                raise ValueError(
                    "shared neighbor-code table has the wrong shape"
                )
        self._neighbor_codes: Optional[np.ndarray] = (
            None if shared_tables is None else shared_tables.neighbor_codes
        )
        self._neighbors: Dict[int, Dict[Direction, int]] = {}
        coords = [mesh.coord_of(tile) for tile in mesh.tiles()]
        for tile, (x, y) in enumerate(coords):
            table: Dict[Direction, int] = {}
            for d in MESH_DIRECTIONS:
                dx, dy = d.offset
                coord = (x + dx, y + dy)
                if mesh.contains(coord):
                    table[d] = mesh.tile_at(coord)
            self._neighbors[tile] = table
        # Hop-distance and productive-direction tables, precomputed once
        # per topology: routing and the analytical NoC model look these
        # up in their innermost loops, where the coordinate arithmetic
        # of MeshGeometry.manhattan dominated profiles.
        if shared_tables is not None:
            self._hops = shared_tables.hops
        else:
            self._hops = np.array(
                [
                    [abs(ax - bx) + abs(ay - by) for bx, by in coords]
                    for ax, ay in coords
                ],
                dtype=np.int64,
            )
        self._towards: Dict[Tuple[int, int], Tuple[Direction, ...]] = {}
        for src, (sx, sy) in enumerate(coords):
            for dst, (dx_, dy_) in enumerate(coords):
                dirs: List[Direction] = []
                if dx_ > sx:
                    dirs.append(Direction.EAST)
                elif dx_ < sx:
                    dirs.append(Direction.WEST)
                if dy_ > sy:
                    dirs.append(Direction.SOUTH)
                elif dy_ < sy:
                    dirs.append(Direction.NORTH)
                self._towards[(src, dst)] = tuple(dirs)

    @property
    def mesh(self) -> MeshGeometry:
        return self._mesh

    def neighbor(self, tile: int, direction: Direction) -> Optional[int]:
        """Neighbouring tile in a direction, or None at the mesh edge."""
        if direction is Direction.LOCAL:
            return tile
        return self._neighbors[tile].get(direction)

    def out_directions(self, tile: int) -> List[Direction]:
        """Mesh directions with a neighbour (2-4 of them)."""
        return list(self._neighbors[tile])

    def hops(self, src: int, dst: int) -> int:
        """Manhattan (hop) distance between two tiles, via the table."""
        return int(self._hops[src, dst])

    def hops_table(self) -> np.ndarray:
        """The full ``(n, n)`` int64 hop-distance table (read-only use)."""
        return self._hops

    def direction_towards(self, src: int, dst: int) -> List[Direction]:
        """Productive (distance-reducing) directions from src to dst."""
        return list(self._towards[(src, dst)])

    def neighbor_codes(self) -> np.ndarray:
        """All-pairs neighbour table keyed by port code.

        Returns an ``(tile_count, 5)`` int array where column ``c`` holds
        the neighbouring tile in direction ``PORT_DIRECTIONS[c]`` or
        ``-1`` at a mesh edge; the LOCAL column holds the tile itself.
        The array is built once and cached - the array cycle engine
        gathers through it every cycle.
        """
        if self._neighbor_codes is None:
            table = np.full(
                (self._mesh.tile_count, len(PORT_DIRECTIONS)),
                -1,
                dtype=np.int64,
            )
            for tile in self._mesh.tiles():
                table[tile, PORT_CODES[Direction.LOCAL]] = tile
                for d, other in self._neighbors[tile].items():
                    table[tile, PORT_CODES[d]] = other
            self._neighbor_codes = table
        return self._neighbor_codes

    def links(self) -> List[Tuple[int, Direction]]:
        """All unidirectional links as ``(src_tile, direction)`` pairs."""
        return [
            (tile, d)
            for tile, table in self._neighbors.items()
            for d in table
        ]
