"""Structure-of-arrays cycle engine for the mesh NoC.

:class:`ArrayNocEngine` is a drop-in, flit-for-flit equivalent
reimplementation of :class:`repro.noc.cycle.CycleNocSimulator`.  The
legacy simulator walks Python objects - one ``Flit`` per flit, one
``deque`` per input port, enum-keyed dicts per router - every cycle;
this engine keeps the entire network state in preallocated numpy int
arrays and runs each cycle phase as a handful of vectorised array
operations:

* **input FIFOs** are circular buffers ``(tiles, ports, depth)`` of
  packet ids and flit indices, with per-port head-slot and occupancy
  arrays (credits are ``depth - occupancy``);
* **wormhole state** (assigned output, output owner, round-robin
  pointer) is one ``(tiles, ports)`` int array each;
* **injection** accumulates fractional flits for all traffic flows with
  one vector add per cycle;
* **route computation** takes fast paths: context-free policies
  (XY, west-first, odd-even - ``RoutingAlgorithm.context_free``) are
  served from a lazily built per-(tile, destination) route table, and
  adaptive policies (PANR, ICON) get their :class:`RoutingContext`
  assembled from cached per-tile neighbour maps (PSN static, data
  rates refreshed once per measurement window) instead of per-call
  topology walks;
* **switch traversal** - arbitration and the credit check run as
  boolean tensor operations over ``(tiles, out ports, in ports)``, and
  the winning moves commit with vectorised scatter/gather.

The commit can be vectorised *exactly* because the legacy move loop is
order-independent: an input port wins at most one output per cycle (so
pops never collide), a downstream input port has exactly one upstream
``(tile, output)`` (so pushes never collide and the legacy re-check can
never fail), and a circular FIFO's append slot ``head + occupancy`` is
invariant under its own pop.  Arbitration, credits and wormhole
semantics therefore match the legacy simulator decision for decision -
``tests/noc/test_engine.py`` pins stats equality across every routing
policy, mesh size and load level.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chip.mesh import MeshGeometry
from repro.noc.cycle.simulator import NocSimStats, TrafficFlow
from repro.noc.routing.base import RoutingAlgorithm, RoutingContext
from repro.noc.topology import (
    Direction,
    MeshTopology,
    OPPOSITE_CODES,
    PORT_CODES,
    PORT_DIRECTIONS,
)

#: Port code of the LOCAL (injection/ejection) port.
_LOCAL = PORT_CODES[Direction.LOCAL]

_N_PORTS = len(PORT_DIRECTIONS)

#: Arbitration key for non-candidates; larger than any round-robin
#: distance ``(port - pointer) % 5``.
_NO_CANDIDATE = _N_PORTS + 1

#: Initial capacity of the per-packet metadata arrays.
_MIN_PACKET_CAPACITY = 1024


class ArrayNocEngine:
    """Array-based mesh NoC cycle engine (fast path of the cycle model).

    Constructor signature, semantics and produced :class:`NocSimStats`
    are identical to :class:`repro.noc.cycle.CycleNocSimulator`; the
    legacy class remains the readable reference implementation that the
    equivalence suite pins this engine against.

    Args:
        mesh: Tile mesh.
        routing: Routing algorithm.
        buffer_depth: Input FIFO depth in flits.
        psn_pct: Optional per-tile PSN sensor readings for PSN-aware
            policies (zeros if omitted); update mid-run via
            :meth:`set_psn`.
        rate_window: Cycles per data-rate measurement window.
        seed: Injection-process RNG seed (kept for API parity; the
            accumulator injection process is deterministic).
        topology: Optional pre-built :class:`MeshTopology` to adopt
            (warm worker pools share one, with shared-memory lookup
            tables, across every engine a worker builds).  Must match
            ``mesh``; never mutated.
        route_table: Optional complete ``(n, n)`` int8 route table for
            a context-free ``routing`` (see :func:`build_route_table`).
            Adopted as-is - including read-only shared-memory views -
            and marked fully built, so the lazy builder never writes
            to it.  The values must equal what the lazy builder would
            produce (same policy, same mesh), so results are
            byte-identical with or without it.
    """

    #: Topology-derived lookup tables that the warm-worker-pool plan
    #: maps into shared memory: read-only once built.  parmlint's
    #: shared-readonly rule flags any write outside __init__ and the
    #: lazy route-table builder declared below (see docs/lint.md).
    __shared_readonly__ = (
        "_down_tile",
        "_down_port",
        "_down_flat",
        "_edge_ok",
        "_rr_key_table",
        "_flat_slot_base",
        "_route_table",
        "_table_built",
    )
    #: _route_table/_table_built columns are filled lazily, one
    #: destination at a time, by this builder.
    __shared_readonly_init__ = ("_build_route_columns",)

    def __init__(
        self,
        mesh: MeshGeometry,
        routing: RoutingAlgorithm,
        buffer_depth: int = 8,
        psn_pct: Optional[np.ndarray] = None,
        rate_window: int = 64,
        seed: int = 0,
        topology: Optional[MeshTopology] = None,
        route_table: Optional[np.ndarray] = None,
    ):
        if buffer_depth < 1:
            raise ValueError("buffer_depth must be at least 1")
        if topology is None:
            self._topo = MeshTopology(mesh)
        else:
            if (
                topology.mesh.width != mesh.width
                or topology.mesh.height != mesh.height
            ):
                raise ValueError("adopted topology does not match the mesh")
            self._topo = topology
        self._routing = routing
        self._depth = buffer_depth
        n = mesh.tile_count
        self._n_tiles = n
        self._psn = (
            np.zeros(n) if psn_pct is None else np.asarray(psn_pct)
        )
        if self._psn.shape != (n,):
            raise ValueError("psn_pct must have one entry per tile")
        self._rate_window = rate_window
        self._rates = np.zeros(n)
        self._rng = np.random.default_rng(seed)
        self._cycle = 0
        self._next_packet_id = 0

        # --- structure-of-arrays network state -------------------------
        # Input FIFOs: circular buffers of (packet id, flit index).
        self._buf_pkt_id = np.full((n, _N_PORTS, buffer_depth), -1, np.int64)
        self._buf_flit_idx = np.zeros((n, _N_PORTS, buffer_depth), np.int64)
        self._head_slot = np.zeros((n, _N_PORTS), np.int64)
        self._occ_flits = np.zeros((n, _N_PORTS), np.int64)
        # Wormhole route state per input port / output port.
        self._assigned_out = np.full((n, _N_PORTS), -1, np.int64)
        self._wormhole_owner = np.full((n, _N_PORTS), -1, np.int64)
        self._rr_next = np.zeros((n, _N_PORTS), np.int64)
        #: Flits forwarded per router (all ports), for activity stats.
        self._fwd_flits = np.zeros(n, np.int64)

        # Downstream lookup per (tile, output port code): the receiving
        # tile and its input port.  Off-mesh entries are clamped to 0
        # and rejected at route time via _edge_ok, so no gather ever
        # reads them.
        neigh = self._topo.neighbor_codes()
        self._edge_ok = neigh >= 0
        self._down_tile = np.where(self._edge_ok, neigh, 0)
        self._down_port = np.broadcast_to(
            np.asarray(OPPOSITE_CODES, np.int64), (n, _N_PORTS)
        ).copy()
        self._is_local_col = (
            np.arange(_N_PORTS) == _LOCAL
        )  # broadcast over (tiles, out ports)
        # Flat (tile, port) index of each output's downstream input
        # port, for one-shot `take` gathers of downstream occupancy.
        self._down_flat = (
            self._down_tile * _N_PORTS + self._down_port
        ).ravel()
        # Round-robin arbitration distance (in_port - pointer) % 5,
        # tabulated so the per-cycle key is one gather.
        self._rr_key_table = np.array(
            [
                [(i - r) % _N_PORTS for i in range(_N_PORTS)]
                for r in range(_N_PORTS)
            ],
            np.int64,
        )
        # Flat-index base for gathering FIFO head entries with `take`.
        self._flat_slot_base = np.arange(n * _N_PORTS, dtype=np.int64) * (
            buffer_depth
        )

        # Per-packet metadata, grown by doubling.
        self._pkt_dst = np.zeros(_MIN_PACKET_CAPACITY, np.int64)
        self._pkt_size_flits = np.zeros(_MIN_PACKET_CAPACITY, np.int64)
        self._pkt_inject_cycle = np.zeros(_MIN_PACKET_CAPACITY, np.int64)

        # Route-table fast path for context-free policies.
        if routing.context_free:
            if route_table is not None:
                if route_table.shape != (n, n):
                    raise ValueError(
                        "adopted route table has the wrong shape"
                    )
                if route_table.dtype != np.int8:
                    raise ValueError("adopted route table must be int8")
                self._route_table: Optional[np.ndarray] = route_table
                self._table_built = np.ones(n, bool)
            else:
                self._route_table = np.full((n, n), -1, np.int8)
                self._table_built = np.zeros(n, bool)
        else:
            if route_table is not None:
                raise ValueError(
                    "route tables exist only for context-free policies"
                )
            self._route_table = None
        # Adaptive-policy context caches: per-tile static adjacency
        # (Direction, neighbour tile, neighbour's input port code) and
        # the shared neighbour PSN / data-rate dicts.
        self._adjacency: List[Tuple[Tuple[Direction, int, int], ...]] = [
            tuple(
                (d, self._topo.neighbor(t, d), OPPOSITE_CODES[PORT_CODES[d]])
                for d in self._topo.out_directions(t)
            )
            for t in range(n)
        ]
        self._psn_dicts: Optional[List[Dict[Direction, float]]] = None
        self._rate_dicts: Optional[List[Dict[Direction, float]]] = None
        self._empty_ctx = RoutingContext()

    @property
    def topology(self) -> MeshTopology:
        return self._topo

    def set_psn(self, psn_pct: np.ndarray) -> None:
        """Replace the per-tile PSN sensor readings mid-run.

        PSN-aware policies see the new readings from the next routing
        decision on, mirroring a sensor-network refresh between control
        epochs.
        """
        psn = np.asarray(psn_pct)
        if psn.shape != (self._n_tiles,):
            raise ValueError("psn_pct must have one entry per tile")
        self._psn = psn
        self._psn_dicts = None

    # ------------------------------------------------------------------

    def run(self, flows: Sequence[TrafficFlow], cycles: int) -> NocSimStats:
        """Simulate ``cycles`` cycles of the given offered traffic."""
        if cycles < 1:
            raise ValueError("cycles must be at least 1")
        for f in flows:
            self._topo.mesh._check_tile(f.src)
            self._topo.mesh._check_tile(f.dst)
            if f.src == f.dst:
                raise ValueError("flows must cross the network (src != dst)")

        n_flows = len(flows)
        acc = np.zeros(n_flows)
        flow_rate = np.array([f.rate for f in flows], float)
        flow_size = np.array([f.packet_size for f in flows], np.int64)
        flow_src = [f.src for f in flows]
        flow_dst = [f.dst for f in flows]
        if self._route_table is not None and flow_dst:
            # Pre-build the route-table columns this run can need, so
            # the per-cycle fast path is a single gather.
            self._build_route_columns(np.unique(np.array(flow_dst)))
        backlog: Dict[int, Deque[Tuple[int, int]]] = {}
        pushed: Dict[int, int] = {}
        stats = NocSimStats(
            cycles=cycles,
            packets_injected=0,
            packets_delivered=0,
            flits_delivered=0,
        )
        latencies = stats.packet_latencies
        window_in_flits = np.zeros(self._n_tiles)
        depth = self._depth
        occ = self._occ_flits
        head_slot = self._head_slot
        assigned = self._assigned_out
        owner = self._wormhole_owner
        out_codes = np.arange(_N_PORTS)[None, :, None]
        in_codes = np.arange(_N_PORTS)[None, None, :]

        for _ in range(cycles):
            self._cycle += 1
            # --- injection (vectorised flow accumulators) --------------
            if n_flows:
                np.add(acc, flow_rate, out=acc)
                for i in np.nonzero(acc >= flow_size)[0].tolist():
                    remaining = float(acc[i])
                    size = int(flow_size[i])
                    queue = backlog.get(flow_src[i])
                    if queue is None:
                        queue = backlog[flow_src[i]] = deque()
                    while remaining >= size:
                        remaining -= size
                        queue.append(
                            (self._new_packet(flow_dst[i], size), size)
                        )
                        stats.packets_injected += 1
                    acc[i] = remaining
            # Stream backlog packets into the LOCAL ports as space
            # permits (whole packets in order; a packet may straddle
            # cycles, tracked by `pushed`).  Slots are planned in plain
            # Python ints and committed as one scatter per cycle.
            push_src: List[int] = []
            push_slot: List[int] = []
            push_pkt: List[int] = []
            push_fidx: List[int] = []
            occ_local: Optional[List[int]] = None
            head_local: List[int] = []
            for src, queue in backlog.items():
                if not queue:
                    continue
                if occ_local is None:
                    occ_local = occ[:, _LOCAL].tolist()
                    head_local = head_slot[:, _LOCAL].tolist()
                occl = occ_local[src]
                free = depth - occl
                if free <= 0:
                    continue
                k = pushed.get(src, 0)
                base = head_local[src]
                while queue and free > 0:
                    pkt, size = queue[0]
                    push_src.append(src)
                    push_slot.append((base + occl) % depth)
                    push_pkt.append(pkt)
                    push_fidx.append(k)
                    occl += 1
                    free -= 1
                    if k + 1 == size:
                        queue.popleft()
                        k = 0
                    else:
                        k += 1
                pushed[src] = k
            if push_src:
                ps = np.array(push_src)
                sl = np.array(push_slot)
                self._buf_pkt_id[ps, _LOCAL, sl] = push_pkt
                self._buf_flit_idx[ps, _LOCAL, sl] = push_fidx
                occ[:, _LOCAL] += np.bincount(ps, minlength=self._n_tiles)

            # --- route computation + switch traversal ------------------
            nonempty = occ > 0
            if nonempty.any():
                flat_heads = self._flat_slot_base + head_slot.ravel()
                head_pkt = self._buf_pkt_id.take(flat_heads).reshape(
                    self._n_tiles, _N_PORTS
                )
                head_idx = self._buf_flit_idx.take(flat_heads).reshape(
                    self._n_tiles, _N_PORTS
                )
                need = nonempty & (assigned < 0)
                t_idx, p_idx = np.nonzero(need)
                if len(t_idx):
                    if (head_idx[t_idx, p_idx] != 0).any():
                        raise RuntimeError("body flit without wormhole route")
                    dsts = self._pkt_dst[head_pkt[t_idx, p_idx]]
                    assigned[t_idx, p_idx] = self._route_many(
                        t_idx, p_idx, dsts
                    )

                # Requests: every nonempty input port asks for exactly
                # its assigned output.  req_mask[t, out, in].
                req = np.where(nonempty, assigned, -1)
                req_mask = req[:, None, :] == out_codes
                # Credit check against the downstream input buffer
                # (LOCAL ejection is always free).
                down_free = (
                    occ.take(self._down_flat).reshape(
                        self._n_tiles, _N_PORTS
                    )
                    < depth
                )
                can_move = down_free | self._is_local_col
                # Wormhole gating: an owned output only admits its
                # owner; a free output only admits head flits.
                head_ready = nonempty & (head_idx == 0)
                movable = req_mask & np.where(
                    (owner >= 0)[:, :, None],
                    in_codes == owner[:, :, None],
                    head_ready[:, None, :],
                )
                candidate = movable & can_move[:, :, None]
                # Round-robin arbitration: smallest (port - pointer) % 5
                # wins; the pointer advances past the winner.
                rr_key = np.where(
                    candidate,
                    self._rr_key_table[self._rr_next],
                    _NO_CANDIDATE,
                )
                winner = rr_key.argmin(axis=2)
                valid = candidate.any(axis=2)
                mt, mo = np.nonzero(valid)
                if len(mt):
                    mi = winner[mt, mo]
                    self._rr_next[mt, mo] = (mi + 1) % _N_PORTS
                    # Gather per-move data before mutating anything; an
                    # input port wins at most one output per cycle, so
                    # the pre-move head entries stay valid.
                    slots = head_slot[mt, mi]
                    pkts = head_pkt[mt, mi]
                    fidx = head_idx[mt, mi]
                    is_tail = fidx == self._pkt_size_flits[pkts] - 1
                    # Pops ((tile, in port) pairs are unique).
                    head_slot[mt, mi] = (slots + 1) % depth
                    occ[mt, mi] -= 1
                    self._fwd_flits += np.bincount(
                        mt, minlength=self._n_tiles
                    )
                    # Wormhole bookkeeping: tails release the output,
                    # heads of multi-flit packets claim it.
                    assigned[mt[is_tail], mi[is_tail]] = -1
                    owner[mt[is_tail], mo[is_tail]] = -1
                    claim = (fidx == 0) & ~is_tail
                    owner[mt[claim], mo[claim]] = mi[claim]
                    # Ejections (at most one per tile per cycle, and
                    # np.nonzero order is tile-ascending, so latencies
                    # are recorded in the legacy move order).
                    local = mo == _LOCAL
                    done = local & is_tail
                    stats.flits_delivered += int(np.count_nonzero(local))
                    stats.packets_delivered += int(np.count_nonzero(done))
                    latencies.extend(
                        (
                            self._cycle - self._pkt_inject_cycle[pkts[done]]
                        ).tolist()
                    )
                    # Forwards: push into the downstream FIFO.  Each
                    # downstream port has exactly one upstream (tile,
                    # output), so pushes never collide, and the append
                    # slot head+occupancy is invariant under the
                    # port's own pop this cycle.
                    fwd = ~local
                    mtf = mt[fwd]
                    mof = mo[fwd]
                    nt = self._down_tile[mtf, mof]
                    npt = self._down_port[mtf, mof]
                    push = (head_slot[nt, npt] + occ[nt, npt]) % depth
                    self._buf_pkt_id[nt, npt, push] = pkts[fwd]
                    self._buf_flit_idx[nt, npt, push] = fidx[fwd]
                    occ[nt, npt] += 1
                    window_in_flits += np.bincount(
                        nt, minlength=self._n_tiles
                    )

            # --- data-rate measurement window --------------------------
            if self._cycle % self._rate_window == 0:
                self._rates = window_in_flits / self._rate_window
                window_in_flits = np.zeros(self._n_tiles)
                self._rate_dicts = None

        stats.router_flits_per_cycle = self._fwd_flits / self._cycle
        return stats

    # ------------------------------------------------------------------

    def _new_packet(self, dst: int, size_flits: int) -> int:
        pid = self._next_packet_id
        if pid >= len(self._pkt_dst):
            grow = len(self._pkt_dst)
            self._pkt_dst = np.concatenate(
                [self._pkt_dst, np.zeros(grow, np.int64)]
            )
            self._pkt_size_flits = np.concatenate(
                [self._pkt_size_flits, np.zeros(grow, np.int64)]
            )
            self._pkt_inject_cycle = np.concatenate(
                [self._pkt_inject_cycle, np.zeros(grow, np.int64)]
            )
        self._pkt_dst[pid] = dst
        self._pkt_size_flits[pid] = size_flits
        self._pkt_inject_cycle[pid] = self._cycle
        self._next_packet_id += 1
        return pid

    def _route_many(
        self, t_idx: np.ndarray, p_idx: np.ndarray, dsts: np.ndarray
    ) -> np.ndarray:
        """Output-port codes for head flits at ``(t_idx, p_idx)``."""
        if self._route_table is not None:
            if not self._table_built.take(dsts).all():
                self._build_route_columns(np.unique(dsts))
            return self._route_table[t_idx, dsts]
        return self._route_adaptive(t_idx, p_idx, dsts)

    def _build_route_columns(self, dsts: np.ndarray) -> None:
        """Fill route-table columns for the given destination tiles."""
        rows = np.arange(self._n_tiles)
        for dst in dsts.tolist():
            if self._table_built[dst]:
                continue
            col = np.array(
                [
                    PORT_CODES[
                        self._routing.select(
                            self._topo, cur, dst, self._empty_ctx
                        )
                    ]
                    for cur in range(self._n_tiles)
                ],
                np.int8,
            )
            # Reject off-mesh routes at build time so the cycle loop
            # never needs an edge guard.
            bad = ~self._edge_ok[rows, col]
            if bad.any():
                tile = int(np.nonzero(bad)[0][0])
                raise RuntimeError(f"route off mesh edge at tile {tile}")
            self._route_table[:, dst] = col
            self._table_built[dst] = True

    def _route_adaptive(
        self, t_idx: np.ndarray, p_idx: np.ndarray, dsts: np.ndarray
    ) -> np.ndarray:
        """Per-decision routing with batched context assembly."""
        if self._psn_dicts is None:
            self._psn_dicts = [
                {d: float(self._psn[nb]) for d, nb, _ in adj}
                for adj in self._adjacency
            ]
            self._rate_dicts = None
        if self._rate_dicts is None:
            self._rate_dicts = [
                {d: float(self._rates[nb]) for d, nb, _ in adj}
                for adj in self._adjacency
            ]
        occ = self._occ_flits
        depth = self._depth
        out = np.empty(len(t_idx), np.int64)
        for k in range(len(t_idx)):
            tile = int(t_idx[k])
            dst = int(dsts[k])
            if dst == tile:
                out[k] = _LOCAL
                continue
            ctx = RoutingContext(
                buffer_occupancy=int(occ[tile, int(p_idx[k])]) / depth,
                neighbor_data_rate=self._rate_dicts[tile],
                neighbor_psn_pct=self._psn_dicts[tile],
                out_link_rho={
                    d: int(occ[nb, opp]) / depth
                    for d, nb, opp in self._adjacency[tile]
                },
            )
            code = PORT_CODES[
                self._routing.select(self._topo, tile, dst, ctx)
            ]
            if not self._edge_ok[tile, code]:
                raise RuntimeError(f"route off mesh edge at tile {tile}")
            out[k] = code
        return out


def build_route_table(
    mesh: MeshGeometry,
    routing: RoutingAlgorithm,
    topology: Optional[MeshTopology] = None,
) -> np.ndarray:
    """Complete ``(n, n)`` int8 route table of a context-free policy.

    Runs the engine's own lazy column builder for every destination, so
    the result is byte-for-byte what an engine would build on demand -
    the warm worker pool publishes these tables into shared memory and
    engines adopt them via the ``route_table`` constructor argument.

    Args:
        mesh: Tile mesh.
        routing: A context-free routing policy.
        topology: Optional pre-built topology to route over.

    Raises:
        ValueError: when ``routing`` is adaptive (no table exists).
    """
    if not routing.context_free:
        raise ValueError(
            "route tables exist only for context-free policies"
        )
    engine = ArrayNocEngine(mesh, routing, topology=topology)
    engine._build_route_columns(np.arange(mesh.tile_count, dtype=np.int64))
    return engine._route_table
