"""Command-line entry point: figures by default, plus subcommands.

Usage::

    python -m repro                       # quick report to stdout
    python -m repro --preset full         # paper-sized runs
    python -m repro --sections fig1 fig8  # a subset of the figures
    python -m repro --output report.md    # write to a file
    python -m repro lint                  # parmlint static analysis
    python -m repro lint --format json    # CI gate (see docs/lint.md)
    python -m repro campaign --checkpoint cp.json [--resume|--status]
                                          # supervised campaign
                                          # (see docs/robustness.md)
    python -m repro bench [--quick]       # pinned microbenchmarks
                                          # (see docs/performance.md)
    python -m repro routing --workers 4   # routing-policy sweep on the
                                          # array NoC engine
    python -m repro verify --confidence 0.95 --half-width 0.02
                                          # stop-when-confident interval
                                          # estimation
                                          # (see docs/verification.md)
    python -m repro service --checkpoint svc.json [--resume|--status]
                                          # long-running service with
                                          # open-ended arrivals
                                          # (see docs/robustness.md)
"""

from __future__ import annotations

import argparse
import sys

from repro.exp.report import PRESETS, generate_report


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Subcommand dispatch; the bare invocation keeps its historical
    # figure-regeneration behaviour.
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "campaign":
        from repro.harness.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.perf.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "routing":
        from repro.exp.routing_sweep import main as routing_main

        return routing_main(argv[1:])
    if argv and argv[0] == "verify":
        from repro.exp.verify.cli import main as verify_main

        return verify_main(argv[1:])
    if argv and argv[0] == "service":
        from repro.runtime.service.cli import main as service_main

        return service_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the PARM (DAC 2018) evaluation figures.",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="quick",
        help="run size: quick (~1-2 min) or full (paper-sized)",
    )
    parser.add_argument(
        "--sections",
        nargs="+",
        metavar="SECTION",
        help=(
            "subset of: fig1 fig3a fig3b fig67 fig8 overhead ablations "
            "extensions faults routing verify traffic"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        help="write the markdown report to this file instead of stdout",
    )
    args = parser.parse_args(argv)

    try:
        report = generate_report(preset=args.preset, sections=args.sections)
    except KeyError as exc:
        parser.error(str(exc))
        return 2  # unreachable; parser.error exits
    try:
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(report)
            print(f"wrote {args.output}")
        else:
            print(report)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
