"""``python -m repro lint`` — the parmlint command-line entry point.

Exit codes:

* ``0`` — no findings beyond the committed baseline;
* ``1`` — at least one new finding (this is what fails CI);
* ``2`` — usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import LintEngine
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import default_rules


def default_root() -> Path:
    """The installed ``repro`` package directory (``src/repro``)."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_baseline_path(root: Path) -> Path:
    """Nearest ancestor of ``root`` with a ``pyproject.toml``, else cwd.

    With the repo layout (``<repo>/src/repro``) this lands on
    ``<repo>/.parmlint-baseline.json`` no matter where the command is
    invoked from.
    """
    for ancestor in root.parents:
        if (ancestor / "pyproject.toml").exists():
            return ancestor / DEFAULT_BASELINE_NAME
    return Path.cwd() / DEFAULT_BASELINE_NAME


def default_cache_dir(root: Path) -> Path:
    """``<repo>/.parmlint-cache`` — the call-graph artifact directory.

    Located the same way as the baseline (nearest ``pyproject.toml``
    ancestor) so CI can persist it with ``actions/cache``.  The
    directory is git-ignored; deleting it only costs a cold rebuild,
    which produces a byte-identical artifact.
    """
    for ancestor in root.parents:
        if (ancestor / "pyproject.toml").exists():
            return ancestor / ".parmlint-cache"
    return Path.cwd() / ".parmlint-cache"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "parmlint: AST-based determinism & invariant linter for the "
            "PARM reproduction (see docs/lint.md)"
        ),
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help="package directory to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=f"baseline file (default: <repo>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record all current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "directory for the interprocedural call-graph artifact "
            "(default: <repo>/.parmlint-cache)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="always rebuild the call graph in memory (no artifact I/O)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        width = max(len(rule.id) for rule in rules)
        for rule in rules:
            print(f"{rule.id:<{width}}  {rule.description}")
        return 0

    root = Path(args.root).resolve() if args.root else default_root()
    if not root.is_dir():
        parser.error(f"--root {root} is not a directory")
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir:
        cache_dir = Path(args.cache_dir)
    else:
        cache_dir = default_cache_dir(root)
    result = LintEngine(rules).run(root, cache_dir=cache_dir)

    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path(root)
    )
    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}"
        )
        return 0

    if args.no_baseline:
        baselined_prints = frozenset()
    else:
        try:
            baselined_prints = load_baseline(baseline_path)
        except ValueError as exc:
            parser.error(str(exc))

    new = [f for f in result.findings if f.fingerprint not in baselined_prints]
    baselined = len(result.findings) - len(new)
    stale = len(
        baselined_prints - {f.fingerprint for f in result.findings}
    )

    render = render_json if args.format == "json" else render_text
    print(render(result, new, baselined, stale))
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
