"""Inline suppression pragmas.

Two forms, mirroring ``noqa``-style suppression but always explicit
about *which* rule is being waived:

* ``# parmlint: ok[rule-a, rule-b]`` — suppress the listed rules on the
  line carrying the pragma.  When the pragma sits on a comment-only
  line, it applies to the next line as well, so long expressions can be
  annotated without exceeding line-length limits::

      # parmlint: ok[float-eq]
      if app.exec_time_s == 0.0:
          ...

* ``# parmlint: ok-file[rule-a]`` — suppress the listed rules for the
  whole file.  Reserved for modules whose *purpose* conflicts with a
  rule (e.g. wall-clock timing in ``exp/report.py``).

Blanket pragmas (``# parmlint: ok`` with no rule list) are rejected by
construction: the regex requires a bracketed rule list, so an unlisted
suppression simply never matches and the finding still fires.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

_PRAGMA_RE = re.compile(
    r"#\s*parmlint:\s*(?P<scope>ok-file|ok)\[(?P<rules>[a-z0-9\-_,\s]+)\]"
)


@dataclass
class PragmaIndex:
    """Per-file index of parmlint suppression pragmas."""

    file_rules: FrozenSet[str] = frozenset()
    line_rules: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def suppresses(self, rule: str, line: int) -> bool:
        """True when ``rule`` is waived at ``line`` (1-based)."""
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, frozenset())


def parse_pragmas(source: str) -> PragmaIndex:
    """Scan ``source`` and build its :class:`PragmaIndex`.

    The scan is line-based rather than tokenize-based so that files with
    syntax errors still yield their pragmas (the parse-error finding
    should not cascade into bogus suppression misses).
    """
    file_rules: Set[str] = set()
    line_rules: Dict[int, Set[str]] = {}
    lines = source.splitlines()
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = {
            name
            for name in (part.strip() for part in match.group("rules").split(","))
            if name
        }
        if not rules:
            continue
        if match.group("scope") == "ok-file":
            file_rules |= rules
            continue
        line_rules.setdefault(lineno, set()).update(rules)
        # A comment-only pragma line also covers the following line.
        if text[: match.start()].strip() == "" and lineno < len(lines):
            line_rules.setdefault(lineno + 1, set()).update(rules)
    return PragmaIndex(
        file_rules=frozenset(file_rules),
        line_rules={k: frozenset(v) for k, v in line_rules.items()},
    )
