"""Text and JSON reporters for parmlint results."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.analysis.engine import LintResult
from repro.analysis.findings import Finding

REPORT_VERSION = 1


def render_text(
    result: LintResult,
    new_findings: Sequence[Finding],
    baselined: int,
    stale_baseline: int,
) -> str:
    """Human-readable report: one line per new finding + a summary."""
    lines: List[str] = [f.render() for f in new_findings]
    summary = (
        f"parmlint: {result.files_checked} file(s) checked, "
        f"{len(new_findings)} new finding(s), {baselined} baselined, "
        f"{result.suppressed} pragma-suppressed"
    )
    if stale_baseline:
        summary += (
            f"; {stale_baseline} stale baseline entrie(s) — regenerate "
            "with --write-baseline"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    result: LintResult,
    new_findings: Sequence[Finding],
    baselined: int,
    stale_baseline: int,
) -> str:
    """Machine-readable report (stable key order) for the CI gate."""
    payload = {
        "baselined": baselined,
        "files_checked": result.files_checked,
        "findings": [
            {
                "fingerprint": f.fingerprint,
                "line": f.line,
                "message": f.message,
                "path": f.path,
                "rule": f.rule,
            }
            for f in new_findings
        ],
        "new_count": len(new_findings),
        "stale_baseline": stale_baseline,
        "suppressed": result.suppressed,
        "version": REPORT_VERSION,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
