"""The :class:`Finding` record shared by every parmlint rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes:
        rule: Rule identifier, e.g. ``"float-eq"``.
        path: Path of the offending file, POSIX-style and relative to
            the lint root so fingerprints are machine-independent.
        line: 1-based line number (0 for whole-file/project findings).
        message: Human-readable description of the violation.
    """

    rule: str
    path: str
    line: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the baseline file.

        Deliberately excludes the message so wording tweaks in a rule do
        not invalidate grandfathered entries; line numbers *are*
        included, so unrelated edits above a baselined finding require a
        baseline regeneration (documented in ``docs/lint.md``).
        """
        return f"{self.path}:{self.line}:{self.rule}"

    @property
    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
